package repro

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// TestMain lets CI and the BENCH harness pin the worker pool from the
// environment (NNRAND_WORKERS=n), so the same benchmark binary can record a
// 1/2/4/8-worker trajectory without code changes.
func TestMain(m *testing.M) {
	if s := os.Getenv("NNRAND_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			sched.SetWorkers(n)
		}
	}
	os.Exit(m.Run())
}

// The benchmark suite regenerates every table and figure of the paper, one
// benchmark per artifact (DESIGN.md §4 maps each ID to the paper). Training
// populations are cached across benchmarks inside the process, so artifacts
// that share a workload (Figure 1, Figure 4, Table 2, ...) train it once;
// the first benchmark touching a population pays its training cost.
//
// Run the full harness with:
//
//	go test -bench=. -benchmem
//
// Artifacts print via the nnrand CLI; benchmarks only regenerate them.

// benchCfg is the benchmark-scale configuration: the smallest workloads
// with 2 replicas per variant — enough to exercise every code path and
// regenerate every artifact's rows in one CPU-core-hour class of budget.
// Use the nnrand CLI (quick/full scale) for statistically stronger runs.
var benchCfg = experiments.Config{Scale: data.ScaleTest, Replicas: 2, Seed: 20220622}

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(context.Background(), id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (accuracy ± stddev per hardware/task/variant).
func BenchmarkTable2(b *testing.B) { benchArtifact(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (CelebA-like sub-group counts).
func BenchmarkTable3(b *testing.B) { benchArtifact(b, "table3") }

// BenchmarkTable4 regenerates Table 4 (dataset overview).
func BenchmarkTable4(b *testing.B) { benchArtifact(b, "table4") }

// BenchmarkTable5 regenerates Table 5 (sub-group stddev of acc/FPR/FNR).
func BenchmarkTable5(b *testing.B) { benchArtifact(b, "table5") }

// BenchmarkFig1 regenerates Figure 1 (noise-source comparison, V100).
func BenchmarkFig1(b *testing.B) { benchArtifact(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2 (batch-norm noise damping).
func BenchmarkFig2(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3 (normalized sub-group stddev).
func BenchmarkFig3(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4 (per-class vs overall variance).
func BenchmarkFig4(b *testing.B) { benchArtifact(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (stability across accelerators).
func BenchmarkFig5(b *testing.B) { benchArtifact(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (data-order noise vs batch size, TPU).
func BenchmarkFig6(b *testing.B) { benchArtifact(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (top-20 kernel times, det vs default).
func BenchmarkFig7(b *testing.B) { benchArtifact(b, "fig7") }

// BenchmarkFig8a regenerates Figure 8a (deterministic overhead across networks).
func BenchmarkFig8a(b *testing.B) { benchArtifact(b, "fig8a") }

// BenchmarkFig8b regenerates Figure 8b (overhead vs conv kernel size).
func BenchmarkFig8b(b *testing.B) { benchArtifact(b, "fig8b") }

// BenchmarkFig9 regenerates Figure 9 (Figure 1 panels on P100).
func BenchmarkFig9(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (Figure 1 panels on RTX5000).
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }

// Command nnrand runs the reproduction experiments for "Randomness in
// Neural Network Training: Characterizing the Impact of Tooling"
// (MLSys 2022). Each sub-command regenerates one table or figure of the
// paper on the simulated accelerator stack.
//
// Usage:
//
//	nnrand [flags] <experiment> [<experiment>...]
//	nnrand [flags] all
//	nnrand list
//	nnrand serve [-addr :8080] [-cache N]
//
// Flags (accepted before or after the experiment names):
//
//	-scale    test|quick|full   workload scale (default quick)
//	-replicas N                 replicas per variant (default: scale-dependent)
//	-seed     N                 base seed for all seed policies
//	-workers  N                 worker pool size (default: GOMAXPROCS)
//	-tsv                        emit tab-separated values instead of tables
//	-json                       emit a JSON array of typed results
//
// `serve` starts the embeddable HTTP/JSON service (see internal/server):
// GET /v1/experiments, POST /v1/experiments/{id}/run, GET /v1/results/{key}.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "nnrand: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nnrand", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "workload scale: test, quick or full")
	replicas := fs.Int("replicas", 0, "replicas per variant (0 = scale default)")
	seed := fs.Uint64("seed", 20220622, "base seed for all seed policies")
	workers := fs.Int("workers", 0, "worker pool size for replica/grid parallelism (0 = GOMAXPROCS)")
	tsv := fs.Bool("tsv", false, "emit tab-separated values")
	jsonOut := fs.Bool("json", false, "emit a JSON array of typed results")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nnrand [flags] <experiment>... | all | list | serve\n\nexperiments: %v\n\nflags:\n", experiments.IDs())
		fs.PrintDefaults()
	}
	// Accept flags before and after positional arguments (`nnrand -json
	// table2 -scale test` works): re-parse after each positional run. The
	// serve sub-command owns everything after its name.
	var ids []string
	var serveArgs []string
	for {
		if err := fs.Parse(args); err != nil {
			return err
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		if len(ids) == 0 && args[0] == "serve" {
			ids, serveArgs = []string{"serve"}, args[1:]
			break
		}
		ids = append(ids, args[0])
		args = args[1:]
	}
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}

	scale, err := data.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	cfg := experiments.Config{Scale: scale, Replicas: *replicas, Seed: *seed}

	if ids[0] == "serve" {
		return serveCmd(serveArgs)
	}
	if len(ids) == 1 && ids[0] == "list" {
		return list(os.Stdout)
	}
	// Expand `all` wherever it appears, then run each experiment at most
	// once per invocation, keeping first-occurrence order (`nnrand fig1
	// fig1` and `nnrand all fig1` collapse).
	ids = dedup(expandAll(ids, experiments.IDs()))

	// Validate every ID up front so a typo at the end of the list fails
	// before hours of training, not after.
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		if runners[i], err = experiments.Get(id); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []*report.Result
	for i, id := range ids {
		start := time.Now()
		res, err := runners[i](ctx, cfg)
		if err != nil {
			// In JSON mode completed experiments have produced no output
			// yet; render them before surfacing the error so an interrupt
			// or late failure never discards hours of finished training.
			if *jsonOut && len(results) > 0 {
				if rerr := report.RenderJSONResults(os.Stdout, results); rerr != nil {
					return fmt.Errorf("%w (and rendering completed results failed: %v)", err, rerr)
				}
			}
			return err
		}
		results = append(results, res)
		switch {
		case *jsonOut:
			// Rendered once, as one array, after every experiment finishes.
		case *tsv:
			if err := res.RenderTSV(os.Stdout); err != nil {
				return err
			}
		default:
			if err := res.RenderText(os.Stdout); err != nil {
				return err
			}
		}
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
	}
	if *jsonOut {
		return report.RenderJSONResults(os.Stdout, results)
	}
	return nil
}

// expandAll substitutes every occurrence of the `all` pseudo-ID with the
// full experiment list; dedup then collapses the overlap.
func expandAll(ids, all []string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "all" {
			out = append(out, all...)
		} else {
			out = append(out, id)
		}
	}
	return out
}

// dedup removes repeated experiment IDs, preserving first-occurrence order.
func dedup(ids []string) []string {
	seen := make(map[string]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// list prints the registry with its metadata: ID, artifact kind, relative
// cost and title.
func list(w io.Writer) error {
	tb := report.New("", "id", "artifact", "cost", "title")
	for _, m := range experiments.All() {
		tb.AddStrings(m.ID, string(m.Artifact), m.Cost, m.Title)
	}
	return tb.Render(w)
}

// serveCmd runs the HTTP/JSON service until the process is interrupted.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", server.DefaultCacheSize, "completed-result LRU capacity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(server.Options{CacheSize: *cache}).Handler(),
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nnrand: serving on %s\n", *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

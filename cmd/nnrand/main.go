// Command nnrand runs the reproduction experiments for "Randomness in
// Neural Network Training: Characterizing the Impact of Tooling"
// (MLSys 2022). Each sub-command regenerates one table or figure of the
// paper on the simulated accelerator stack.
//
// Usage:
//
//	nnrand [flags] <experiment> [<experiment>...]
//	nnrand [flags] all
//	nnrand list
//
// Flags:
//
//	-scale    test|quick|full   workload scale (default quick)
//	-replicas N                 replicas per variant (default: scale-dependent)
//	-seed     N                 base seed for all seed policies
//	-workers  N                 worker pool size (default: GOMAXPROCS)
//	-tsv                        emit tab-separated values instead of tables
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "nnrand: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nnrand", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "workload scale: test, quick or full")
	replicas := fs.Int("replicas", 0, "replicas per variant (0 = scale default)")
	seed := fs.Uint64("seed", 20220622, "base seed for all seed policies")
	workers := fs.Int("workers", 0, "worker pool size for replica/grid parallelism (0 = GOMAXPROCS)")
	tsv := fs.Bool("tsv", false, "emit tab-separated values")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nnrand [flags] <experiment>... | all | list\n\nexperiments: %v\n\nflags:\n", experiments.IDs())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}

	var scale data.Scale
	switch *scaleFlag {
	case "test":
		scale = data.ScaleTest
	case "quick":
		scale = data.ScaleQuick
	case "full":
		scale = data.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (test, quick or full)", *scaleFlag)
	}
	sched.SetWorkers(*workers)
	cfg := experiments.Config{Scale: scale, Replicas: *replicas, Seed: *seed}

	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}

	for _, id := range ids {
		runner, err := experiments.Get(id)
		if err != nil {
			return err
		}
		start := time.Now()
		tables, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, tb := range tables {
			var renderErr error
			if *tsv {
				renderErr = tb.RenderTSV(os.Stdout)
			} else {
				renderErr = tb.Render(os.Stdout)
			}
			if renderErr != nil {
				return renderErr
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
	}
	return nil
}

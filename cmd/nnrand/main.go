// Command nnrand runs the reproduction experiments for "Randomness in
// Neural Network Training: Characterizing the Impact of Tooling"
// (MLSys 2022). Each sub-command regenerates one table or figure of the
// paper on the simulated accelerator stack.
//
// Usage:
//
//	nnrand [flags] <experiment> [<experiment>...]
//	nnrand [flags] all
//	nnrand list
//	nnrand devices
//	nnrand workloads
//	nnrand grid   [-spec FILE | -tasks T,... -devices D,...] [flags]
//	nnrand serve  [-addr :8080] [-cache N] [-store DIR] [-ledger DIR] [-jobs N] [-queue N]
//	              [-resume] [-retries N] [-job-timeout DUR] [-drain DUR] [-fleet] [-lease-ttl DUR]
//	              [-max-train-epochs N] [-rate N] [-burst N] [-request-log FILE]
//	nnrand worker [-join URL] [-workers N] [-name NAME] [-batch N] [-intra-gemm N]
//	nnrand loadtest [-addr URL] [-clients 1,4,16] [-duration DUR | -requests N]
//	              [-mix G:J:R] [-seed N] [-spec FILE] [-out FILE]
//	nnrand ledger -dir DIR list
//	nnrand ledger -dir DIR gc -keep N
//	nnrand submit [-addr URL] [-scale S] [-replicas N] [-seed N] <experiment>...
//	nnrand status [-addr URL] <job-id>...
//	nnrand wait   [-addr URL] [-poll DUR] [-tsv|-json] <job-id>...
//	nnrand cancel [-addr URL] <job-id>...
//
// Flags (accepted before or after the experiment names):
//
//	-scale    test|quick|full   workload scale (default quick)
//	-replicas N                 replicas per variant (default: scale-dependent)
//	-seed     N                 base seed for all seed policies
//	-workers  N                 worker pool size (default: GOMAXPROCS)
//	-intra-gemm N               intra-kernel sharding threshold in element-ops
//	                            (0 = default, <0 disables); wall-clock only,
//	                            outputs are bit-identical at any value
//	-tsv                        emit tab-separated values instead of tables
//	-json                       emit a JSON array of typed results
//
// `grid` composes and runs a custom experiment: declare the grid either
// as a JSON spec file (-spec, "-" for stdin; see internal/grid) or
// inline via -tasks/-devices/-variants/-metrics comma lists, then run it
// locally, print only its cost estimate (-estimate), or submit it to a
// running server (-submit -addr URL). `devices` and `workloads` list the
// catalogs grid specs name.
//
// `serve` starts the embeddable HTTP/JSON service (see internal/server
// and docs/api.md); with -store DIR completed results persist across
// restarts, and with -ledger DIR every trained replica does too, so a
// restarted server trains only replicas it has never seen (grid and
// serve share the flag: `nnrand grid -ledger DIR` warm-starts local runs
// from the same directory, and -estimate then reports the cache credit).
// With -fleet the server trains nothing itself: replica work is leased
// to `nnrand worker` processes that join over HTTP, train units with the
// same deterministic code, and upload CRC-verified results — capacity
// scales with worker count and results stay bit-identical to single-node
// runs. `worker` joins a fleet coordinator and runs the pull → train →
// upload loop until interrupted.
// `serve` also prices and polices admission: -max-train-epochs rejects
// submissions whose estimated fresh training exceeds the budget (HTTP
// 429 with the estimate echoed), -rate/-burst token-buckets each client,
// and -request-log streams one JSON line per request; GET /v1/metrics
// exposes per-route counters and latency quantiles. `loadtest` replays a
// seeded grid/job/result workload against a running server at several
// concurrency levels and writes the BENCH_server.json benchmark report
// (see internal/loadtest).
// `ledger` inspects a replica ledger directory: `list` tables its
// records, `gc -keep N` evicts the least recently used beyond N.
// `submit`, `status`, `wait` and `cancel` are thin clients of a running
// server's job API: submit returns immediately with job IDs, status
// polls progress, wait blocks until completion and renders the result,
// cancel aborts queued or running jobs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/grid"
	"repro/internal/jobs"
	"repro/internal/ledger"
	"repro/internal/loadtest"
	"repro/internal/quarantine"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "nnrand: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nnrand", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "workload scale: test, quick or full")
	replicas := fs.Int("replicas", 0, "replicas per variant (0 = scale default)")
	seed := fs.Uint64("seed", 20220622, "base seed for all seed policies")
	workers := fs.Int("workers", 0, "worker pool size for replica/grid parallelism (0 = GOMAXPROCS)")
	intraGEMM := fs.Int64("intra-gemm", 0, "intra-kernel sharding threshold in element-ops (0 = default, <0 disables); purely a wall-clock knob, outputs are bit-identical at any value")
	tsv := fs.Bool("tsv", false, "emit tab-separated values")
	jsonOut := fs.Bool("json", false, "emit a JSON array of typed results")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nnrand [flags] <experiment>... | all | list | devices | workloads | grid | serve\n\nexperiments: %v\n\nflags:\n", experiments.IDs())
		fs.PrintDefaults()
	}
	// Accept flags before and after positional arguments (`nnrand -json
	// table2 -scale test` works): re-parse after each positional run. The
	// serve/submit/status/wait/cancel sub-commands own everything after
	// their name.
	var ids []string
	var subArgs []string
	for {
		if err := fs.Parse(args); err != nil {
			return err
		}
		args = fs.Args()
		if len(args) == 0 {
			break
		}
		if len(ids) == 0 && isSubcommand(args[0]) {
			// The client sub-commands own their flags; globals given before
			// the name would be parsed and then silently ignored, so refuse
			// them instead of running with defaults the user didn't ask for.
			// (serve keeps the historical behavior: a leading -workers caps
			// its in-process pool.)
			if args[0] != "serve" && fs.NFlag() > 0 {
				return fmt.Errorf("%[1]s: flags must follow the sub-command name, e.g. `nnrand %[1]s -addr ...`", args[0])
			}
			ids, subArgs = []string{args[0]}, args[1:]
			break
		}
		ids = append(ids, args[0])
		args = args[1:]
	}
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given")
	}

	scale, err := data.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	device.SetIntraOpThreshold(*intraGEMM)
	cfg := experiments.Config{Scale: scale, Replicas: *replicas, Seed: *seed}

	switch ids[0] {
	case "serve":
		return serveCmd(subArgs)
	case "worker":
		return workerCmd(subArgs)
	case "grid":
		return gridCmd(subArgs)
	case "ledger":
		return ledgerCmd(subArgs)
	case "submit":
		return submitCmd(subArgs)
	case "status":
		return statusCmd(subArgs)
	case "wait":
		return waitCmd(subArgs)
	case "cancel":
		return cancelCmd(subArgs)
	case "loadtest":
		return loadtestCmd(subArgs)
	}
	if len(ids) == 1 && ids[0] == "list" {
		return list(os.Stdout)
	}
	if len(ids) == 1 && ids[0] == "devices" {
		return listDevices(os.Stdout)
	}
	if len(ids) == 1 && ids[0] == "workloads" {
		return listWorkloads(os.Stdout)
	}
	// Expand `all` wherever it appears, then run each experiment at most
	// once per invocation, keeping first-occurrence order (`nnrand fig1
	// fig1` and `nnrand all fig1` collapse).
	ids = dedup(expandAll(ids, experiments.IDs()))

	// Validate every ID up front so a typo at the end of the list fails
	// before hours of training, not after.
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		if runners[i], err = experiments.Get(id); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var results []*report.Result
	for i, id := range ids {
		start := time.Now()
		res, err := runners[i](ctx, cfg)
		if err != nil {
			// In JSON mode completed experiments have produced no output
			// yet; render them before surfacing the error so an interrupt
			// or late failure never discards hours of finished training.
			if *jsonOut && len(results) > 0 {
				if rerr := report.RenderJSONResults(os.Stdout, results); rerr != nil {
					return fmt.Errorf("%w (and rendering completed results failed: %v)", err, rerr)
				}
			}
			return err
		}
		results = append(results, res)
		switch {
		case *jsonOut:
			// Rendered once, as one array, after every experiment finishes.
		case *tsv:
			if err := res.RenderTSV(os.Stdout); err != nil {
				return err
			}
		default:
			if err := res.RenderText(os.Stdout); err != nil {
				return err
			}
		}
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "[%s: %.1fs]\n", id, time.Since(start).Seconds())
		}
	}
	if *jsonOut {
		return report.RenderJSONResults(os.Stdout, results)
	}
	return nil
}

// expandAll substitutes every occurrence of the `all` pseudo-ID with the
// full experiment list; dedup then collapses the overlap.
func expandAll(ids, all []string) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "all" {
			out = append(out, all...)
		} else {
			out = append(out, id)
		}
	}
	return out
}

// dedup removes repeated experiment IDs, preserving first-occurrence order.
func dedup(ids []string) []string {
	seen := make(map[string]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// list prints the registry with its metadata: ID, artifact kind, relative
// cost and title.
func list(w io.Writer) error {
	tb := report.New("", "id", "artifact", "cost", "title")
	for _, m := range experiments.All() {
		tb.AddStrings(m.ID, string(m.Artifact), m.Cost, m.Title)
	}
	return tb.Render(w)
}

// listDevices prints the simulated accelerator catalog with the aliases
// grid specs accept.
func listDevices(w io.Writer) error {
	tb := report.New("", "name", "alias", "arch", "cuda cores", "notes")
	for _, d := range device.Describe() {
		var notes []string
		if d.TensorCores {
			notes = append(notes, "tensor cores")
		}
		if d.Systolic {
			notes = append(notes, "systolic")
		}
		if d.Deterministic {
			notes = append(notes, "deterministic")
		}
		cores := ""
		if d.CUDACores > 0 {
			cores = fmt.Sprintf("%d", d.CUDACores)
		}
		tb.AddStrings(d.Name, d.Alias, d.Arch, cores, strings.Join(notes, ", "))
	}
	return tb.Render(w)
}

// listWorkloads prints the training-recipe catalog grid specs name.
func listWorkloads(w io.Writer) error {
	tb := report.New("", "name", "alias", "epochs (test/quick/full)", "batch", "lr", "augment")
	for _, t := range experiments.Workloads() {
		tb.AddStrings(t.Name, t.Alias,
			fmt.Sprintf("%d/%d/%d", t.Epochs[0], t.Epochs[1], t.Epochs[2]),
			fmt.Sprintf("%d", t.Batch),
			fmt.Sprintf("%g", t.LR),
			t.Augment)
	}
	return tb.Render(w)
}

// gridCmd composes a custom grid spec from a JSON file or inline flags
// and runs it locally (default), prints its cost estimate (-estimate), or
// submits it to a running server (-submit).
func gridCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand grid", flag.ContinueOnError)
	specFile := fs.String("spec", "", "JSON grid spec file ('-' = stdin); overrides the inline axis flags")
	tasks := fs.String("tasks", "", "comma-separated workload names (see `nnrand workloads`)")
	devices := fs.String("devices", "", "comma-separated device names (see `nnrand devices`)")
	variants := fs.String("variants", "", "comma-separated noise variants (default ALGO+IMPL,ALGO,IMPL)")
	metrics := fs.String("metrics", "", "comma-separated metric columns (default acc,stddev_acc,churn,l2)")
	title := fs.String("title", "", "rendered table title")
	scaleFlag := fs.String("scale", "quick", "workload scale: test, quick or full")
	replicas := fs.Int("replicas", 0, "replicas per variant (0 = scale default)")
	seed := fs.Uint64("seed", 20220622, "base seed for all seed policies")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	estimate := fs.Bool("estimate", false, "print the cost estimate and exit without training")
	ledgerDir := fs.String("ledger", "", "replica ledger directory: warm-start local runs from (and persist trained replicas to) disk")
	submit := fs.Bool("submit", false, "submit to a running server instead of running locally")
	addr := fs.String("addr", "http://localhost:8080", "server base URL (with -submit)")
	tsv := fs.Bool("tsv", false, "emit tab-separated values")
	jsonOut := fs.Bool("json", false, "emit the typed result as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("grid: unexpected argument %q (the grid is declared via flags or -spec)", fs.Arg(0))
	}

	var spec grid.Spec
	if *specFile != "" {
		var raw []byte
		var err error
		if *specFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specFile)
		}
		if err != nil {
			return err
		}
		if spec, err = grid.Parse(raw); err != nil {
			return err
		}
	} else {
		spec = grid.Spec{
			Tasks:    splitList(*tasks),
			Devices:  splitList(*devices),
			Variants: splitList(*variants),
			Metrics:  splitList(*metrics),
		}
	}
	if *title != "" {
		spec.Title = *title
	}

	// Compile up front: a typo'd name fails here, before any training (and
	// before a server round-trip).
	plan, err := experiments.CompileSpec(spec)
	if err != nil {
		return err
	}
	scale, err := data.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	cfg := plan.Config(experiments.Config{Scale: scale, Replicas: *replicas, Seed: *seed})
	pops := experiments.DefaultPopulations()
	if *ledgerDir != "" {
		led, err := ledger.Open(*ledgerDir, 0)
		if err != nil {
			return err
		}
		pops.SetLedger(led)
	}
	est := pops.Estimate(plan, cfg)
	fmt.Fprintf(os.Stderr, "nnrand: grid %s: %d cells x %d replicas = %d training runs (%d total epochs)\n",
		plan.ID(), est.Cells, est.ReplicasPerCell, est.TrainingRuns, est.TotalEpochs)
	if est.CachedReplicas > 0 {
		fmt.Fprintf(os.Stderr, "nnrand: grid %s: %d replicas cached, %d to train (%d epochs)\n",
			plan.ID(), est.CachedReplicas, est.TrainReplicas, est.TrainEpochs)
	}
	if *estimate {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			GridID   string               `json:"grid_id"`
			Estimate experiments.Estimate `json:"estimate"`
		}{plan.ID(), est})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *submit {
		if *tsv {
			return fmt.Errorf("grid: -tsv renders a completed result and does not apply to -submit (poll with `nnrand wait -tsv`)")
		}
		c := newClient(*addr)
		var resp server.GridResponse
		req := server.GridRequest{
			Grid:       spec,
			RunRequest: server.RunRequest{Scale: *scaleFlag, Replicas: *replicas, Seed: *seed},
		}
		if err := c.do(ctx, http.MethodPost, "/v1/grid", req, &resp); err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(resp)
		}
		printSnapshot(os.Stdout, resp.Snapshot)
		return nil
	}

	sched.SetWorkers(*workers)
	// Run the plan that was validated and estimated above — one
	// compilation, one identity.
	res, err := pops.RunPlan(ctx, plan, cfg)
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		return report.RenderJSONResults(os.Stdout, []*report.Result{res})
	case *tsv:
		return res.RenderTSV(os.Stdout)
	default:
		return res.RenderText(os.Stdout)
	}
}

// splitList parses a comma-separated flag into trimmed, non-empty items.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// isSubcommand reports whether the first positional argument names a
// sub-command that owns the rest of the argument list.
func isSubcommand(name string) bool {
	switch name {
	case "serve", "worker", "grid", "ledger", "submit", "status", "wait", "cancel", "loadtest":
		return true
	}
	return false
}

// serveCmd runs the HTTP/JSON service until the process is interrupted.
// On SIGINT/SIGTERM it drains gracefully: readiness flips to 503, new
// submissions are refused, in-flight jobs get -drain to finish, and
// whatever is still running then is cancelled with its journal entry
// preserved for the next `serve -resume`.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", server.DefaultCacheSize, "completed-result store capacity")
	store := fs.String("store", "", "directory persisting completed results across restarts (empty = memory only)")
	ledgerDir := fs.String("ledger", "", "directory persisting trained replicas across restarts (empty = memory only)")
	ledgerCap := fs.Int("ledger-cap", 0, "replica ledger capacity (0 = ledger default)")
	jobWorkers := fs.Int("jobs", 0, "concurrent jobs (0 = jobs-package default)")
	queue := fs.Int("queue", 0, "submitted-job backlog bound (0 = jobs-package default)")
	resume := fs.Bool("resume", false, "resubmit the jobs journaled as unfinished by the previous process (needs -store)")
	retries := fs.Int("retries", 0, "transient-failure retries per job (0 = default, negative = never)")
	jobTimeout := fs.Duration("job-timeout", 0, "wall-clock watchdog per job attempt (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
	fleetMode := fs.Bool("fleet", false, "coordinate a worker fleet: replica training is leased to `nnrand worker` processes instead of running in-process")
	leaseTTL := fs.Duration("lease-ttl", 0, "fleet lease time-to-live (0 = fleet default); expired leases are stolen by surviving workers")
	maxTrainEpochs := fs.Int("max-train-epochs", 0, "reject submissions whose estimated fresh training exceeds this many epochs (0 = unlimited)")
	rate := fs.Float64("rate", 0, "per-client request rate limit in requests/second (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client rate-limit burst size (0 = 2x rate)")
	requestLog := fs.String("request-log", "", "append one JSON line per request to FILE ('-' = stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *store == "" {
		return fmt.Errorf("serve: -resume needs -store (the job journal lives beside the result store)")
	}
	if *leaseTTL != 0 && !*fleetMode {
		return fmt.Errorf("serve: -lease-ttl needs -fleet")
	}
	var logW io.Writer
	switch *requestLog {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(*requestLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: -request-log: %w", err)
		}
		defer f.Close()
		logW = f
	}
	svc, err := server.New(server.Options{
		CacheSize:      *cache,
		StoreDir:       *store,
		LedgerDir:      *ledgerDir,
		LedgerCapacity: *ledgerCap,
		Workers:        *jobWorkers,
		QueueDepth:     *queue,
		Resume:         *resume,
		Retries:        *retries,
		JobTimeout:     *jobTimeout,
		Fleet:          *fleetMode,
		LeaseTTL:       *leaseTTL,
		MaxTrainEpochs: *maxTrainEpochs,
		Rate:           *rate,
		Burst:          *burst,
		RequestLog:     logW,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	if *resume {
		fmt.Fprintf(os.Stderr, "nnrand: resumed %d journaled job(s)\n", svc.Recovered())
		if rerr := svc.RecoveryError(); rerr != nil {
			fmt.Fprintf(os.Stderr, "nnrand: some journal entries could not be resumed (kept for the next attempt):\n%v\n", rerr)
		}
	}
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nnrand: serving on %s\n", *addr)
	if f := svc.Fleet(); f != nil {
		fmt.Fprintf(os.Stderr, "nnrand: fleet mode: waiting for `nnrand worker -join` processes (lease TTL %s)\n", f.TTL())
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "nnrand: draining (up to %s)...\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := svc.Drain(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "nnrand: drain deadline hit; unfinished jobs stay journaled for `serve -resume`\n")
		}
		shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		return srv.Shutdown(shutdownCtx)
	}
}

// loadtestCmd benchmarks a running server: warm up the canned grid,
// then replay a seeded grid/job/result mix at each concurrency level
// and write the typed BENCH_server.json report.
func loadtestCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand loadtest", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	clients := fs.String("clients", "1,4,16", "comma-separated concurrency levels")
	duration := fs.Duration("duration", 5*time.Second, "measurement window per level (ignored with -requests)")
	requests := fs.Int("requests", 0, "exact requests per client per level (deterministic mode; overrides -duration)")
	mixFlag := fs.String("mix", "4:2:4", "operation weights grid:job:result")
	seed := fs.Uint64("seed", 20220622, "generator seed (also the submission seed)")
	specFile := fs.String("spec", "", "JSON grid spec file ('-' = stdin; default: the canned 2-cell test grid)")
	scaleFlag := fs.String("scale", "test", "workload scale of the replayed submissions")
	replicas := fs.Int("replicas", 1, "replicas per variant of the replayed submissions")
	out := fs.String("out", "BENCH_server.json", "report file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadtest: unexpected argument %q", fs.Arg(0))
	}
	var levels []int
	for _, p := range splitList(*clients) {
		n := 0
		if _, err := fmt.Sscanf(p, "%d", &n); err != nil || n <= 0 {
			return fmt.Errorf("loadtest: -clients %q: %q is not a positive integer", *clients, p)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return fmt.Errorf("loadtest: -clients is empty")
	}
	mix, err := loadtest.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	// The default workload is the same canned grid the CI smokes submit:
	// two cells (one task, two devices, IMPL arm) at two epochs.
	spec := grid.Spec{
		Tasks:    []string{"smallcnn-cifar10"},
		Devices:  []string{"V100", "TPUv2"},
		Variants: []string{"IMPL"},
		Recipes:  []grid.Recipe{{Epochs: 2}},
	}
	if *specFile != "" {
		var raw []byte
		var err error
		if *specFile == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(*specFile)
		}
		if err != nil {
			return err
		}
		if spec, err = grid.Parse(raw); err != nil {
			return err
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadtest.Run(ctx, loadtest.Options{
		Addr:     *addr,
		Levels:   levels,
		Duration: *duration,
		Requests: *requests,
		Mix:      mix,
		Seed:     *seed,
		Spec:     spec,
		Scale:    *scaleFlag,
		Replicas: *replicas,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "nnrand: loadtest: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out == "-" {
		_, err = os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nnrand: loadtest: report written to %s\n", *out)
	return nil
}

// workerCmd joins a fleet coordinator and trains leased work units until
// interrupted. The worker is stateless: everything it needs arrives in
// the lease, every result leaves as a CRC-protected upload, and a
// SIGKILL at any point merely lets its leases expire so the rest of the
// fleet steals the work.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand worker", flag.ContinueOnError)
	join := fs.String("join", "http://localhost:8080", "coordinator base URL (a `nnrand serve -fleet` server)")
	trainers := fs.Int("workers", 0, "concurrent training loops (0 = GOMAXPROCS via the sched default, capped at 4)")
	name := fs.String("name", "", "worker name reported to the coordinator (default <hostname>-<pid>)")
	batch := fs.Int("batch", 1, "work units to lease per pull")
	intraGEMM := fs.Int64("intra-gemm", 0, "intra-kernel sharding threshold in element-ops (0 = default, <0 disables)")
	quiet := fs.Bool("quiet", false, "suppress per-unit progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("worker: unexpected argument %q", fs.Arg(0))
	}
	device.SetIntraOpThreshold(*intraGEMM)
	n := *trainers
	if n <= 0 {
		if n = sched.Workers(); n > 4 {
			// Trainers multiply: each unit trains on this process anyway, so
			// a huge default would just thrash one box. Scale out with more
			// worker processes instead.
			n = 4
		}
	}
	w := &fleet.Worker{Base: *join, Name: *name, Trainers: n, Batch: *batch}
	if !*quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "nnrand: worker: "+format+"\n", args...)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "nnrand: worker joining %s with %d trainer(s)\n", *join, n)
	err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "nnrand: worker done: trained %d replica(s)\n", w.Trains())
	if err == context.Canceled {
		return nil
	}
	return err
}

// ledgerCmd inspects and garbage-collects a replica ledger directory:
// `ledger -dir DIR list` tables every record (most recently used first),
// `ledger -dir DIR gc -keep N` evicts the least recently used beyond N.
func ledgerCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand ledger", flag.ContinueOnError)
	dir := fs.String("dir", "", "replica ledger directory (required)")
	keep := fs.Int("keep", ledger.DefaultCapacity, "records to retain with gc")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flags may flank the action: `ledger -dir D gc -keep N` re-parses
	// what follows the action name.
	action := "list"
	if rest := fs.Args(); len(rest) > 0 {
		action = rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("ledger: unexpected argument %q", fs.Arg(0))
		}
	}
	if *dir == "" {
		return fmt.Errorf("ledger: -dir is required")
	}
	// Index everything: the tool must see records beyond the serving
	// capacity, and must never evict as a side effect of opening.
	led, err := ledger.Open(*dir, 1<<30)
	if err != nil {
		return err
	}
	switch action {
	case "list":
		tb := report.New(fmt.Sprintf("Replica ledger %s (%d records)", *dir, led.Len()),
			"cell", "replica", "acc(%)", "bytes")
		for _, in := range led.Entries() {
			tb.AddStrings(in.Cell,
				fmt.Sprintf("%d", in.Replica),
				fmt.Sprintf("%.2f", 100*in.TestAccuracy),
				fmt.Sprintf("%d", in.Bytes))
		}
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		if n := quarantine.Count(*dir); n > 0 {
			fmt.Fprintf(os.Stderr, "nnrand: %d corrupt record(s) in %s — inspect the .reason files\n",
				n, filepath.Join(*dir, quarantine.Dir))
		}
		return nil
	case "gc":
		if *keep < 0 {
			return fmt.Errorf("ledger: -keep must be >= 0")
		}
		removed := led.GC(*keep)
		fmt.Fprintf(os.Stdout, "removed %d records, kept %d\n", removed, led.Len())
		return nil
	}
	return fmt.Errorf("ledger: unknown action %q (list or gc)", action)
}

// apiClient is the thin HTTP client behind submit/status/wait/cancel.
type apiClient struct {
	base string
	http *http.Client
}

func newClient(addr string) *apiClient {
	return &apiClient{base: strings.TrimRight(addr, "/"), http: &http.Client{}}
}

// do issues one request and decodes the JSON reply into out (unless nil).
// Non-2xx replies are surfaced as errors carrying the server's message.
func (c *apiClient) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (HTTP %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// printSnapshot writes one job's status line: ID, state, progress,
// result key.
func printSnapshot(w io.Writer, snap jobs.Snapshot) {
	line := fmt.Sprintf("%s\t%s", snap.ID, snap.State)
	if snap.Progress.Total > 0 {
		// Units are replicas for training grids, cells for profiling runs.
		line += fmt.Sprintf("\t%d/%d", snap.Progress.Done, snap.Progress.Total)
	}
	if snap.Cached {
		line += "\tcached"
	}
	if snap.Error != nil {
		line += "\t" + snap.Error.Message
	}
	fmt.Fprintf(w, "%s\t%s\n", line, snap.Key)
}

// submitCmd posts one job per experiment and prints the job IDs without
// waiting — the submit half of the submit/poll/fetch workflow.
func submitCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	scaleFlag := fs.String("scale", "quick", "workload scale: test, quick or full")
	replicas := fs.Int("replicas", 0, "replicas per variant (0 = scale default)")
	seed := fs.Uint64("seed", 20220622, "base seed for all seed policies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("submit: no experiment given")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := newClient(*addr)
	for _, id := range dedup(fs.Args()) {
		var snap jobs.Snapshot
		req := server.SubmitRequest{
			Experiment: id,
			RunRequest: server.RunRequest{Scale: *scaleFlag, Replicas: *replicas, Seed: *seed},
		}
		if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &snap); err != nil {
			return err
		}
		printSnapshot(os.Stdout, snap)
	}
	return nil
}

// statusCmd prints the current snapshot of each job.
func statusCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand status", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("status: no job ID given")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := newClient(*addr)
	for _, id := range fs.Args() {
		var snap jobs.Snapshot
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &snap); err != nil {
			return err
		}
		printSnapshot(os.Stdout, snap)
	}
	return nil
}

// waitCmd polls each job until it is terminal, then renders its result
// (text by default, -tsv or -json like the local runner). A failed or
// cancelled job surfaces as an error after completed ones have rendered.
func waitCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand wait", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	poll := fs.Duration("poll", 500*time.Millisecond, "status poll interval")
	tsv := fs.Bool("tsv", false, "emit tab-separated values")
	jsonOut := fs.Bool("json", false, "emit a JSON array of typed results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("wait: no job ID given")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := newClient(*addr)
	var results []*report.Result
	render := func() error {
		if *jsonOut && len(results) > 0 {
			return report.RenderJSONResults(os.Stdout, results)
		}
		return nil
	}
	for _, id := range fs.Args() {
		snap, err := c.awaitJob(ctx, id, *poll)
		if err != nil {
			if rerr := render(); rerr != nil {
				return fmt.Errorf("%w (and rendering completed results failed: %v)", err, rerr)
			}
			return err
		}
		results = append(results, snap.Result)
		switch {
		case *jsonOut:
			// Rendered once, as one array, after every job finishes.
		case *tsv:
			if err := snap.Result.RenderTSV(os.Stdout); err != nil {
				return err
			}
		default:
			if err := snap.Result.RenderText(os.Stdout); err != nil {
				return err
			}
		}
	}
	return render()
}

// awaitJob polls one job until it is terminal and returns its final
// snapshot; failed and cancelled jobs become errors.
func (c *apiClient) awaitJob(ctx context.Context, id string, poll time.Duration) (jobs.Snapshot, error) {
	for {
		var snap jobs.Snapshot
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &snap); err != nil {
			return snap, err
		}
		switch {
		case snap.State == jobs.StateDone && snap.Result != nil:
			return snap, nil
		case snap.State.Terminal():
			msg := string(snap.State)
			if snap.Error != nil {
				msg = snap.Error.Message
			}
			return snap, fmt.Errorf("job %s %s: %s", id, snap.State, msg)
		}
		select {
		case <-ctx.Done():
			return snap, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// cancelCmd aborts each job and prints its post-cancel snapshot.
func cancelCmd(args []string) error {
	fs := flag.NewFlagSet("nnrand cancel", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("cancel: no job ID given")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := newClient(*addr)
	for _, id := range fs.Args() {
		var snap jobs.Snapshot
		if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &snap); err != nil {
			return err
		}
		printSnapshot(os.Stdout, snap)
	}
	return nil
}

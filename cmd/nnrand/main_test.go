package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ledger"
	"repro/internal/report"
	"repro/internal/server"
)

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"})
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown experiment: err = %v", err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-scale", "gigantic", "table4"})
	if err == nil || !strings.Contains(err.Error(), "gigantic") {
		t.Fatalf("unknown scale: err = %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheapArtifacts(t *testing.T) {
	// table3/table4/fig8b involve no training; they exercise the full CLI
	// path including rendering.
	if err := run([]string{"-scale", "test", "table3", "table4", "fig8b"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "test", "-tsv", "fig8a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagsAfterPositionals(t *testing.T) {
	// The acceptance-criteria invocation shape: flags interleaved after the
	// experiment name must parse.
	if err := run([]string{"-json", "table4", "-scale", "test"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"table4", "-scale", "gigantic"})
	if err == nil || !strings.Contains(err.Error(), "gigantic") {
		t.Fatalf("trailing bad flag: err = %v", err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		buf := new(strings.Builder)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestJSONOutputIsValidResultArray pins the `-json` contract: one JSON
// array of typed results, whose cells agree with the text rendering.
func TestJSONOutputIsValidResultArray(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-json", "-scale", "test", "table4", "fig8b"})
	})
	var results []report.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output is not a JSON array of results: %v\n%s", err, out)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].Experiment != "table4" || results[1].Experiment != "fig8b" {
		t.Fatalf("experiments = %s, %s", results[0].Experiment, results[1].Experiment)
	}
	if results[0].Config.Scale != "test" {
		t.Fatalf("config echo = %+v", results[0].Config)
	}
	if len(results[1].Tables) == 0 || len(results[1].Tables[0].Rows) == 0 {
		t.Fatal("fig8b JSON carries no rows")
	}
}

// TestDuplicateExperimentsRunOnce asserts `nnrand table4 table4` renders
// the artifact a single time.
func TestDuplicateExperimentsRunOnce(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-scale", "test", "table4", "table4", "table4"})
	})
	if got := strings.Count(out, "Table 4: dataset overview"); got != 1 {
		t.Fatalf("table4 rendered %d times, want 1\n%s", got, out)
	}
}

// TestExpandAllAnywhere pins that `all` expands wherever it appears in the
// argument list (`nnrand all fig1` runs every experiment once, not an
// unknown-experiment error).
func TestExpandAllAnywhere(t *testing.T) {
	all := []string{"a", "b", "c"}
	got := dedup(expandAll([]string{"b", "all"}, all))
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("expandAll = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expandAll = %v, want %v", got, want)
		}
	}
	if got := dedup(expandAll([]string{"all", "all"}, all)); len(got) != len(all) {
		t.Fatalf("all all = %v", got)
	}
}

func TestDedupPreservesOrder(t *testing.T) {
	got := dedup([]string{"b", "a", "b", "c", "a"})
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v, want %v", got, want)
		}
	}
}

// TestListIncludesMetadata asserts `nnrand list` surfaces artifact kind,
// cost and title alongside each ID.
func TestListIncludesMetadata(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"list"}) })
	for _, want := range []string{"table2", "fig8b", "heavy", "none", "Table 2: test accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

// startJobServer runs the real service (stub runner) under httptest for
// the client sub-commands to talk to.
func startJobServer(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv
}

// TestSubmitStatusWaitRoundTrip drives the full client workflow against
// a live server: submit prints a job ID, status reports it, wait renders
// the completed result.
func TestSubmitStatusWaitRoundTrip(t *testing.T) {
	srv := startJobServer(t, server.Options{})

	out := captureStdout(t, func() error {
		return run([]string{"submit", "-addr", srv.URL, "-scale", "test", "table4"})
	})
	fields := strings.Fields(out)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "job-") {
		t.Fatalf("submit output = %q", out)
	}
	jobID := fields[0]
	if !strings.Contains(out, "table4-test-r3-s20220622") {
		t.Fatalf("submit output missing result key: %q", out)
	}

	out = captureStdout(t, func() error {
		return run([]string{"status", "-addr", srv.URL, jobID})
	})
	if !strings.Contains(out, jobID) {
		t.Fatalf("status output = %q", out)
	}

	out = captureStdout(t, func() error {
		return run([]string{"wait", "-addr", srv.URL, "-poll", "10ms", jobID})
	})
	if !strings.Contains(out, "Table 4: dataset overview") {
		t.Fatalf("wait did not render the result:\n%s", out)
	}

	// -json renders the same one-array document as the local runner.
	out = captureStdout(t, func() error {
		return run([]string{"wait", "-addr", srv.URL, "-poll", "10ms", "-json", jobID})
	})
	var results []report.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("wait -json output invalid: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].Experiment != "table4" {
		t.Fatalf("wait -json results = %+v", results)
	}
}

// TestCancelSubcommand: cancel against a blocked job reports the
// cancelled state, and a later wait on it fails.
func TestCancelSubcommand(t *testing.T) {
	started := make(chan struct{})
	srv := startJobServer(t, server.Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})

	out := captureStdout(t, func() error {
		return run([]string{"submit", "-addr", srv.URL, "table2"})
	})
	jobID := strings.Fields(out)[0]
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}

	out = captureStdout(t, func() error {
		return run([]string{"cancel", "-addr", srv.URL, jobID})
	})
	if !strings.Contains(out, jobID) {
		t.Fatalf("cancel output = %q", out)
	}
	if err := run([]string{"wait", "-addr", srv.URL, "-poll", "10ms", jobID}); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("wait on cancelled job: err = %v", err)
	}
}

// TestClientSubcommandsValidateArgs: each client sub-command refuses an
// empty target list instead of silently doing nothing.
func TestClientSubcommandsValidateArgs(t *testing.T) {
	for _, cmd := range []string{"submit", "status", "wait", "cancel"} {
		if err := run([]string{cmd}); err == nil {
			t.Errorf("%s with no arguments accepted", cmd)
		}
	}
}

// TestLedgerSubcommand drives `nnrand ledger list` and `ledger gc` over
// a directory with fabricated records (no training involved).
func TestLedgerSubcommand(t *testing.T) {
	dir := t.TempDir()
	led, err := ledger.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := led.Put("some|cell|key", i, &core.RunResult{
			Variant: core.Impl, Replica: i, TestAccuracy: 0.5,
			Weights: []float32{1, 2, 3},
		}); err != nil {
			t.Fatal(err)
		}
	}
	out := captureStdout(t, func() error {
		return run([]string{"ledger", "-dir", dir, "list"})
	})
	if !strings.Contains(out, "some|cell|key") || !strings.Contains(out, "3 records") {
		t.Fatalf("ledger list output:\n%s", out)
	}
	out = captureStdout(t, func() error {
		return run([]string{"ledger", "-dir", dir, "gc", "-keep", "1"})
	})
	if !strings.Contains(out, "removed 2") {
		t.Fatalf("ledger gc output: %q", out)
	}
	if err := run([]string{"ledger", "-dir", dir, "shred"}); err == nil ||
		!strings.Contains(err.Error(), "unknown action") {
		t.Fatalf("unknown action: err = %v", err)
	}
	if err := run([]string{"ledger", "list"}); err == nil ||
		!strings.Contains(err.Error(), "-dir") {
		t.Fatalf("missing -dir: err = %v", err)
	}
}

// TestGlobalFlagsBeforeClientSubcommandRejected: `nnrand -scale full
// submit fig1` must fail loudly — the sub-command owns its flags, and
// silently dropping the global would run at the wrong scale.
func TestGlobalFlagsBeforeClientSubcommandRejected(t *testing.T) {
	for _, cmd := range []string{"submit", "status", "wait", "cancel"} {
		err := run([]string{"-scale", "full", cmd, "x"})
		if err == nil || !strings.Contains(err.Error(), "follow the sub-command") {
			t.Errorf("%s after global flags: err = %v", cmd, err)
		}
	}
}

func TestDevicesAndWorkloadsSubcommands(t *testing.T) {
	if err := run([]string{"devices"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"workloads"}); err != nil {
		t.Fatal(err)
	}
}

// TestGridEstimate: the offline estimate path compiles the spec, prices
// it, and trains nothing.
func TestGridEstimate(t *testing.T) {
	before := experiments.ReplicaTrains()
	err := run([]string{"grid", "-estimate",
		"-tasks", "resnet18-cifar10", "-devices", "v100,tpuv2", "-variants", "ALGO+IMPL,IMPL",
		"-scale", "test", "-replicas", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if experiments.ReplicaTrains() != before {
		t.Fatal("-estimate trained populations")
	}
}

func TestGridValidation(t *testing.T) {
	if err := run([]string{"grid", "-tasks", "nope", "-devices", "v100"}); err == nil ||
		!strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("unknown task: err = %v", err)
	}
	if err := run([]string{"grid", "-tasks", "smallcnn-cifar10"}); err == nil ||
		!strings.Contains(err.Error(), "no devices") {
		t.Fatalf("missing devices: err = %v", err)
	}
	if err := run([]string{"grid", "-tasks", "smallcnn-cifar10", "-devices", "v100", "stray"}); err == nil ||
		!strings.Contains(err.Error(), "stray") {
		t.Fatalf("stray positional: err = %v", err)
	}
	if err := run([]string{"grid", "-spec", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestGridSpecFileRoundTrip writes a JSON spec, runs it locally at a
// trivial size, and checks the rendered result.
func TestGridSpecFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	spec := `{"tasks":["smallcnn-cifar10"],"devices":["tpuv2"],"variants":["IMPL"],"recipes":[{"epochs":1}],"metrics":["churn","l2"]}`
	path := t.TempDir() + "/spec.json"
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"grid", "-spec", path, "-scale", "test", "-replicas", "1", "-json"})
	})
	var results []report.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("grid -json output invalid: %v\n%s", err, out)
	}
	if len(results) != 1 || !strings.HasPrefix(results[0].Experiment, "grid-") {
		t.Fatalf("grid result = %+v", results)
	}
	headers := results[0].Tables[0].Headers
	want := []string{"task", "device", "variant", "recipe", "churn(%)", "l2"}
	if len(headers) != len(want) {
		t.Fatalf("headers = %v, want %v", headers, want)
	}
	for i := range want {
		if headers[i] != want[i] {
			t.Fatalf("headers = %v, want %v", headers, want)
		}
	}
}

// TestGridSubmitSubcommand submits a grid to a stub-backed test server
// and checks a job line comes back.
func TestGridSubmitSubcommand(t *testing.T) {
	srv := startJobServer(t, server.Options{
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			tb := report.New("stub", "k")
			tb.AddCells(report.Str(plan.ID()))
			return &report.Result{Experiment: plan.ID(), Title: "stub", Kind: report.KindTable,
				Tables: []*report.Table{tb}}, nil
		},
	})
	out := captureStdout(t, func() error {
		return run([]string{"grid", "-submit", "-addr", srv.URL,
			"-tasks", "smallcnn-cifar10", "-devices", "v100", "-variants", "IMPL",
			"-scale", "test", "-replicas", "1"})
	})
	if !strings.HasPrefix(out, "job-") || !strings.Contains(out, "grid-") {
		t.Fatalf("grid -submit output = %q", out)
	}
}

// TestGridSubmitOutputFlags: -json emits the GridResponse; -tsv is
// rejected (there is no completed result to tabulate at submit time).
func TestGridSubmitOutputFlags(t *testing.T) {
	srv := startJobServer(t, server.Options{
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			tb := report.New("stub", "k")
			tb.AddCells(report.Str(plan.ID()))
			return &report.Result{Experiment: plan.ID(), Title: "stub", Kind: report.KindTable,
				Tables: []*report.Table{tb}}, nil
		},
	})
	out := captureStdout(t, func() error {
		return run([]string{"grid", "-submit", "-json", "-addr", srv.URL,
			"-tasks", "smallcnn-cifar10", "-devices", "v100", "-scale", "test", "-replicas", "1"})
	})
	var resp server.GridResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("grid -submit -json output invalid: %v\n%s", err, out)
	}
	if resp.GridID == "" || resp.ID == "" {
		t.Fatalf("response = %+v", resp)
	}
	if err := run([]string{"grid", "-submit", "-tsv", "-addr", srv.URL,
		"-tasks", "smallcnn-cifar10", "-devices", "v100"}); err == nil {
		t.Fatal("grid -submit -tsv accepted")
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"})
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown experiment: err = %v", err)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-scale", "gigantic", "table4"})
	if err == nil || !strings.Contains(err.Error(), "gigantic") {
		t.Fatalf("unknown scale: err = %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheapArtifacts(t *testing.T) {
	// table3/table4/fig8b involve no training; they exercise the full CLI
	// path including rendering.
	if err := run([]string{"-scale", "test", "table3", "table4", "fig8b"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "test", "-tsv", "fig8a"}); err != nil {
		t.Fatal(err)
	}
}

// Package repro reproduces "Randomness in Neural Network Training:
// Characterizing the Impact of Tooling" (Zhuang, Zhang, Song, Hooker —
// MLSys 2022, arXiv:2106.11872) as a self-contained Go library.
//
// The repository builds every system the paper depends on from scratch:
//
//   - a float32 tensor/autodiff training stack (internal/tensor,
//     internal/nn, internal/opt) whose every reduction runs through a
//     simulated accelerator;
//   - the accelerator simulation itself (internal/device): CUDA-core GPUs
//     whose floating-point accumulation order is scheduler state, Tensor
//     Cores, and a deterministic systolic TPU;
//   - synthetic datasets with the statistical shape of CIFAR-10/100,
//     ImageNet and CelebA (internal/data);
//   - the paper's noise-isolation framework (internal/core): the
//     ALGO+IMPL / ALGO / IMPL / CONTROL variants, replica training, and the
//     stability measures (accuracy stddev, predictive churn, weight-space
//     L2, per-class and sub-group variance);
//   - an nvprof-style kernel-time model pricing deterministic execution
//     (internal/profile);
//   - one experiment harness per table and figure (internal/experiments),
//     runnable via the nnrand CLI or the root benchmark suite;
//   - an asynchronous job engine with a persistent, content-addressed
//     result store (internal/jobs) behind an embeddable HTTP/JSON
//     service (internal/server): submit, poll progress, cancel, and
//     fetch results that survive restarts;
//   - a replica-granular training ledger (internal/ledger) beneath it
//     all: every trained replica persists as a checksummed record keyed
//     without its population size, so different-sized populations share
//     prefixes and a restarted server retrains nothing it has ever
//     trained.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitution notes, and docs/api.md for the HTTP API.
//
// RunExperiment regenerates one paper artifact programmatically as a typed
// Result (render it with RenderText, RenderTSV or RenderJSON):
//
//	res, err := repro.RunExperiment(ctx, "fig5", repro.QuickConfig())
//
// Beyond the paper's fixed tables, experiments are declarative: a
// GridSpec names workloads, devices and noise variants from the catalogs
// (Workloads, Devices) and RunGrid trains exactly that grid, reusing any
// population a paper artifact already trained:
//
//	spec := repro.GridSpec{
//		Tasks:   []string{"ResNet18 CIFAR-10"},
//		Devices: []string{"V100", "TPUv2"},
//	}
//	res, err := repro.RunGrid(ctx, spec, repro.QuickConfig())
package repro

import (
	"context"

	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/report"
)

// Config aliases the experiment configuration (scale, replicas, seed).
type Config = experiments.Config

// Result aliases the typed experiment result (tables, config echo,
// wall time) returned by RunExperiment.
type Result = report.Result

// ExperimentMeta aliases the registry metadata (title, artifact kind,
// workloads, relative cost) describing one experiment.
type ExperimentMeta = experiments.Meta

// QuickConfig returns the default experiment configuration used by the CLI.
func QuickConfig() Config { return experiments.DefaultConfig() }

// Experiments lists every reproducible table and figure ID.
func Experiments() []string { return experiments.IDs() }

// ExperimentList returns the registry metadata for every experiment in ID
// order.
func ExperimentList() []ExperimentMeta { return experiments.All() }

// RunExperiment regenerates the named paper artifact (e.g. "table2",
// "fig8b") and returns its typed result. Cancelling ctx aborts in-flight
// training at the next batch boundary.
func RunExperiment(ctx context.Context, id string, cfg Config) (*Result, error) {
	return experiments.Run(ctx, id, cfg)
}

// GridSpec aliases the declarative grid model (internal/grid): tasks ×
// devices × variants, optional recipe overrides and metric selection.
type GridSpec = grid.Spec

// GridRecipe aliases a grid recipe override (lr, batch, epochs, augment).
type GridRecipe = grid.Recipe

// DeviceInfo aliases the simulated accelerator description.
type DeviceInfo = device.Info

// WorkloadInfo aliases the training-recipe description.
type WorkloadInfo = experiments.Workload

// Devices lists the simulated accelerator catalog grid specs may name.
func Devices() []DeviceInfo { return device.Describe() }

// Workloads lists the training-recipe catalog grid specs may name.
func Workloads() []WorkloadInfo { return experiments.Workloads() }

// RunGrid compiles and runs a custom experiment grid, sharing trained
// populations with the paper artifacts where recipes match. The result's
// Experiment field is the grid's canonical "grid-<hash>" identity.
func RunGrid(ctx context.Context, spec GridSpec, cfg Config) (*Result, error) {
	return experiments.RunSpec(ctx, spec, cfg)
}

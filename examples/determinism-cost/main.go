// Determinism-cost: price the deterministic-execution patches across
// networks, filter sizes and GPU generations (paper Section 4, Figure 8).
//
// Uses the nvprof-style kernel-time model: default mode dispatches the
// fastest (often nondeterministic) algorithm per kernel; deterministic mode
// pins convolutions to implicit GEMM and replaces atomic service kernels.
//
//	go run ./examples/determinism-cost
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profile"
)

func main() {
	archs := []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring}
	names := []string{"P100", "V100", "T4"}

	fmt.Println("Deterministic GPU time relative to default mode")
	fmt.Println("\nBy network (ImageNet geometry, batch 64):")
	fmt.Printf("  %-16s %8s %8s %8s\n", "network", names[0], names[1], names[2])
	for _, g := range models.Zoo() {
		fmt.Printf("  %-16s", g.Name)
		for _, a := range archs {
			ov, err := profile.Overhead(g, a, profile.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.0f%%", 100*ov)
		}
		fmt.Println()
	}

	fmt.Println("\nBy convolution kernel size (six-layer medium CNN):")
	fmt.Printf("  %-16s %8s %8s %8s\n", "kernel", names[0], names[1], names[2])
	for _, k := range []int{1, 3, 5, 7} {
		fmt.Printf("  %-16s", fmt.Sprintf("%d x %d", k, k))
		for _, a := range archs {
			ov, err := profile.Overhead(models.MediumCNNGraph(k), a, profile.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.0f%%", 100*ov)
		}
		fmt.Println()
	}

	fmt.Println("\nWhere the time goes (VGG-19 on V100, top 5 kernels):")
	for _, mode := range []device.Mode{device.Default, device.Deterministic} {
		p, err := profile.Graph(models.VGG19Graph(), device.ArchVolta, mode, profile.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s mode (total %.0f ms / 100 steps):\n", mode, p.Total)
		for _, k := range p.TopK(5) {
			fmt.Printf("    %-24s %10.0f ms  (%4.1f%%)\n", k.Name, k.Millis, 100*k.Millis/p.Total)
		}
	}
}

// Divergence: watch one-ulp implementation noise amplify into macroscopic
// weight divergence over the course of training.
//
// Trains two replicas in lockstep with identical seeds on the simulated
// V100 — the only difference between them is the scheduler's accumulation
// ordering — and prints the maximum weight difference and normalized L2
// distance after every epoch. The curve starts at rounding scale (~1e-7)
// and, once SGD's chaotic dynamics take hold, grows by several orders of
// magnitude.
//
//	go run ./examples/divergence
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/trace"
)

func main() {
	dataset := data.CIFAR10Like(data.ScaleTest)
	cfg := core.TrainConfig{
		Model: func() *nn.Sequential {
			return models.SmallCNN(models.DefaultSmallCNN(dataset.Classes))
		},
		Dataset:  dataset,
		Device:   device.V100,
		Epochs:   30,
		Batch:    32,
		Schedule: opt.StepDecay{Base: 0.06, Factor: 10, Every: 22},
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 7,
	}

	fmt.Println("two replicas, identical seeds, IMPL noise only (simulated V100)")
	tr, err := trace.Pair(cfg, core.Impl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%5s  %12s  %10s  %s\n", "epoch", "max |Δw|", "L2", "log-scale")
	for _, p := range tr.Points {
		bar := logBar(p.MaxAbsDiff)
		fmt.Printf("%5d  %12.3e  %10.6f  %s\n", p.Epoch, p.MaxAbsDiff, p.L2, bar)
	}
	if onset := tr.AmplificationOnset(1e-4); onset >= 0 {
		fmt.Printf("\nrounding noise crossed 1e-4 at epoch %d — from there SGD's\n", onset)
		fmt.Println("chaotic dynamics carry it to macroscopic divergence (paper §3.1).")
	} else {
		fmt.Println("\nno amplification onset at this scale; try more epochs.")
	}
}

// logBar renders |Δw| on a log axis from 1e-8 to 1e+1.
func logBar(v float64) string {
	if v <= 0 {
		return ""
	}
	const lo, hi = -8.0, 1.0
	pos := 0.0
	for x := v; x < 1 && pos > lo; x *= 10 {
		pos--
	}
	n := int((pos - lo) / (hi - lo) * 45)
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// Fairness: measure how training noise lands disproportionately on
// under-represented sub-groups (paper Section 3.2, Figure 3 / Table 5).
//
// Trains replicas of a ResNet-18 attribute classifier on the CelebA-like
// dataset, whose positive labels are scarce among Male (~0.8 % of the data)
// and Old (~2.5 %) examples, then reports the stddev of sub-group accuracy,
// false-positive and false-negative rates across replicas.
//
//	go run ./examples/fairness
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

func main() {
	dataset := data.CelebALike(data.ScaleTest)
	fmt.Printf("dataset: %s\n", dataset)
	for _, c := range data.CountSubgroups(dataset.Train) {
		fmt.Printf("  %-7s %5d positive / %5d negative\n", c.Group, c.Positive, c.Negative)
	}

	cfg := core.TrainConfig{
		Model:    func() *nn.Sequential { return models.CelebAResNet18() },
		Dataset:  dataset,
		Device:   device.V100,
		Epochs:   16,
		Batch:    32,
		Schedule: opt.StepDecay{Base: 0.05, Factor: 10, Every: 12},
		Momentum: 0.9,
		BaseSeed: 7,
	}

	const replicas = 5
	fmt.Printf("\ntraining %d replicas under ALGO+IMPL noise...\n\n", replicas)
	results, err := core.RunVariant(context.Background(), cfg, core.AlgoImpl, replicas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %14s %14s %14s\n", "group", "stddev(acc)", "stddev(FPR)", "stddev(FNR)")
	for _, s := range core.SummarizeSubgroups(results, dataset.Test) {
		fmt.Printf("%-8s %8.3f (%.1fX) %6.3f (%.1fX) %6.3f (%.1fX)\n",
			s.Group, s.AccStd, s.AccScale, s.FPRStd, s.FPRScale, s.FNRStd, s.FNRScale)
	}

	fmt.Println("\nTop-line stddev is small, but the Male sub-group's FNR swings by")
	fmt.Println("multiples of the overall rate between identically configured runs:")
	fmt.Println("noise concentrates where positive examples are scarce.")
}

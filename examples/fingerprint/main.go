// Fingerprint: watch implementation noise at its source. Runs the same
// matrix product on each simulated accelerator several times and prints a
// fingerprint of the result bits, showing which parts are run-to-run
// deterministic (CPU, TPU, Tensor Cores) and which are not (CUDA-core GPUs
// in default mode), and that the GPUs become stable under the
// deterministic-execution patches.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func fingerprint(t *tensor.Tensor) uint32 {
	h := fnv.New32a()
	var buf [4]byte
	for _, v := range t.Data() {
		bits := math.Float32bits(v)
		buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		if _, err := h.Write(buf[:]); err != nil {
			panic(err)
		}
	}
	return h.Sum32()
}

func main() {
	a := tensor.New(16, 4096)
	b := tensor.New(4096, 16)
	rng.New(1).FillNorm(a.Data(), 0, 1)
	rng.New(2).FillNorm(b.Data(), 0, 1)

	fmt.Println("fingerprints of the same 16x4096 x 4096x16 matmul, 4 runs each")
	fmt.Printf("%-12s %-13s  %s\n", "device", "mode", "run fingerprints")
	entropy := rng.New(99)
	for _, cfg := range device.Catalog {
		for _, mode := range []device.Mode{device.Default, device.Deterministic} {
			fmt.Printf("%-12s %-13s ", cfg.Name, mode)
			var prev uint32
			stable := true
			for run := 0; run < 4; run++ {
				dev := device.New(cfg, mode, entropy.SplitIndex(run))
				fp := fingerprint(dev.MatMul(a, b, false, false))
				if run > 0 && fp != prev {
					stable = false
				}
				prev = fp
				fmt.Printf(" %08x", fp)
			}
			if stable {
				fmt.Println("  (stable)")
			} else {
				fmt.Println("  (NONDETERMINISTIC)")
			}
		}
	}

	fmt.Println("\nCUDA-core parts differ run to run in default mode — floating-point")
	fmt.Println("accumulation order is scheduler state. The systolic TPU and the")
	fmt.Println("deterministic patches pin the order; Tensor Cores are stable for the")
	fmt.Println("matmul itself but their host GPU still runs nondeterministic")
	fmt.Println("reduction kernels (try examples/quickstart to see it amplified).")
}

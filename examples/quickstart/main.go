// Quickstart: train a population of small CNNs under each noise variant and
// print the paper's three stability measures.
//
// This is the 60-second version of the paper's core result: even with every
// algorithmic seed fixed (IMPL), the tooling alone makes replicas diverge —
// while the CONTROL variant (fixed seeds + deterministic device) is
// bitwise reproducible.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

func main() {
	dataset := data.CIFAR10Like(data.ScaleTest)
	fmt.Printf("dataset: %s\n", dataset)

	cfg := core.TrainConfig{
		Model: func() *nn.Sequential {
			return models.SmallCNN(models.DefaultSmallCNN(dataset.Classes))
		},
		Dataset:  dataset,
		Device:   device.V100, // simulated: 5120 CUDA cores of reorder freedom
		Epochs:   40,
		Batch:    32,
		Schedule: opt.StepDecay{Base: 0.06, Factor: 10, Every: 30},
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 42,
	}

	const replicas = 3
	fmt.Printf("training %d replicas per variant (%d epochs each)...\n\n", replicas, cfg.Epochs)
	for _, variant := range []core.Variant{core.AlgoImpl, core.Algo, core.Impl, core.Control} {
		results, err := core.RunVariant(context.Background(), cfg, variant, replicas)
		if err != nil {
			log.Fatal(err)
		}
		st := core.Summarize(results, dataset.Test.Y, dataset.Classes)
		fmt.Printf("%-10s accuracy %.1f%% ± %.2f   churn %5.2f%%   weight L2 %.3f\n",
			variant, st.AccMean, st.AccStd, st.Churn, st.L2)
	}

	fmt.Println("\nCONTROL rows are exactly zero: fixed seeds + deterministic tooling")
	fmt.Println("reproduce bitwise. IMPL rows are not: accumulation-order noise alone")
	fmt.Println("is amplified by SGD into macroscopic divergence (paper, Section 3).")
}

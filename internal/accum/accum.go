// Package accum implements floating-point reduction strategies whose only
// difference is the *order* in which partial sums are combined.
//
// This is the physical mechanism behind the paper's "implementation noise":
// GPUs maximize throughput by letting thread blocks commit partial results
// in whatever order the scheduler produces (atomicAdd, split-K GEMM,
// multi-pass reductions), and float32 addition is not associative, so two
// runs of the same kernel on the same data can differ in the last bits.
// Those one-ulp differences are then amplified by the chaotic dynamics of
// SGD into macroscopic weight divergence.
//
// The strategies here make that mechanism explicit and controllable:
//
//   - Sequential: left-to-right, the deterministic reference order.
//   - Pairwise: balanced-tree reduction, deterministic and more accurate.
//   - Chunked: partial sums over fixed chunks combined in a caller-supplied
//     order; permuting the order models scheduler nondeterminism.
//   - Kahan: compensated summation, used by tests as a high-accuracy oracle.
package accum

// Sequential sums xs left to right. This is the canonical deterministic
// order used by the simulated devices in deterministic mode.
func Sequential(xs []float32) float32 {
	var s float32
	for _, v := range xs {
		s += v
	}
	return s
}

// Pairwise sums xs with a balanced binary tree (recursive halving). It is
// deterministic and generally closer to the exact sum than Sequential.
func Pairwise(xs []float32) float32 {
	switch len(xs) {
	case 0:
		return 0
	case 1:
		return xs[0]
	}
	mid := len(xs) / 2
	return Pairwise(xs[:mid]) + Pairwise(xs[mid:])
}

// Kahan computes a compensated (Kahan) sum in float64, returning a float32.
// Tests use it as an accuracy oracle; it is not used on the training path.
func Kahan(xs []float32) float32 {
	var sum, c float64
	for _, v := range xs {
		y := float64(v) - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return float32(sum)
}

// ChunkPartials splits xs into nChunks contiguous chunks and returns each
// chunk's sequential partial sum. The chunking is deterministic; only the
// later combination order varies.
func ChunkPartials(xs []float32, nChunks int) []float32 {
	if nChunks < 1 {
		nChunks = 1
	}
	if nChunks > len(xs) {
		nChunks = len(xs)
	}
	if nChunks == 0 {
		return nil
	}
	partials := make([]float32, nChunks)
	for c := 0; c < nChunks; c++ {
		lo := c * len(xs) / nChunks
		hi := (c + 1) * len(xs) / nChunks
		partials[c] = Sequential(xs[lo:hi])
	}
	return partials
}

// CombineOrdered folds partials together in the order given by order
// (indices into partials). A nil order means ascending index order. This
// models the commit order of thread blocks performing atomic accumulation:
// same partials, different rounding depending on order.
func CombineOrdered(partials []float32, order []int) float32 {
	var s float32
	if order == nil {
		for _, p := range partials {
			s += p
		}
		return s
	}
	for _, idx := range order {
		s += partials[idx]
	}
	return s
}

// Chunked sums xs via nChunks partial sums combined in the given order.
// With order == nil it is fully deterministic.
func Chunked(xs []float32, nChunks int, order []int) float32 {
	return CombineOrdered(ChunkPartials(xs, nChunks), order)
}

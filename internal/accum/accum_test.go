package accum

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomVec(seed uint64, n int) []float32 {
	s := rng.New(seed)
	xs := make([]float32, n)
	// Mix magnitudes so rounding differences actually appear.
	for i := range xs {
		xs[i] = float32(s.Norm()) * float32(math.Pow(10, s.Uniform(-3, 3)))
	}
	return xs
}

func TestSequentialEmptyAndSingle(t *testing.T) {
	if Sequential(nil) != 0 {
		t.Fatal("Sequential(nil) != 0")
	}
	if Sequential([]float32{3}) != 3 {
		t.Fatal("Sequential single element")
	}
}

func TestPairwiseMatchesSequentialExactValues(t *testing.T) {
	// Small integers are exact in float32, so every order agrees.
	xs := []float32{1, 2, 3, 4, 5, 6, 7}
	if Pairwise(xs) != Sequential(xs) {
		t.Fatal("Pairwise != Sequential on exact values")
	}
}

func TestKahanIsMoreAccurate(t *testing.T) {
	// 1 + eps + eps + ... where eps is below float32 resolution at 1.0:
	// sequential float32 drops every eps; Kahan keeps them.
	xs := make([]float32, 1001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	seq := Sequential(xs)
	kah := Kahan(xs)
	if seq != 1 {
		t.Fatalf("expected sequential float32 to drop tiny addends, got %v", seq)
	}
	if kah <= 1 {
		t.Fatalf("Kahan lost tiny addends: %v", kah)
	}
}

func TestChunkPartialsCoverEverything(t *testing.T) {
	xs := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, n := range []int{1, 2, 3, 5, 10, 17} {
		ps := ChunkPartials(xs, n)
		var total float32
		for _, p := range ps {
			total += p
		}
		if total != 55 {
			t.Fatalf("nChunks=%d: partials sum to %v, want 55", n, total)
		}
	}
}

func TestChunkPartialsDegenerate(t *testing.T) {
	if got := ChunkPartials(nil, 4); got != nil {
		t.Fatalf("ChunkPartials(nil) = %v", got)
	}
	ps := ChunkPartials([]float32{2}, 0)
	if len(ps) != 1 || ps[0] != 2 {
		t.Fatalf("ChunkPartials single with nChunks=0: %v", ps)
	}
}

func TestCombineOrderedPermutationExact(t *testing.T) {
	// On exact values every order gives the same answer.
	ps := []float32{1, 2, 4, 8}
	if CombineOrdered(ps, []int{3, 1, 0, 2}) != 15 {
		t.Fatal("CombineOrdered wrong on exact values")
	}
	if CombineOrdered(ps, nil) != 15 {
		t.Fatal("CombineOrdered(nil order) wrong")
	}
}

func TestOrderChangesRounding(t *testing.T) {
	// The core claim of the whole simulation: for generic float32 data,
	// there exist chunk orders whose sums differ in the low bits.
	found := false
	for seed := uint64(0); seed < 20 && !found; seed++ {
		xs := randomVec(seed, 4096)
		ps := ChunkPartials(xs, 64)
		base := CombineOrdered(ps, nil)
		s := rng.New(seed + 1000)
		for trial := 0; trial < 50; trial++ {
			if CombineOrdered(ps, s.Perm(len(ps))) != base {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no accumulation order produced a different rounding; IMPL noise mechanism broken")
	}
}

func TestOrderNoiseIsTiny(t *testing.T) {
	// The perturbation must be at rounding scale (relative ~1e-6), not
	// macroscopic: implementation noise is one-ulp physics, and the tests
	// for training divergence rely on amplification, not on large injected
	// errors.
	xs := randomVec(7, 4096)
	ps := ChunkPartials(xs, 64)
	exact := float64(Kahan(xs))
	scale := math.Abs(exact)
	if scale < 1 {
		scale = 1
	}
	s := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		got := float64(CombineOrdered(ps, s.Perm(len(ps))))
		if rel := math.Abs(got-exact) / scale; rel > 1e-3 {
			t.Fatalf("order noise too large: relative error %v", rel)
		}
	}
}

func TestChunkedDeterministicGivenOrder(t *testing.T) {
	xs := randomVec(3, 1024)
	order := rng.New(5).Perm(32)
	a := Chunked(xs, 32, order)
	b := Chunked(xs, 32, order)
	if a != b {
		t.Fatal("Chunked with fixed order is nondeterministic")
	}
}

func TestAllStrategiesCloseToOracle(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		xs := randomVec(seed, 2048)
		oracle := float64(Kahan(xs))
		scale := math.Abs(oracle) + 1
		for name, got := range map[string]float32{
			"sequential": Sequential(xs),
			"pairwise":   Pairwise(xs),
			"chunked":    Chunked(xs, 16, nil),
		} {
			if rel := math.Abs(float64(got)-oracle) / scale; rel > 1e-3 {
				t.Errorf("seed %d: %s relative error %v vs oracle", seed, name, rel)
			}
		}
	}
}

func TestChunkedPropertyExactIntegers(t *testing.T) {
	// Property: for integer-valued float32 inputs (exact arithmetic), all
	// strategies and all chunk counts agree exactly.
	f := func(seed uint64, nChunksRaw uint8) bool {
		s := rng.New(seed)
		xs := make([]float32, 257)
		for i := range xs {
			xs[i] = float32(s.Intn(201) - 100)
		}
		n := int(nChunksRaw)%64 + 1
		seq := Sequential(xs)
		return Pairwise(xs) == seq &&
			Chunked(xs, n, nil) == seq &&
			Chunked(xs, n, rng.New(seed+1).Perm(min(n, len(xs)))) == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package checkpoint serializes trained model weights. The paper's
// replicability standard — bitwise-identical outcomes given identical
// tooling and seeds — is only auditable if weights can be stored and
// compared exactly, so the format round-trips float32 values bit-exactly
// (no text formatting) and carries a content checksum.
//
// Format (little-endian):
//
//	magic   "NNRCKPT1"              8 bytes
//	nparams uint32
//	per parameter:
//	    nameLen uint32, name bytes
//	    rank    uint32, dims []uint32
//	    data    []float32 (raw bits)
//	crc32 (IEEE) of everything above
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/nn"
)

const magic = "NNRCKPT1"

// maxDim guards against corrupt headers allocating absurd buffers.
const maxDim = 1 << 28

// Save writes net's parameters to w.
func Save(w io.Writer, net *nn.Sequential) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	params := net.Params()
	if err := writeU32(mw, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(mw, p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := writeU32(mw, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := writeU32(mw, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 4*p.Value.Len())
		for i, v := range p.Value.Data() {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := mw.Write(buf); err != nil {
			return fmt.Errorf("checkpoint: write %s: %w", p.Name, err)
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: write checksum: %w", err)
	}
	return nil
}

// Load reads parameters from r into net. The network must have the same
// parameter names, order and shapes as the one that was saved (build it
// with the same constructor). Loaded values are bit-exact.
func Load(r io.Reader, net *nn.Sequential) error {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(tr, head); err != nil {
		return fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("checkpoint: bad magic %q", head)
	}
	n, err := readU32(tr)
	if err != nil {
		return err
	}
	params := net.Params()
	if int(n) != len(params) {
		return fmt.Errorf("checkpoint: has %d parameters, network has %d", n, len(params))
	}
	for _, p := range params {
		name, err := readString(tr)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("checkpoint: parameter order mismatch: %q vs network %q", name, p.Name)
		}
		rank, err := readU32(tr)
		if err != nil {
			return err
		}
		if int(rank) != p.Value.Rank() {
			return fmt.Errorf("checkpoint: %s rank %d, network has %d", name, rank, p.Value.Rank())
		}
		for i := 0; i < int(rank); i++ {
			d, err := readU32(tr)
			if err != nil {
				return err
			}
			if d > maxDim {
				return fmt.Errorf("checkpoint: %s dim %d implausibly large (%d)", name, i, d)
			}
			if int(d) != p.Value.Dim(i) {
				return fmt.Errorf("checkpoint: %s dim %d is %d, network has %d", name, i, d, p.Value.Dim(i))
			}
		}
		buf := make([]byte, 4*p.Value.Len())
		if _, err := io.ReadFull(tr, buf); err != nil {
			return fmt.Errorf("checkpoint: read %s: %w", name, err)
		}
		data := p.Value.Data()
		for i := range data {
			data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return fmt.Errorf("checkpoint: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return fmt.Errorf("checkpoint: checksum mismatch: file %08x, content %08x", got, want)
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	if err != nil {
		return fmt.Errorf("checkpoint: write u32: %w", err)
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("checkpoint: read u32: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	if err != nil {
		return fmt.Errorf("checkpoint: write string: %w", err)
	}
	return nil
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("checkpoint: name length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("checkpoint: read string: %w", err)
	}
	return string(buf), nil
}

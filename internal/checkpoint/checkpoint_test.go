package checkpoint

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
)

func newNet(seed uint64) *nn.Sequential {
	net := models.SmallCNN(models.DefaultSmallCNN(10))
	net.Init(rng.New(seed))
	return net
}

func TestRoundTripBitExact(t *testing.T) {
	src := newNet(1)
	// Plant awkward values: negative zero, denormals, extremes.
	w := src.Params()[0].Value.Data()
	w[0] = float32(math.Copysign(0, -1))
	w[1] = math.SmallestNonzeroFloat32
	w[2] = -math.MaxFloat32

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newNet(2) // different init; must be fully overwritten
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	sw, dw := src.WeightVector(), dst.WeightVector()
	for i := range sw {
		if math.Float32bits(sw[i]) != math.Float32bits(dw[i]) {
			t.Fatalf("weight %d not bit-exact: %x vs %x", i, math.Float32bits(sw[i]), math.Float32bits(dw[i]))
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, newNet(1)); err != nil {
		t.Fatal(err)
	}
	other := models.ResNet18(10)
	other.Init(rng.New(1))
	if err := Load(&buf, other); err == nil {
		t.Fatal("loading a SmallCNN checkpoint into ResNet18 did not error")
	}
}

func TestLoadRejectsCorruptMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, newNet(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[0] ^= 0xFF
	if err := Load(bytes.NewReader(b), newNet(1)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: err = %v", err)
	}
}

func TestLoadDetectsBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, newNet(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0x01 // flip a payload bit
	err := Load(bytes.NewReader(b), newNet(1))
	if err == nil {
		t.Fatal("bit flip in payload went undetected")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, newNet(1)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()/2]
	if err := Load(bytes.NewReader(b), newNet(1)); err == nil {
		t.Fatal("truncated checkpoint loaded")
	}
}

func TestSaveDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Save(&a, newNet(7)); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, newNet(7)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same network serialized differently twice")
	}
}

func TestCheckpointAuditsControlReplicas(t *testing.T) {
	// The use case the package exists for: two CONTROL-variant replicas
	// must produce byte-identical checkpoints.
	var a, b bytes.Buffer
	if err := Save(&a, newNet(42)); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, newNet(42)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identically seeded networks have different checkpoints")
	}
	// And a differently seeded one must not.
	var c bytes.Buffer
	if err := Save(&c, newNet(43)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("differently seeded networks have identical checkpoints")
	}
}

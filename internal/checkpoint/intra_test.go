package checkpoint

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sched"

	"repro/internal/core"
)

// TestCheckpointBytesInvariantUnderIntraParallelism trains one cell whose
// kernels all clear the (lowered) intra-op sharding threshold, once on a
// single worker and once on four, and requires the serialized checkpoints
// to be byte-for-byte identical: intra-kernel parallelism is a pure
// wall-clock knob all the way down to the on-disk artifact.
func TestCheckpointBytesInvariantUnderIntraParallelism(t *testing.T) {
	ds := data.CIFAR10Like(data.ScaleTest)
	cfg := core.TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.05),
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 20220622,
	}

	oldWorkers := sched.Workers()
	device.SetIntraOpThreshold(1) // every kernel shards when workers allow
	defer func() {
		device.SetIntraOpThreshold(0)
		sched.SetWorkers(oldWorkers)
	}()

	encode := func(workers int) []byte {
		t.Helper()
		sched.SetWorkers(workers)
		res, err := core.RunReplica(context.Background(), cfg, core.AlgoImpl, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeResult(&buf, "intra|cell", res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	sharded := encode(4)
	if !bytes.Equal(serial, sharded) {
		t.Fatalf("checkpoint bytes differ between 1 and 4 workers: %d vs %d bytes", len(serial), len(sharded))
	}
}

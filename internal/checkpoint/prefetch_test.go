package checkpoint

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"

	"repro/internal/core"
)

// TestCheckpointBytesInvariantUnderPrefetch trains one cell with the
// loader's background batch assembly on and then off and requires the
// serialized checkpoints to be byte-for-byte identical: the prefetch
// goroutine, like intra-op parallelism, is a pure wall-clock knob all the
// way down to the on-disk artifact.
func TestCheckpointBytesInvariantUnderPrefetch(t *testing.T) {
	ds := data.CIFAR10Like(data.ScaleTest)
	cfg := core.TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.05),
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 20220622,
	}

	encode := func(prefetch bool) []byte {
		t.Helper()
		prev := core.SetBatchPrefetch(prefetch)
		defer core.SetBatchPrefetch(prev)
		res, err := core.RunReplica(context.Background(), cfg, core.AlgoImpl, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeResult(&buf, "prefetch|cell", res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	on := encode(true)
	off := encode(false)
	if !bytes.Equal(on, off) {
		t.Fatalf("checkpoint bytes differ between prefetch on and off: %d vs %d bytes", len(on), len(off))
	}
}

package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

// This file extends the checkpoint codec from bare weight vectors to a
// replica's full training outcome: the ledger needs metrics and test-set
// predictions alongside the weights so a replica served from disk is
// indistinguishable — bit for bit — from one trained in process.
//
// Record format (little-endian):
//
//	magic   "NNRREPL1"                   8 bytes
//	cellLen uint32, cell bytes           the replica's cell key
//	variant uint32
//	replica uint32
//	acc     uint64 (float64 bits)        test accuracy
//	npred   uint32, preds  []uint32      argmax test predictions
//	nloss   uint32, loss   []uint64      per-epoch mean loss (float64 bits)
//	nweight uint32, weight []uint32      flattened weights (float32 bits)
//	crc32 (IEEE) of everything above
//
// Scalars and arrays round-trip through raw bit patterns (never text), so
// decode(encode(x)) == x exactly, including non-finite values.

const resultMagic = "NNRREPL1"

// maxCellKey bounds the cell-key header field against corrupt files.
const maxCellKey = 1 << 16

// EncodeResult writes one replica's full training outcome under its cell
// key. The cell key is the population identity *without* the replica
// count (see the experiments engine), which is what makes the record
// shareable across population sizes.
func EncodeResult(w io.Writer, cell string, res *core.RunResult) error {
	if res == nil {
		return fmt.Errorf("checkpoint: refusing to encode nil result")
	}
	if len(cell) >= maxCellKey {
		return fmt.Errorf("checkpoint: cell key of %d bytes exceeds %d", len(cell), maxCellKey)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(resultMagic)); err != nil {
		return fmt.Errorf("checkpoint: write magic: %w", err)
	}
	if err := writeString(mw, cell); err != nil {
		return err
	}
	if err := writeU32(mw, uint32(res.Variant)); err != nil {
		return err
	}
	if err := writeU32(mw, uint32(res.Replica)); err != nil {
		return err
	}
	if err := writeU64(mw, math.Float64bits(res.TestAccuracy)); err != nil {
		return err
	}
	if err := writeU32(mw, uint32(len(res.Predictions))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(res.EpochLoss)+4*max(len(res.Predictions), len(res.Weights)))
	for i, p := range res.Predictions {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(p))
	}
	if _, err := mw.Write(buf[:4*len(res.Predictions)]); err != nil {
		return fmt.Errorf("checkpoint: write predictions: %w", err)
	}
	if err := writeU32(mw, uint32(len(res.EpochLoss))); err != nil {
		return err
	}
	for i, v := range res.EpochLoss {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := mw.Write(buf[:8*len(res.EpochLoss)]); err != nil {
		return fmt.Errorf("checkpoint: write epoch loss: %w", err)
	}
	if err := writeU32(mw, uint32(len(res.Weights))); err != nil {
		return err
	}
	for i, v := range res.Weights {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if _, err := mw.Write(buf[:4*len(res.Weights)]); err != nil {
		return fmt.Errorf("checkpoint: write weights: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("checkpoint: write checksum: %w", err)
	}
	return nil
}

// DecodeResult reads a full replica record, verifying the content
// checksum. Loaded values are bit-exact.
func DecodeResult(r io.Reader) (string, *core.RunResult, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	cell, res, err := decodeResultBody(tr, false)
	if err != nil {
		return "", nil, err
	}
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return "", nil, fmt.Errorf("checkpoint: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return "", nil, fmt.Errorf("checkpoint: result checksum mismatch: file %08x, content %08x", got, want)
	}
	return cell, res, nil
}

// DecodeResultHeader reads only the scalar prefix of a replica record —
// cell key, variant, replica index, test accuracy — without loading (or
// checksumming) the arrays. Listings use it to describe a ledger without
// paying for every weight vector; anything that will *serve* the record
// must go through DecodeResult.
func DecodeResultHeader(r io.Reader) (string, *core.RunResult, error) {
	return decodeResultBody(r, true)
}

func decodeResultBody(r io.Reader, headerOnly bool) (string, *core.RunResult, error) {
	head := make([]byte, len(resultMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		return "", nil, fmt.Errorf("checkpoint: read magic: %w", err)
	}
	if string(head) != resultMagic {
		return "", nil, fmt.Errorf("checkpoint: bad result magic %q", head)
	}
	cell, err := readString(r)
	if err != nil {
		return "", nil, err
	}
	variant, err := readU32(r)
	if err != nil {
		return "", nil, err
	}
	replica, err := readU32(r)
	if err != nil {
		return "", nil, err
	}
	accBits, err := readU64(r)
	if err != nil {
		return "", nil, err
	}
	res := &core.RunResult{
		Variant:      core.Variant(variant),
		Replica:      int(replica),
		TestAccuracy: math.Float64frombits(accBits),
	}
	if headerOnly {
		return cell, res, nil
	}
	npred, err := readCount(r, "predictions")
	if err != nil {
		return "", nil, err
	}
	if npred > 0 {
		buf := make([]byte, 4*npred)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", nil, fmt.Errorf("checkpoint: read predictions: %w", err)
		}
		res.Predictions = make([]int, npred)
		for i := range res.Predictions {
			res.Predictions[i] = int(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	nloss, err := readCount(r, "epoch loss")
	if err != nil {
		return "", nil, err
	}
	if nloss > 0 {
		buf := make([]byte, 8*nloss)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", nil, fmt.Errorf("checkpoint: read epoch loss: %w", err)
		}
		res.EpochLoss = make([]float64, nloss)
		for i := range res.EpochLoss {
			res.EpochLoss[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	nweights, err := readCount(r, "weights")
	if err != nil {
		return "", nil, err
	}
	if nweights > 0 {
		buf := make([]byte, 4*nweights)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", nil, fmt.Errorf("checkpoint: read weights: %w", err)
		}
		res.Weights = make([]float32, nweights)
		for i := range res.Weights {
			res.Weights[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return cell, res, nil
}

// readCount reads an array length, rejecting sizes no legitimate record
// reaches before any allocation happens.
func readCount(r io.Reader, what string) (int, error) {
	n, err := readU32(r)
	if err != nil {
		return 0, err
	}
	if n > maxDim {
		return 0, fmt.Errorf("checkpoint: %s count %d implausibly large", what, n)
	}
	return int(n), nil
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if _, err := w.Write(b[:]); err != nil {
		return fmt.Errorf("checkpoint: write u64: %w", err)
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("checkpoint: read u64: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

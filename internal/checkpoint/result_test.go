package checkpoint

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleResult() *core.RunResult {
	return &core.RunResult{
		Variant:      core.AlgoImpl,
		Replica:      12,
		TestAccuracy: 0.8125,
		Predictions:  []int{3, 0, 9, 9, 1},
		Weights:      []float32{0, float32(math.Copysign(0, -1)), 1.5, float32(math.Inf(1)), 3.1415927},
		EpochLoss:    []float64{math.Pi, 0.25, math.NaN()},
	}
}

// TestResultRoundTripBitExact: decode(encode(x)) == x by bit pattern,
// including NaN, infinities and negative zero.
func TestResultRoundTripBitExact(t *testing.T) {
	want := sampleResult()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, "cell|key with spaces", want); err != nil {
		t.Fatal(err)
	}
	cell, got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cell != "cell|key with spaces" {
		t.Fatalf("cell = %q", cell)
	}
	if !got.Equal(want) {
		t.Fatalf("round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}
	// Negative zero must survive as negative zero.
	if math.Signbit(float64(got.Weights[0])) || !math.Signbit(float64(got.Weights[1])) {
		t.Fatalf("zero signs lost: %v", got.Weights[:2])
	}
}

// TestResultEmptyArrays: a result with no predictions/weights/loss (e.g.
// a stub) still round-trips.
func TestResultEmptyArrays(t *testing.T) {
	want := &core.RunResult{Variant: core.Control, Replica: 0, TestAccuracy: 1}
	var buf bytes.Buffer
	if err := EncodeResult(&buf, "c", want); err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeResult(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// TestResultChecksumDetectsCorruption: a single flipped byte anywhere in
// the record fails decoding.
func TestResultChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeResult(&buf, "c", sampleResult()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, i := range []int{len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if _, _, err := DecodeResult(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

// TestResultHeaderStopsBeforeArrays: the header decoder returns the
// scalar prefix and never touches the arrays (a truncated tail after the
// header must not matter).
func TestResultHeaderStopsBeforeArrays(t *testing.T) {
	want := sampleResult()
	var buf bytes.Buffer
	if err := EncodeResult(&buf, "the-cell", want); err != nil {
		t.Fatal(err)
	}
	// Truncate right after the scalar prefix: magic + cell + variant +
	// replica + accuracy.
	head := buf.Bytes()[:8+4+len("the-cell")+4+4+8]
	cell, got, err := DecodeResultHeader(bytes.NewReader(head))
	if err != nil {
		t.Fatal(err)
	}
	if cell != "the-cell" || got.Replica != want.Replica || got.Variant != want.Variant ||
		got.TestAccuracy != want.TestAccuracy {
		t.Fatalf("header = %q %+v", cell, got)
	}
	if got.Weights != nil || got.Predictions != nil {
		t.Fatal("header decode loaded arrays")
	}
}

// TestResultRejectsBadMagic: a weight checkpoint (or garbage) is not a
// replica record.
func TestResultRejectsBadMagic(t *testing.T) {
	_, _, err := DecodeResult(strings.NewReader("NNRCKPT1xxxxxxxxxxxxxxxx"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

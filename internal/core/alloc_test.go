package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// trainStepHarness assembles the exact pieces RunReplica wires together —
// net + workspace, device, streaming loader, fused SGD — and returns a
// closure running one training step (batch assembly through weight
// update). Used by the zero-alloc gate and BenchmarkTrainStep.
type trainStepHarness struct {
	net    *nn.Sequential
	dev    *device.Device
	loader *data.Loader
	sgd    *opt.SGD

	shuffleS, augS *rng.Stream
	epoch          int
	ep             *data.Epoch
	b              data.Batch
}

func newTrainStepHarness(mode device.Mode, prefetch bool) *trainStepHarness {
	ds := data.CIFAR10Like(data.ScaleTest)
	h := &trainStepHarness{}
	h.net = models.SmallCNN(models.DefaultSmallCNN(ds.Classes))
	initS, shuffleS, augS, _, _ := SeedsFor(1, AlgoImpl, 0)
	h.net.Init(initS)
	h.shuffleS, h.augS = shuffleS, augS
	var entropy *rng.Stream
	if mode == device.Default {
		entropy = rng.New(7)
	}
	h.dev = device.New(device.V100, mode, entropy)
	h.dev.SetWorkspace(h.net.UseWorkspace())
	h.loader = data.NewLoader(ds, ds.Train, 32, data.Augment{Shift: 1, Flip: true})
	h.loader.SetPrefetch(prefetch)
	h.sgd = opt.NewSGD(0.9, 5e-4)
	h.startEpoch()
	return h
}

func (h *trainStepHarness) startEpoch() {
	h.ep = h.loader.Epoch(h.shuffleS.SplitIndex(h.epoch), h.augS.SplitIndex(h.epoch))
	h.epoch++
}

// step runs one training step, rolling into a fresh epoch when the current
// one is exhausted. Reports whether an epoch boundary was crossed.
func (h *trainStepHarness) step() bool {
	rolled := false
	if !h.ep.Next(&h.b) {
		h.startEpoch()
		rolled = true
		if !h.ep.Next(&h.b) {
			panic("core: empty epoch in trainStepHarness")
		}
	}
	h.net.ZeroGrad()
	logits := h.net.Forward(h.dev, h.b.X, true)
	_, dlogits := nn.SoftmaxCrossEntropyInPlace(h.dev, logits, h.b.Labels)
	h.net.Backward(h.dev, dlogits)
	h.sgd.Step(h.net.Params(), 0.01)
	h.net.Workspace().Reset()
	return rolled
}

// TestTrainStepZeroAllocSteadyState is the alloc-regression gate: after one
// warm epoch, a mid-epoch training step of the tiny config must perform
// ZERO heap allocations — batch assembly, forward, loss, backward and the
// fused SGD update all run out of reused buffers, the workspace and the
// scratch pool (DESIGN.md §15). Runs in both device modes so the
// Default-mode entropy draws are covered too. Prefetch is off so the
// measurement has no helper goroutine; the byte-identity of prefetch
// on/off is pinned separately (data and checkpoint tests).
func TestTrainStepZeroAllocSteadyState(t *testing.T) {
	for _, mode := range []device.Mode{device.Deterministic, device.Default} {
		t.Run(mode.String(), func(t *testing.T) {
			h := newTrainStepHarness(mode, false)
			// Warm epoch 0 end to end so every pool, workspace shape and
			// layer buffer exists (including the partial final batch).
			for !h.step() {
			}
			// Now in epoch 1. AllocsPerRun's warm-up call plus 5 measured
			// runs stay inside the epoch's run of full batches.
			avg := testing.AllocsPerRun(5, func() {
				if h.step() {
					t.Fatal("crossed an epoch boundary mid-measurement; enlarge the dataset or lower runs")
				}
			})
			if avg != 0 {
				t.Errorf("warm training step allocates %.1f times per step, want 0", avg)
			}
		})
	}
}

package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

// BenchmarkTrainingStep measures one forward+backward+update step of the
// small CNN on each class of simulated part — the wall-clock price of the
// accumulation-order machinery in this pure-Go stack (the modeled cuDNN
// prices are in internal/profile).
func BenchmarkTrainingStep(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	for _, cfg := range []struct {
		dev  device.Config
		mode device.Mode
	}{
		{device.V100, device.Default},
		{device.V100, device.Deterministic},
		{device.TPUv2, device.Default},
	} {
		b.Run(cfg.dev.Name+"/"+cfg.mode.String(), func(b *testing.B) {
			tc := TrainConfig{
				Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
				Dataset:  ds,
				Device:   cfg.dev,
				Epochs:   1,
				Batch:    32,
				Schedule: opt.Constant(0.01),
				Momentum: 0.9,
				BaseSeed: 1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunReplica(tc, AlgoImpl, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicaResNet18 measures a one-epoch ResNet-18 replica, the unit
// of work behind every population in the figure harnesses.
func BenchmarkReplicaResNet18(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	tc := TrainConfig{
		Model:    func() *nn.Sequential { return models.ResNet18(ds.Classes) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.01),
		Momentum: 0.9,
		BaseSeed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunReplica(tc, AlgoImpl, i); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sched"
)

// TestMain lets the BENCH harness pin the worker pool from the environment
// (NNRAND_WORKERS=n) for multi-worker trajectory runs.
func TestMain(m *testing.M) {
	if s := os.Getenv("NNRAND_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			sched.SetWorkers(n)
		}
	}
	os.Exit(m.Run())
}

// BenchmarkTrainingStep measures one forward+backward+update step of the
// small CNN on each class of simulated part — the wall-clock price of the
// accumulation-order machinery in this pure-Go stack (the modeled cuDNN
// prices are in internal/profile).
func BenchmarkTrainingStep(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	for _, cfg := range []struct {
		dev  device.Config
		mode device.Mode
	}{
		{device.V100, device.Default},
		{device.V100, device.Deterministic},
		{device.TPUv2, device.Default},
	} {
		b.Run(cfg.dev.Name+"/"+cfg.mode.String(), func(b *testing.B) {
			tc := TrainConfig{
				Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
				Dataset:  ds,
				Device:   cfg.dev,
				Epochs:   1,
				Batch:    32,
				Schedule: opt.Constant(0.01),
				Momentum: 0.9,
				BaseSeed: 1,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunReplica(context.Background(), tc, AlgoImpl, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunVariantParallel measures a full population train (4 replicas
// of the small CNN) through the sched worker pool, against the sequential
// baseline below. On >= 4 cores the parallel path should approach a 4×
// speedup; outputs are bit-identical either way (TestRunVariantParallelBitIdentical).
func BenchmarkRunVariantParallel(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	tc := variantBenchConfig(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunVariant(context.Background(), tc, AlgoImpl, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunVariantSequential is the same population trained one replica
// at a time, the pre-parallel-engine behaviour.
func BenchmarkRunVariantSequential(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	tc := variantBenchConfig(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 4; r++ {
			if _, err := RunReplica(context.Background(), tc, AlgoImpl, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func variantBenchConfig(ds *data.Dataset) TrainConfig {
	return TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.01),
		Momentum: 0.9,
		BaseSeed: 1,
	}
}

// BenchmarkSingleLargeCellIntraGEMM is the scenario intra-kernel
// parallelism exists for: ONE replica of the deepest network — no
// replica-granular parallelism available — with kernel sharding off vs on.
// On a multi-core host the sharded run should scale toward the worker
// count; outputs are bit-identical either way
// (TestRunVariantIntraGEMMBitIdentical).
func BenchmarkSingleLargeCellIntraGEMM(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	tc := TrainConfig{
		Model:    func() *nn.Sequential { return models.ResNet18(ds.Classes) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.01),
		Momentum: 0.9,
		BaseSeed: 1,
	}
	for _, bc := range []struct {
		name      string
		threshold int64
	}{
		{"serial", -1},
		{"sharded", 1 << 18},
	} {
		b.Run(bc.name, func(b *testing.B) {
			device.SetIntraOpThreshold(bc.threshold)
			defer device.SetIntraOpThreshold(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunReplica(context.Background(), tc, AlgoImpl, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicaResNet18 measures a one-epoch ResNet-18 replica, the unit
// of work behind every population in the figure harnesses.
func BenchmarkReplicaResNet18(b *testing.B) {
	ds := data.CIFAR10Like(data.ScaleTest)
	tc := TrainConfig{
		Model:    func() *nn.Sequential { return models.ResNet18(ds.Classes) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   1,
		Batch:    32,
		Schedule: opt.Constant(0.01),
		Momentum: 0.9,
		BaseSeed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunReplica(context.Background(), tc, AlgoImpl, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep measures one warm training step — streamed batch
// assembly, forward, in-place loss, backward, fused SGD update, workspace
// reset — after a full warm-up epoch. With -benchmem this is the headline
// zero-alloc number (BENCH_trainstep.json); the strict gate is
// TestTrainStepZeroAllocSteadyState.
func BenchmarkTrainStep(b *testing.B) {
	for _, bc := range []struct {
		name string
		mode device.Mode
	}{
		{"deterministic", device.Deterministic},
		{"default", device.Default},
	} {
		b.Run(bc.name, func(b *testing.B) {
			h := newTrainStepHarness(bc.mode, false)
			for !h.step() {
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.step()
			}
		})
	}
}

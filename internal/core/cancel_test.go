package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunVariantCancelledBeforeStart pins the fast path: a pre-cancelled
// context trains nothing and surfaces context.Canceled.
func TestRunVariantCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunVariant(ctx, testConfig(), Control, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunVariantCancelReturnsPromptly cancels mid-training and asserts the
// population run aborts at a batch boundary: the call must return well
// before the many-epoch schedule could complete, carrying ctx.Err().
func TestRunVariantCancelReturnsPromptly(t *testing.T) {
	cfg := testConfig()
	cfg.Epochs = 1000 // far more work than the test budget allows

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunVariant(ctx, cfg, Control, 2)
		done <- err
	}()
	// Let training enter its batch loop, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunVariant did not return promptly after cancellation")
	}
}

// TestRunReplicaDeadlineExceeded checks deadline-style cancellation
// propagates the context's own error value.
func TestRunReplicaDeadlineExceeded(t *testing.T) {
	cfg := testConfig()
	cfg.Epochs = 1000
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunReplica(ctx, cfg, Control, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

// testConfig is a small but noise-faithful workload: the unnormalized small
// CNN that the paper shows amplifies noise the most.
func testConfig() TrainConfig {
	ds := data.CIFAR10Like(data.ScaleTest)
	return TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   3,
		Batch:    32,
		Schedule: opt.Constant(0.02),
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 1234,
	}
}

func TestVariantSpecs(t *testing.T) {
	if s := AlgoImpl.Spec(); !s.VaryInit || !s.VaryShuffle || !s.VaryAugment || !s.VaryImpl {
		t.Fatalf("ALGO+IMPL spec %+v", s)
	}
	if s := Algo.Spec(); !s.VaryInit || s.VaryImpl {
		t.Fatalf("ALGO spec %+v", s)
	}
	if s := Impl.Spec(); s.VaryInit || s.VaryShuffle || s.VaryAugment || !s.VaryImpl {
		t.Fatalf("IMPL spec %+v", s)
	}
	if s := Control.Spec(); s != (NoiseSpec{}) {
		t.Fatalf("CONTROL spec %+v", s)
	}
	if s := DataOrderOnly.Spec(); !s.VaryShuffle || s.VaryInit || s.VaryImpl || s.VaryAugment {
		t.Fatalf("DATA-ORDER spec %+v", s)
	}
}

func TestVariantStrings(t *testing.T) {
	want := map[Variant]string{AlgoImpl: "ALGO+IMPL", Algo: "ALGO", Impl: "IMPL", Control: "CONTROL", DataOrderOnly: "DATA-ORDER"}
	for v, s := range want {
		if v.String() != s {
			t.Fatalf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestControlVariantBitwiseReproducible(t *testing.T) {
	cfg := testConfig()
	a, err := RunReplica(context.Background(), cfg, Control, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplica(context.Background(), cfg, Control, 7) // replica index must not matter
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Weights) != len(b.Weights) {
		t.Fatal("weight vectors differ in length")
	}
	for i := range a.Weights {
		if math.Float32bits(a.Weights[i]) != math.Float32bits(b.Weights[i]) {
			t.Fatalf("CONTROL weights differ at %d: %v vs %v", i, a.Weights[i], b.Weights[i])
		}
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatal("CONTROL predictions differ")
		}
	}
	if a.TestAccuracy != b.TestAccuracy {
		t.Fatal("CONTROL accuracy differs")
	}
}

// divergenceConfig trains long enough at a high enough learning rate for
// one-ulp implementation noise to amplify into macroscopic divergence (the
// empirical threshold is ~25 epochs at lr 0.06 on this workload).
func divergenceConfig() TrainConfig {
	cfg := testConfig()
	cfg.Epochs = 30
	cfg.Schedule = opt.StepDecay{Base: 0.06, Factor: 10, Every: 22}
	return cfg
}

func TestTrainingLearns(t *testing.T) {
	cfg := testConfig()
	cfg.Epochs = 8
	res, err := RunReplica(context.Background(), cfg, Control, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0.3 {
		t.Fatalf("test accuracy %.3f; training is not learning (chance = 0.1)", res.TestAccuracy)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0] {
		t.Fatalf("loss did not decrease: %v", res.EpochLoss)
	}
}

func TestImplVariantDiverges(t *testing.T) {
	// The paper's central claim: with all algorithmic seeds fixed, tooling
	// noise alone produces macroscopic divergence between replicas.
	cfg := divergenceConfig()
	results, err := RunVariant(context.Background(), cfg, Impl, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(results, cfg.Dataset.Test.Y, cfg.Dataset.Classes)
	if st.Churn == 0 {
		t.Fatal("IMPL variant produced zero churn; implementation noise is not being amplified")
	}
	if st.L2 == 0 {
		t.Fatal("IMPL variant produced identical weights")
	}
}

func TestAlgoVariantDiverges(t *testing.T) {
	cfg := testConfig()
	results, err := RunVariant(context.Background(), cfg, Algo, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(results, cfg.Dataset.Test.Y, cfg.Dataset.Classes)
	if st.Churn == 0 || st.L2 == 0 {
		t.Fatalf("ALGO variant produced no divergence: churn=%v l2=%v", st.Churn, st.L2)
	}
}

func TestAlgoVariantDeterministicGivenReplica(t *testing.T) {
	// Same replica index twice under ALGO uses identical seeds and a
	// deterministic device, so results must be bitwise equal.
	cfg := testConfig()
	a, err := RunReplica(context.Background(), cfg, Algo, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplica(context.Background(), cfg, Algo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("ALGO replica is not replayable")
		}
	}
}

func TestControlOnTPUDeterministicEvenInDefaultMode(t *testing.T) {
	// DataOrderOnly with identical shuffle replica on TPU: systolic device
	// in Default mode must still be bitwise reproducible.
	cfg := testConfig()
	cfg.Device = device.TPUv2
	a, err := RunReplica(context.Background(), cfg, Impl, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplica(context.Background(), cfg, Impl, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatal("TPU under IMPL-only noise must be deterministic (systolic execution)")
		}
	}
}

func TestDataOrderOnlyDivergesEvenOnTPU(t *testing.T) {
	// Figure 6: varying only the shuffle order breaks determinism even on
	// deterministic hardware, because batch composition changes the
	// floating-point accumulation sequence.
	cfg := testConfig()
	cfg.Device = device.TPUv2
	results, err := RunVariant(context.Background(), cfg, DataOrderOnly, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(results, cfg.Dataset.Test.Y, cfg.Dataset.Classes)
	if st.Churn == 0 {
		t.Fatal("data-order noise on TPU produced zero churn")
	}
}

func TestSummarizeShape(t *testing.T) {
	cfg := testConfig()
	results, err := RunVariant(context.Background(), cfg, AlgoImpl, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(results, cfg.Dataset.Test.Y, cfg.Dataset.Classes)
	if st.Replicas != 3 || st.Variant != AlgoImpl {
		t.Fatalf("summary header wrong: %+v", st)
	}
	if st.AccMean <= 0 || st.AccMean > 100 {
		t.Fatalf("AccMean %v out of range", st.AccMean)
	}
	if len(st.PerClassStd) != cfg.Dataset.Classes {
		t.Fatalf("PerClassStd has %d entries", len(st.PerClassStd))
	}
	if st.MaxPerClassStd < st.PerClassStd[0] {
		t.Fatal("MaxPerClassStd below a per-class value")
	}
	if st.Churn < 0 || st.Churn > 100 {
		t.Fatalf("churn %v out of percent range", st.Churn)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil, nil, 3)
	if st.Replicas != 0 || st.Churn != 0 {
		t.Fatalf("empty summary %+v", st)
	}
}

func TestRunVariantValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := RunVariant(context.Background(), cfg, Algo, 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	bad := cfg
	bad.Epochs = 0
	if _, err := RunReplica(context.Background(), bad, Algo, 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
	bad2 := cfg
	bad2.Schedule = nil
	if _, err := RunReplica(context.Background(), bad2, Algo, 0); err == nil {
		t.Fatal("nil schedule accepted")
	}
	bad3 := cfg
	bad3.Model = nil
	if _, err := RunReplica(context.Background(), bad3, Algo, 0); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestSummarizeSubgroups(t *testing.T) {
	ds := data.CelebALike(data.ScaleTest)
	cfg := TrainConfig{
		Model:    models.CelebAResNet18,
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   2,
		Batch:    32,
		Schedule: opt.Constant(0.02),
		Momentum: 0.9,
		BaseSeed: 99,
	}
	results, err := RunVariant(context.Background(), cfg, AlgoImpl, 3)
	if err != nil {
		t.Fatal(err)
	}
	sub := SummarizeSubgroups(results, ds.Test)
	if len(sub) != 5 || sub[0].Group != "All" {
		t.Fatalf("subgroup rows: %+v", sub)
	}
	for _, s := range sub[1:] {
		if s.Group == "" {
			t.Fatal("unnamed subgroup")
		}
		if s.AccScale < 0 {
			t.Fatalf("negative scale: %+v", s)
		}
	}
}

// TestParseVariant pins the label round-trip and the punctuation-free
// spellings grid specs may carry.
func TestParseVariant(t *testing.T) {
	for _, v := range []Variant{AlgoImpl, Algo, Impl, Control, DataOrderOnly} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	for in, want := range map[string]Variant{
		"algoimpl": AlgoImpl, "algo+impl": AlgoImpl, "impl": Impl,
		"dataorder": DataOrderOnly, "data-order": DataOrderOnly, "control": Control,
	} {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseVariant("CHAOS"); err == nil {
		t.Error("unknown variant accepted")
	}
}

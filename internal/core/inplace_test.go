package core

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

func tinyTrainConfig() TrainConfig {
	ds := data.CIFAR10Like(data.ScaleTest)
	return TrainConfig{
		Model:       func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:     ds,
		Device:      device.V100,
		Epochs:      2,
		Batch:       32,
		Schedule:    opt.Constant(0.05),
		Momentum:    0.9,
		WeightDecay: 5e-4,
		Augment:     data.Augment{Shift: 1, Flip: true},
		BaseSeed:    20220622,
	}
}

// TestRunReplicaInvariantUnderPrefetch trains the same replica with batch
// prefetch on and off and requires bit-identical results — weights,
// predictions, per-epoch losses. The background assembler is a pure
// wall-clock knob.
func TestRunReplicaInvariantUnderPrefetch(t *testing.T) {
	cfg := tinyTrainConfig()
	run := func(prefetch bool) *RunResult {
		t.Helper()
		prev := SetBatchPrefetch(prefetch)
		defer SetBatchPrefetch(prev)
		res, err := RunReplica(context.Background(), cfg, AlgoImpl, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireIdentical(t, run(true), run(false), "prefetch on vs off")
}

// TestRunReplicaMatchesReferencePath re-trains a replica through the
// reference implementations the zero-alloc path replaced — materialized
// batches, Clone-based layers (no activation workspace), the non-in-place
// loss, the unfused per-pass optimizer arithmetic — and requires the
// trained weights, predictions and losses to be bit-identical to
// RunReplica's streaming in-place fused path. This is the end-to-end pin
// that the performance work changed no result bit anywhere.
func TestRunReplicaMatchesReferencePath(t *testing.T) {
	for _, v := range []Variant{Control, AlgoImpl} {
		t.Run(v.String(), func(t *testing.T) {
			cfg := tinyTrainConfig()
			fast, err := RunReplica(context.Background(), cfg, v, 0)
			if err != nil {
				t.Fatal(err)
			}

			// Reference path: same seed policy, no workspace (layers Clone),
			// materialized epochs, reference loss, per-param gradients left
			// untouched by any arena.
			initS, shuffleS, augS, mode, entropy := SeedsFor(cfg.BaseSeed, v, 0)
			net := cfg.Model()
			net.Init(initS)
			dev := device.New(cfg.Device, mode, entropy)
			loader := data.NewLoader(cfg.Dataset, cfg.Dataset.Train, cfg.Batch, cfg.Augment)
			sgd := opt.NewSGD(cfg.Momentum, cfg.WeightDecay)
			ref := &RunResult{Variant: v}
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				lr := cfg.Schedule.LR(epoch)
				var epochLoss float64
				batches := loader.Batches(shuffleS.SplitIndex(epoch), augS.SplitIndex(epoch))
				for _, b := range batches {
					net.ZeroGrad()
					logits := net.Forward(dev, b.X, true)
					loss, dlogits := nn.SoftmaxCrossEntropy(dev, logits, b.Labels)
					net.Backward(dev, dlogits)
					sgd.Step(net.Params(), lr)
					epochLoss += loss
				}
				ref.EpochLoss = append(ref.EpochLoss, epochLoss/float64(len(batches)))
			}
			ref.Predictions = Predict(net, dev, cfg.Dataset, cfg.Dataset.Test, cfg.Batch)
			ref.Weights = net.WeightVector()

			requireIdentical(t, fast, ref, "optimized vs reference path")
		})
	}
}

func requireIdentical(t *testing.T, got, want *RunResult, label string) {
	t.Helper()
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("%s: weight counts differ: %d vs %d", label, len(got.Weights), len(want.Weights))
	}
	for i := range got.Weights {
		if got.Weights[i] != want.Weights[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", label, i, got.Weights[i], want.Weights[i])
		}
	}
	if len(got.Predictions) != len(want.Predictions) {
		t.Fatalf("%s: prediction counts differ", label)
	}
	for i := range got.Predictions {
		if got.Predictions[i] != want.Predictions[i] {
			t.Fatalf("%s: prediction %d differs: %d vs %d", label, i, got.Predictions[i], want.Predictions[i])
		}
	}
	if len(got.EpochLoss) != len(want.EpochLoss) {
		t.Fatalf("%s: epoch-loss counts differ", label)
	}
	for i := range got.EpochLoss {
		if got.EpochLoss[i] != want.EpochLoss[i] {
			t.Fatalf("%s: epoch %d loss differs: %v vs %v", label, i, got.EpochLoss[i], want.EpochLoss[i])
		}
	}
}

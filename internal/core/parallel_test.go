package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sched"
)

func parallelTestConfig(ds *data.Dataset) TrainConfig {
	return TrainConfig{
		Model:    func() *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(ds.Classes)) },
		Dataset:  ds,
		Device:   device.V100,
		Epochs:   2,
		Batch:    32,
		Schedule: opt.Constant(0.05),
		Momentum: 0.9,
		Augment:  data.Augment{Shift: 1, Flip: true},
		BaseSeed: 20220622,
	}
}

// TestRunVariantParallelBitIdentical is the load-bearing determinism
// guarantee behind the worker pool: for every variant, training replicas
// concurrently must produce byte-identical weights, predictions and loss
// curves to a sequential loop, because each replica's randomness is fully
// derived from (BaseSeed, variant, replica) — never from execution order.
func TestRunVariantParallelBitIdentical(t *testing.T) {
	ds := data.CIFAR10Like(data.ScaleTest)
	cfg := parallelTestConfig(ds)
	const replicas = 4

	for _, v := range []Variant{AlgoImpl, Algo, Impl, Control, DataOrderOnly} {
		t.Run(v.String(), func(t *testing.T) {
			t.Parallel()
			seq := make([]*RunResult, replicas)
			for r := 0; r < replicas; r++ {
				res, err := RunReplica(context.Background(), cfg, v, r)
				if err != nil {
					t.Fatal(err)
				}
				seq[r] = res
			}
			par, err := RunVariant(context.Background(), cfg, v, replicas)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < replicas; r++ {
				assertRunResultIdentical(t, seq[r], par[r])
			}
		})
	}
}

func assertRunResultIdentical(t *testing.T, want, got *RunResult) {
	t.Helper()
	if got.Variant != want.Variant || got.Replica != want.Replica {
		t.Fatalf("identity mismatch: got %s/%d, want %s/%d", got.Variant, got.Replica, want.Variant, want.Replica)
	}
	if got.TestAccuracy != want.TestAccuracy {
		t.Errorf("replica %d: accuracy %v != %v", want.Replica, got.TestAccuracy, want.TestAccuracy)
	}
	if len(got.Predictions) != len(want.Predictions) {
		t.Fatalf("replica %d: %d predictions, want %d", want.Replica, len(got.Predictions), len(want.Predictions))
	}
	for i := range want.Predictions {
		if got.Predictions[i] != want.Predictions[i] {
			t.Fatalf("replica %d: prediction %d differs: %d vs %d", want.Replica, i, got.Predictions[i], want.Predictions[i])
		}
	}
	if len(got.Weights) != len(want.Weights) {
		t.Fatalf("replica %d: %d weights, want %d", want.Replica, len(got.Weights), len(want.Weights))
	}
	for i := range want.Weights {
		if math.Float32bits(got.Weights[i]) != math.Float32bits(want.Weights[i]) {
			t.Fatalf("replica %d: weight %d not bit-identical: %x vs %x",
				want.Replica, i, math.Float32bits(got.Weights[i]), math.Float32bits(want.Weights[i]))
		}
	}
	if len(got.EpochLoss) != len(want.EpochLoss) {
		t.Fatalf("replica %d: %d epoch losses, want %d", want.Replica, len(got.EpochLoss), len(want.EpochLoss))
	}
	for i := range want.EpochLoss {
		if math.Float64bits(got.EpochLoss[i]) != math.Float64bits(want.EpochLoss[i]) {
			t.Fatalf("replica %d: epoch %d loss not bit-identical", want.Replica, i)
		}
	}
}

// TestRunVariantParallelSingleWorker pins the degenerate pool: with one
// worker the pool degrades to the caller running everything inline.
func TestRunVariantParallelSingleWorker(t *testing.T) {
	old := sched.Workers()
	sched.SetWorkers(1)
	defer sched.SetWorkers(old)

	ds := data.CIFAR10Like(data.ScaleTest)
	cfg := parallelTestConfig(ds)
	cfg.Epochs = 1
	res, err := RunVariant(context.Background(), cfg, Control, 2)
	if err != nil {
		t.Fatal(err)
	}
	// CONTROL fixes every noise source: the two replicas must agree exactly.
	for i := range res[0].Weights {
		if math.Float32bits(res[0].Weights[i]) != math.Float32bits(res[1].Weights[i]) {
			t.Fatalf("CONTROL replicas diverged at weight %d", i)
		}
	}
}

// TestRunVariantIntraGEMMBitIdentical is the end-to-end guarantee behind
// intra-kernel parallelism: with the sharding threshold forced to one
// element-op (every kernel shards), training at 4 workers must produce
// byte-identical weights, predictions and losses to a 1-worker run — for a
// CONTROL run and for a variant whose device draws scheduler entropy.
func TestRunVariantIntraGEMMBitIdentical(t *testing.T) {
	ds := data.CIFAR10Like(data.ScaleTest)
	cfg := parallelTestConfig(ds)
	cfg.Epochs = 1

	oldWorkers := sched.Workers()
	device.SetIntraOpThreshold(1)
	defer func() {
		device.SetIntraOpThreshold(0)
		sched.SetWorkers(oldWorkers)
	}()

	for _, v := range []Variant{Control, AlgoImpl} {
		sched.SetWorkers(1)
		want, err := RunReplica(context.Background(), cfg, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		sched.SetWorkers(4)
		got, err := RunReplica(context.Background(), cfg, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertRunResultIdentical(t, want, got)
	}
}

// TestWeightDecayPlumbed verifies TrainConfig.WeightDecay reaches the
// optimizer: a decayed run must end with a strictly smaller weight norm
// than an undecayed run, and zero decay must reproduce the old behaviour.
func TestWeightDecayPlumbed(t *testing.T) {
	ds := data.CIFAR10Like(data.ScaleTest)
	base := parallelTestConfig(ds)
	base.Epochs = 1

	plain, err := RunReplica(context.Background(), base, Control, 0)
	if err != nil {
		t.Fatal(err)
	}
	decayed := base
	decayed.WeightDecay = 0.05
	wd, err := RunReplica(context.Background(), decayed, Control, 0)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(w []float32) float64 {
		var s float64
		for _, v := range w {
			s += float64(v) * float64(v)
		}
		return s
	}
	if nw, np := norm(wd.Weights), norm(plain.Weights); nw >= np {
		t.Errorf("weight decay had no effect: decayed norm %v >= plain %v", nw, np)
	}
}

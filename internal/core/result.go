package core

import "math"

// This file is the per-replica result's serialization surface: RunResult
// is the unit the replica ledger persists and compares, so equality here
// is defined bit-for-bit (float comparisons go through raw bit patterns,
// never tolerances) — the same standard the paper holds replicas to.

// Equal reports whether two replica results are bit-identical: same
// variant and replica index, same predictions, and float fields equal by
// bit pattern (so NaNs compare equal to themselves and -0 != +0, exactly
// as a byte-level comparison of their serialized forms would decide).
func (r *RunResult) Equal(o *RunResult) bool {
	if r == nil || o == nil {
		return r == o
	}
	if r.Variant != o.Variant || r.Replica != o.Replica ||
		math.Float64bits(r.TestAccuracy) != math.Float64bits(o.TestAccuracy) ||
		len(r.Predictions) != len(o.Predictions) ||
		len(r.Weights) != len(o.Weights) ||
		len(r.EpochLoss) != len(o.EpochLoss) {
		return false
	}
	for i, p := range r.Predictions {
		if p != o.Predictions[i] {
			return false
		}
	}
	for i, w := range r.Weights {
		if math.Float32bits(w) != math.Float32bits(o.Weights[i]) {
			return false
		}
	}
	for i, l := range r.EpochLoss {
		if math.Float64bits(l) != math.Float64bits(o.EpochLoss[i]) {
			return false
		}
	}
	return true
}

package core

import (
	"math"

	"repro/internal/data"
	"repro/internal/metrics"
)

// Stability summarizes a replica population with the paper's three primary
// measures plus the dis-aggregated views.
type Stability struct {
	Variant  Variant
	Replicas int

	// AccMean and AccStd summarize top-1 test accuracy (percent).
	AccMean float64
	AccStd  float64
	// Churn is the mean pairwise predictive churn (percent of test set).
	Churn float64
	// L2 is the mean pairwise normalized weight distance.
	L2 float64
	// PerClassStd is the stddev of each class's accuracy across replicas
	// (percent); MaxPerClassStd is its maximum over classes.
	PerClassStd    []float64
	MaxPerClassStd float64
}

// Summarize computes the stability report for a replica population trained
// on a classification dataset with the given class count.
func Summarize(results []*RunResult, testLabels []int, classes int) Stability {
	st := Stability{Replicas: len(results)}
	if len(results) == 0 {
		return st
	}
	st.Variant = results[0].Variant

	accs := make([]float64, len(results))
	preds := make([][]int, len(results))
	weights := make([][]float32, len(results))
	for i, r := range results {
		accs[i] = r.TestAccuracy * 100
		preds[i] = r.Predictions
		weights[i] = r.Weights
	}
	st.AccMean = metrics.Mean(accs)
	st.AccStd = metrics.StdDev(accs)
	st.Churn = metrics.PairwiseMeanChurn(preds) * 100
	st.L2 = metrics.PairwiseMeanL2(weights)

	// Per-class accuracy spread across replicas.
	perClass := make([][]float64, classes) // class -> accuracy per replica
	for k := range perClass {
		perClass[k] = make([]float64, 0, len(results))
	}
	for _, r := range results {
		pc := metrics.PerClassAccuracy(r.Predictions, testLabels, classes)
		for k, v := range pc {
			if !math.IsNaN(v) {
				perClass[k] = append(perClass[k], v*100)
			}
		}
	}
	st.PerClassStd = make([]float64, classes)
	for k := range perClass {
		st.PerClassStd[k] = metrics.StdDev(perClass[k])
		if st.PerClassStd[k] > st.MaxPerClassStd {
			st.MaxPerClassStd = st.PerClassStd[k]
		}
	}
	return st
}

// SubgroupStability reports the stddev across replicas of accuracy, FPR and
// FNR for one sub-group, with relative scale against the overall dataset
// (the parenthesized multipliers of the paper's Table 5).
type SubgroupStability struct {
	Group                        string
	AccStd, FPRStd, FNRStd       float64
	AccScale, FPRScale, FNRScale float64 // relative to the "All" row
}

// SummarizeSubgroups computes Table 5 / Figure 3: per-subgroup stddev of
// accuracy, FPR and FNR across replicas, on an attribute split. The first
// entry is the overall dataset ("All") against which scales are normalized.
func SummarizeSubgroups(results []*RunResult, sp *data.Split) []SubgroupStability {
	groups := []struct {
		name string
		in   func(i int) bool
	}{
		{"All", nil},
		{"Male", func(i int) bool { return sp.Male[i] }},
		{"Female", func(i int) bool { return !sp.Male[i] }},
		{"Young", func(i int) bool { return !sp.Old[i] }},
		{"Old", func(i int) bool { return sp.Old[i] }},
	}
	out := make([]SubgroupStability, len(groups))
	var allAcc, allFPR, allFNR float64
	for gi, g := range groups {
		var accs, fprs, fnrs []float64
		for _, r := range results {
			rates := metrics.BinaryRatesOn(r.Predictions, sp.Y, g.in)
			accs = append(accs, rates.Accuracy*100)
			if !math.IsNaN(rates.FPR) {
				fprs = append(fprs, rates.FPR*100)
			}
			if !math.IsNaN(rates.FNR) {
				fnrs = append(fnrs, rates.FNR*100)
			}
		}
		s := SubgroupStability{
			Group:  g.name,
			AccStd: metrics.StdDev(accs),
			FPRStd: metrics.StdDev(fprs),
			FNRStd: metrics.StdDev(fnrs),
		}
		if gi == 0 {
			allAcc, allFPR, allFNR = s.AccStd, s.FPRStd, s.FNRStd
		}
		s.AccScale = scaleOf(s.AccStd, allAcc)
		s.FPRScale = scaleOf(s.FPRStd, allFPR)
		s.FNRScale = scaleOf(s.FNRStd, allFNR)
		out[gi] = s
	}
	return out
}

func scaleOf(v, base float64) float64 {
	if base == 0 {
		if v == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return v / base
}

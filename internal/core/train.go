package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/sched"
)

// batchPrefetch gates the loader's background batch assembly (on by
// default). Outputs are byte-identical either way — the data package pins
// that — so this is a diagnostic/test knob, not a result-affecting one:
// the checkpoint-bytes invariance test flips it, and constrained
// environments can switch the helper goroutines off.
var batchPrefetch atomic.Bool

func init() { batchPrefetch.Store(true) }

// SetBatchPrefetch toggles background batch assembly for subsequently
// started replicas and returns the previous setting.
func SetBatchPrefetch(on bool) bool { return batchPrefetch.Swap(on) }

// TrainConfig describes one dataset/model/hardware training recipe.
type TrainConfig struct {
	// Model constructs a fresh, uninitialized network. Each replica builds
	// its own copy.
	Model func() *nn.Sequential
	// Dataset supplies the train and test splits.
	Dataset *data.Dataset
	// Device is the simulated accelerator to train on.
	Device device.Config
	// Epochs, Batch, Schedule, Momentum, WeightDecay define the
	// optimization recipe. WeightDecay of zero (the default) disables L2
	// regularization.
	Epochs      int
	Batch       int
	Schedule    opt.Schedule
	Momentum    float64
	WeightDecay float64
	// Augment configures stochastic input augmentation.
	Augment data.Augment
	// BaseSeed anchors every seed policy; two configs with the same BaseSeed
	// and variant reproduce each other exactly.
	BaseSeed uint64
}

func (c TrainConfig) validate() error {
	if c.Model == nil || c.Dataset == nil {
		return fmt.Errorf("core: TrainConfig needs Model and Dataset")
	}
	if c.Epochs <= 0 || c.Batch <= 0 {
		return fmt.Errorf("core: TrainConfig needs positive Epochs and Batch, got %d/%d", c.Epochs, c.Batch)
	}
	if c.Schedule == nil {
		return fmt.Errorf("core: TrainConfig needs a Schedule")
	}
	return nil
}

// RunResult is the outcome of training one replica.
type RunResult struct {
	Variant      Variant
	Replica      int
	TestAccuracy float64
	// Predictions holds the argmax test-set predictions in split order.
	Predictions []int
	// Weights is the flattened trained weight vector.
	Weights []float32
	// EpochLoss records the mean training loss per epoch.
	EpochLoss []float64
}

// SeedsFor derives a replica's seed policy from the variant. Factors that
// vary get a replica-indexed stream; controlled factors reuse the base
// stream. The device entropy seed stands in for unobservable scheduler
// state (see DESIGN.md §5): replicas get distinct entropy when IMPL varies.
func SeedsFor(base uint64, v Variant, replica int) (initS, shuffleS, augS *rng.Stream, mode device.Mode, entropy *rng.Stream) {
	spec := v.Spec()
	root := rng.New(base)
	pick := func(label string, vary bool) *rng.Stream {
		s := root.Split(label)
		if vary {
			return s.SplitIndex(replica)
		}
		return s
	}
	initS = pick("init", spec.VaryInit)
	shuffleS = pick("shuffle", spec.VaryShuffle)
	augS = pick("augment", spec.VaryAugment)
	if spec.VaryImpl {
		mode = device.Default
		entropy = root.Split("hw-entropy").SplitIndex(replica)
	} else {
		mode = device.Deterministic
	}
	return initS, shuffleS, augS, mode, entropy
}

// RunReplica trains a single replica under the variant's seed policy and
// returns its trained state and test-set behaviour. Cancelling ctx aborts
// the training loop at the next batch boundary with ctx.Err(); a partial
// replica is never returned.
func RunReplica(ctx context.Context, cfg TrainConfig, v Variant, replica int) (*RunResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	initS, shuffleS, augS, mode, entropy := SeedsFor(cfg.BaseSeed, v, replica)

	net := cfg.Model()
	net.Init(initS)
	dev := device.New(cfg.Device, mode, entropy)
	// The network's activation workspace backs every kernel output and
	// grants the elementwise layers in-place updates; resetting it at each
	// batch boundary makes the warm training step allocation-free
	// (TestTrainStepZeroAllocSteadyState gates this in CI).
	ws := net.UseWorkspace()
	dev.SetWorkspace(ws)
	loader := data.NewLoader(cfg.Dataset, cfg.Dataset.Train, cfg.Batch, cfg.Augment)
	loader.SetPrefetch(batchPrefetch.Load())
	sgd := opt.NewSGD(cfg.Momentum, cfg.WeightDecay)

	res := &RunResult{Variant: v, Replica: replica, EpochLoss: make([]float64, 0, cfg.Epochs)}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		var epochLoss float64
		batches := 0
		ep := loader.Epoch(shuffleS.SplitIndex(epoch), augS.SplitIndex(epoch))
		var b data.Batch
		for ep.Next(&b) {
			if err := ctx.Err(); err != nil {
				ep.Close()
				return nil, err
			}
			net.ZeroGrad()
			logits := net.Forward(dev, b.X, true)
			loss, dlogits := nn.SoftmaxCrossEntropyInPlace(dev, logits, b.Labels)
			net.Backward(dev, dlogits)
			sgd.Step(net.Params(), lr)
			epochLoss += loss
			batches++
			ws.Reset()
		}
		res.EpochLoss = append(res.EpochLoss, epochLoss/float64(batches))
	}

	res.Predictions = Predict(net, dev, cfg.Dataset, cfg.Dataset.Test, cfg.Batch)
	correct := 0
	for i, p := range res.Predictions {
		if p == cfg.Dataset.Test.Y[i] {
			correct++
		}
	}
	res.TestAccuracy = float64(correct) / float64(len(res.Predictions))
	res.Weights = net.WeightVector()
	return res, nil
}

// Predict runs the network over a split in fixed order (no shuffling, no
// augmentation, eval-mode statistics) and returns argmax predictions. The
// predictions slice is preallocated at the split size and eval batches are
// streamed, so the only per-call allocation is the result itself.
func Predict(net *nn.Sequential, dev *device.Device, d *data.Dataset, sp *data.Split, batch int) []int {
	loader := data.NewLoader(d, sp, batch, data.Augment{})
	preds := make([]int, sp.N())
	ws := dev.Workspace()
	off := 0
	ep := loader.Epoch(nil, nil)
	var b data.Batch
	for ep.Next(&b) {
		logits := net.Forward(dev, b.X, false)
		n := logits.Dim(0)
		logits.ArgmaxRowsInto(preds[off : off+n])
		off += n
		if ws != nil {
			ws.Reset()
		}
	}
	return preds
}

// RunVariant trains `replicas` independent replicas under the variant,
// distributing them over the sched worker pool. Replicas are independent by
// construction — each derives its own seed policy from (BaseSeed, variant,
// replica index) via SeedsFor and owns its network, optimizer and simulated
// device — so the parallel schedule is bit-identical to a sequential loop.
// Cancelling ctx aborts every in-flight replica at its next batch boundary
// and RunVariant returns an error wrapping ctx.Err().
func RunVariant(ctx context.Context, cfg TrainConfig, v Variant, replicas int) ([]*RunResult, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("core: need at least one replica, got %d", replicas)
	}
	return sched.Map(ctx, replicas, func(r int) (*RunResult, error) {
		res, err := RunReplica(ctx, cfg, v, r)
		if err != nil {
			return nil, fmt.Errorf("core: variant %s replica %d: %w", v, r, err)
		}
		return res, nil
	})
}

// Package core implements the paper's primary contribution: a framework
// that trains populations of replicas under controlled noise variants —
// ALGO+IMPL (nothing controlled), ALGO (deterministic tooling, stochastic
// algorithm), IMPL (fixed algorithmic seeds, nondeterministic tooling), and
// CONTROL (everything fixed) — and measures model stability across the
// population: accuracy spread, predictive churn, weight-space L2 distance,
// per-class and sub-group variance.
package core

import (
	"fmt"
	"strings"
)

// Variant names one of the paper's experimental arms (Section 2.2), plus
// the data-order-only arm used by Figure 6.
type Variant int

// Experimental variants.
const (
	// AlgoImpl leaves every noise source active (the default training setup).
	AlgoImpl Variant = iota
	// Algo controls implementation noise (deterministic device), leaving
	// algorithmic factors stochastic.
	Algo
	// Impl fixes all algorithmic seeds, leaving tooling noise active.
	Impl
	// Control fixes algorithmic seeds and runs deterministic tooling;
	// replicas are bitwise identical.
	Control
	// DataOrderOnly fixes everything except the shuffle order — the Figure 6
	// arm showing that input ordering alone breaks determinism even on
	// deterministic hardware.
	DataOrderOnly
)

// String implements fmt.Stringer using the paper's labels.
func (v Variant) String() string {
	switch v {
	case AlgoImpl:
		return "ALGO+IMPL"
	case Algo:
		return "ALGO"
	case Impl:
		return "IMPL"
	case Control:
		return "CONTROL"
	case DataOrderOnly:
		return "DATA-ORDER"
	}
	return "UNKNOWN"
}

// StandardVariants are the three arms every comparison figure reports.
var StandardVariants = []Variant{AlgoImpl, Algo, Impl}

// ParseVariant maps a paper label onto its Variant, case-insensitively and
// tolerating the punctuation-free spellings ("algoimpl", "dataorder") that
// CLI flags and JSON specs tend to carry.
func ParseVariant(name string) (Variant, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "ALGO+IMPL", "ALGOIMPL", "ALGO_IMPL", "ALGO-IMPL":
		return AlgoImpl, nil
	case "ALGO":
		return Algo, nil
	case "IMPL":
		return Impl, nil
	case "CONTROL":
		return Control, nil
	case "DATA-ORDER", "DATAORDER", "DATA_ORDER":
		return DataOrderOnly, nil
	}
	return 0, fmt.Errorf("core: unknown variant %q (ALGO+IMPL, ALGO, IMPL, CONTROL or DATA-ORDER)", name)
}

// NoiseSpec says which stochastic factors vary across replicas under a
// variant. Everything not varied is pinned to the experiment's base seed.
type NoiseSpec struct {
	VaryInit    bool // random weight initialization
	VaryShuffle bool // data shuffling order
	VaryAugment bool // stochastic data augmentation
	VaryImpl    bool // accelerator accumulation ordering
}

// Spec returns the factor toggles for the variant.
func (v Variant) Spec() NoiseSpec {
	switch v {
	case AlgoImpl:
		return NoiseSpec{VaryInit: true, VaryShuffle: true, VaryAugment: true, VaryImpl: true}
	case Algo:
		return NoiseSpec{VaryInit: true, VaryShuffle: true, VaryAugment: true}
	case Impl:
		return NoiseSpec{VaryImpl: true}
	case DataOrderOnly:
		return NoiseSpec{VaryShuffle: true}
	default:
		return NoiseSpec{}
	}
}

package data

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// CelebA-like attribute fractions, derived from the paper's Table 3 counts
// (162 770 training images): P(Male) = 68261/162770, P(Old) = 35982/162770,
// and per-cell positive rates chosen so the marginal positive rates match
// the table — Male ≈ 2.0 %, Female ≈ 24.2 %, Young ≈ 16.0 %, Old ≈ 11.2 %.
const (
	celebAMaleFrac = 0.4194
	celebAOldFrac  = 0.2211

	posRateFemaleYoung = 0.258
	posRateFemaleOld   = 0.186
	posRateMaleYoung   = 0.024
	posRateMaleOld     = 0.008
)

// CelebALike generates the attribute dataset standing in for CelebA. Each
// example has two protected attributes (Male/Female, Young/Old) and one
// binary target whose positive rate per attribute cell matches the paper's
// Table 3 imbalance: positives are plentiful among young women and rare
// among men (0.8 % of the dataset) and old people (2.5 %). Cell counts are
// exact (not sampled), so even small scales contain at least one positive
// per cell and the Table 3 fractions reproduce exactly.
func CelebALike(s Scale) *Dataset {
	nTrain := s.pick(800, 2400, 8000)
	nTest := s.pick(400, 1000, 4000)
	world := rng.New(worldSeed + 5000)
	pat := newCelebAPatterns(world.Split("patterns"))
	return &Dataset{
		Name: "celebalike", Classes: 2, C: 3, H: 8, W: 8,
		Train: celebASplit(world.Split("train"), pat, nTrain),
		Test:  celebASplit(world.Split("test"), pat, nTest),
	}
}

// celebAPatterns holds the additive image components for each attribute.
type celebAPatterns struct {
	base, male, old, pos []float32
}

const celebAC, celebAH, celebAW = 3, 8, 8

func newCelebAPatterns(s *rng.Stream) *celebAPatterns {
	mk := func(label string, amp float64) []float32 {
		cfg := SynthConfig{C: celebAC, H: celebAH, W: celebAW, Classes: 1}
		p := makePrototypes(s.Split(label), cfg)[0].img
		for i := range p {
			p[i] *= float32(amp)
		}
		return p
	}
	return &celebAPatterns{
		base: mk("base", 1.0),
		male: mk("male", 0.8),
		old:  mk("old", 0.8),
		// The target signal is present but weak, leaving residual error
		// concentrated where positives are scarce.
		pos: mk("pos", 0.28),
	}
}

// celebACell describes one attribute cell and its exact example counts.
type celebACell struct {
	male, old bool
	frac      float64 // fraction of the dataset in this cell
	posRate   float64
}

func celebACells() []celebACell {
	fy := (1 - celebAMaleFrac) * (1 - celebAOldFrac)
	fo := (1 - celebAMaleFrac) * celebAOldFrac
	my := celebAMaleFrac * (1 - celebAOldFrac)
	mo := celebAMaleFrac * celebAOldFrac
	return []celebACell{
		{male: false, old: false, frac: fy, posRate: posRateFemaleYoung},
		{male: false, old: true, frac: fo, posRate: posRateFemaleOld},
		{male: true, old: false, frac: my, posRate: posRateMaleYoung},
		{male: true, old: true, frac: mo, posRate: posRateMaleOld},
	}
}

func celebASplit(s *rng.Stream, pat *celebAPatterns, n int) *Split {
	chw := celebAC * celebAH * celebAW
	var xs []float32
	var ys []int
	var males, olds []bool

	for ci, cell := range celebACells() {
		cellN := int(float64(n)*cell.frac + 0.5)
		if cellN < 2 {
			cellN = 2
		}
		pos := int(float64(cellN)*cell.posRate + 0.5)
		if pos < 1 {
			pos = 1
		}
		cs := s.SplitIndex(ci)
		for i := 0; i < cellN; i++ {
			label := 0
			if i < pos {
				label = 1
			}
			img := make([]float32, chw)
			renderCelebA(cs, pat, cell.male, cell.old, label == 1, img)
			xs = append(xs, img...)
			ys = append(ys, label)
			males = append(males, cell.male)
			olds = append(olds, cell.old)
		}
	}
	// Interleave cells deterministically so batches are mixed even before
	// the training loader shuffles.
	perm := rng.New(worldSeed + uint64(n)).Perm(len(ys))
	x := tensor.New(len(ys), celebAC, celebAH, celebAW)
	y := make([]int, len(ys))
	male := make([]bool, len(ys))
	old := make([]bool, len(ys))
	for dst, src := range perm {
		copy(x.Data()[dst*chw:(dst+1)*chw], xs[src*chw:(src+1)*chw])
		y[dst] = ys[src]
		male[dst] = males[src]
		old[dst] = olds[src]
	}
	return &Split{X: x, Y: y, Male: male, Old: old}
}

func renderCelebA(s *rng.Stream, pat *celebAPatterns, male, old, positive bool, dst []float32) {
	const noise = 0.9
	for i := range dst {
		v := pat.base[i]
		if male {
			v += pat.male[i]
		}
		if old {
			v += pat.old[i]
		}
		if positive {
			v += pat.pos[i]
		}
		dst[i] = v + float32(s.Norm()*noise)
	}
}

// SubgroupCounts tallies positive/negative counts per protected attribute,
// reproducing the paper's Table 3 for a split.
type SubgroupCounts struct {
	Group    string
	Positive int
	Negative int
}

// CountSubgroups reports Table 3-style counts for Male/Female/Young/Old.
func CountSubgroups(sp *Split) []SubgroupCounts {
	groups := []struct {
		name string
		in   func(i int) bool
	}{
		{"Male", func(i int) bool { return sp.Male[i] }},
		{"Female", func(i int) bool { return !sp.Male[i] }},
		{"Young", func(i int) bool { return !sp.Old[i] }},
		{"Old", func(i int) bool { return sp.Old[i] }},
	}
	out := make([]SubgroupCounts, len(groups))
	for gi, g := range groups {
		out[gi].Group = g.name
		for i := range sp.Y {
			if !g.in(i) {
				continue
			}
			if sp.Y[i] == 1 {
				out[gi].Positive++
			} else {
				out[gi].Negative++
			}
		}
	}
	return out
}

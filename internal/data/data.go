// Package data provides the synthetic datasets that stand in for the
// paper's CIFAR-10/100, ImageNet and CelebA workloads (the originals are a
// data gate this offline reproduction cannot ship; see DESIGN.md §2).
//
// Each generator is a deterministic function of a "world seed" that is kept
// separate from every experiment seed: the dataset is part of the fixture,
// not a noise source. What the paper needs from its datasets is their
// statistical shape — confusable classes that leave residual error for
// churn to act on, a long tail of harder classes (CIFAR-100), and the
// CelebA attribute imbalance (Table 3) that drives disproportionate
// sub-group variance — and the generators reproduce exactly those shapes.
package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Split is one train or test partition.
type Split struct {
	X *tensor.Tensor // (N, C, H, W)
	Y []int          // class labels, or binary target for attribute datasets

	// Attribute datasets (CelebA-like) also carry protected attributes.
	Male []bool
	Old  []bool
}

// N returns the number of examples.
func (s *Split) N() int { return len(s.Y) }

// Dataset bundles a train and test split with its geometry.
type Dataset struct {
	Name    string
	Classes int
	C, H, W int
	Train   *Split
	Test    *Split
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d/%d train/test, %d classes, %dx%dx%d",
		d.Name, d.Train.N(), d.Test.N(), d.Classes, d.C, d.H, d.W)
}

// Example copies example i of the split into a fresh (C,H,W)-shaped slice
// inside dst, which must have room for C*H*W values.
func (s *Split) Example(i int, dst []float32) {
	chw := s.X.Len() / s.N()
	copy(dst, s.X.Data()[i*chw:(i+1)*chw])
}

package data

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestSynthesizeDeterministic(t *testing.T) {
	a := CIFAR10Like(ScaleTest)
	b := CIFAR10Like(ScaleTest)
	if !tensor.Equal(a.Train.X, b.Train.X) {
		t.Fatal("dataset generation is nondeterministic")
	}
	for i := range a.Train.Y {
		if a.Train.Y[i] != b.Train.Y[i] {
			t.Fatal("labels differ between generations")
		}
	}
}

func TestCIFAR10LikeGeometry(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	if d.Classes != 10 || d.C != 3 {
		t.Fatalf("geometry: %s", d)
	}
	if d.Train.N() != 240 || d.Test.N() != 160 {
		t.Fatalf("test-scale sizes: train %d test %d", d.Train.N(), d.Test.N())
	}
	if got := d.Train.X.Shape(); got[0] != 240 || got[1] != 3 || got[2] != 8 || got[3] != 8 {
		t.Fatalf("train X shape %v", got)
	}
}

func TestClassBalance(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	counts := make([]int, d.Classes)
	for _, y := range d.Train.Y {
		counts[y]++
	}
	for k, c := range counts {
		if c != 24 {
			t.Fatalf("class %d has %d train examples, want 24", k, c)
		}
	}
}

func TestCIFAR100LikeHasHundredClasses(t *testing.T) {
	d := CIFAR100Like(ScaleTest)
	if d.Classes != 100 {
		t.Fatalf("classes = %d", d.Classes)
	}
	seen := map[int]bool{}
	for _, y := range d.Train.Y {
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatalf("only %d distinct labels present", len(seen))
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-prototype classifier on the training means must beat chance
	// comfortably on the test set, or the datasets are unlearnable noise.
	d := CIFAR10Like(ScaleTest)
	chw := d.C * d.H * d.W
	means := make([][]float64, d.Classes)
	counts := make([]int, d.Classes)
	for k := range means {
		means[k] = make([]float64, chw)
	}
	xd := d.Train.X.Data()
	for i, y := range d.Train.Y {
		counts[y]++
		for j := 0; j < chw; j++ {
			means[y][j] += float64(xd[i*chw+j])
		}
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	td := d.Test.X.Data()
	correct := 0
	for i, y := range d.Test.Y {
		best, bestDist := -1, math.Inf(1)
		for k := range means {
			var dist float64
			for j := 0; j < chw; j++ {
				diff := float64(td[i*chw+j]) - means[k][j]
				dist += diff * diff
			}
			if dist < bestDist {
				best, bestDist = k, dist
			}
		}
		if best == y {
			correct++
		}
	}
	acc := float64(correct) / float64(d.Test.N())
	if acc < 0.3 {
		t.Fatalf("nearest-prototype accuracy %.2f; dataset not learnable", acc)
	}
	if acc > 0.995 {
		t.Fatalf("nearest-prototype accuracy %.3f; dataset trivially separable, no residual error for churn", acc)
	}
}

func TestCelebACellCountsMatchTable3Shape(t *testing.T) {
	d := CelebALike(ScaleQuick)
	counts := CountSubgroups(d.Train)
	byName := map[string]SubgroupCounts{}
	total := 0
	for _, c := range counts {
		byName[c.Group] = c
	}
	total = byName["Male"].Positive + byName["Male"].Negative +
		byName["Female"].Positive + byName["Female"].Negative

	maleFrac := float64(byName["Male"].Positive+byName["Male"].Negative) / float64(total)
	if math.Abs(maleFrac-celebAMaleFrac) > 0.02 {
		t.Errorf("male fraction %.3f, want ~%.3f", maleFrac, celebAMaleFrac)
	}
	oldFrac := float64(byName["Old"].Positive+byName["Old"].Negative) / float64(total)
	if math.Abs(oldFrac-celebAOldFrac) > 0.02 {
		t.Errorf("old fraction %.3f, want ~%.3f", oldFrac, celebAOldFrac)
	}
	// The defining imbalance: male positives are rare (~2 % of males),
	// female positives common (~24 %).
	malePosRate := float64(byName["Male"].Positive) / float64(byName["Male"].Positive+byName["Male"].Negative)
	femalePosRate := float64(byName["Female"].Positive) / float64(byName["Female"].Positive+byName["Female"].Negative)
	if malePosRate > 0.05 {
		t.Errorf("male positive rate %.3f, want ~0.02", malePosRate)
	}
	if femalePosRate < 0.15 || femalePosRate > 0.35 {
		t.Errorf("female positive rate %.3f, want ~0.24", femalePosRate)
	}
}

func TestCelebAEveryCellHasPositives(t *testing.T) {
	d := CelebALike(ScaleTest)
	for _, sp := range []*Split{d.Train, d.Test} {
		cell := map[[2]bool][2]int{}
		for i, y := range sp.Y {
			key := [2]bool{sp.Male[i], sp.Old[i]}
			c := cell[key]
			c[y]++
			cell[key] = c
		}
		if len(cell) != 4 {
			t.Fatalf("expected 4 attribute cells, got %d", len(cell))
		}
		for key, c := range cell {
			if c[1] == 0 {
				t.Fatalf("cell male=%v old=%v has no positives", key[0], key[1])
			}
		}
	}
}

func TestCelebAAttributesAlignedWithImages(t *testing.T) {
	d := CelebALike(ScaleTest)
	if len(d.Train.Male) != d.Train.N() || len(d.Train.Old) != d.Train.N() {
		t.Fatal("attribute slices misaligned with examples")
	}
}

func TestLoaderCoversAllExamplesOnce(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Train, 32, Augment{})
	batches := l.Batches(rng.New(1), rng.New(1))
	seen := map[int]int{}
	total := 0
	for _, b := range batches {
		total += len(b.Labels)
		for _, idx := range b.Indices {
			seen[idx]++
		}
	}
	if total != d.Train.N() {
		t.Fatalf("epoch covers %d examples, want %d", total, d.Train.N())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("example %d appeared %d times", idx, n)
		}
	}
}

func TestLoaderShuffleDependsOnStream(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Train, 64, Augment{})
	a := l.Batches(rng.New(1), rng.New(1))[0].Indices
	b := l.Batches(rng.New(1), rng.New(1))[0].Indices
	c := l.Batches(rng.New(2), rng.New(2))[0].Indices
	sameAB, sameAC := true, true
	for i := range a {
		if a[i] != b[i] {
			sameAB = false
		}
		if a[i] != c[i] {
			sameAC = false
		}
	}
	if !sameAB {
		t.Fatal("same stream seed gave different shuffles")
	}
	if sameAC {
		t.Fatal("different stream seeds gave identical shuffles")
	}
}

func TestLoaderNilStreamIsIdentityOrder(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Test, 32, Augment{Shift: 1, Flip: true})
	batches := l.Batches(nil, nil)
	idx := 0
	for _, b := range batches {
		for bi, src := range b.Indices {
			if src != idx {
				t.Fatalf("nil-stream order not identity at %d", idx)
			}
			// And no augmentation applied: batch content equals the split.
			chw := d.C * d.H * d.W
			for j := 0; j < chw; j++ {
				if b.X.Data()[bi*chw+j] != d.Test.X.Data()[src*chw+j] {
					t.Fatal("nil-stream epoch mutated example content")
				}
			}
			idx++
		}
	}
}

func TestAugmentFlipIsInvolution(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Train, 1, Augment{Flip: true})
	chw := d.C * d.H * d.W
	orig := make([]float32, chw)
	d.Train.Example(0, orig)
	img := append([]float32(nil), orig...)
	// Flip twice manually through the internal helper.
	flip := func(im []float32) {
		for c := 0; c < d.C; c++ {
			for y := 0; y < d.H; y++ {
				row := im[(c*d.H+y)*d.W : (c*d.H+y+1)*d.W]
				for x, xx := 0, d.W-1; x < xx; x, xx = x+1, xx-1 {
					row[x], row[xx] = row[xx], row[x]
				}
			}
		}
	}
	flip(img)
	flip(img)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatal("double flip is not identity")
		}
	}
	_ = l
}

func TestAugmentShiftKeepsShape(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Train, 16, Augment{Shift: 2, Flip: true})
	batches := l.Batches(rng.New(9), rng.New(9))
	for _, b := range batches {
		if b.X.Dim(1) != 3 || b.X.Dim(2) != 8 || b.X.Dim(3) != 8 {
			t.Fatalf("augmented batch shape %v", b.X.Shape())
		}
	}
}

func TestImageNetLikeScalesClassCount(t *testing.T) {
	if got := ImageNetLike(ScaleTest).Classes; got != 20 {
		t.Fatalf("test-scale ImageNetLike classes = %d", got)
	}
	if got := ImageNetLike(ScaleQuick).Classes; got != 50 {
		t.Fatalf("quick-scale ImageNetLike classes = %d", got)
	}
}

func TestSplitExampleCopies(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	chw := d.C * d.H * d.W
	buf := make([]float32, chw)
	d.Train.Example(3, buf)
	buf[0] += 100
	if d.Train.X.Data()[3*chw] == buf[0] {
		t.Fatal("Example must copy, not alias")
	}
}

package data

import "fmt"

// Scale selects how large the synthetic workloads are. The paper's
// quantities are all relative (stddevs, churn fractions, overhead ratios),
// so the experiment shape survives scaling; smaller scales exist so the
// whole suite runs on one CPU core.
type Scale int

const (
	// ScaleTest is the smallest fixture, used by unit tests.
	ScaleTest Scale = iota
	// ScaleQuick is the default for CLI runs and benchmarks.
	ScaleQuick
	// ScaleFull is the largest shipped configuration (still synthetic).
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleQuick:
		return "quick"
	default:
		return "full"
	}
}

// ParseScale is the inverse of String: it maps a scale name from a CLI
// flag or API request body onto its Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return ScaleTest, nil
	case "quick":
		return ScaleQuick, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("data: unknown scale %q (test, quick or full)", name)
}

func (s Scale) pick(test, quick, full int) int {
	switch s {
	case ScaleTest:
		return test
	case ScaleQuick:
		return quick
	default:
		return full
	}
}

// worldSeed fixes every dataset; experiments never vary it.
const worldSeed = 0xC1FA_2022

// CIFAR10Like is the 10-class stand-in for CIFAR-10: 3×8×8 images, heavily
// confusable neighbor classes so test accuracy saturates around 60–95 %
// depending on the model, leaving residual error for churn.
func CIFAR10Like(s Scale) *Dataset {
	return Synthesize(SynthConfig{
		Name:          "cifar10like",
		Classes:       10,
		PerClassTrain: s.pick(24, 64, 200),
		PerClassTest:  s.pick(16, 40, 100),
		C:             3, H: 8, W: 8,
		Noise:     0.55,
		Confusion: 0.55,
		Seed:      worldSeed + 10,
	})
}

// CIFAR100Like is the 100-class stand-in for CIFAR-100: the same image
// geometry but 10× the classes with far fewer examples per class, which is
// what produces the paper's much larger per-class accuracy variance
// (Fig. 4b: up to 23× the top-line stddev).
func CIFAR100Like(s Scale) *Dataset {
	return Synthesize(SynthConfig{
		Name:          "cifar100like",
		Classes:       100,
		PerClassTrain: s.pick(6, 12, 24),
		PerClassTest:  s.pick(3, 5, 10),
		C:             3, H: 8, W: 8,
		Noise:     0.5,
		Confusion: 0.6,
		Seed:      worldSeed + 100,
	})
}

// ImageNetLike stands in for the paper's ImageNet ResNet-50 workload. The
// real dataset is 1000 classes at 224²; the reproduction keeps the defining
// property for this paper — many classes, few effective examples per class,
// moderate residual error — at a tractable 8×8 geometry. Documented as a
// substitution in DESIGN.md.
func ImageNetLike(s Scale) *Dataset {
	return Synthesize(SynthConfig{
		Name:          "imagenetlike",
		Classes:       s.pick(20, 50, 100),
		PerClassTrain: s.pick(8, 12, 20),
		PerClassTest:  s.pick(3, 5, 10),
		C:             3, H: 8, W: 8,
		Noise:     0.45,
		Confusion: 0.5,
		Seed:      worldSeed + 1000,
	})
}

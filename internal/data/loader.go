package data

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Augment configures the stochastic input transformations the paper lists
// as algorithmic noise sources (random crop via shift padding, horizontal
// flip). Augmentation draws come from the loader's algorithmic stream, so
// the IMPL and CONTROL variants make them reproducible with a fixed seed.
type Augment struct {
	// Shift pads by Shift pixels and randomly crops back (a random
	// translation of up to ±Shift).
	Shift int
	// Flip enables random horizontal flips.
	Flip bool
}

// Enabled reports whether any augmentation is active.
func (a Augment) Enabled() bool { return a.Shift > 0 || a.Flip }

// Batch is one training or evaluation batch. Batches yielded by a
// streaming Epoch are views into loader-owned double buffers: the tensor,
// label and index slices are valid only until the next call to Next (or
// Close), and callers must not mutate or retain them. The materializing
// Batches form returns independently owned copies.
type Batch struct {
	X       *tensor.Tensor // (B, C, H, W)
	Labels  []int
	Indices []int // positions in the source split
}

// Loader shuffles, augments and batches a split. The shuffle order and
// augmentation draws come from the stream passed to Epoch, which the noise
// framework derives from the replica's algorithmic seed policy.
//
// Batch assembly is allocation-free at steady state: the shuffle order,
// label/index slices and tensor headers are loader-owned and reused across
// epochs, the two X buffers (double-buffered so a prefetched batch never
// overwrites the one in use) come from the shared scratch pool, and the
// augmentation shift scratch is pooled too. A Loader supports one active
// Epoch at a time; exhaust it (Next returned false) or Close it before
// starting the next.
type Loader struct {
	split    *Split
	c, h, w  int
	batch    int
	aug      Augment
	prefetch bool

	order []int       // shuffle order, reused across epochs
	bufs  [2]batchBuf // double-buffered batch assembly targets
	shift []float32   // augmentation shift scratch (pooled per epoch)
	ep    Epoch       // reused epoch state
}

// batchBuf is one assembly target: a pooled X buffer plus loader-owned
// label/index slices and a reusable tensor header.
type batchBuf struct {
	x       []float32
	labels  []int
	indices []int
	hdr     tensor.Tensor
	n       int // examples assembled into this buf
}

// NewLoader builds a loader over sp with the given batch size.
func NewLoader(d *Dataset, sp *Split, batch int, aug Augment) *Loader {
	if batch <= 0 {
		panic("data: batch size must be positive")
	}
	return &Loader{split: sp, c: d.C, h: d.H, w: d.W, batch: batch, aug: aug}
}

// SetPrefetch toggles background batch assembly: with prefetch on, a
// single helper goroutine assembles batch k+1 while the caller computes on
// batch k. The assembler is the only goroutine drawing augmentation stream
// values and it assembles batches in epoch order, so every byte of every
// batch — and the stream state after the epoch — is identical with
// prefetch on or off (TestEpochStreamingMatchesMaterialized pins this).
// Takes effect at the next Epoch call.
func (l *Loader) SetPrefetch(on bool) { l.prefetch = on }

// Epoch starts one streaming pass over the split, shuffled with draws from
// shuffleStream and augmented with draws from augStream. Either stream may
// be nil to disable that factor independently — the noise framework uses
// this to isolate data-order noise (paper Fig. 6) from augmentation noise.
// Both nil gives the fixed evaluation order.
//
// Iterate with Next; call Close to abandon an epoch early (Next returning
// false closes it automatically). The returned Epoch is loader-owned and
// valid until the next Epoch call.
func (l *Loader) Epoch(shuffleStream, augStream *rng.Stream) *Epoch {
	n := l.split.N()
	if cap(l.order) < n {
		l.order = make([]int, n)
	}
	l.order = l.order[:n]
	for i := range l.order {
		l.order[i] = i
	}
	if shuffleStream != nil {
		shuffleStream.Split("shuffle").Shuffle(n, func(i, j int) {
			l.order[i], l.order[j] = l.order[j], l.order[i]
		})
	}
	var aug *rng.Stream
	if augStream != nil {
		aug = augStream.Split("augment")
	}

	chw := l.c * l.h * l.w
	for i := range l.bufs {
		buf := &l.bufs[i]
		buf.x = tensor.GetScratch(l.batch * chw)
		if cap(buf.labels) < l.batch {
			buf.labels = make([]int, l.batch)
			buf.indices = make([]int, l.batch)
		}
		buf.labels = buf.labels[:l.batch]
		buf.indices = buf.indices[:l.batch]
	}
	if aug != nil && l.aug.Shift > 0 {
		l.shift = tensor.GetScratch(chw)
	}

	ep := &l.ep
	*ep = Epoch{l: l, aug: aug, n: n}
	if l.prefetch {
		ep.async = true
		ep.filled = make(chan *batchBuf, 2)
		ep.free = make(chan *batchBuf, 2)
		ep.stop = make(chan struct{})
		ep.free <- &l.bufs[0]
		ep.free <- &l.bufs[1]
		go ep.assembler()
	}
	return ep
}

// Batches is the materializing form of Epoch: the full pass as
// independently owned batches, byte-identical to the streaming iterator
// (it is a thin wrapper that copies each streamed batch out of the shared
// buffers). Tests and offline tooling use this; the training loop streams.
func (l *Loader) Batches(shuffleStream, augStream *rng.Stream) []Batch {
	ep := l.Epoch(shuffleStream, augStream)
	defer ep.Close()
	var out []Batch
	var b Batch
	for ep.Next(&b) {
		out = append(out, Batch{
			X:       b.X.Clone(),
			Labels:  append([]int(nil), b.Labels...),
			Indices: append([]int(nil), b.Indices...),
		})
	}
	return out
}

// assemble fills buf with examples order[start:end], drawing augmentation
// values in example order. Exactly one goroutine calls this at a time —
// the caller in sync mode, the single assembler goroutine in prefetch mode
// — so the stream draw sequence is identical either way.
func (l *Loader) assemble(buf *batchBuf, start, end int, aug *rng.Stream) {
	chw := l.c * l.h * l.w
	bs := end - start
	buf.n = bs
	xd := buf.x[:bs*chw]
	for bi, src := range l.order[start:end] {
		dst := xd[bi*chw : (bi+1)*chw]
		l.split.Example(src, dst)
		if aug != nil && l.aug.Enabled() {
			l.augment(aug, dst)
		}
		buf.labels[bi] = l.split.Y[src]
		buf.indices[bi] = src
	}
	tensor.FromSliceInto(&buf.hdr, xd, bs, l.c, l.h, l.w)
}

// Epoch is a streaming pass over a split. Obtain one from Loader.Epoch;
// see Batch for the lifetime of what Next yields.
type Epoch struct {
	l   *Loader
	aug *rng.Stream
	n   int

	// Sync mode: next assembly offset and which double buffer to fill.
	next int
	cur  int

	// Prefetch mode: buffers cycle caller → free → assembler → filled →
	// caller. stop aborts the assembler on early Close.
	async    bool
	filled   chan *batchBuf
	free     chan *batchBuf
	stop     chan struct{}
	inflight *batchBuf

	closed bool
}

// assembler is the prefetch goroutine: it assembles every batch of the
// epoch in order, blocking on a free buffer before each and handing the
// result to filled. It owns the augmentation stream and the shift scratch
// for the duration of the epoch.
func (e *Epoch) assembler() {
	defer close(e.filled)
	l := e.l
	for start := 0; start < e.n; start += l.batch {
		var buf *batchBuf
		select {
		case buf = <-e.free:
		case <-e.stop:
			return
		}
		end := start + l.batch
		if end > e.n {
			end = e.n
		}
		l.assemble(buf, start, end, e.aug)
		select {
		case e.filled <- buf:
		case <-e.stop:
			return
		}
	}
}

// Next advances to the next batch, filling b with views into the loader's
// buffers (see Batch for their lifetime). It returns false — and releases
// the epoch's pooled buffers — when the pass is complete.
func (e *Epoch) Next(b *Batch) bool {
	if e.closed {
		return false
	}
	var buf *batchBuf
	if e.async {
		if e.inflight != nil {
			e.free <- e.inflight
			e.inflight = nil
		}
		var ok bool
		buf, ok = <-e.filled
		if !ok {
			e.release()
			return false
		}
		e.inflight = buf
	} else {
		if e.next >= e.n {
			e.release()
			return false
		}
		end := e.next + e.l.batch
		if end > e.n {
			end = e.n
		}
		buf = &e.l.bufs[e.cur]
		e.cur ^= 1
		e.l.assemble(buf, e.next, end, e.aug)
		e.next = end
	}
	b.X = &buf.hdr
	b.Labels = buf.labels[:buf.n]
	b.Indices = buf.indices[:buf.n]
	return true
}

// Close abandons the epoch: it stops the prefetch goroutine (if any) and
// returns the pooled buffers. Safe to call multiple times and after Next
// has returned false.
func (e *Epoch) Close() {
	if e.closed {
		return
	}
	if e.async {
		close(e.stop)
		for range e.filled {
			// Drain until the assembler closes the channel.
		}
	}
	e.release()
}

// release returns the epoch's pooled buffers. Only called once the
// assembler (if any) has exited, so no goroutine still writes to them.
func (e *Epoch) release() {
	e.closed = true
	l := e.l
	for i := range l.bufs {
		tensor.PutScratch(l.bufs[i].x)
		l.bufs[i].x = nil
	}
	if l.shift != nil {
		tensor.PutScratch(l.shift)
		l.shift = nil
	}
}

// augment applies shift-crop and flip in place to one (C,H,W) example.
// The shift scratch is the loader's pooled buffer; only the single batch
// assembler calls this, so it is never shared.
func (l *Loader) augment(s *rng.Stream, img []float32) {
	if l.aug.Shift > 0 {
		dx := s.Intn(2*l.aug.Shift+1) - l.aug.Shift
		dy := s.Intn(2*l.aug.Shift+1) - l.aug.Shift
		if dx != 0 || dy != 0 {
			shifted := l.shift[:len(img)]
			for c := 0; c < l.c; c++ {
				for y := 0; y < l.h; y++ {
					sy := y + dy
					for x := 0; x < l.w; x++ {
						sx := x + dx
						var v float32
						if sy >= 0 && sy < l.h && sx >= 0 && sx < l.w {
							v = img[(c*l.h+sy)*l.w+sx]
						}
						shifted[(c*l.h+y)*l.w+x] = v
					}
				}
			}
			copy(img, shifted)
		}
	}
	if l.aug.Flip && s.Bernoulli(0.5) {
		for c := 0; c < l.c; c++ {
			for y := 0; y < l.h; y++ {
				row := img[(c*l.h+y)*l.w : (c*l.h+y+1)*l.w]
				for x, xx := 0, l.w-1; x < xx; x, xx = x+1, xx-1 {
					row[x], row[xx] = row[xx], row[x]
				}
			}
		}
	}
}

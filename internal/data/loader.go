package data

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Augment configures the stochastic input transformations the paper lists
// as algorithmic noise sources (random crop via shift padding, horizontal
// flip). Augmentation draws come from the loader's algorithmic stream, so
// the IMPL and CONTROL variants make them reproducible with a fixed seed.
type Augment struct {
	// Shift pads by Shift pixels and randomly crops back (a random
	// translation of up to ±Shift).
	Shift int
	// Flip enables random horizontal flips.
	Flip bool
}

// Enabled reports whether any augmentation is active.
func (a Augment) Enabled() bool { return a.Shift > 0 || a.Flip }

// Batch is one training or evaluation batch.
type Batch struct {
	X       *tensor.Tensor // (B, C, H, W)
	Labels  []int
	Indices []int // positions in the source split
}

// Loader shuffles, augments and batches a split. The shuffle order and
// augmentation draws come from the stream passed to Epoch, which the noise
// framework derives from the replica's algorithmic seed policy.
type Loader struct {
	split   *Split
	c, h, w int
	batch   int
	aug     Augment
}

// NewLoader builds a loader over sp with the given batch size.
func NewLoader(d *Dataset, sp *Split, batch int, aug Augment) *Loader {
	if batch <= 0 {
		panic("data: batch size must be positive")
	}
	return &Loader{split: sp, c: d.C, h: d.H, w: d.W, batch: batch, aug: aug}
}

// Epoch returns the batches of one pass over the split, shuffled with
// draws from shuffleStream and augmented with draws from augStream. Either
// stream may be nil to disable that factor independently — the noise
// framework uses this to isolate data-order noise (paper Fig. 6) from
// augmentation noise. Both nil gives the fixed evaluation order.
func (l *Loader) Epoch(shuffleStream, augStream *rng.Stream) []Batch {
	n := l.split.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if shuffleStream != nil {
		shuffleStream.Split("shuffle").Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	if augStream != nil {
		augStream = augStream.Split("augment")
	}

	chw := l.c * l.h * l.w
	var batches []Batch
	for start := 0; start < n; start += l.batch {
		end := start + l.batch
		if end > n {
			end = n
		}
		b := Batch{
			X:       tensor.New(end-start, l.c, l.h, l.w),
			Labels:  make([]int, end-start),
			Indices: make([]int, end-start),
		}
		xd := b.X.Data()
		for bi, src := range order[start:end] {
			dst := xd[bi*chw : (bi+1)*chw]
			l.split.Example(src, dst)
			if augStream != nil && l.aug.Enabled() {
				l.augment(augStream, dst)
			}
			b.Labels[bi] = l.split.Y[src]
			b.Indices[bi] = src
		}
		batches = append(batches, b)
	}
	return batches
}

// augment applies shift-crop and flip in place to one (C,H,W) example.
func (l *Loader) augment(s *rng.Stream, img []float32) {
	if l.aug.Shift > 0 {
		dx := s.Intn(2*l.aug.Shift+1) - l.aug.Shift
		dy := s.Intn(2*l.aug.Shift+1) - l.aug.Shift
		if dx != 0 || dy != 0 {
			shifted := make([]float32, len(img))
			for c := 0; c < l.c; c++ {
				for y := 0; y < l.h; y++ {
					sy := y + dy
					for x := 0; x < l.w; x++ {
						sx := x + dx
						var v float32
						if sy >= 0 && sy < l.h && sx >= 0 && sx < l.w {
							v = img[(c*l.h+sy)*l.w+sx]
						}
						shifted[(c*l.h+y)*l.w+x] = v
					}
				}
			}
			copy(img, shifted)
		}
	}
	if l.aug.Flip && s.Bernoulli(0.5) {
		for c := 0; c < l.c; c++ {
			for y := 0; y < l.h; y++ {
				row := img[(c*l.h+y)*l.w : (c*l.h+y+1)*l.w]
				for x, xx := 0, l.w-1; x < xx; x, xx = x+1, xx-1 {
					row[x], row[xx] = row[xx], row[x]
				}
			}
		}
	}
}

package data

import "testing"

// TestParseScaleRoundTrip pins ParseScale as the exact inverse of
// Scale.String for every scale, plus rejection of unknown names.
func TestParseScaleRoundTrip(t *testing.T) {
	for _, s := range []Scale{ScaleTest, ScaleQuick, ScaleFull} {
		got, err := ParseScale(s.String())
		if err != nil {
			t.Fatalf("ParseScale(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseScale(%q) = %v, want %v", s.String(), got, s)
		}
	}
	for _, bad := range []string{"", "gigantic", "Test", "QUICK", "test "} {
		if _, err := ParseScale(bad); err == nil {
			t.Errorf("ParseScale(%q) accepted", bad)
		}
	}
}

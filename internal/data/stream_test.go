package data

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// collectStreamed runs one streaming epoch and deep-copies every yielded
// batch, so the copies can be compared against another pass after the
// loader's double buffers have been recycled.
func collectStreamed(l *Loader, shuffleSeed, augSeed uint64) []Batch {
	ep := l.Epoch(rng.New(shuffleSeed), rng.New(augSeed))
	var out []Batch
	var b Batch
	for ep.Next(&b) {
		out = append(out, Batch{
			X:       b.X.Clone(),
			Labels:  append([]int(nil), b.Labels...),
			Indices: append([]int(nil), b.Indices...),
		})
	}
	return out
}

func batchesEqual(t *testing.T, got, want []Batch, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batches, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		gd, wd := g.X.Data(), w.X.Data()
		if len(gd) != len(wd) {
			t.Fatalf("%s: batch %d has %d elements, want %d", label, i, len(gd), len(wd))
		}
		for j := range gd {
			// Bitwise comparison: the streamed pipeline must be
			// byte-identical, not merely numerically close.
			if gd[j] != wd[j] {
				t.Fatalf("%s: batch %d X[%d] = %v, want %v", label, i, j, gd[j], wd[j])
			}
		}
		for j := range g.Labels {
			if g.Labels[j] != w.Labels[j] {
				t.Fatalf("%s: batch %d label[%d] = %d, want %d", label, i, j, g.Labels[j], w.Labels[j])
			}
			if g.Indices[j] != w.Indices[j] {
				t.Fatalf("%s: batch %d index[%d] = %d, want %d", label, i, j, g.Indices[j], w.Indices[j])
			}
		}
	}
}

// TestEpochStreamingMatchesMaterialized pins the loader's central
// invariant: the streaming epoch yields batches byte-identical — X data,
// labels, source indices — to the materialized form, with prefetch off and
// on, under shuffle plus full augmentation, across several seeds and batch
// sizes (including a partial final batch).
func TestEpochStreamingMatchesMaterialized(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	for _, batch := range []int{32, 7, 240} {
		for seed := uint64(1); seed <= 3; seed++ {
			ref := NewLoader(d, d.Train, batch, Augment{Shift: 1, Flip: true})
			want := ref.Batches(rng.New(seed), rng.New(seed+100))

			sync := NewLoader(d, d.Train, batch, Augment{Shift: 1, Flip: true})
			sync.SetPrefetch(false)
			batchesEqual(t, collectStreamed(sync, seed, seed+100), want, "prefetch off")

			pre := NewLoader(d, d.Train, batch, Augment{Shift: 1, Flip: true})
			pre.SetPrefetch(true)
			batchesEqual(t, collectStreamed(pre, seed, seed+100), want, "prefetch on")
		}
	}
}

// TestEpochRepeatable pins that the loader can be reused across epochs: the
// same streams replayed over the same loader reproduce the same batches,
// i.e. no state from a previous epoch (order, scratch contents,
// augmentation draws) leaks into the next.
func TestEpochRepeatable(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Train, 32, Augment{Shift: 1, Flip: true})
	l.SetPrefetch(true)
	first := collectStreamed(l, 5, 6)
	// An interleaved epoch with different seeds must not perturb a replay.
	_ = collectStreamed(l, 7, 8)
	batchesEqual(t, collectStreamed(l, 5, 6), first, "replayed epoch")
}

// TestEpochClose pins early abandonment: Close mid-epoch releases the
// pooled buffers (with and without the prefetch goroutine), and the loader
// remains usable for a full subsequent epoch.
func TestEpochClose(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	for _, prefetch := range []bool{false, true} {
		l := NewLoader(d, d.Train, 32, Augment{Shift: 1, Flip: true})
		l.SetPrefetch(prefetch)
		want := l.Batches(rng.New(1), rng.New(2))

		ep := l.Epoch(rng.New(9), rng.New(9))
		var b Batch
		if !ep.Next(&b) || !ep.Next(&b) {
			t.Fatalf("prefetch=%v: epoch ended after < 2 batches", prefetch)
		}
		ep.Close()
		ep.Close() // idempotent
		if ep.Next(&b) {
			t.Fatalf("prefetch=%v: Next succeeded after Close", prefetch)
		}

		batchesEqual(t, collectStreamed(l, 1, 2), want, "epoch after Close")
	}
}

// TestEpochEvalOrder pins the nil-stream contract used by evaluation: no
// shuffling, no augmentation, examples in split order.
func TestEpochEvalOrder(t *testing.T) {
	d := CIFAR10Like(ScaleTest)
	l := NewLoader(d, d.Test, 32, Augment{Shift: 1, Flip: true})
	ep := l.Epoch(nil, nil)
	var b Batch
	pos := 0
	chw := d.C * d.H * d.W
	example := make([]float32, chw)
	for ep.Next(&b) {
		for i, src := range b.Indices {
			if src != pos {
				t.Fatalf("index %d in batch, want %d (eval order must be fixed)", src, pos)
			}
			d.Test.Example(src, example)
			row := b.X.Data()[i*chw : (i+1)*chw]
			if !tensor.Equal(tensor.FromSlice(row, chw), tensor.FromSlice(example, chw)) {
				t.Fatalf("example %d augmented or corrupted in eval epoch", src)
			}
			pos++
		}
	}
	if pos != d.Test.N() {
		t.Fatalf("eval epoch yielded %d examples, want %d", pos, d.Test.N())
	}
}

package data

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// SynthConfig parameterizes the class-conditional image generator.
type SynthConfig struct {
	Name          string
	Classes       int
	PerClassTrain int
	PerClassTest  int
	C, H, W       int
	// Noise is the per-pixel Gaussian noise stddev. Higher noise leaves more
	// residual test error for churn to act on.
	Noise float64
	// Confusion in [0,1) blends each sample toward a "neighbor" class
	// prototype, creating confusable class pairs.
	Confusion float64
	// Seed is the world seed; the dataset is a pure function of the config.
	Seed uint64
}

// Synthesize generates a dataset: each class has a smooth prototype image
// (random low-frequency Fourier components per channel), and each sample is
// prototype + confusion·neighborPrototype + spatial jitter + pixel noise.
// Class prototypes are drawn i.i.d., so some pairs land close together —
// those pairs carry most of the classification error, giving the per-class
// error spread that Figure 4 decomposes.
func Synthesize(cfg SynthConfig) *Dataset {
	world := rng.New(cfg.Seed)
	protos := makePrototypes(world.Split("prototypes"), cfg)

	train := synthSplit(world.Split("train"), cfg, protos, cfg.PerClassTrain)
	test := synthSplit(world.Split("test"), cfg, protos, cfg.PerClassTest)
	return &Dataset{
		Name: cfg.Name, Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W,
		Train: train, Test: test,
	}
}

// prototype holds one class's template image.
type prototype struct {
	img []float32 // C*H*W
}

func makePrototypes(s *rng.Stream, cfg SynthConfig) []prototype {
	protos := make([]prototype, cfg.Classes)
	for k := range protos {
		ps := s.SplitIndex(k)
		img := make([]float32, cfg.C*cfg.H*cfg.W)
		// Sum of a few random low-frequency waves per channel.
		const waves = 4
		for c := 0; c < cfg.C; c++ {
			for wv := 0; wv < waves; wv++ {
				fx := ps.Uniform(0.3, 2.2)
				fy := ps.Uniform(0.3, 2.2)
				phase := ps.Uniform(0, 2*math.Pi)
				amp := ps.Uniform(0.3, 1.0)
				for y := 0; y < cfg.H; y++ {
					for x := 0; x < cfg.W; x++ {
						v := amp * math.Sin(2*math.Pi*(fx*float64(x)/float64(cfg.W)+
							fy*float64(y)/float64(cfg.H))+phase)
						img[(c*cfg.H+y)*cfg.W+x] += float32(v)
					}
				}
			}
		}
		protos[k] = prototype{img: img}
	}
	return protos
}

func synthSplit(s *rng.Stream, cfg SynthConfig, protos []prototype, perClass int) *Split {
	n := cfg.Classes * perClass
	chw := cfg.C * cfg.H * cfg.W
	x := tensor.New(n, cfg.C, cfg.H, cfg.W)
	y := make([]int, n)
	xd := x.Data()
	idx := 0
	for k := 0; k < cfg.Classes; k++ {
		neighbor := (k + 1) % cfg.Classes
		for i := 0; i < perClass; i++ {
			dst := xd[idx*chw : (idx+1)*chw]
			renderSample(s, cfg, protos[k].img, protos[neighbor].img, dst)
			y[idx] = k
			idx++
		}
	}
	return &Split{X: x, Y: y}
}

// renderSample writes one jittered, noisy blend of proto and neighbor.
func renderSample(s *rng.Stream, cfg SynthConfig, proto, neighbor, dst []float32) {
	// Per-sample confusion weight in [0, Confusion).
	w := float32(s.Float64() * cfg.Confusion)
	// Spatial jitter: shift by up to ±1 pixel in each axis.
	dx := s.Intn(3) - 1
	dy := s.Intn(3) - 1
	for c := 0; c < cfg.C; c++ {
		for yy := 0; yy < cfg.H; yy++ {
			sy := clamp(yy+dy, 0, cfg.H-1)
			for xx := 0; xx < cfg.W; xx++ {
				sx := clamp(xx+dx, 0, cfg.W-1)
				src := (c*cfg.H+sy)*cfg.W + sx
				v := (1-w)*proto[src] + w*neighbor[src]
				dst[(c*cfg.H+yy)*cfg.W+xx] = v + float32(s.Norm()*cfg.Noise)
			}
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

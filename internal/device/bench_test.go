package device

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// TestMain lets the BENCH harness pin the worker pool from the environment
// (NNRAND_WORKERS=n) for multi-worker trajectory runs.
func TestMain(m *testing.M) {
	if s := os.Getenv("NNRAND_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			sched.SetWorkers(n)
		}
	}
	os.Exit(m.Run())
}

// Micro-benchmarks for the simulated kernels: the cost of the
// accumulation-order machinery relative to the plain deterministic path.

func benchMatMul(b *testing.B, cfg Config, mode Mode) {
	a := tensor.New(32, 512)
	c := tensor.New(512, 64)
	rng.New(1).FillNorm(a.Data(), 0, 1)
	rng.New(2).FillNorm(c.Data(), 0, 1)
	dev := New(cfg, mode, rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MatMul(a, c, false, false)
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, cfg := range []Config{CPU, V100, RTX5000TC, TPUv2} {
		for _, mode := range []Mode{Default, Deterministic} {
			b.Run(fmt.Sprintf("%s/%s", cfg.Name, mode), func(b *testing.B) {
				benchMatMul(b, cfg, mode)
			})
		}
	}
}

// BenchmarkMatMulLarge is a GEMM above the intra-op threshold (the
// single-large-cell regime): 192×512 × 512×512 ≈ 50M element-ops. With
// NNRAND_WORKERS>1 the sharded variant splits rows across the pool.
func BenchmarkMatMulLarge(b *testing.B) {
	a := tensor.New(192, 512)
	c := tensor.New(512, 512)
	rng.New(1).FillNorm(a.Data(), 0, 1)
	rng.New(2).FillNorm(c.Data(), 0, 1)
	for _, bc := range []struct {
		name      string
		threshold int64
	}{
		{"serial", -1},
		{"sharded", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			SetIntraOpThreshold(bc.threshold)
			defer SetIntraOpThreshold(0)
			dev := New(V100, Default, rng.New(3))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.MatMul(a, c, false, false)
			}
		})
	}
}

// BenchmarkMatMulIm2Col compares the fused conv-forward GEMM against the
// materialize-then-multiply path it replaced.
func BenchmarkMatMulIm2Col(b *testing.B) {
	g := tensor.ConvGeom{Batch: 32, InC: 16, InH: 8, InW: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := tensor.New(g.Batch, g.InC, g.InH, g.InW)
	w := tensor.New(g.OutC, g.ColRows())
	rng.New(8).FillNorm(x.Data(), 0, 1)
	rng.New(9).FillNorm(w.Data(), 0, 1)
	b.Run("fused", func(b *testing.B) {
		dev := New(V100, Default, rng.New(10))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dev.MatMulIm2Col(w, x, g)
		}
	})
	b.Run("materialized", func(b *testing.B) {
		dev := New(V100, Default, rng.New(10))
		col := tensor.New(g.ColRows(), g.ColCols())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.Im2Col(x, g, col)
			dev.MatMul(w, col, false, false)
		}
	})
}

func BenchmarkReduceSum(b *testing.B) {
	xs := make([]float32, 1<<16)
	rng.New(4).FillNorm(xs, 0, 1)
	for _, cfg := range []Config{CPU, V100} {
		b.Run(cfg.Name, func(b *testing.B) {
			dev := New(cfg, Default, rng.New(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.ReduceSum(xs)
			}
		})
	}
}

func BenchmarkCol2Im(b *testing.B) {
	g := tensor.ConvGeom{Batch: 8, InC: 8, InH: 8, InW: 8, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := tensor.New(g.ColRows(), g.ColCols())
	rng.New(6).FillNorm(col.Data(), 0, 1)
	for _, mode := range []Mode{Default, Deterministic} {
		b.Run(mode.String(), func(b *testing.B) {
			dev := New(V100, mode, rng.New(7))
			dst := tensor.New(8, 8, 8, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Zero()
				dev.Col2Im(col, g, dst)
			}
		})
	}
}

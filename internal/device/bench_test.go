package device

import (
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Micro-benchmarks for the simulated kernels: the cost of the
// accumulation-order machinery relative to the plain deterministic path.

func benchMatMul(b *testing.B, cfg Config, mode Mode) {
	a := tensor.New(32, 512)
	c := tensor.New(512, 64)
	rng.New(1).FillNorm(a.Data(), 0, 1)
	rng.New(2).FillNorm(c.Data(), 0, 1)
	dev := New(cfg, mode, rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.MatMul(a, c, false, false)
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, cfg := range []Config{CPU, V100, RTX5000TC, TPUv2} {
		for _, mode := range []Mode{Default, Deterministic} {
			b.Run(fmt.Sprintf("%s/%s", cfg.Name, mode), func(b *testing.B) {
				benchMatMul(b, cfg, mode)
			})
		}
	}
}

func BenchmarkReduceSum(b *testing.B) {
	xs := make([]float32, 1<<16)
	rng.New(4).FillNorm(xs, 0, 1)
	for _, cfg := range []Config{CPU, V100} {
		b.Run(cfg.Name, func(b *testing.B) {
			dev := New(cfg, Default, rng.New(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.ReduceSum(xs)
			}
		})
	}
}

func BenchmarkCol2Im(b *testing.B) {
	g := tensor.ConvGeom{Batch: 8, InC: 8, InH: 8, InW: 8, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := tensor.New(g.ColRows(), g.ColCols())
	rng.New(6).FillNorm(col.Data(), 0, 1)
	for _, mode := range []Mode{Default, Deterministic} {
		b.Run(mode.String(), func(b *testing.B) {
			dev := New(V100, mode, rng.New(7))
			dst := tensor.New(8, 8, 8, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Zero()
				dev.Col2Im(col, g, dst)
			}
		})
	}
}

package device

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// withIntraParallel runs fn with intra-kernel sharding forced on (threshold
// 1 element-op) and a multi-worker pool, restoring both afterwards. Tests in
// this package run sequentially, so mutating the globals is safe.
func withIntraParallel(t *testing.T, workers int, fn func()) {
	t.Helper()
	oldWorkers := sched.Workers()
	SetIntraOpThreshold(1)
	sched.SetWorkers(workers)
	defer func() {
		SetIntraOpThreshold(0)
		sched.SetWorkers(oldWorkers)
	}()
	fn()
}

// TestMatMulRandomizedVsReference drives the blocked packed-panel kernel
// through ~200 random (m, k, n, transA, transB, part, mode, seed) tuples and
// requires byte-identical output to the retained naive reference kernel —
// first serially, then with intra-kernel row sharding forced on across a
// 4-worker pool (the CI -race run makes the sharded pass double as a data
// race check on the disjoint-output-slice argument).
func TestMatMulRandomizedVsReference(t *testing.T) {
	const tuples = 200
	s := rng.New(42)
	dims := s.Split("dims")
	pick := s.Split("pick")
	for i := 0; i < tuples; i++ {
		m := 1 + dims.Intn(48)
		k := 1 + dims.Intn(160)
		n := 1 + dims.Intn(64)
		transA := pick.Intn(2) == 1
		transB := pick.Intn(2) == 1
		cfg := Catalog[pick.Intn(len(Catalog))]
		mode := Mode(pick.Intn(2))
		seed := uint64(i)*7919 + 13

		data := rng.New(seed)
		var a, b *tensor.Tensor
		if transA {
			a = testMatrix(data.Split("a"), k, m)
		} else {
			a = testMatrix(data.Split("a"), m, k)
		}
		if transB {
			b = testMatrix(data.Split("b"), n, k)
		} else {
			b = testMatrix(data.Split("b"), k, n)
		}

		devRef := New(cfg, mode, rng.New(seed).Split("hw"))
		want := refMatMul(devRef, devRef.entropy, a, b, transA, transB)

		devOpt := New(cfg, mode, rng.New(seed).Split("hw"))
		if got := devOpt.MatMul(a, b, transA, transB); !tensor.Equal(got, want) {
			t.Fatalf("tuple %d (%s/%s m=%d k=%d n=%d tA=%v tB=%v): serial blocked kernel diverged (max diff %g)",
				i, cfg.Name, mode, m, k, n, transA, transB, tensor.MaxAbsDiff(got, want))
		}

		devPar := New(cfg, mode, rng.New(seed).Split("hw"))
		withIntraParallel(t, 4, func() {
			if got := devPar.MatMul(a, b, transA, transB); !tensor.Equal(got, want) {
				t.Fatalf("tuple %d (%s/%s m=%d k=%d n=%d tA=%v tB=%v): sharded blocked kernel diverged (max diff %g)",
					i, cfg.Name, mode, m, k, n, transA, transB, tensor.MaxAbsDiff(got, want))
			}
		})
	}
}

// convGeoms returns a spread of convolution geometries covering stride,
// padding, multi-channel and panel-boundary-crossing column counts.
func convGeoms() []tensor.ConvGeom {
	return []tensor.ConvGeom{
		{Batch: 2, InC: 3, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Batch: 1, InC: 1, InH: 5, InW: 7, OutC: 2, KH: 3, KW: 3, Stride: 2, Pad: 0},
		{Batch: 3, InC: 2, InH: 9, InW: 9, OutC: 5, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{Batch: 2, InC: 4, InH: 16, InW: 16, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}, // ColCols=512+: crosses a panel boundary
		{Batch: 1, InC: 2, InH: 4, InW: 4, OutC: 2, KH: 1, KW: 1, Stride: 1, Pad: 0},
	}
}

// TestFusedIm2ColGEMMBitIdentical checks that the fused conv GEMMs
// (MatMulIm2Col, MatMulIm2ColT) are byte-identical to a MatMul over an
// explicitly materialized column matrix, for every part and mode, serially
// and under forced intra-kernel sharding.
func TestFusedIm2ColGEMMBitIdentical(t *testing.T) {
	for gi, g := range convGeoms() {
		s := rng.New(uint64(100 + gi))
		x := tensor.New(g.Batch, g.InC, g.InH, g.InW)
		xd := x.Data()
		src := testMatrix(s.Split("x"), 1, len(xd))
		copy(xd, src.Data())
		w := testMatrix(s.Split("w"), g.OutC, g.ColRows())
		dyMat := testMatrix(s.Split("dy"), g.OutC, g.ColCols())
		col := tensor.New(g.ColRows(), g.ColCols())
		tensor.Im2Col(x, g, col)

		for _, cfg := range Catalog {
			for _, mode := range []Mode{Default, Deterministic} {
				seed := uint64(gi*31 + 5)
				wantFwd := New(cfg, mode, rng.New(seed).Split("hw")).MatMul(w, col, false, false)
				wantBwd := New(cfg, mode, rng.New(seed).Split("hw")).MatMul(dyMat, col, false, true)

				check := func(label string) {
					t.Helper()
					gotFwd := New(cfg, mode, rng.New(seed).Split("hw")).MatMulIm2Col(w, x, g)
					if !tensor.Equal(gotFwd, wantFwd) {
						t.Fatalf("geom %d %s/%s %s: MatMulIm2Col diverged from materialized GEMM (max diff %g)",
							gi, cfg.Name, mode, label, tensor.MaxAbsDiff(gotFwd, wantFwd))
					}
					gotBwd := New(cfg, mode, rng.New(seed).Split("hw")).MatMulIm2ColT(dyMat, x, g)
					if !tensor.Equal(gotBwd, wantBwd) {
						t.Fatalf("geom %d %s/%s %s: MatMulIm2ColT diverged from materialized GEMM (max diff %g)",
							gi, cfg.Name, mode, label, tensor.MaxAbsDiff(gotBwd, wantBwd))
					}
				}
				check("serial")
				withIntraParallel(t, 4, func() { check("sharded") })
			}
		}
	}
}

// TestSumRowsShardedBitIdentical pins the row-sharded SumRows (with its
// pre-drawn per-row chunk orders) against the serial kernel on the same
// entropy seed.
func TestSumRowsShardedBitIdentical(t *testing.T) {
	for _, cfg := range []Config{CPU, V100, TPUv2} {
		for _, mode := range []Mode{Default, Deterministic} {
			m := testMatrix(rng.New(9).Split("m"), 64, 700)
			want := New(cfg, mode, rng.New(9).Split("hw")).SumRows(m)
			devPar := New(cfg, mode, rng.New(9).Split("hw"))
			withIntraParallel(t, 4, func() {
				got := devPar.SumRows(m)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: sharded SumRows[%d] = %v, want %v", cfg.Name, mode, i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestSumColsShardedBitIdentical does the same for the column-sharded
// SumCols.
func TestSumColsShardedBitIdentical(t *testing.T) {
	for _, cfg := range []Config{CPU, V100, TPUv2} {
		for _, mode := range []Mode{Default, Deterministic} {
			m := testMatrix(rng.New(11).Split("m"), 300, 256)
			want := New(cfg, mode, rng.New(11).Split("hw")).SumCols(m)
			devPar := New(cfg, mode, rng.New(11).Split("hw"))
			withIntraParallel(t, 4, func() {
				got := devPar.SumCols(m)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s: sharded SumCols[%d] = %v, want %v", cfg.Name, mode, i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestKernelLaunchesInvariantUnderSharding: a kernel launch counts once no
// matter how many shards execute it, so telemetry and tests that rely on
// KernelLaunches see identical counts at any worker budget.
func TestKernelLaunchesInvariantUnderSharding(t *testing.T) {
	run := func(dev *Device) int64 {
		s := rng.New(21)
		a := testMatrix(s.Split("a"), 32, 64)
		b := testMatrix(s.Split("b"), 64, 48)
		out := dev.MatMul(a, b, false, false)
		dev.SumRows(out)
		dev.SumCols(out)
		dev.ReduceSum(out.Data())
		return dev.KernelLaunches()
	}
	serial := run(New(V100, Default, rng.New(5).Split("hw")))
	var sharded int64
	withIntraParallel(t, 4, func() {
		sharded = run(New(V100, Default, rng.New(5).Split("hw")))
	})
	if serial != sharded {
		t.Fatalf("KernelLaunches changed under sharding: serial=%d sharded=%d", serial, sharded)
	}
	if serial != 4 {
		t.Fatalf("expected 4 launches, got %d", serial)
	}
}

// TestIntraShardsPolicy pins the shard-count policy: below threshold or
// with a single worker the kernel stays serial; shards never exceed the
// worker count or give a shard fewer than minRows rows.
func TestIntraShardsPolicy(t *testing.T) {
	oldWorkers := sched.Workers()
	defer sched.SetWorkers(oldWorkers)

	sched.SetWorkers(8)
	SetIntraOpThreshold(1000)
	defer SetIntraOpThreshold(0)

	if got := intraShards(100, 999, 4); got != 1 {
		t.Fatalf("below threshold: shards=%d, want 1", got)
	}
	if got := intraShards(100, 1000, 4); got != 8 {
		t.Fatalf("at threshold, ample rows: shards=%d, want 8", got)
	}
	if got := intraShards(9, 1000, 4); got != 2 {
		t.Fatalf("9 rows, minRows 4: shards=%d, want 2", got)
	}
	if got := intraShards(7, 1000, 4); got != 1 {
		t.Fatalf("7 rows, minRows 4: shards=%d, want 1 (too few rows)", got)
	}
	SetIntraOpThreshold(-1)
	if got := intraShards(100, 1<<40, 4); got != 1 {
		t.Fatalf("disabled: shards=%d, want 1", got)
	}
	SetIntraOpThreshold(0)
	sched.SetWorkers(1)
	if got := intraShards(100, 1<<40, 4); got != 1 {
		t.Fatalf("single worker: shards=%d, want 1", got)
	}
}

// Package device simulates the accelerators the paper evaluates: NVIDIA
// GPUs with different CUDA-core counts (P100, V100, RTX5000, T4), the
// RTX5000's Tensor Cores, and the systolic, single-threaded TPUv2.
//
// Simulation model. Real accelerators differ from a CPU in exactly one way
// that matters to this paper: the order in which floating-point partial
// sums are combined. GPUs commit thread-block partials in scheduler order
// (atomicAdd, split-K GEMM), so the order — and therefore the float32
// rounding — varies run to run. TPUs pump values through a systolic array
// in a fixed order, so they are deterministic given identical input order.
// Tensor Cores are systolic tiles for matmul, but every op a Tensor Core
// cannot run falls back to the nondeterministic CUDA-core path.
//
// Each simulated device therefore executes the same arithmetic as the CPU
// reference, but routes every reduction through internal/accum with an
// accumulation order drawn from a hardware-entropy stream. Chunk counts
// scale with the simulated CUDA-core count, so cards with more cores (V100)
// exhibit more reordering noise — reproducing the paper's Figure 5 finding.
// In Deterministic mode all orders are fixed, modelling the framework
// determinism patches (TF_DETERMINISTIC_OPS / cuDNN deterministic algos).
package device

import "fmt"

// Arch identifies a simulated accelerator micro-architecture.
type Arch string

// Simulated architectures. The GPU generations matter to the overhead model
// (internal/profile): deterministic algorithm penalties shrink with newer
// generations, as the paper measures (P100 >> V100 > T4).
const (
	ArchCPU     Arch = "CPU"
	ArchPascal  Arch = "Pascal"
	ArchVolta   Arch = "Volta"
	ArchTuring  Arch = "Turing"
	ArchTPU     Arch = "TPU"
	ArchUnknown Arch = ""
)

// Config describes a simulated part.
type Config struct {
	Name        string
	Arch        Arch
	CUDACores   int  // 0 for non-GPU devices
	TensorCores bool // route matmuls through systolic fp16 tiles
	Systolic    bool // TPU-style fully deterministic execution
}

// Catalog of the parts evaluated in the paper (core counts from Section 2.2).
var (
	CPU       = Config{Name: "CPU", Arch: ArchCPU}
	P100      = Config{Name: "P100", Arch: ArchPascal, CUDACores: 3584}
	V100      = Config{Name: "V100", Arch: ArchVolta, CUDACores: 5120}
	RTX5000   = Config{Name: "RTX5000", Arch: ArchTuring, CUDACores: 3072}
	RTX5000TC = Config{Name: "RTX5000 TC", Arch: ArchTuring, CUDACores: 3072, TensorCores: true}
	T4        = Config{Name: "T4", Arch: ArchTuring, CUDACores: 2560}
	TPUv2     = Config{Name: "TPUv2", Arch: ArchTPU, Systolic: true}
)

// Catalog lists every simulated part, in the order used by figures.
var Catalog = []Config{CPU, P100, V100, RTX5000, RTX5000TC, T4, TPUv2}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Catalog {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("device: unknown device %q", name)
}

// reorderChunks returns how many scheduler-ordered partial sums a reduction
// of length n splits into on this part. More CUDA cores mean more thread
// blocks in flight and therefore more reordering freedom.
func (c Config) reorderChunks(n int) int {
	if c.Systolic || c.CUDACores == 0 {
		return 1
	}
	chunks := c.CUDACores / 256 // P100: 14, V100: 20, RTX5000: 12, T4: 10
	if chunks < 2 {
		chunks = 2
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// Package device simulates the accelerators the paper evaluates: NVIDIA
// GPUs with different CUDA-core counts (P100, V100, RTX5000, T4), the
// RTX5000's Tensor Cores, and the systolic, single-threaded TPUv2.
//
// Simulation model. Real accelerators differ from a CPU in exactly one way
// that matters to this paper: the order in which floating-point partial
// sums are combined. GPUs commit thread-block partials in scheduler order
// (atomicAdd, split-K GEMM), so the order — and therefore the float32
// rounding — varies run to run. TPUs pump values through a systolic array
// in a fixed order, so they are deterministic given identical input order.
// Tensor Cores are systolic tiles for matmul, but every op a Tensor Core
// cannot run falls back to the nondeterministic CUDA-core path.
//
// Each simulated device therefore executes the same arithmetic as the CPU
// reference, but routes every reduction through internal/accum with an
// accumulation order drawn from a hardware-entropy stream. Chunk counts
// scale with the simulated CUDA-core count, so cards with more cores (V100)
// exhibit more reordering noise — reproducing the paper's Figure 5 finding.
// In Deterministic mode all orders are fixed, modelling the framework
// determinism patches (TF_DETERMINISTIC_OPS / cuDNN deterministic algos).
package device

import (
	"fmt"
	"strings"
)

// Arch identifies a simulated accelerator micro-architecture.
type Arch string

// Simulated architectures. The GPU generations matter to the overhead model
// (internal/profile): deterministic algorithm penalties shrink with newer
// generations, as the paper measures (P100 >> V100 > T4).
const (
	ArchCPU     Arch = "CPU"
	ArchPascal  Arch = "Pascal"
	ArchVolta   Arch = "Volta"
	ArchTuring  Arch = "Turing"
	ArchTPU     Arch = "TPU"
	ArchUnknown Arch = ""
)

// Config describes a simulated part.
type Config struct {
	Name        string
	Arch        Arch
	CUDACores   int  // 0 for non-GPU devices
	TensorCores bool // route matmuls through systolic fp16 tiles
	Systolic    bool // TPU-style fully deterministic execution
}

// Catalog of the parts evaluated in the paper (core counts from Section 2.2).
var (
	CPU       = Config{Name: "CPU", Arch: ArchCPU}
	P100      = Config{Name: "P100", Arch: ArchPascal, CUDACores: 3584}
	V100      = Config{Name: "V100", Arch: ArchVolta, CUDACores: 5120}
	RTX5000   = Config{Name: "RTX5000", Arch: ArchTuring, CUDACores: 3072}
	RTX5000TC = Config{Name: "RTX5000 TC", Arch: ArchTuring, CUDACores: 3072, TensorCores: true}
	T4        = Config{Name: "T4", Arch: ArchTuring, CUDACores: 2560}
	TPUv2     = Config{Name: "TPUv2", Arch: ArchTPU, Systolic: true}
)

// Catalog lists every simulated part, in the order used by figures.
var Catalog = []Config{CPU, P100, V100, RTX5000, RTX5000TC, T4, TPUv2}

// Alias is the canonical lookup key of a device name: lowercase with all
// punctuation and spacing dropped, so "RTX5000 TC", "rtx5000tc" and
// "rtx5000-tc" address the same part. ByName matches on it.
func Alias(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ByName returns the catalog entry matching the given name or alias,
// case- and punctuation-insensitively ("v100", "RTX5000 TC", "rtx5000tc").
func ByName(name string) (Config, error) {
	want := Alias(name)
	for _, c := range Catalog {
		if Alias(c.Name) == want {
			return c, nil
		}
	}
	names := make([]string, len(Catalog))
	for i, c := range Catalog {
		names[i] = c.Name
	}
	return Config{}, fmt.Errorf("device: unknown device %q (known: %s)", name, strings.Join(names, ", "))
}

// Info is the JSON-ready description of one catalog entry, served by
// `nnrand devices` and GET /v1/devices so users can compose grid specs
// without reading source.
type Info struct {
	Name        string `json:"name"`
	Alias       string `json:"alias"`
	Arch        string `json:"arch"`
	CUDACores   int    `json:"cuda_cores,omitempty"`
	TensorCores bool   `json:"tensor_cores,omitempty"`
	Systolic    bool   `json:"systolic,omitempty"`
	// Deterministic reports whether replicas on this part are bit-identical
	// given identical inputs (systolic execution or no parallel reduction).
	Deterministic bool `json:"deterministic"`
}

// Describe lists the catalog as Info values, in catalog order.
func Describe() []Info {
	out := make([]Info, len(Catalog))
	for i, c := range Catalog {
		out[i] = Info{
			Name:          c.Name,
			Alias:         Alias(c.Name),
			Arch:          string(c.Arch),
			CUDACores:     c.CUDACores,
			TensorCores:   c.TensorCores,
			Systolic:      c.Systolic,
			Deterministic: c.DeterministicExecution(),
		}
	}
	return out
}

// DeterministicExecution reports whether replicas on this part are
// bit-identical given identical inputs: systolic parts and serial
// (no-CUDA-core) parts have a fixed accumulation order, so no reduction
// ever reorders. reorderChunks and the /v1/devices catalog both derive
// from this one predicate.
func (c Config) DeterministicExecution() bool {
	return c.Systolic || c.CUDACores == 0
}

// reorderChunks returns how many scheduler-ordered partial sums a reduction
// of length n splits into on this part. More CUDA cores mean more thread
// blocks in flight and therefore more reordering freedom.
func (c Config) reorderChunks(n int) int {
	if c.DeterministicExecution() {
		return 1
	}
	chunks := c.CUDACores / 256 // P100: 14, V100: 20, RTX5000: 12, T4: 10
	if chunks < 2 {
		chunks = 2
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

package device

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Mode selects between the framework's default execution (fastest available
// algorithms, nondeterministic accumulation) and the deterministic patches.
type Mode int

const (
	// Default lets the simulated scheduler pick accumulation orders.
	Default Mode = iota
	// Deterministic fixes every accumulation order (the software patches the
	// paper's Section 4 prices out).
	Deterministic
)

func (m Mode) String() string {
	if m == Deterministic {
		return "deterministic"
	}
	return "default"
}

// Device executes tensor kernels under a simulated accelerator. It is not
// safe for concurrent use: training replicas each own a Device.
type Device struct {
	cfg     Config
	mode    Mode
	entropy *rng.Stream
	kernels int64 // count of kernel launches, for tests/inspection

	// Pack scratch, reused across kernel launches so the per-step transposes
	// (Dense forward packs Wᵀ, conv backward packs colᵀ) and the Tensor-Core
	// fp16 pre-rounding stop allocating fresh buffers every call.
	packA, packB, packFP16 []float32
}

// New returns a device for the given part. entropy is the hardware-entropy
// stream used to draw scheduler orders in Default mode; it is ignored (and
// may be nil) in Deterministic mode or on systolic parts. In the real world
// this entropy is unobservable scheduler state; the simulation seeds it
// per-replica so experiments are replayable (see DESIGN.md §5).
func New(cfg Config, mode Mode, entropy *rng.Stream) *Device {
	return &Device{cfg: cfg, mode: mode, entropy: entropy}
}

// Config returns the simulated part.
func (d *Device) Config() Config { return d.cfg }

// Mode returns the execution mode.
func (d *Device) Mode() Mode { return d.mode }

// KernelLaunches returns the number of kernels executed so far.
func (d *Device) KernelLaunches() int64 { return d.kernels }

// nondeterministic reports whether this device perturbs accumulation orders.
func (d *Device) nondeterministic() bool {
	return d.mode == Default && !d.cfg.Systolic && d.cfg.CUDACores > 0 && d.entropy != nil
}

// schedOrder draws a scheduler commit order for n partials, or nil for the
// fixed ascending order.
func (d *Device) schedOrder(n int) []int {
	if n <= 1 || !d.nondeterministic() {
		return nil
	}
	return d.entropy.Perm(n)
}

// MatMul computes C = op(A) × op(B) where op optionally transposes. A is
// (m×k) after op, B is (k×n) after op; the result is (m×n).
//
// In Default mode on a CUDA-core part, the K dimension is split into
// scheduler-ordered chunks (split-K GEMM): each output element accumulates
// its chunk partials in a per-call random order, giving one-ulp-scale
// rounding differences between runs. On Tensor Cores the matmul runs
// through deterministic systolic tiles with fp16 input truncation. On TPU
// and in Deterministic mode the order is fixed.
func (d *Device) MatMul(a, b *tensor.Tensor, transA, transB bool) *tensor.Tensor {
	d.kernels++
	am, ak := matDims(a, transA)
	bk, bn := matDims(b, transB)
	if ak != bk {
		panic(fmt.Sprintf("device: MatMul inner dims mismatch: %d vs %d", ak, bk))
	}
	ad := d.materialize(a, transA, &d.packA)
	bd := d.materialize(b, transB, &d.packB)

	if d.cfg.TensorCores {
		return d.matmulTensorCore(ad, bd, am, ak, bn)
	}

	out := tensor.New(am, bn)
	od := out.Data()

	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(ak)
	}
	order := d.schedOrder(chunks)

	// Blocked ikj matmul: chunk boundaries are fixed; only the order in
	// which chunk contributions land in C varies. The inner loop is the
	// register-blocked AXPY kernel — same per-element operation sequence as
	// the scalar loop, so outputs stay bit-identical (see gemm.go).
	for ci := 0; ci < chunks; ci++ {
		c := ci
		if order != nil {
			c = order[ci]
		}
		kLo := c * ak / chunks
		kHi := (c + 1) * ak / chunks
		for i := 0; i < am; i++ {
			arow := ad[i*ak : (i+1)*ak]
			crow := od[i*bn : (i+1)*bn]
			for k := kLo; k < kHi; k++ {
				av := arow[k]
				if av == 0 {
					// Skipping an exact-zero multiplier is the reference
					// kernel's behaviour too; keep it for bit-identity.
					continue
				}
				axpy(av, bd[k*bn:(k+1)*bn], crow)
			}
		}
	}
	return out
}

// matmulTensorCore runs the matmul through simulated systolic fp16 tiles:
// inputs are truncated to fp16 precision, products accumulate in fp32 in a
// fixed tile order. Deterministic — the Tensor Core itself does not inject
// scheduler noise; nondeterminism on TC parts comes from the CUDA-core
// fallback kernels (bias, scatter, normalization reductions).
func (d *Device) matmulTensorCore(ad, bd []float32, m, k, n int) *tensor.Tensor {
	out := tensor.New(m, n)
	od := out.Data()
	// Pack-once fp16 truncation of B: the reference kernel re-rounds every
	// B element for each of the m output rows; rounding is a pure function
	// of the element, so pre-rounding the k×n operand once produces the
	// same multiplicands (and therefore identical products) at 1/m the
	// rounding work.
	bh := scratch(&d.packFP16, k*n)
	for i, v := range bd[:k*n] {
		bh[i] = fp16Round(v)
	}
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := od[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := fp16Round(arow[kk])
			if av == 0 {
				continue
			}
			axpy(av, bh[kk*n:(kk+1)*n], crow)
		}
	}
	return out
}

func matDims(t *tensor.Tensor, trans bool) (rows, cols int) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("device: MatMul operand must be rank 2, got %v", t.Shape()))
	}
	if trans {
		return t.Dim(1), t.Dim(0)
	}
	return t.Dim(0), t.Dim(1)
}

// materialize returns t's data, transposed into the given device-owned
// scratch buffer when op requires it. The buffer is reused across kernel
// launches — packing cost stays, allocation churn goes.
func (d *Device) materialize(t *tensor.Tensor, trans bool, buf *[]float32) []float32 {
	if !trans {
		return t.Data()
	}
	r, c := t.Dim(0), t.Dim(1)
	dst := scratch(buf, r*c)
	transposeInto(dst, t.Data(), r, c)
	return dst
}

// SumRows reduces an (rows × cols) matrix over its columns, producing one
// float32 per row (bias gradients, per-channel statistics). The reduction
// runs through scheduler-ordered chunks in Default mode.
func (d *Device) SumRows(m *tensor.Tensor) []float32 {
	d.kernels++
	if m.Rank() != 2 {
		panic(fmt.Sprintf("device: SumRows requires rank 2, got %v", m.Shape()))
	}
	rows, cols := m.Dim(0), m.Dim(1)
	out := make([]float32, rows)
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(cols)
	}
	data := m.Data()
	for r := 0; r < rows; r++ {
		out[r] = d.reduceChunked(data[r*cols:(r+1)*cols], chunks)
	}
	return out
}

// SumCols reduces an (rows × cols) matrix over its rows, producing one
// float32 per column. The per-column reduction over rows runs through
// scheduler-ordered chunks in Default mode.
func (d *Device) SumCols(m *tensor.Tensor) []float32 {
	d.kernels++
	if m.Rank() != 2 {
		panic(fmt.Sprintf("device: SumCols requires rank 2, got %v", m.Shape()))
	}
	rows, cols := m.Dim(0), m.Dim(1)
	out := make([]float32, cols)
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(rows)
	}
	order := d.schedOrder(chunks)
	data := m.Data()
	for ci := 0; ci < chunks; ci++ {
		c := ci
		if order != nil {
			c = order[ci]
		}
		lo := c * rows / chunks
		hi := (c + 1) * rows / chunks
		for r := lo; r < hi; r++ {
			vadd(data[r*cols:(r+1)*cols], out)
		}
	}
	return out
}

// ReduceSum reduces a vector to a scalar under the device's accumulation
// policy (loss averaging, squared-sum statistics).
func (d *Device) ReduceSum(xs []float32) float32 {
	d.kernels++
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(len(xs))
	}
	return d.reduceChunked(xs, chunks)
}

func (d *Device) reduceChunked(xs []float32, chunks int) float32 {
	if chunks <= 1 {
		var s float32
		for _, v := range xs {
			s += v
		}
		return s
	}
	order := d.schedOrder(chunks)
	var s float32
	for ci := 0; ci < chunks; ci++ {
		c := ci
		if order != nil {
			c = order[ci]
		}
		lo := c * len(xs) / chunks
		hi := (c + 1) * len(xs) / chunks
		var p float32
		for _, v := range xs[lo:hi] {
			p += v
		}
		s += p
	}
	return s
}

// Col2Im scatters a column matrix back into an image tensor, accumulating
// overlapping windows — the simulated analogue of cuDNN's atomicAdd-based
// backward-data kernels. In Default mode the per-kernel-offset scatter
// order is drawn from the scheduler; overlapping float32 adds then round
// differently between runs. dst must be zeroed by the caller.
func (d *Device) Col2Im(col *tensor.Tensor, g tensor.ConvGeom, dst *tensor.Tensor) {
	d.kernels++
	var order []int
	if d.nondeterministic() {
		order = d.entropy.Perm(g.ColRows())
	}
	tensor.Col2ImAccum(col, g, dst, order)
}

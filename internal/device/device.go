package device

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Mode selects between the framework's default execution (fastest available
// algorithms, nondeterministic accumulation) and the deterministic patches.
type Mode int

const (
	// Default lets the simulated scheduler pick accumulation orders.
	Default Mode = iota
	// Deterministic fixes every accumulation order (the software patches the
	// paper's Section 4 prices out).
	Deterministic
)

func (m Mode) String() string {
	if m == Deterministic {
		return "deterministic"
	}
	return "default"
}

// Device executes tensor kernels under a simulated accelerator. It is not
// safe for concurrent use by multiple callers — training replicas each own
// a Device — but a single kernel launch may internally shard its output
// rows across the sched worker pool (see intra.go); all entropy is drawn
// before dispatch, so sharding never changes an output bit.
type Device struct {
	cfg     Config
	mode    Mode
	entropy *rng.Stream
	kernels int64 // count of kernel launches, for tests/inspection

	// ws, when set, backs every kernel output tensor (see Alloc). Reused
	// scheduler-order buffers below make Default-mode entropy draws
	// allocation-free: permBuf serves the single-order kernels, and
	// rowOrders/rowOrderData hold SumRowsInto's per-row orders, which must
	// all be live at once.
	ws           *tensor.Workspace
	permBuf      []int
	rowOrders    [][]int
	rowOrderData []int

	// Reused panel-source boxes. Assigning a value struct to the
	// panelSource interface heap-allocates the box on every kernel call;
	// filling a device-owned struct and boxing its pointer does not. The
	// Device is single-caller and each kernel consumes its source before
	// returning, so one box per source kind suffices.
	rowSrc     rowPanel
	colSrc     colPanel
	im2colSrc  im2colPanel
	im2colTSrc im2colTPanel
}

// New returns a device for the given part. entropy is the hardware-entropy
// stream used to draw scheduler orders in Default mode; it is ignored (and
// may be nil) in Deterministic mode or on systolic parts. In the real world
// this entropy is unobservable scheduler state; the simulation seeds it
// per-replica so experiments are replayable (see DESIGN.md §5).
func New(cfg Config, mode Mode, entropy *rng.Stream) *Device {
	return &Device{cfg: cfg, mode: mode, entropy: entropy}
}

// Config returns the simulated part.
func (d *Device) Config() Config { return d.cfg }

// Mode returns the execution mode.
func (d *Device) Mode() Mode { return d.mode }

// KernelLaunches returns the number of kernels executed so far. Fused and
// intra-parallel kernels count once per launch, exactly like their serial
// equivalents, so the count is invariant under the worker budget.
func (d *Device) KernelLaunches() int64 { return d.kernels }

// SetWorkspace attaches an activation workspace: every subsequent kernel
// output tensor (MatMul results, reduction outputs routed through Alloc) is
// drawn from ws instead of the heap, making warm kernel launches
// allocation-free. The caller owns ws's Reset cadence — the training loop
// resets at batch boundaries, after every tensor produced during the batch
// is dead. A nil ws restores plain heap allocation.
func (d *Device) SetWorkspace(ws *tensor.Workspace) { d.ws = ws }

// Workspace returns the attached activation workspace (nil when unset).
func (d *Device) Workspace() *tensor.Workspace { return d.ws }

// Alloc returns an output tensor of the given shape with unspecified
// contents — workspace-backed when a workspace is attached, freshly
// heap-allocated (and therefore zeroed) otherwise. Layers use it for
// outputs they fully overwrite.
func (d *Device) Alloc(shape ...int) *tensor.Tensor {
	if d.ws != nil {
		return d.ws.Get(shape...)
	}
	return tensor.New(shape...)
}

// AllocZero is Alloc with guaranteed-zero contents, for outputs that are
// accumulated into (GEMM partials, scatter targets).
func (d *Device) AllocZero(shape ...int) *tensor.Tensor {
	if d.ws != nil {
		t := d.ws.Get(shape...)
		t.Zero()
		return t
	}
	return tensor.New(shape...)
}

// nondeterministic reports whether this device perturbs accumulation orders.
func (d *Device) nondeterministic() bool {
	return d.mode == Default && !d.cfg.Systolic && d.cfg.CUDACores > 0 && d.entropy != nil
}

// schedOrder draws a scheduler commit order for n partials, or nil for the
// fixed ascending order. The returned slice is device-owned and valid only
// until the next draw — kernels consume it before returning, and the
// Device is single-caller, so draws never overlap.
func (d *Device) schedOrder(n int) []int {
	if n <= 1 || !d.nondeterministic() {
		return nil
	}
	d.permBuf = growInts(d.permBuf, n)
	return d.entropy.PermInto(d.permBuf, n)
}

// growInts grows dst to n elements, reusing its backing array when
// possible. Contents are unspecified; callers overwrite.
func growInts(dst []int, n int) []int {
	if cap(dst) < n {
		return make([]int, n)
	}
	return dst[:n]
}

// MatMul computes C = op(A) × op(B) where op optionally transposes. A is
// (m×k) after op, B is (k×n) after op; the result is (m×n).
//
// In Default mode on a CUDA-core part, the K dimension is split into
// scheduler-ordered chunks (split-K GEMM): each output element accumulates
// its chunk partials in a per-call random order, giving one-ulp-scale
// rounding differences between runs. On Tensor Cores the matmul runs
// through deterministic systolic tiles with fp16 input truncation. On TPU
// and in Deterministic mode the order is fixed.
//
// Execution is the blocked packed-panel kernel of gemm.go: op(B) is packed
// one L2-resident panel at a time (a transposed B is transposed during
// packing, never materialized whole), and large outputs shard their rows
// across the sched pool. Chunk boundaries and the per-element operation
// sequence are exactly the reference kernel's (gemm_test.go pins this).
func (d *Device) MatMul(a, b *tensor.Tensor, transA, transB bool) *tensor.Tensor {
	d.kernels++
	am, ak := matDims(a, transA)
	bk, bn := matDims(b, transB)
	if ak != bk {
		panic(fmt.Sprintf("device: MatMul inner dims mismatch: %d vs %d", ak, bk))
	}
	ad, scr := materializeA(a, transA)
	var src panelSource
	if transB {
		d.colSrc = colPanel{data: b.Data(), cols: b.Dim(1)}
		src = &d.colSrc
	} else {
		d.rowSrc = rowPanel{data: b.Data(), ld: bn}
		src = &d.rowSrc
	}
	out := d.runGEMM(ad, src, am, ak, bn)
	if scr != nil {
		tensor.PutScratch(scr)
	}
	return out
}

// MatMulIm2Col computes W × im2col(x, g) — the forward convolution GEMM —
// without ever materializing the column matrix: panels of the im2col
// expansion are generated straight into pack scratch (tensor.Im2ColPanel).
// One kernel launch, bit-identical to MatMul over a materialized im2col
// matrix, matching cuDNN's fused implicit-GEMM convolution.
func (d *Device) MatMulIm2Col(w, x *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	d.kernels++
	if w.Rank() != 2 || w.Dim(1) != g.ColRows() {
		panic(fmt.Sprintf("device: MatMulIm2Col weight must be (OutC, %d), got %v", g.ColRows(), w.Shape()))
	}
	if x.Rank() != 4 {
		panic(fmt.Sprintf("device: MatMulIm2Col input must be NCHW, got %v", x.Shape()))
	}
	d.im2colSrc = im2colPanel{x: x, g: g}
	return d.runGEMM(w.Data(), &d.im2colSrc, w.Dim(0), g.ColRows(), g.ColCols())
}

// MatMulIm2ColT computes A × im2col(x, g)ᵀ — the backward-weights
// convolution GEMM dW = dy × colᵀ — with the transposed column matrix
// generated panel by panel (tensor.Im2ColPanelT); neither col nor colᵀ is
// ever materialized. One kernel launch, bit-identical to the materialized
// equivalent.
func (d *Device) MatMulIm2ColT(a, x *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	d.kernels++
	if a.Rank() != 2 || a.Dim(1) != g.ColCols() {
		panic(fmt.Sprintf("device: MatMulIm2ColT operand must be (m, %d), got %v", g.ColCols(), a.Shape()))
	}
	if x.Rank() != 4 {
		panic(fmt.Sprintf("device: MatMulIm2ColT input must be NCHW, got %v", x.Shape()))
	}
	d.im2colTSrc = im2colTPanel{x: x, g: g}
	return d.runGEMM(a.Data(), &d.im2colTSrc, a.Dim(0), g.ColCols(), g.ColRows())
}

// runGEMM resolves the accumulation-order policy (drawing any scheduler
// entropy BEFORE dispatch), then launches the blocked kernel — serial, or
// row-sharded over the pool when m·k·n clears the intra-op threshold.
// Tensor-Core parts run the deterministic fp16 systolic path and draw no
// entropy, exactly like the reference kernel.
func (d *Device) runGEMM(ad []float32, src panelSource, m, k, n int) *tensor.Tensor {
	out := d.AllocZero(m, n)
	fp16 := d.cfg.TensorCores
	chunks := 1
	var order []int
	if !fp16 && d.nondeterministic() {
		chunks = d.cfg.reorderChunks(k)
		order = d.schedOrder(chunks)
	}
	const minRowsPerShard = 4
	shards := intraShards(m, int64(m)*int64(k)*int64(n), minRowsPerShard)
	if shards <= 1 {
		// Serial path with its own args variable: the sharded branch's
		// closure escapes to the worker pool and drags its captured args to
		// the heap, so sharing one variable across both branches would
		// heap-allocate on every kernel call. Small below-threshold GEMMs —
		// the zero-alloc steady state — stay allocation-free this way.
		args := gemmArgs{ad: ad, src: src, od: out.Data(), m: m, k: k, n: n, chunks: chunks, order: order, fp16: fp16}
		panel := panelScratch(k, n)
		gemmBlocked(&args, 0, m, panel)
		tensor.PutScratch(panel)
		return out
	}
	args := gemmArgs{ad: ad, src: src, od: out.Data(), m: m, k: k, n: n, chunks: chunks, order: order, fp16: fp16}
	shardRows(shards, m, func(lo, hi int) {
		panel := panelScratch(k, n)
		gemmBlocked(&args, lo, hi, panel)
		tensor.PutScratch(panel)
	})
	return out
}

func matDims(t *tensor.Tensor, trans bool) (rows, cols int) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("device: MatMul operand must be rank 2, got %v", t.Shape()))
	}
	if trans {
		return t.Dim(1), t.Dim(0)
	}
	return t.Dim(0), t.Dim(1)
}

// materializeA returns t's data row-major as op(A), transposing into
// pooled scratch when op requires it. The second return is the scratch to
// release after the GEMM (nil when t's own storage is used).
func materializeA(t *tensor.Tensor, trans bool) (data, scr []float32) {
	if !trans {
		return t.Data(), nil
	}
	r, c := t.Dim(0), t.Dim(1)
	buf := tensor.GetScratch(r * c)
	transposeInto(buf, t.Data(), r, c)
	return buf, buf
}

// scratchSlice grows dst to n elements, reusing its backing array when
// possible. Contents are unspecified; callers overwrite.
func scratchSlice(dst []float32, n int) []float32 {
	if cap(dst) < n {
		return make([]float32, n)
	}
	return dst[:n]
}

// SumRows reduces an (rows × cols) matrix over its columns, producing one
// float32 per row (bias gradients, per-channel statistics). The reduction
// runs through scheduler-ordered chunks in Default mode. Allocates a fresh
// output; hot paths should use SumRowsInto with a reused buffer.
func (d *Device) SumRows(m *tensor.Tensor) []float32 { return d.SumRowsInto(m, nil) }

// SumRowsInto is SumRows writing into dst (grown as needed, returned).
// Rows reduce independently, so large reductions shard rows across the
// pool; every row's chunk order is drawn before dispatch, in row order, so
// the entropy stream sees exactly the serial draw sequence.
func (d *Device) SumRowsInto(m *tensor.Tensor, dst []float32) []float32 {
	d.kernels++
	if m.Rank() != 2 {
		panic(fmt.Sprintf("device: SumRows requires rank 2, got %v", m.Shape()))
	}
	rows, cols := m.Dim(0), m.Dim(1)
	out := scratchSlice(dst, rows)
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(cols)
	}
	var orders [][]int
	if chunks > 1 {
		// Every row's order must be live at once (rows shard across the
		// pool), so they draw into a reused flat buffer rather than the
		// shared permBuf. Draws happen in row order before dispatch, so the
		// entropy stream sees exactly the serial sequence.
		if cap(d.rowOrders) < rows {
			d.rowOrders = make([][]int, rows)
		}
		d.rowOrderData = growInts(d.rowOrderData, rows*chunks)
		orders = d.rowOrders[:rows]
		for r := range orders {
			orders[r] = d.entropy.PermInto(d.rowOrderData[r*chunks:(r+1)*chunks], chunks)
		}
	}
	data := m.Data()
	const minRowsPerShard = 8
	shards := intraShards(rows, int64(rows)*int64(cols), minRowsPerShard)
	if shards <= 1 {
		// Serial loop inlined rather than shared with the sharded branch: a
		// closure handed to the worker pool is heap-allocated where the
		// literal appears, so below-threshold reductions must not evaluate
		// one. Keeps the steady-state training step allocation-free.
		for r := 0; r < rows; r++ {
			var order []int
			if orders != nil {
				order = orders[r]
			}
			out[r] = reduceChunkedOrder(data[r*cols:(r+1)*cols], chunks, order)
		}
		return out
	}
	shardRows(shards, rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var order []int
			if orders != nil {
				order = orders[r]
			}
			out[r] = reduceChunkedOrder(data[r*cols:(r+1)*cols], chunks, order)
		}
	})
	return out
}

// SumCols reduces an (rows × cols) matrix over its rows, producing one
// float32 per column. The per-column reduction over rows runs through
// scheduler-ordered chunks in Default mode. Allocates a fresh output; hot
// paths should use SumColsInto with a reused buffer.
func (d *Device) SumCols(m *tensor.Tensor) []float32 { return d.SumColsInto(m, nil) }

// SumColsInto is SumCols writing into dst (grown as needed, returned).
// Columns accumulate independently in the same chunk order, so large
// reductions shard the column range across the pool after the single
// scheduler draw.
func (d *Device) SumColsInto(m *tensor.Tensor, dst []float32) []float32 {
	d.kernels++
	if m.Rank() != 2 {
		panic(fmt.Sprintf("device: SumCols requires rank 2, got %v", m.Shape()))
	}
	rows, cols := m.Dim(0), m.Dim(1)
	out := scratchSlice(dst, cols)
	for i := range out {
		out[i] = 0
	}
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(rows)
	}
	order := d.schedOrder(chunks)
	data := m.Data()
	const minColsPerShard = 64
	shards := intraShards(cols, int64(rows)*int64(cols), minColsPerShard)
	if shards <= 1 {
		// Serial loop inlined; see SumRowsInto for why the sharded closure
		// must not be evaluated on the below-threshold path.
		for ci := 0; ci < chunks; ci++ {
			c := ci
			if order != nil {
				c = order[ci]
			}
			lo := c * rows / chunks
			hi := (c + 1) * rows / chunks
			for r := lo; r < hi; r++ {
				vadd(data[r*cols:r*cols+cols], out)
			}
		}
		return out
	}
	shardRows(shards, cols, func(jLo, jHi int) {
		for ci := 0; ci < chunks; ci++ {
			c := ci
			if order != nil {
				c = order[ci]
			}
			lo := c * rows / chunks
			hi := (c + 1) * rows / chunks
			for r := lo; r < hi; r++ {
				vadd(data[r*cols+jLo:r*cols+jHi], out[jLo:jHi])
			}
		}
	})
	return out
}

// ReduceSum reduces a vector to a scalar under the device's accumulation
// policy (loss averaging, squared-sum statistics).
func (d *Device) ReduceSum(xs []float32) float32 {
	d.kernels++
	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(len(xs))
	}
	return reduceChunkedOrder(xs, chunks, d.schedOrder(chunks))
}

// reduceChunkedOrder sums xs through the given chunk commit order (nil =
// ascending), rounding each chunk's partial independently.
func reduceChunkedOrder(xs []float32, chunks int, order []int) float32 {
	if chunks <= 1 {
		var s float32
		for _, v := range xs {
			s += v
		}
		return s
	}
	var s float32
	for ci := 0; ci < chunks; ci++ {
		c := ci
		if order != nil {
			c = order[ci]
		}
		lo := c * len(xs) / chunks
		hi := (c + 1) * len(xs) / chunks
		var p float32
		for _, v := range xs[lo:hi] {
			p += v
		}
		s += p
	}
	return s
}

// Col2Im scatters a column matrix back into an image tensor, accumulating
// overlapping windows — the simulated analogue of cuDNN's atomicAdd-based
// backward-data kernels. In Default mode the per-kernel-offset scatter
// order is drawn from the scheduler; overlapping float32 adds then round
// differently between runs. dst must be zeroed by the caller. The scatter
// stays serial: overlapping destinations make row sharding order-unsafe.
func (d *Device) Col2Im(col *tensor.Tensor, g tensor.ConvGeom, dst *tensor.Tensor) {
	d.kernels++
	order := d.schedOrder(g.ColRows())
	tensor.Col2ImAccum(col, g, dst, order)
}

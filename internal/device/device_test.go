package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func randMat(seed uint64, r, c int) *tensor.Tensor {
	s := rng.New(seed)
	t := tensor.New(r, c)
	s.FillNorm(t.Data(), 0, 1)
	return t
}

func cpuDev() *Device { return New(CPU, Deterministic, nil) }

func TestMatMulKnownValues(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := cpuDev().MatMul(a, b, false, false)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("C[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	a := randMat(1, 4, 3)
	b := randMat(2, 4, 5)
	// aT(3x4) × b(4x5): compare against explicit transpose.
	got := cpuDev().MatMul(a, b, true, false)
	at := tensor.New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := cpuDev().MatMul(at, b, false, false)
	if !tensor.Equal(got, want) {
		t.Fatal("transA result differs from explicit transpose")
	}

	c := randMat(3, 5, 4)
	got2 := cpuDev().MatMul(at, c, false, true)
	ct := tensor.New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			ct.Set(c.At(i, j), j, i)
		}
	}
	want2 := cpuDev().MatMul(at, ct, false, false)
	if !tensor.Equal(got2, want2) {
		t.Fatal("transB result differs from explicit transpose")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	cpuDev().MatMul(randMat(1, 2, 3), randMat(2, 4, 5), false, false)
}

func TestDeterministicModeBitwiseStable(t *testing.T) {
	a, b := randMat(10, 16, 300), randMat(11, 300, 24)
	for _, cfg := range []Config{CPU, P100, V100, RTX5000, T4, TPUv2} {
		d1 := New(cfg, Deterministic, rng.New(1))
		d2 := New(cfg, Deterministic, rng.New(999)) // different entropy must not matter
		if !tensor.Equal(d1.MatMul(a, b, false, false), d2.MatMul(a, b, false, false)) {
			t.Fatalf("%s: deterministic mode depends on entropy", cfg.Name)
		}
	}
}

func TestGPUDefaultModeInjectsOrderNoise(t *testing.T) {
	a, b := randMat(20, 8, 1024), randMat(21, 1024, 8)
	base := New(V100, Deterministic, nil).MatMul(a, b, false, false)
	diff := false
	for trial := uint64(0); trial < 8 && !diff; trial++ {
		d := New(V100, Default, rng.New(100+trial))
		got := d.MatMul(a, b, false, false)
		if !tensor.Equal(got, base) {
			diff = true
			// And the difference must be at rounding scale.
			if m := tensor.MaxAbsDiff(got, base); m > 1e-3 {
				t.Fatalf("order noise too large: %v", m)
			}
		}
	}
	if !diff {
		t.Fatal("V100 default mode produced no accumulation-order noise in 8 runs")
	}
}

func TestTPUIgnoresEntropy(t *testing.T) {
	a, b := randMat(30, 8, 2048), randMat(31, 2048, 8)
	r1 := New(TPUv2, Default, rng.New(1)).MatMul(a, b, false, false)
	r2 := New(TPUv2, Default, rng.New(2)).MatMul(a, b, false, false)
	if !tensor.Equal(r1, r2) {
		t.Fatal("TPU (systolic) must be deterministic regardless of entropy")
	}
}

func TestTensorCoreMatMulDeterministicButTruncated(t *testing.T) {
	a, b := randMat(40, 8, 512), randMat(41, 512, 8)
	r1 := New(RTX5000TC, Default, rng.New(1)).MatMul(a, b, false, false)
	r2 := New(RTX5000TC, Default, rng.New(2)).MatMul(a, b, false, false)
	if !tensor.Equal(r1, r2) {
		t.Fatal("Tensor Core matmul must be order-deterministic")
	}
	full := New(CPU, Deterministic, nil).MatMul(a, b, false, false)
	if tensor.Equal(r1, full) {
		t.Fatal("Tensor Core matmul should show fp16 truncation vs fp32 reference")
	}
	if m := tensor.MaxAbsDiff(r1, full); m > 0.5 {
		t.Fatalf("fp16 truncation error implausibly large: %v", m)
	}
}

func TestTensorCorePartStillNondeterministicOnReductions(t *testing.T) {
	// The paper's finding: TC parts stay nondeterministic because non-matmul
	// kernels run on CUDA cores.
	xs := make([]float32, 8192)
	rng.New(50).FillNorm(xs, 0, 1)
	base := New(RTX5000TC, Deterministic, nil).ReduceSum(xs)
	diff := false
	for trial := uint64(0); trial < 8; trial++ {
		if New(RTX5000TC, Default, rng.New(60+trial)).ReduceSum(xs) != base {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("TC part reductions should still inject CUDA-core order noise")
	}
}

func TestSumRowsMatchesReference(t *testing.T) {
	m := randMat(70, 5, 333)
	got := cpuDev().SumRows(m)
	for r := 0; r < 5; r++ {
		var want float32
		for c := 0; c < 333; c++ {
			want += m.At(r, c)
		}
		if got[r] != want {
			t.Fatalf("row %d: %v != %v", r, got[r], want)
		}
	}
}

func TestReduceSumAccuracy(t *testing.T) {
	xs := make([]float32, 4096)
	rng.New(80).FillNorm(xs, 0, 1)
	var exact float64
	for _, v := range xs {
		exact += float64(v)
	}
	for _, cfg := range []Config{CPU, V100, TPUv2} {
		got := float64(New(cfg, Default, rng.New(81)).ReduceSum(xs))
		if math.Abs(got-exact) > 1e-2 {
			t.Fatalf("%s: ReduceSum off by %v", cfg.Name, math.Abs(got-exact))
		}
	}
}

func TestCol2ImOrderNoise(t *testing.T) {
	g := tensor.ConvGeom{Batch: 2, InC: 4, InH: 8, InW: 8, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	col := tensor.New(g.ColRows(), g.ColCols())
	rng.New(90).FillNorm(col.Data(), 0, 1)

	base := tensor.New(2, 4, 8, 8)
	New(V100, Deterministic, nil).Col2Im(col, g, base)

	diff := false
	for trial := uint64(0); trial < 8 && !diff; trial++ {
		out := tensor.New(2, 4, 8, 8)
		New(V100, Default, rng.New(200+trial)).Col2Im(col, g, out)
		if !tensor.Equal(out, base) {
			diff = true
			if m := tensor.MaxAbsDiff(out, base); m > 1e-3 {
				t.Fatalf("col2im order noise too large: %v", m)
			}
		}
	}
	if !diff {
		t.Fatal("col2im on V100 default mode produced no order noise")
	}
}

func TestReorderChunksScaleWithCores(t *testing.T) {
	n := 10000
	if V100.reorderChunks(n) <= P100.reorderChunks(n) {
		t.Fatal("V100 (more cores) must have more reorder chunks than P100")
	}
	if P100.reorderChunks(n) <= T4.reorderChunks(n) {
		t.Fatal("P100 must have more reorder chunks than T4")
	}
	if TPUv2.reorderChunks(n) != 1 || CPU.reorderChunks(n) != 1 {
		t.Fatal("systolic/CPU parts must not chunk")
	}
	if got := V100.reorderChunks(3); got > 3 {
		t.Fatalf("chunks (%d) exceed reduction length", got)
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("V100")
	if err != nil || c.CUDACores != 5120 {
		t.Fatalf("ByName(V100) = %+v, %v", c, err)
	}
	if _, err := ByName("H100"); err == nil {
		t.Fatal("unknown device did not error")
	}
}

func TestKernelLaunchCounting(t *testing.T) {
	d := cpuDev()
	a, b := randMat(1, 2, 3), randMat(2, 3, 2)
	d.MatMul(a, b, false, false)
	d.ReduceSum([]float32{1, 2})
	d.SumRows(a)
	if d.KernelLaunches() != 3 {
		t.Fatalf("KernelLaunches = %d, want 3", d.KernelLaunches())
	}
}

func TestFP16RoundProperties(t *testing.T) {
	cases := map[float32]float32{
		0:       0,
		1:       1,
		-2:      -2,
		65504:   65504,
		1e9:     65504,      // saturates
		-1e9:    -65504,     // saturates
		1e-30:   0,          // flushes
		0.33325: 0.33325195, // representable half value nearby
	}
	for in, want := range cases {
		if got := fp16Round(in); math.Abs(float64(got-want)) > 1e-4*math.Abs(float64(want))+1e-8 {
			t.Errorf("fp16Round(%v) = %v, want ~%v", in, got, want)
		}
	}
}

func TestFP16RoundQuick(t *testing.T) {
	// Properties: idempotent, monotone error bound (|x - round(x)| <= 2^-11 * |x|
	// for normal-range values), sign-preserving.
	f := func(u uint32) bool {
		x := math.Float32frombits(u)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		r := fp16Round(x)
		if fp16Round(r) != r {
			return false
		}
		if x != 0 && math.Signbit(float64(x)) != math.Signbit(float64(r)) && r != 0 {
			return false
		}
		ax := math.Abs(float64(x))
		if ax >= 6.2e-5 && ax <= 65504 { // fp16 normal range
			if math.Abs(float64(r)-float64(x)) > ax/1024 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestByNameAliases pins the lookup contract: catalog names resolve
// case- and punctuation-insensitively, so grid specs can say "v100" or
// "rtx5000tc" instead of reproducing exact catalog spelling.
func TestByNameAliases(t *testing.T) {
	cases := map[string]string{
		"V100":       "V100",
		"v100":       "V100",
		"RTX5000 TC": "RTX5000 TC",
		"rtx5000tc":  "RTX5000 TC",
		"rtx5000-tc": "RTX5000 TC",
		"Rtx5000":    "RTX5000",
		"tpuv2":      "TPUv2",
		"cpu":        "CPU",
	}
	for in, want := range cases {
		got, err := ByName(in)
		if err != nil || got.Name != want {
			t.Errorf("ByName(%q) = %q, %v; want %q", in, got.Name, err, want)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("unknown device accepted")
	}
	// Every catalog entry has a unique alias (lookup can never be ambiguous).
	seen := map[string]string{}
	for _, c := range Catalog {
		a := Alias(c.Name)
		if prev, dup := seen[a]; dup {
			t.Errorf("alias %q shared by %q and %q", a, prev, c.Name)
		}
		seen[a] = c.Name
	}
}

// TestDescribe checks the JSON-ready catalog view used by `nnrand
// devices` and GET /v1/devices.
func TestDescribe(t *testing.T) {
	infos := Describe()
	if len(infos) != len(Catalog) {
		t.Fatalf("Describe lists %d devices, catalog has %d", len(infos), len(Catalog))
	}
	for i, d := range infos {
		if d.Name != Catalog[i].Name || d.Alias != Alias(d.Name) || d.Arch == "" {
			t.Errorf("info %d = %+v", i, d)
		}
	}
	byName := map[string]Info{}
	for _, d := range infos {
		byName[d.Name] = d
	}
	if !byName["TPUv2"].Deterministic || !byName["CPU"].Deterministic {
		t.Error("systolic/serial parts must be deterministic")
	}
	if byName["V100"].Deterministic {
		t.Error("V100 marked deterministic")
	}
	if !byName["RTX5000 TC"].TensorCores || byName["RTX5000 TC"].Alias != "rtx5000tc" {
		t.Errorf("RTX5000 TC info = %+v", byName["RTX5000 TC"])
	}
}

package device

import "math"

// fp16Round rounds a float32 to the nearest IEEE-754 half-precision value
// and returns it widened back to float32. This models a Tensor Core's fp16
// multiplicand inputs (products accumulate in fp32). Values beyond the fp16
// range saturate to ±65504; subnormals flush to the nearest representable
// half-precision subnormal.
func fp16Round(x float32) float32 {
	bits := math.Float32bits(x)
	sign := bits & 0x8000_0000
	exp := int32(bits>>23&0xff) - 127
	mant := bits & 0x7f_ffff

	switch {
	case exp == 128: // Inf or NaN passes through
		return x
	case exp > 15: // overflow: saturate to max finite fp16
		return math.Float32frombits(sign | 0x477f_e000) // ±65504
	case exp < -24: // underflow to zero
		return math.Float32frombits(sign)
	case exp < -14: // subnormal half: quantize mantissa to 2^-24 steps
		shift := uint(-exp - 1) // bits of mantissa lost beyond fp16 subnormal
		// Reconstruct with the implicit leading 1, then round to 24-exp bits.
		full := mant | 0x80_0000
		drop := shift + 13
		if drop >= 32 {
			return math.Float32frombits(sign)
		}
		rounded := (full + (1 << (drop - 1))) >> drop << drop
		if rounded == 0 {
			return math.Float32frombits(sign)
		}
		// Renormalize if rounding carried into a higher exponent.
		e := exp
		for rounded >= 0x100_0000 {
			rounded >>= 1
			e++
		}
		return math.Float32frombits(sign | uint32(e+127)<<23 | rounded&0x7f_ffff)
	default:
		// Normal range: keep 10 mantissa bits (round half to even ties-away
		// approximation: round half up, adequate for a simulation).
		rounded := mant + 0x1000 // add half of 2^13
		if rounded >= 0x80_0000 {
			// Mantissa overflowed into the exponent.
			exp++
			rounded = 0
			if exp > 15 {
				return math.Float32frombits(sign | 0x477f_e000)
			}
		} else {
			rounded = rounded &^ 0x1fff // clear the 13 dropped bits
		}
		return math.Float32frombits(sign | uint32(exp+127)<<23 | rounded)
	}
}

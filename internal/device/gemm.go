package device

// GEMM hot-path support: operand packing into device-owned scratch buffers
// and the register-blocked AXPY inner kernel.
//
// The accumulation-order semantics of MatMul are the subject of the paper,
// so every transformation here is restricted to ones that cannot change a
// single output bit: packing rewrites *where* operand bytes live, never
// which values multiply; the unrolled kernels update each output element
// with exactly the same sequence of float32 operations as the scalar loop
// (Go rounds every float32 operation individually on amd64; the unroll only
// removes bounds checks and loop overhead). The regression tests in
// gemm_test.go pin bit-identity against the straightforward reference
// kernels for every part in the catalog.

// scratch grows a device-owned buffer to n elements, reusing the existing
// allocation when possible. Contents are unspecified; callers overwrite.
func scratch(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

// transposeInto writes the transpose of src (r×c, row-major) into dst
// (c×r), walking 32×32 tiles so both source reads and destination writes
// stay cache-resident for the large, skinny operands conv layers produce.
func transposeInto(dst, src []float32, r, c int) {
	const tile = 32
	for i0 := 0; i0 < r; i0 += tile {
		iMax := i0 + tile
		if iMax > r {
			iMax = r
		}
		for j0 := 0; j0 < c; j0 += tile {
			jMax := j0 + tile
			if jMax > c {
				jMax = c
			}
			for i := i0; i < iMax; i++ {
				row := src[i*c : i*c+c]
				for j := j0; j < jMax; j++ {
					dst[j*r+i] = row[j]
				}
			}
		}
	}
}

// axpy computes y[j] += a*x[j] for every j. The 4-way unroll with the
// up-front length clamp hoists bounds checks out of the loop body; each
// y[j] still receives exactly one fused-free multiply-add per call, in
// index order, so results are bit-identical to the scalar loop.
func axpy(a float32, x, y []float32) {
	x = x[:len(y)] // hoist bounds checks: the compiler now knows both lengths
	j := 0
	for ; j+3 < len(y); j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for ; j < len(y); j++ {
		y[j] += a * x[j]
	}
}

// vadd computes y[j] += x[j] for every j, with the same unroll/bounds-check
// treatment as axpy. Used by the column-sum reduction.
func vadd(x, y []float32) {
	x = x[:len(y)]
	j := 0
	for ; j+3 < len(y); j += 4 {
		y[j] += x[j]
		y[j+1] += x[j+1]
		y[j+2] += x[j+2]
		y[j+3] += x[j+3]
	}
	for ; j < len(y); j++ {
		y[j] += x[j]
	}
}

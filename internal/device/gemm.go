package device

import "repro/internal/tensor"

// GEMM hot path: an L2-aware blocked kernel with packed B panels and
// optional intra-kernel row sharding (intra.go).
//
// The accumulation-order semantics of MatMul are the subject of the paper,
// so every transformation here is restricted to ones that cannot change a
// single output bit. The invariant is per OUTPUT ELEMENT: C[i][j]
// accumulates its k-partials in scheduler-chunk order, ascending k within
// each chunk, one individually-rounded float32 multiply-add per partial,
// with exact-zero A multiplicands skipped — exactly the reference kernel's
// sequence (gemm_test.go pins this for every part in the catalog). Tiling
// M×N×K and sharding M only regroup WHICH LOOP VISITS each (i,j,k) triple;
// because K blocks are walked in ascending order inside a chunk and each
// (i,j) pair belongs to exactly one row shard and one N tile, the
// per-element sequence is untouched. Packing rewrites where operand bytes
// live, never which values multiply.

// Panel geometry: one packed B panel is at most panelKC×panelNC float32s
// (256 KiB), sized to stay L2-resident while the inner kernel sweeps every
// M row across it.
const (
	panelKC = 128 // K rows per packed panel
	panelNC = 512 // N columns per packed panel
)

// panelSource supplies the B operand of a GEMM panel by panel. packPanel
// writes rows [kLo,kHi) × columns [jLo,jHi) of op(B) into dst, row-major
// with row stride jHi-jLo. Implementations must write every element (the
// destination is reused scratch).
type panelSource interface {
	packPanel(dst []float32, kLo, kHi, jLo, jHi int)
}

// rowPanel serves a row-major k×n matrix: packing is a straight row copy
// that relocates the panel into contiguous, cache-resident scratch.
type rowPanel struct {
	data []float32
	ld   int // row stride (= n)
}

func (p rowPanel) packPanel(dst []float32, kLo, kHi, jLo, jHi int) {
	w := jHi - jLo
	for k := kLo; k < kHi; k++ {
		copy(dst[(k-kLo)*w:(k-kLo)*w+w], p.data[k*p.ld+jLo:k*p.ld+jHi])
	}
}

// colPanel serves op(B)=Bᵀ for a stored rows×cols matrix: panel row k is
// stored column k. The transpose happens during packing, tile by tile, so
// the full transposed matrix is never materialized (the pre-blocked kernel
// packed all of Bᵀ into device scratch first).
type colPanel struct {
	data []float32
	cols int // stored row stride of B
}

func (p colPanel) packPanel(dst []float32, kLo, kHi, jLo, jHi int) {
	w := jHi - jLo
	for j := jLo; j < jHi; j++ {
		src := p.data[j*p.cols : j*p.cols+p.cols]
		for k := kLo; k < kHi; k++ {
			dst[(k-kLo)*w+(j-jLo)] = src[k]
		}
	}
}

// im2colPanel serves the im2col expansion of an NCHW image as the B
// operand, fusing the expansion with panel packing: the column matrix is
// never materialized (tensor.Im2ColPanel writes the same values Im2Col
// would, straight into pack scratch).
type im2colPanel struct {
	x *tensor.Tensor
	g tensor.ConvGeom
}

func (p im2colPanel) packPanel(dst []float32, kLo, kHi, jLo, jHi int) {
	tensor.Im2ColPanel(p.x, p.g, kLo, kHi, jLo, jHi, dst)
}

// im2colTPanel serves the TRANSPOSED im2col expansion (backward-weights
// GEMM), likewise fused with packing.
type im2colTPanel struct {
	x *tensor.Tensor
	g tensor.ConvGeom
}

func (p im2colTPanel) packPanel(dst []float32, kLo, kHi, jLo, jHi int) {
	tensor.Im2ColPanelT(p.x, p.g, kLo, kHi, jLo, jHi, dst)
}

// gemmArgs bundles one GEMM's operands and accumulation-order policy so
// row shards can execute the identical kernel over disjoint row ranges.
type gemmArgs struct {
	ad      []float32   // op(A), m×k row-major
	src     panelSource // op(B), k×n, served panel by panel
	od      []float32   // C, m×n, zeroed
	m, k, n int
	chunks  int   // scheduler split-K chunk count (1 = deterministic)
	order   []int // chunk commit order, nil = ascending
	fp16    bool  // Tensor-Core path: round A scalars and B panels to fp16
}

// gemmBlocked runs the blocked packed-panel kernel over C rows
// [rowLo,rowHi) using the caller's panel scratch (≥ panelKC*panelNC or the
// clamped equivalent). Loop nest: scheduler chunk → K block (ascending) →
// N tile → pack panel once → sweep rows. The panel is packed once per
// (K block, N tile) and reused across every row in the shard.
func gemmBlocked(g *gemmArgs, rowLo, rowHi int, panel []float32) {
	for ci := 0; ci < g.chunks; ci++ {
		c := ci
		if g.order != nil {
			c = g.order[ci]
		}
		kLo := c * g.k / g.chunks
		kHi := (c + 1) * g.k / g.chunks
		for kb := kLo; kb < kHi; kb += panelKC {
			kbHi := min(kb+panelKC, kHi)
			for jb := 0; jb < g.n; jb += panelNC {
				jbHi := min(jb+panelNC, g.n)
				w := jbHi - jb
				g.src.packPanel(panel, kb, kbHi, jb, jbHi)
				if g.fp16 {
					// Pre-round the packed panel once: rounding is a pure
					// function of the element, so the products match the
					// reference kernel's per-use rounding bit for bit.
					roundPanel(panel[:(kbHi-kb)*w])
				}
				for i := rowLo; i < rowHi; i++ {
					arow := g.ad[i*g.k : i*g.k+g.k]
					crow := g.od[i*g.n+jb : i*g.n+jbHi]
					for kk := kb; kk < kbHi; kk++ {
						av := arow[kk]
						if g.fp16 {
							av = fp16Round(av)
						}
						if av == 0 {
							// Skipping an exact-zero multiplier is the
							// reference kernel's behaviour too.
							continue
						}
						axpy(av, panel[(kk-kb)*w:(kk-kb)*w+w], crow)
					}
				}
			}
		}
	}
}

// panelScratch returns pooled pack scratch sized for one panel of a k×n
// operand. Shards call this independently so each owns private scratch.
func panelScratch(k, n int) []float32 {
	return tensor.GetScratch(min(k, panelKC) * min(n, panelNC))
}

// roundPanel rounds a packed panel to fp16 precision in place.
func roundPanel(p []float32) {
	for i, v := range p {
		p[i] = fp16Round(v)
	}
}

// transposeInto writes the transpose of src (r×c, row-major) into dst
// (c×r), walking 32×32 tiles so both source reads and destination writes
// stay cache-resident. Used to materialize op(A) when A is given
// transposed; the B operand never needs it (colPanel transposes during
// packing).
func transposeInto(dst, src []float32, r, c int) {
	const tile = 32
	for i0 := 0; i0 < r; i0 += tile {
		iMax := min(i0+tile, r)
		for j0 := 0; j0 < c; j0 += tile {
			jMax := min(j0+tile, c)
			for i := i0; i < iMax; i++ {
				row := src[i*c : i*c+c]
				for j := j0; j < jMax; j++ {
					dst[j*r+i] = row[j]
				}
			}
		}
	}
}

// axpy computes y[j] += a*x[j] for every j. The 4-way unroll with the
// up-front length clamp hoists bounds checks out of the loop body; each
// y[j] still receives exactly one fused-free multiply-add per call, in
// index order, so results are bit-identical to the scalar loop.
func axpy(a float32, x, y []float32) {
	x = x[:len(y)] // hoist bounds checks: the compiler now knows both lengths
	j := 0
	for ; j+3 < len(y); j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for ; j < len(y); j++ {
		y[j] += a * x[j]
	}
}

// vadd computes y[j] += x[j] for every j, with the same unroll/bounds-check
// treatment as axpy. Used by the column-sum reduction.
func vadd(x, y []float32) {
	x = x[:len(y)]
	j := 0
	for ; j+3 < len(y); j += 4 {
		y[j] += x[j]
		y[j+1] += x[j+1]
		y[j+2] += x[j+2]
		y[j+3] += x[j+3]
	}
	for ; j < len(y); j++ {
		y[j] += x[j]
	}
}

package device

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// The chunked accumulation-order semantics of MatMul/SumCols ARE the
// paper's subject, so the hot-path optimizations (operand packing,
// register-blocked AXPY, fp16 pre-rounding) must not move a single bit.
// These tests pin the optimized kernels against verbatim copies of the
// pre-optimization reference implementations, replaying the exact same
// scheduler entropy.

// refMatMul is the original scalar MatMul kernel (pre-optimization),
// including the Tensor-Core path, with the entropy stream supplied by the
// caller so optimized and reference runs see identical scheduler draws.
func refMatMul(d *Device, entropy *rng.Stream, a, b *tensor.Tensor, transA, transB bool) *tensor.Tensor {
	am, ak := matDims(a, transA)
	_, bn := matDims(b, transB)
	ad := refMaterialize(a, transA)
	bd := refMaterialize(b, transB)

	out := tensor.New(am, bn)
	od := out.Data()

	if d.cfg.TensorCores {
		for i := 0; i < am; i++ {
			arow := ad[i*ak : (i+1)*ak]
			crow := od[i*bn : (i+1)*bn]
			for kk := 0; kk < ak; kk++ {
				av := fp16Round(arow[kk])
				if av == 0 {
					continue
				}
				brow := bd[kk*bn : (kk+1)*bn]
				for j, bv := range brow {
					crow[j] += av * fp16Round(bv)
				}
			}
		}
		return out
	}

	chunks := 1
	if d.nondeterministic() {
		chunks = d.cfg.reorderChunks(ak)
	}
	var order []int
	if chunks > 1 && d.nondeterministic() {
		order = entropy.Perm(chunks)
	}
	for ci := 0; ci < chunks; ci++ {
		c := ci
		if order != nil {
			c = order[ci]
		}
		kLo := c * ak / chunks
		kHi := (c + 1) * ak / chunks
		for i := 0; i < am; i++ {
			arow := ad[i*ak : (i+1)*ak]
			crow := od[i*bn : (i+1)*bn]
			for k := kLo; k < kHi; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := bd[k*bn : (k+1)*bn]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	return out
}

func refMaterialize(t *tensor.Tensor, trans bool) []float32 {
	if !trans {
		return t.Data()
	}
	r, c := t.Dim(0), t.Dim(1)
	src := t.Data()
	dst := make([]float32, r*c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			dst[j*r+i] = src[i*c+j]
		}
	}
	return dst
}

// testMatrix fills a tensor with a mix of magnitudes, exact zeros and
// negatives so the zero-skip and rounding paths are all exercised.
func testMatrix(s *rng.Stream, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	d := t.Data()
	for i := range d {
		switch s.Intn(8) {
		case 0:
			d[i] = 0 // exact zero: hits the av==0 skip
		case 1:
			d[i] = float32(s.Norm()) * 1e-4
		default:
			d[i] = float32(s.Norm())
		}
	}
	return t
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {16, 64, 33}, {31, 128, 17}, {8, 300, 12},
	}
	for _, cfg := range Catalog {
		for _, mode := range []Mode{Default, Deterministic} {
			for si, sh := range shapes {
				for _, transA := range []bool{false, true} {
					for _, transB := range []bool{false, true} {
						seed := uint64(1000*si + sh.m + 2*sh.k + 3*sh.n)
						s := rng.New(seed)
						var a, b *tensor.Tensor
						if transA {
							a = testMatrix(s.Split("a"), sh.k, sh.m)
						} else {
							a = testMatrix(s.Split("a"), sh.m, sh.k)
						}
						if transB {
							b = testMatrix(s.Split("b"), sh.n, sh.k)
						} else {
							b = testMatrix(s.Split("b"), sh.k, sh.n)
						}
						// Two devices with identical entropy seeds: one runs
						// the optimized kernel, the other drives the
						// reference copy.
						devOpt := New(cfg, mode, rng.New(seed).Split("hw"))
						devRef := New(cfg, mode, rng.New(seed).Split("hw"))
						got := devOpt.MatMul(a, b, transA, transB)
						want := refMatMul(devRef, devRef.entropy, a, b, transA, transB)
						if !tensor.Equal(got, want) {
							t.Fatalf("%s/%s m=%d k=%d n=%d transA=%v transB=%v: optimized MatMul diverged from reference (max diff %g)",
								cfg.Name, mode, sh.m, sh.k, sh.n, transA, transB, tensor.MaxAbsDiff(got, want))
						}
					}
				}
			}
		}
	}
}

// TestMatMulScratchReuseAcrossCalls re-runs the same matmul many times on
// one device (the training-step pattern) and interleaves different shapes,
// making sure pack-buffer reuse never leaks state between calls.
func TestMatMulScratchReuseAcrossCalls(t *testing.T) {
	s := rng.New(7)
	big := testMatrix(s.Split("big"), 40, 60)
	bigB := testMatrix(s.Split("bigB"), 50, 60)  // transB operand (n×k)
	small := testMatrix(s.Split("small"), 6, 10) // shrinks the scratch use
	smallB := testMatrix(s.Split("smallB"), 4, 10)

	dev := New(V100, Deterministic, nil)
	wantBig := refMatMul(New(V100, Deterministic, nil), nil, big, bigB, false, true)
	wantSmall := refMatMul(New(V100, Deterministic, nil), nil, small, smallB, false, true)
	for i := 0; i < 5; i++ {
		if got := dev.MatMul(big, bigB, false, true); !tensor.Equal(got, wantBig) {
			t.Fatalf("iteration %d: big matmul diverged after scratch reuse", i)
		}
		if got := dev.MatMul(small, smallB, false, true); !tensor.Equal(got, wantSmall) {
			t.Fatalf("iteration %d: small matmul diverged after scratch reuse", i)
		}
	}
}

func TestSumColsBitIdenticalToReference(t *testing.T) {
	for _, cfg := range []Config{CPU, V100, TPUv2} {
		for _, mode := range []Mode{Default, Deterministic} {
			m := testMatrix(rng.New(3).Split("m"), 37, 23)
			devOpt := New(cfg, mode, rng.New(3).Split("hw"))
			devRef := New(cfg, mode, rng.New(3).Split("hw"))
			got := devOpt.SumCols(m)

			// Reference: the pre-optimization scalar loop.
			rows, cols := m.Dim(0), m.Dim(1)
			want := make([]float32, cols)
			chunks := 1
			if devRef.nondeterministic() {
				chunks = cfg.reorderChunks(rows)
			}
			order := devRef.schedOrder(chunks)
			data := m.Data()
			for ci := 0; ci < chunks; ci++ {
				c := ci
				if order != nil {
					c = order[ci]
				}
				lo := c * rows / chunks
				hi := (c + 1) * rows / chunks
				for r := lo; r < hi; r++ {
					row := data[r*cols : (r+1)*cols]
					for j, v := range row {
						want[j] += v
					}
				}
			}
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("%s/%s: SumCols[%d] = %x, want %x", cfg.Name, mode, j,
						math.Float32bits(got[j]), math.Float32bits(want[j]))
				}
			}
		}
	}
}

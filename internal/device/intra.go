package device

import (
	"context"
	"sync/atomic"

	"repro/internal/sched"
)

// Intra-kernel parallelism. Replica- and cell-granular parallelism cannot
// help a single large cell: one replica's kernels used to run on one
// goroutine no matter how many cores sat idle (ROADMAP item 1). Kernels
// whose output rows are independent — GEMM C rows, SumRows rows, SumCols
// columns — therefore shard their output dimension across the sched worker
// pool when the kernel is large enough to amortize dispatch.
//
// Why sharding provably cannot move a bit: each output element is owned by
// exactly one shard, and a shard executes the identical per-element
// accumulation sequence the serial kernel would (scheduler-chunk order,
// ascending k within a chunk). All scheduler entropy is drawn BEFORE
// dispatch, on the caller's goroutine, so the entropy stream's state never
// depends on worker interleaving. Shards write disjoint index ranges of
// the output and share only read-only inputs; each GEMM shard packs its
// own panels into private pooled scratch.
//
// Nested-dispatch deadlock cannot occur: sched.ForEach's calling goroutine
// always participates in its own work and helpers are bounded by the
// pool's global token budget, so a kernel dispatched from inside a replica
// (itself a pool work item) simply runs inline when the budget is spent —
// which is exactly the regime where replica-granular parallelism already
// saturates the cores.

// DefaultIntraOpThreshold is the default minimum kernel size — measured in
// element operations (m·k·n for GEMM, rows·cols for reductions) — above
// which a kernel shards across the worker pool. Below it, dispatch
// overhead outweighs the win.
const DefaultIntraOpThreshold = 1 << 21

// intraOpThreshold holds the active threshold: 0 means "use the default",
// negative disables intra-kernel parallelism entirely.
var intraOpThreshold atomic.Int64

// SetIntraOpThreshold overrides the intra-kernel parallelism threshold
// (the `-intra-gemm` CLI flag). n == 0 restores DefaultIntraOpThreshold;
// n < 0 disables intra-kernel sharding. Safe for concurrent use; a purely
// wall-clock knob that cannot change any output bit.
func SetIntraOpThreshold(n int64) { intraOpThreshold.Store(n) }

// IntraOpThreshold returns the effective threshold (< 0 when disabled).
func IntraOpThreshold() int64 {
	if v := intraOpThreshold.Load(); v != 0 {
		return v
	}
	return DefaultIntraOpThreshold
}

// intraShards decides how many shards a kernel with the given output rows
// and total element-op count splits into. Returns 1 (run serial) unless
// the kernel clears the threshold, the pool has more than one worker, and
// every shard would own at least minRows rows.
func intraShards(rows int, work int64, minRows int) int {
	t := IntraOpThreshold()
	if t < 0 || work < t {
		return 1
	}
	w := sched.Workers()
	if w <= 1 {
		return 1
	}
	s := rows / minRows
	if s > w {
		s = w
	}
	if s < 2 {
		return 1
	}
	return s
}

// shardRows runs body(lo, hi) over [0, rows) split into the given number
// of contiguous shards, on the sched pool. body must only write state
// owned by its row range. With one shard it runs inline.
func shardRows(shards, rows int, body func(lo, hi int)) {
	if shards <= 1 {
		body(0, rows)
		return
	}
	// body never errors and ctx is never cancelled, so ForEach's only exit
	// is completion; a panic propagates as *sched.PanicError.
	_ = sched.ForEach(context.Background(), shards, func(s int) error {
		body(s*rows/shards, (s+1)*rows/shards)
		return nil
	})
}

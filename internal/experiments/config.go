// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness trains (or profiles) exactly the
// populations its artifact needs — caching replica populations so that
// figures sharing a workload (e.g. Figure 1, Figure 4 and Table 2 all use
// ResNet-18 on V100) train them only once — and renders the same rows or
// series the paper reports.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/data"
	"repro/internal/report"
)

// Config controls experiment scale.
type Config struct {
	// Scale selects dataset size and training length (see data.Scale).
	Scale data.Scale
	// Replicas is the number of independently trained models per variant;
	// 0 picks the scale default (3 / 5 / 10 — the paper uses 10).
	Replicas int
	// Seed anchors every experiment's seed policy.
	Seed uint64
}

// DefaultConfig returns the configuration used by the CLI: quick scale.
func DefaultConfig() Config {
	return Config{Scale: data.ScaleQuick, Seed: 20220622} // arXiv date of the paper
}

func (c Config) replicas() int {
	if c.Replicas > 0 {
		return c.Replicas
	}
	switch c.Scale {
	case data.ScaleTest:
		return 3
	case data.ScaleQuick:
		return 5
	default:
		return 10
	}
}

// Runner produces the tables for one paper artifact.
type Runner func(cfg Config) ([]*report.Table, error)

// registry maps experiment IDs (table2, fig5, ...) to runners.
var registry = map[string]Runner{}

// register wires an experiment ID to its runner at init time.
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = r
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r, nil
}

// IDs lists every registered experiment in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

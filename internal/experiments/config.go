// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness trains (or profiles) exactly the
// populations its artifact needs — caching replica populations so that
// figures sharing a workload (e.g. Figure 1, Figure 4 and Table 2 all use
// ResNet-18 on V100) train them only once — and renders the same rows or
// series the paper reports as a typed report.Result.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/data"
	"repro/internal/grid"
	"repro/internal/report"
)

// Config controls experiment scale.
type Config struct {
	// Scale selects dataset size and training length (see data.Scale).
	Scale data.Scale
	// Replicas is the number of independently trained models per variant;
	// 0 picks the scale default (3 / 5 / 10 — the paper uses 10).
	Replicas int
	// Seed anchors every experiment's seed policy.
	Seed uint64
}

// DefaultConfig returns the configuration used by the CLI: quick scale.
func DefaultConfig() Config {
	return Config{Scale: data.ScaleQuick, Seed: 20220622} // arXiv date of the paper
}

func (c Config) replicas() int {
	if c.Replicas > 0 {
		return c.Replicas
	}
	switch c.Scale {
	case data.ScaleTest:
		return 3
	case data.ScaleQuick:
		return 5
	default:
		return 10
	}
}

// EffectiveReplicas resolves the replica count, applying the scale default
// when Replicas is zero. Cache keys (the population cache, the serve
// layer's result keys) are built from this resolved value so equivalent
// configurations collide.
func (c Config) EffectiveReplicas() int { return c.replicas() }

// Echo returns the self-describing form of the configuration embedded in
// every Result.
func (c Config) Echo() report.ConfigEcho {
	return report.ConfigEcho{Scale: c.Scale.String(), Replicas: c.replicas(), Seed: c.Seed}
}

// Relative experiment cost classes surfaced by `nnrand list` and the
// serve API so callers know what they are about to pay for.
const (
	// CostNone marks experiments with no training (dataset stats, profiling).
	CostNone = "none"
	// CostLight trains a handful of small populations.
	CostLight = "light"
	// CostMedium trains several populations or long schedules.
	CostMedium = "medium"
	// CostHeavy trains a full hardware x task x variant grid.
	CostHeavy = "heavy"
)

// Meta describes a registered experiment: which paper artifact it
// reproduces, what it trains, and roughly what it costs.
type Meta struct {
	// ID is the registry key ("table2", "fig5", ...).
	ID string `json:"id"`
	// Title is the human headline, matching the artifact's table title.
	Title string `json:"title"`
	// Artifact says whether the paper artifact is a table or a figure.
	Artifact report.ArtifactKind `json:"artifact"`
	// Workloads lists the dataset/model recipes the experiment trains or
	// profiles (empty for pure dataset statistics).
	Workloads []string `json:"workloads,omitempty"`
	// Cost is the relative cost class: none, light, medium or heavy.
	Cost string `json:"cost"`
}

// Runner produces the typed result for one paper artifact. Cancelling ctx
// aborts any in-flight training at the next batch boundary and the runner
// returns an error wrapping ctx.Err().
type Runner func(ctx context.Context, cfg Config) (*report.Result, error)

// tableRunner is the internal harness shape: it renders the artifact's
// tables and leaves result assembly (timing, config echo, metadata) to the
// registry wrapper.
type tableRunner func(ctx context.Context, cfg Config) ([]*report.Table, error)

type experiment struct {
	meta Meta
	run  tableRunner
	// cells holds the compiled grid for spec-registered artifacts — its
	// length is the progress total one run reports, and the admission
	// layer prices submissions from it (EstimateExperiment); nil for
	// bespoke harnesses.
	cells []gridCell
}

// registry maps experiment IDs (table2, fig5, ...) to harnesses.
var registry = map[string]experiment{}

// register wires an experiment's metadata and harness at init time.
func register(meta Meta, run tableRunner) {
	registerCells(meta, run, nil)
}

// gridRender renders a grid artifact's tables from its cells and their
// trained populations. Paper artifacts keep bespoke renderers (the
// printed layouts are idiosyncratic); the training fan-out itself lives
// in the engine.
type gridRender func(cells []gridCell, pops []cellPop) ([]*report.Table, error)

// registerGrid wires a declarative grid artifact: the specs compile once
// at init (a name that stops resolving fails startup, not a user's run),
// their cells concatenate in spec order, and the registered harness is
// engine execution plus the artifact's renderer.
func registerGrid(meta Meta, specs []grid.Spec, render gridRender) {
	var cells []gridCell
	for _, s := range specs {
		plan, err := CompileSpec(s)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: invalid grid spec: %v", meta.ID, err))
		}
		cells = append(cells, plan.cells...)
	}
	registerCells(meta, func(ctx context.Context, cfg Config) ([]*report.Table, error) {
		pops, err := defaultPops.runCells(ctx, cfg, cells)
		if err != nil {
			return nil, err
		}
		return render(cells, pops)
	}, cells)
}

func registerCells(meta Meta, run tableRunner, cells []gridCell) {
	if meta.ID == "" || meta.Title == "" {
		panic(fmt.Sprintf("experiments: %q registered without complete metadata", meta.ID))
	}
	if meta.Artifact != report.KindTable && meta.Artifact != report.KindFigure {
		panic(fmt.Sprintf("experiments: %s has invalid artifact kind %q", meta.ID, meta.Artifact))
	}
	if _, dup := registry[meta.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", meta.ID))
	}
	registry[meta.ID] = experiment{meta: meta, run: run, cells: cells}
}

// GridCells reports the compiled grid size of a spec-registered artifact
// (the progress total one run announces); ok is false for experiments
// that are not declarative grids.
func GridCells(id string) (cells int, ok bool) {
	e, found := registry[id]
	if !found || len(e.cells) == 0 {
		return 0, false
	}
	return len(e.cells), true
}

// wrap turns an internal harness into the public Runner: it times the run
// and assembles the typed Result envelope.
func (e experiment) wrap() Runner {
	return func(ctx context.Context, cfg Config) (*report.Result, error) {
		if ctx == nil {
			ctx = context.Background()
		}
		start := time.Now()
		tables, err := e.run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.meta.ID, err)
		}
		return &report.Result{
			Experiment:      e.meta.ID,
			Title:           e.meta.Title,
			Kind:            e.meta.Artifact,
			Config:          cfg.Echo(),
			WallTimeSeconds: time.Since(start).Seconds(),
			Tables:          tables,
		}, nil
	}
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.wrap(), nil
}

// Run looks up and runs one experiment in a single call.
func Run(ctx context.Context, id string, cfg Config) (*report.Result, error) {
	r, err := Get(id)
	if err != nil {
		return nil, err
	}
	return r(ctx, cfg)
}

// Describe returns the metadata for an experiment ID.
func Describe(id string) (Meta, error) {
	e, ok := registry[id]
	if !ok {
		return Meta{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.meta, nil
}

// All lists every registered experiment's metadata in ID order.
func All() []Meta {
	out := make([]Meta, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id].meta)
	}
	return out
}

// IDs lists every registered experiment in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

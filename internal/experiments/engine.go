package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/sched"
)

// This file is the grid engine: the one executor every experiment — paper
// artifact or user-composed spec — runs through. A grid.Spec compiles into
// a Plan (axis names resolved against the task/device/variant catalogs,
// cells enumerated device→task→variant→recipe); the executor fans the
// cells out on the sched pool, ticks the context's progress observer once
// per resolved replica (per cell for the no-training profiling runs),
// honors cancellation at batch boundaries, and resolves populations
// replica-by-replica through a Populations view over the ledger
// (populations.go). Registered artifacts declare
// their grids as specs plus a bespoke renderer (the paper's table layouts
// are idiosyncratic); custom grids render through the generic metric
// columns.

// gridCell is one (recipe, device, variant) cell of an experiment grid.
type gridCell struct {
	task   taskSpec
	dev    device.Config
	v      core.Variant
	recipe grid.Recipe // zero for paper cells; labels sweep rows
}

// cellPop is the trained population behind one grid cell.
type cellPop struct {
	results []*core.RunResult
	ds      *data.Dataset
}

// stability summarizes the cell's population against its own dataset.
func (c cellPop) stability() core.Stability {
	return core.Summarize(c.results, c.ds.Test.Y, c.ds.Classes)
}

// fanout runs n work items concurrently on the sched pool, announcing the
// total to the context's progress observer (see WithProgress) and ticking
// it once per completed item. The profiling experiments (whose unit of
// work is a cell) run through here; training grids go through
// runCells/stabilityCells, which announce replica-granular totals and let
// the population layer tick once per resolved replica.
func fanout[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	tr := newTracker(ctx, n)
	return sched.Map(ctx, n, func(i int) (T, error) {
		v, err := fn(i)
		if err != nil {
			var zero T
			return zero, err
		}
		tr.tick()
		return v, nil
	})
}

// runCells trains every cell's population concurrently, deduping shared
// work through the cache; cancelling ctx aborts in-flight training at the
// next batch boundary. The returned slice pins every population at once,
// so this path is reserved for the registered paper artifacts (bounded,
// ≤30-cell grids) whose renderers need the raw populations; arbitrary
// user grids go through stabilityCells, which releases each population as
// its cell completes so a MaxCells-sized grid cannot pin thousands of
// model populations beyond the cache bound.
func (p *Populations) runCells(ctx context.Context, cfg Config, cells []gridCell) ([]cellPop, error) {
	tr := newTracker(ctx, len(cells)*cfg.replicas())
	return sched.Map(ctx, len(cells), func(i int) (cellPop, error) {
		results, ds, err := p.population(ctx, tr, cfg, cells[i].task, cells[i].dev, cells[i].v)
		if err != nil {
			return cellPop{}, err
		}
		return cellPop{results: results, ds: ds}, nil
	})
}

// stabilityCells trains every cell and summarizes it in place, retaining
// only the per-cell Stability (populations stay in the LRU-bounded cache,
// not in the result).
func (p *Populations) stabilityCells(ctx context.Context, cfg Config, cells []gridCell) ([]core.Stability, error) {
	tr := newTracker(ctx, len(cells)*cfg.replicas())
	return sched.Map(ctx, len(cells), func(i int) (core.Stability, error) {
		results, ds, err := p.population(ctx, tr, cfg, cells[i].task, cells[i].dev, cells[i].v)
		if err != nil {
			return core.Stability{}, err
		}
		return core.Summarize(results, ds.Test.Y, ds.Classes), nil
	})
}

// stabilityGrid trains every cell and returns per-cell stability summaries
// in cell order — the shape most paper renderers consume.
func stabilityGrid(ctx context.Context, cfg Config, cells []gridCell) ([]core.Stability, error) {
	return defaultPops.stabilityCells(ctx, cfg, cells)
}

// metric is one selectable stability column of the generic grid renderer.
type metric struct {
	header string
	cell   func(core.Stability) report.Cell
}

// metricCatalog maps spec metric names onto their column definitions.
var metricCatalog = map[string]metric{
	"acc": {"acc(%)", func(st core.Stability) report.Cell {
		return report.Float(st.AccMean, 2).WithUnit("%")
	}},
	"stddev_acc": {"stddev(acc)", func(st core.Stability) report.Cell {
		return report.Float(st.AccStd, 3)
	}},
	"churn": {"churn(%)", func(st core.Stability) report.Cell {
		return report.Float(st.Churn, 2).WithUnit("%")
	}},
	"l2": {"l2", func(st core.Stability) report.Cell {
		return report.Float(st.L2, 3)
	}},
	"max_class_std": {"max per-class stddev", func(st core.Stability) report.Cell {
		return report.Float(st.MaxPerClassStd, 3)
	}},
}

// MetricNames lists the metric columns a grid spec may select.
func MetricNames() []string {
	out := make([]string, 0, len(metricCatalog))
	for name := range metricCatalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Plan is a compiled grid spec: every axis name resolved against its
// catalog, cells enumerated in rendering order. Compilation is pure — no
// datasets are generated and nothing trains until Run.
type Plan struct {
	// Spec is the canonical form: task, device, variant and metric names
	// replaced by their catalog spellings. Its Hash keys the plan's
	// results.
	Spec    grid.Spec
	cells   []gridCell
	metrics []metric
}

// CompileSpec validates a spec and resolves it into an executable Plan.
func CompileSpec(spec grid.Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := spec.Normalized()
	// Each axis resolves to its canonical catalog spelling and then dedups:
	// "v100" and "V100" in one spec are one device, not two cells — and the
	// deduped canonical axis is what Hash digests, so every spelling of one
	// grid lands on one result key.
	var tasks []taskSpec
	seenTask := map[string]bool{}
	for _, name := range s.Tasks {
		t, err := taskByName(name)
		if err != nil {
			return nil, err
		}
		if !seenTask[t.name] {
			seenTask[t.name] = true
			tasks = append(tasks, t)
		}
	}
	s.Tasks = names(tasks...)
	var devs []device.Config
	seenDev := map[string]bool{}
	for _, name := range s.Devices {
		d, err := device.ByName(name)
		if err != nil {
			return nil, err
		}
		if !seenDev[d.Name] {
			seenDev[d.Name] = true
			devs = append(devs, d)
		}
	}
	s.Devices = s.Devices[:0]
	for _, d := range devs {
		s.Devices = append(s.Devices, d.Name)
	}
	var variants []core.Variant
	seenVar := map[core.Variant]bool{}
	for _, name := range s.Variants {
		v, err := core.ParseVariant(name)
		if err != nil {
			return nil, err
		}
		if !seenVar[v] {
			seenVar[v] = true
			variants = append(variants, v)
		}
	}
	s.Variants = s.Variants[:0]
	for _, v := range variants {
		s.Variants = append(s.Variants, v.String())
	}
	var metrics []metric
	seenMetric := map[string]bool{}
	canonMetrics := make([]string, 0, len(s.Metrics))
	for _, name := range s.Metrics {
		name = strings.ToLower(strings.TrimSpace(name))
		m, ok := metricCatalog[name]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown metric %q (known: %s)",
				name, strings.Join(MetricNames(), ", "))
		}
		if !seenMetric[name] {
			seenMetric[name] = true
			metrics = append(metrics, m)
			canonMetrics = append(canonMetrics, name)
		}
	}
	s.Metrics = canonMetrics
	// The recipe sweep dedups like the name axes, by override content
	// (labels are display-only and excluded from the spec hash, so two
	// same-content recipes are one cell; the first label wins).
	var recipes []grid.Recipe
	seenRecipe := map[grid.Recipe]bool{}
	for _, r := range s.Recipes {
		content := r
		content.Label = ""
		if !seenRecipe[content] {
			seenRecipe[content] = true
			recipes = append(recipes, r)
		}
	}
	if len(recipes) == 1 && recipes[0] == (grid.Recipe{Label: recipes[0].Label}) {
		// An explicit single zero-content sweep — [{}] or a label-only
		// [{"label":...}] — is the no-sweep grid: collapse it so every
		// spelling shares one identity (and one rendered layout), matching
		// the hash contract that labels never re-key results.
		recipes = nil
	}
	s.Recipes = recipes
	if len(recipes) == 0 {
		recipes = []grid.Recipe{{}}
	}
	// Cell order: device → task → variant → recipe. Devices vary slowest so
	// multi-device tables group into per-hardware blocks, the layout every
	// paper table uses.
	cells := make([]gridCell, 0, len(devs)*len(tasks)*len(variants)*len(recipes))
	for _, d := range devs {
		for _, t := range tasks {
			for _, v := range variants {
				for _, r := range recipes {
					cells = append(cells, gridCell{task: t.withRecipe(r), dev: d, v: v, recipe: r})
				}
			}
		}
	}
	return &Plan{Spec: s, cells: cells, metrics: metrics}, nil
}

// ID is the plan's registry-style identifier ("grid-<hash>"), derived
// from the canonical spec so equivalent spellings of one grid collide.
func (p *Plan) ID() string { return p.Spec.ID() }

// Cells is the number of grid cells one run executes (and the progress
// total it reports).
func (p *Plan) Cells() int { return len(p.cells) }

// Config resolves the run configuration against the spec: a spec-level
// replica count overrides the configuration's.
func (p *Plan) Config(cfg Config) Config {
	if p.Spec.Replicas > 0 {
		cfg.Replicas = p.Spec.Replicas
	}
	return cfg
}

// Estimate is the declared cost of running a plan, surfaced by the grid
// API before any training starts so callers know what a submission pays.
// The cached/to-train split is replica-granular: a warm ledger credits
// every replica index it already holds, so overlapping grids and larger
// re-runs of known cells are priced at their delta, not their total.
type Estimate struct {
	// Cells is the number of grid cells (populations to resolve).
	Cells int `json:"cells"`
	// ReplicasPerCell is the resolved population size.
	ReplicasPerCell int `json:"replicas_per_cell"`
	// TrainingRuns is Cells x ReplicasPerCell: the model trainings a cold
	// ledger would execute.
	TrainingRuns int `json:"training_runs"`
	// TotalEpochs sums each training run's epoch schedule at the requested
	// scale — the closest scale-free proxy for cold wall time.
	TotalEpochs int `json:"total_epochs"`
	// CachedReplicas counts the replicas already held by the population
	// ledger (memory or disk) — work this submission will not pay for.
	CachedReplicas int `json:"cached_replicas"`
	// TrainReplicas is TrainingRuns - CachedReplicas: the replicas that
	// would actually train.
	TrainReplicas int `json:"train_replicas"`
	// TrainEpochs prices only the to-train replicas.
	TrainEpochs int `json:"train_epochs"`
}

// Estimate prices the plan under a run configuration against a cold
// ledger (no cache credit). Populations.Estimate prices it against a
// live engine.
func (p *Plan) Estimate(cfg Config) Estimate {
	cfg = p.Config(cfg)
	reps := cfg.EffectiveReplicas()
	est := Estimate{Cells: len(p.cells), ReplicasPerCell: reps, TrainingRuns: len(p.cells) * reps}
	for _, c := range p.cells {
		est.TotalEpochs += c.task.epochs[cfg.Scale] * reps
	}
	est.TrainReplicas = est.TrainingRuns
	est.TrainEpochs = est.TotalEpochs
	return est
}

// Estimate prices a plan against this cache's replica ledger: replicas
// already held (from earlier runs, smaller populations over the same
// cells, or a previous process writing the same disk ledger) are counted
// as cached and excluded from the to-train cost.
func (p *Populations) Estimate(plan *Plan, cfg Config) Estimate {
	return p.estimateCells(plan.cells, plan.Config(cfg))
}

// EstimateExperiment prices a registered experiment the way Estimate
// prices a custom grid — against the live replica ledger. ok is false
// for experiments that are not declarative grids (profiling and
// dataset-statistic artifacts have no training the estimator can
// price); the admission layer treats those as free.
func (p *Populations) EstimateExperiment(id string, cfg Config) (est Estimate, ok bool) {
	e, found := registry[id]
	if !found || len(e.cells) == 0 {
		return Estimate{}, false
	}
	return p.estimateCells(e.cells, cfg), true
}

// estimateCells is the shared pricing core: cold cost per cell, with the
// ledger crediting every replica index it already holds.
func (p *Populations) estimateCells(cells []gridCell, cfg Config) Estimate {
	reps := cfg.EffectiveReplicas()
	est := Estimate{Cells: len(cells), ReplicasPerCell: reps, TrainingRuns: len(cells) * reps}
	led := p.Ledger()
	for _, c := range cells {
		epochs := c.task.epochs[cfg.Scale]
		warm := led.Warm(c.task.cellKey(cfg, c.dev, c.v), reps)
		est.TotalEpochs += epochs * reps
		est.CachedReplicas += warm
		est.TrainEpochs += epochs * (reps - warm)
	}
	est.TrainReplicas = est.TrainingRuns - est.CachedReplicas
	return est
}

// title is the rendered table headline.
func (p *Plan) title() string {
	if p.Spec.Title != "" {
		return p.Spec.Title
	}
	name := p.Spec.Name
	if name == "" {
		name = p.ID()
	}
	return fmt.Sprintf("Custom grid %s: {%s} x {%s} x {%s}", name,
		strings.Join(p.Spec.Tasks, ", "),
		strings.Join(p.Spec.Devices, ", "),
		strings.Join(p.Spec.Variants, ", "))
}

// render produces the generic grid table: one row per cell with the
// task/device/variant labels (plus the recipe label when the spec sweeps
// overrides) followed by the selected metric columns.
func (p *Plan) render(stats []core.Stability) []*report.Table {
	sweep := len(p.Spec.Recipes) > 0
	headers := []string{"task", "device", "variant"}
	if sweep {
		headers = append(headers, "recipe")
	}
	for _, m := range p.metrics {
		headers = append(headers, m.header)
	}
	tb := report.New(p.title(), headers...)
	for i, c := range p.cells {
		row := []report.Cell{report.Str(c.task.name), report.Str(c.dev.Name), report.Str(c.v.String())}
		if sweep {
			row = append(row, report.Str(c.recipe.String()))
		}
		for _, m := range p.metrics {
			row = append(row, m.cell(stats[i]))
		}
		tb.AddCells(row...)
	}
	return []*report.Table{tb}
}

// RunSpec compiles and executes a user-composed grid on the default
// engine cache (sharing populations with the registered paper artifacts)
// and renders the generic metric table.
func RunSpec(ctx context.Context, spec grid.Spec, cfg Config) (*report.Result, error) {
	return defaultPops.RunSpec(ctx, spec, cfg)
}

// RunSpec executes a grid spec on this cache. The result's Experiment ID
// is the plan's canonical "grid-<hash>" identity, so result stores key it
// exactly like a registered artifact.
func (p *Populations) RunSpec(ctx context.Context, spec grid.Spec, cfg Config) (*report.Result, error) {
	plan, err := CompileSpec(spec)
	if err != nil {
		return nil, err
	}
	return p.RunPlan(ctx, plan, cfg)
}

// RunPlan executes an already compiled plan (the server compiles once to
// validate and estimate, then runs the same plan).
func (p *Populations) RunPlan(ctx context.Context, plan *Plan, cfg Config) (*report.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = plan.Config(cfg)
	start := time.Now()
	stats, err := p.stabilityCells(ctx, cfg, plan.cells)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", plan.ID(), err)
	}
	return &report.Result{
		Experiment:      plan.ID(),
		Title:           plan.title(),
		Kind:            report.KindTable,
		Config:          cfg.Echo(),
		WallTimeSeconds: time.Since(start).Seconds(),
		Tables:          plan.render(stats),
	}, nil
}

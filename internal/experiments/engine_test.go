package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/grid"
)

// tinyCfg keeps engine tests fast: one replica at test scale.
func tinyCfg() Config {
	return Config{Scale: data.ScaleTest, Replicas: 1, Seed: 7}
}

// tinyTask is the cheapest trainable recipe: the small CNN cut to a
// handful of epochs via a recipe override.
func tinyTask(epochs int) taskSpec {
	return taskSmallCNNC10.withRecipe(grid.Recipe{Epochs: epochs})
}

// TestPopulationKeyHashesFullRecipe pins the cache-key contract: two
// recipes with the same task name but different hyperparameters must
// train separate populations (a name-only key would let any override
// silently collide with the paper population).
func TestPopulationKeyHashesFullRecipe(t *testing.T) {
	p := NewPopulations(8)
	cfg := tinyCfg()
	ctx := context.Background()

	base := tinyTask(1)
	hotter := base
	hotter.lr = base.lr * 2 // same name, different recipe

	if _, _, err := p.population(ctx, nil, cfg, base, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.population(ctx, nil, cfg, hotter, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if got := p.Trains(); got != 2 {
		t.Fatalf("same-name recipes with different lr trained %d replicas, want 2 (key collision)", got)
	}
	// Identical recipe: pure cache hit.
	if _, _, err := p.population(ctx, nil, cfg, base, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if got := p.Trains(); got != 2 {
		t.Fatalf("identical recipe retrained: %d trains", got)
	}
	// Every hyperparameter is part of the key — and the replica count is
	// deliberately NOT (that is what lets population sizes share prefixes).
	a, b := base, base
	a.batch, b.weightDecay = 16, 0.001
	for _, task := range []taskSpec{a, b} {
		if task.cellKey(cfg, device.V100, core.Impl) == base.cellKey(cfg, device.V100, core.Impl) {
			t.Fatalf("cell key ignores a hyperparameter: %+v", task)
		}
	}
	big := cfg
	big.Replicas = 30
	if base.cellKey(big, device.V100, core.Impl) != base.cellKey(cfg, device.V100, core.Impl) {
		t.Fatal("cell key depends on the replica count; prefix sharing impossible")
	}
}

// TestPopulationsBounded proves LRU eviction at replica granularity:
// with capacity 1, training a second cell's replica evicts the first,
// and re-requesting it retrains.
func TestPopulationsBounded(t *testing.T) {
	p := NewPopulations(1)
	cfg := tinyCfg()
	ctx := context.Background()
	a, b := tinyTask(1), tinyTask(2)

	if _, _, err := p.population(ctx, nil, cfg, a, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.population(ctx, nil, cfg, b, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("capacity-1 cache holds %d completed replicas", got)
	}
	if _, _, err := p.population(ctx, nil, cfg, a, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if got := p.Trains(); got != 3 {
		t.Fatalf("evicted replica not retrained: %d trains, want 3", got)
	}
}

// TestDatasetCacheBounded proves the dataset cache evicts too: with a
// cap of 1, alternating between two datasets regenerates on every
// return, and a bounded-cap cache never grows past its cap.
func TestDatasetCacheBounded(t *testing.T) {
	p := NewPopulations(8)
	p.dsCap = 1
	gens := map[string]int{}
	gen := func(name string) func(data.Scale) *data.Dataset {
		return func(s data.Scale) *data.Dataset {
			gens[name]++
			return taskSmallCNNC10.dataset(s)
		}
	}
	p.dataset("a", data.ScaleTest, gen("a"))
	p.dataset("b", data.ScaleTest, gen("b")) // evicts a
	p.dataset("a", data.ScaleTest, gen("a")) // regenerates a
	if gens["a"] != 2 || gens["b"] != 1 {
		t.Fatalf("generations = %v, want a:2 b:1 (eviction must force regeneration)", gens)
	}
	if got := p.ds.Len(); got != 1 {
		t.Fatalf("capacity-1 dataset cache holds %d entries", got)
	}
	// A repeat request for the resident dataset is a pure hit.
	p.dataset("a", data.ScaleTest, gen("a"))
	if gens["a"] != 2 {
		t.Fatalf("resident dataset regenerated: %d", gens["a"])
	}
}

func TestCompileSpecResolvesAliases(t *testing.T) {
	loose := grid.Spec{
		Tasks:    []string{"resnet18-cifar10"},
		Devices:  []string{"v100", "rtx5000tc"},
		Variants: []string{"impl"},
	}
	plan, err := CompileSpec(loose)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Tasks[0] != "ResNet18 CIFAR-10" {
		t.Fatalf("task not canonicalized: %q", plan.Spec.Tasks[0])
	}
	if plan.Spec.Devices[0] != "V100" || plan.Spec.Devices[1] != "RTX5000 TC" {
		t.Fatalf("devices not canonicalized: %q", plan.Spec.Devices)
	}
	if plan.Spec.Variants[0] != "IMPL" {
		t.Fatalf("variant not canonicalized: %q", plan.Spec.Variants)
	}
	if plan.Cells() != 2 {
		t.Fatalf("cells = %d, want 2", plan.Cells())
	}
	// Canonical spelling compiles to the same identity, so result keys
	// collide across spelling variants of one grid.
	canonical := grid.Spec{
		Tasks:    []string{"ResNet18 CIFAR-10"},
		Devices:  []string{"V100", "RTX5000 TC"},
		Variants: []string{"IMPL"},
	}
	plan2, err := CompileSpec(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ID() != plan2.ID() {
		t.Fatalf("alias and canonical spellings compile to different IDs: %s vs %s", plan.ID(), plan2.ID())
	}
}

func TestCompileSpecRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		spec grid.Spec
		want string
	}{
		{grid.Spec{Tasks: []string{"GPT-5"}, Devices: []string{"V100"}}, "unknown task"},
		{grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"H100"}}, "unknown device"},
		{grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"V100"}, Variants: []string{"CHAOS"}}, "unknown variant"},
		{grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"V100"}, Metrics: []string{"vibes"}}, "unknown metric"},
		{grid.Spec{Devices: []string{"V100"}}, "no tasks"},
	}
	for _, c := range cases {
		_, err := CompileSpec(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("CompileSpec(%+v) err = %v, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestPlanConfigAndEstimate(t *testing.T) {
	plan, err := CompileSpec(grid.Spec{
		Tasks:    []string{"SmallCNN CIFAR-10"},
		Devices:  []string{"V100"},
		Variants: []string{"IMPL"},
		Recipes:  []grid.Recipe{{Epochs: 5}},
		Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config(Config{Scale: data.ScaleTest, Seed: 1})
	if cfg.Replicas != 2 {
		t.Fatalf("spec replicas not applied: %+v", cfg)
	}
	est := plan.Estimate(cfg)
	if est.Cells != 1 || est.ReplicasPerCell != 2 || est.TrainingRuns != 2 || est.TotalEpochs != 10 {
		t.Fatalf("estimate = %+v, want 1 cell x 2 replicas x 5 epochs", est)
	}
	// A cold estimate credits nothing: every replica is to-train.
	if est.CachedReplicas != 0 || est.TrainReplicas != 2 || est.TrainEpochs != 10 {
		t.Fatalf("cold estimate split = %+v, want 0 cached / 2 to train", est)
	}
}

// TestGridCellCounts pins the compiled grid size of every spec-registered
// artifact — the progress total a run announces.
func TestGridCellCounts(t *testing.T) {
	want := map[string]int{
		"fig1": 12, "fig9": 9, "fig10": 9,
		"fig2": 6, "fig4": 6, "fig5": 15,
		"table2": 30, "table5": 3, "fig3": 3,
	}
	for id, cells := range want {
		got, ok := GridCells(id)
		if !ok || got != cells {
			t.Errorf("GridCells(%s) = %d,%v, want %d", id, got, ok, cells)
		}
	}
	if _, ok := GridCells("table4"); ok {
		t.Error("table4 is not a grid artifact but reports cells")
	}
}

// TestRegistryWorkloadsResolve asserts registry integrity: every workload
// a training-backed experiment lists resolves to a registered task recipe,
// so `nnrand list` metadata can never drift from the task table.
func TestRegistryWorkloadsResolve(t *testing.T) {
	for _, m := range All() {
		if m.Cost == CostNone {
			continue // profiling/dataset artifacts list graphs, not recipes
		}
		if len(m.Workloads) == 0 {
			t.Errorf("%s trains (%s) but lists no workloads", m.ID, m.Cost)
		}
		for _, w := range m.Workloads {
			if _, err := taskByName(w); err != nil {
				t.Errorf("%s lists unresolvable workload %q: %v", m.ID, w, err)
			}
		}
	}
	// And the exported catalog round-trips through the resolver.
	ws := Workloads()
	if len(ws) != len(taskRegistry) {
		t.Fatalf("Workloads() lists %d recipes, registry has %d", len(ws), len(taskRegistry))
	}
	for _, w := range ws {
		task, err := taskByName(w.Alias)
		if err != nil || task.name != w.Name {
			t.Errorf("alias %q does not resolve to %q: %v", w.Alias, w.Name, err)
		}
	}
}

// TestProgressTotalsMatchCells asserts the progress contract for the
// cheap (no-training) experiments in every mode, and for spec-driven
// training grids when not -short: profiling experiments announce and
// tick per cell, training grids per replica (cells × population size),
// and every unit ticks.
func TestProgressTotalsMatchCells(t *testing.T) {
	cases := map[string]int{"fig7": 4, "fig8a": 10, "fig8b": 4}
	if !testing.Short() {
		for _, id := range []string{"fig2", "table5"} {
			cells, ok := GridCells(id)
			if !ok {
				t.Fatalf("%s is not spec-registered", id)
			}
			cases[id] = cells * testCfg().replicas()
		}
	}
	for id, want := range cases {
		id, want := id, want
		t.Run(id, func(t *testing.T) {
			rec := &progressRecorder{}
			ctx := WithProgress(context.Background(), rec.observe)
			if _, err := Run(ctx, id, testCfg()); err != nil {
				t.Fatal(err)
			}
			if rec.total != want {
				t.Fatalf("%s announced total %d, want %d units", id, rec.total, want)
			}
			if rec.max != want {
				t.Fatalf("%s ticked %d units, want %d", id, rec.max, want)
			}
		})
	}
}

// TestRunSpecSharesPopulationsWithArtifacts pins the acceptance property:
// a custom grid whose resolved recipe matches a paper cell reuses its
// population (zero retrains), and an overridden recipe trains fresh.
func TestRunSpecSharesPopulationsWithArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	ResetCache()
	cfg := testCfg()
	ctx := context.Background()

	// Warm the exact cell fig1 trains: SmallCNN x V100 x IMPL.
	if _, _, err := population(ctx, cfg, taskSmallCNNC10, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	before := ReplicaTrains()

	spec := grid.Spec{
		Tasks:    []string{"smallcnn-cifar10"},
		Devices:  []string{"v100"},
		Variants: []string{"IMPL"},
	}
	res, err := RunSpec(ctx, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ReplicaTrains() - before; got != 0 {
		t.Fatalf("custom grid matching a paper cell retrained %d replicas, want 0", got)
	}
	// The result's identity is the canonical plan hash, not the hash of the
	// loose spelling — that is what makes "v100" and "V100" share one key.
	plan, err := CompileSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != plan.ID() {
		t.Fatalf("result experiment %q, want %q", res.Experiment, plan.ID())
	}
	if res.Experiment == spec.ID() {
		t.Fatal("loose spelling hashed identically to canonical (canonicalization not applied)")
	}
	tb := res.Tables[0]
	if len(tb.Rows) != 1 {
		t.Fatalf("grid rows = %d, want 1", len(tb.Rows))
	}
	if got := tb.Headers; got[0] != "task" || got[1] != "device" || got[2] != "variant" || got[3] != "acc(%)" {
		t.Fatalf("generic grid headers = %v", got)
	}

	// The same grid with a recipe override is a different population.
	spec.Recipes = []grid.Recipe{{LR: 0.01}}
	if _, err := RunSpec(ctx, spec, cfg); err != nil {
		t.Fatal(err)
	}
	if got, want := ReplicaTrains()-before, int64(cfg.replicas()); got != want {
		t.Fatalf("overridden recipe trained %d replicas, want %d", got, want)
	}
}

// TestCompileSpecDedupsAxes: alias and canonical spellings of one name in
// a single spec are one axis entry (one cell, one estimate, one hash) —
// and recipe labels never enter the identity.
func TestCompileSpecDedupsAxes(t *testing.T) {
	dup := grid.Spec{
		Tasks:    []string{"smallcnn-cifar10", "SmallCNN CIFAR-10"},
		Devices:  []string{"v100", "V100"},
		Variants: []string{"impl", "IMPL"},
		Metrics:  []string{"l2", "L2"},
	}
	plan, err := CompileSpec(dup)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cells() != 1 {
		t.Fatalf("duplicate spellings produced %d cells, want 1", plan.Cells())
	}
	single, err := CompileSpec(grid.Spec{
		Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"V100"},
		Variants: []string{"IMPL"}, Metrics: []string{"l2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ID() != single.ID() {
		t.Fatalf("deduped spec hashes %s, single-entry spec %s", plan.ID(), single.ID())
	}

	warm := grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"V100"},
		Recipes: []grid.Recipe{{Label: "warm", LR: 0.01}}}
	cool := warm
	cool.Recipes = []grid.Recipe{{Label: "cool", LR: 0.01}}
	if warm.Hash() != cool.Hash() {
		t.Fatal("recipe label entered the hash")
	}
	hotter := warm
	hotter.Recipes = []grid.Recipe{{Label: "warm", LR: 0.02}}
	if warm.Hash() == hotter.Hash() {
		t.Fatal("recipe override did not enter the hash")
	}

	// Same-content recipes (labels aside) are one sweep cell, and the
	// estimate prices the deduped grid.
	sweep := grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"}, Devices: []string{"V100"},
		Variants: []string{"IMPL"},
		Recipes:  []grid.Recipe{{Label: "a", Epochs: 5}, {Label: "b", Epochs: 5}, {Epochs: 7}}}
	sweepPlan, err := CompileSpec(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if sweepPlan.Cells() != 2 {
		t.Fatalf("duplicate-content recipes produced %d cells, want 2", sweepPlan.Cells())
	}
	if est := sweepPlan.Estimate(Config{Scale: data.ScaleTest, Replicas: 1}); est.TotalEpochs != 12 {
		t.Fatalf("deduped estimate epochs = %d, want 5+7", est.TotalEpochs)
	}
}

// TestExplicitZeroSweepCollapses: [{}] is the no-sweep grid — one
// identity, one layout.
func TestExplicitZeroSweepCollapses(t *testing.T) {
	withZero, err := CompileSpec(grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"},
		Devices: []string{"V100"}, Variants: []string{"IMPL"}, Recipes: []grid.Recipe{{}}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := CompileSpec(grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"},
		Devices: []string{"V100"}, Variants: []string{"IMPL"}})
	if err != nil {
		t.Fatal(err)
	}
	if withZero.ID() != without.ID() {
		t.Fatalf("[{}] and omitted recipes compile to different IDs: %s vs %s", withZero.ID(), without.ID())
	}
	if len(withZero.Spec.Recipes) != 0 {
		t.Fatal("lone zero recipe kept as a sweep")
	}
}

// TestLabelOnlySweepCollapses: a label-only recipe is content-zero, so it
// must share the no-sweep grid's identity (labels never re-key results).
func TestLabelOnlySweepCollapses(t *testing.T) {
	labeled, err := CompileSpec(grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"},
		Devices: []string{"V100"}, Variants: []string{"IMPL"},
		Recipes: []grid.Recipe{{Label: "paper"}}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CompileSpec(grid.Spec{Tasks: []string{"SmallCNN CIFAR-10"},
		Devices: []string{"V100"}, Variants: []string{"IMPL"}})
	if err != nil {
		t.Fatal(err)
	}
	if labeled.ID() != plain.ID() {
		t.Fatalf("label-only sweep re-keyed the grid: %s vs %s", labeled.ID(), plain.ID())
	}
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
)

// WorkUnit is the wire-serializable description of one replica training:
// the fully *resolved* recipe (every hyperparameter a recipe override
// could have touched, with the epoch budget already fixed for the scale),
// the device, variant, scale and seed, plus the replica index. A unit is
// self-contained — any process holding the same catalogs can execute it
// with TrainUnit and, by the determinism contract, produce a result
// bit-identical to training it locally. Cell is the replica-ledger cell
// key the unit must resolve back to; executors verify the round trip so
// a coordinator and a worker with diverged catalogs fail loudly instead
// of silently merging a different experiment's replica.
type WorkUnit struct {
	// Cell is the replica-ledger cell key (see taskSpec.cellKey) the
	// resolved unit must reproduce exactly.
	Cell string `json:"cell"`
	// Task names the registered workload recipe (dataset + model).
	Task string `json:"task"`
	// The resolved training hyperparameters. Epochs is the scale-resolved
	// budget, not a schedule.
	LR           float64 `json:"lr"`
	Batch        int     `json:"batch"`
	Epochs       int     `json:"epochs"`
	DecayAt      float64 `json:"decay_at"`
	WeightDecay  float64 `json:"weight_decay"`
	AugmentShift int     `json:"augment_shift"`
	AugmentFlip  bool    `json:"augment_flip"`
	// Device, Variant and Scale are canonical catalog spellings.
	Device  string `json:"device"`
	Variant string `json:"variant"`
	Scale   string `json:"scale"`
	// Seed anchors the seed policy; Replica selects the member of the
	// population (seeds derive from (Seed, Variant, Replica)).
	Seed    uint64 `json:"seed"`
	Replica int    `json:"replica"`
}

// Executor is where a replica miss actually trains. The population layer
// resolves ledger hits itself and hands every miss — as a WorkUnit — to
// its executor; with no executor configured it trains in process on the
// sched pool, exactly as before executors existed. A distributed
// coordinator (internal/fleet) implements Executor by enqueueing the
// unit for a remote worker fleet and blocking until one uploads the
// result. Implementations must honor ctx cancellation and must return
// results bit-identical to local training (the goldens pin this).
type Executor interface {
	Train(ctx context.Context, u WorkUnit) (*core.RunResult, error)
}

// LocalExecutor trains units in process via TrainUnit on a Populations
// cache (nil Pops = the shared default). It is the reference Executor:
// the explicit form of the nil-executor fallback, used by tests to prove
// the WorkUnit round trip is bit-identical to the direct path, and by
// the fleet worker as its training core.
type LocalExecutor struct {
	Pops *Populations
}

// Train resolves and trains the unit locally.
func (l LocalExecutor) Train(ctx context.Context, u WorkUnit) (*core.RunResult, error) {
	p := l.Pops
	if p == nil {
		p = defaultPops
	}
	return p.TrainUnit(ctx, u)
}

// SetExecutor installs the executor behind this cache's replica misses
// (nil restores in-process training). The server's fleet wiring points
// the cache at a coordinator here at startup, before serving traffic.
func (p *Populations) SetExecutor(x Executor) {
	p.mu.Lock()
	p.exec = x
	p.mu.Unlock()
}

// TrainUnit resolves a WorkUnit against the local catalogs and trains it
// in process — the fleet worker's entry point, and the definition of
// what a unit means. The unit's recipe is applied over the registered
// task, the resolved cell key is verified against the unit's, and the
// replica trains with exactly the code path local populations use, so
// the result is bit-identical wherever it is computed. The dataset comes
// from this cache's bounded dataset cache, so a worker grinding through
// one grid generates each dataset once.
func (p *Populations) TrainUnit(ctx context.Context, u WorkUnit) (*core.RunResult, error) {
	tc, v, err := p.resolveUnit(u)
	if err != nil {
		return nil, err
	}
	return core.RunReplica(ctx, tc, v, u.Replica)
}

// TrainUnit trains a unit on the shared default cache.
func TrainUnit(ctx context.Context, u WorkUnit) (*core.RunResult, error) {
	return defaultPops.TrainUnit(ctx, u)
}

// resolveUnit turns a wire unit back into an executable training
// configuration, failing loudly when any name no longer resolves or the
// resolved recipe does not reproduce the unit's cell key.
func (p *Populations) resolveUnit(u WorkUnit) (core.TrainConfig, core.Variant, error) {
	var zero core.TrainConfig
	t, err := taskByName(u.Task)
	if err != nil {
		return zero, 0, err
	}
	scale, err := data.ParseScale(u.Scale)
	if err != nil {
		return zero, 0, err
	}
	v, err := core.ParseVariant(u.Variant)
	if err != nil {
		return zero, 0, err
	}
	dev, err := device.ByName(u.Device)
	if err != nil {
		return zero, 0, err
	}
	t.lr = u.LR
	t.batch = u.Batch
	t.epochs = [3]int{u.Epochs, u.Epochs, u.Epochs}
	t.decayAt = u.DecayAt
	t.weightDecay = u.WeightDecay
	t.augment = data.Augment{Shift: u.AugmentShift, Flip: u.AugmentFlip}
	cfg := Config{Scale: scale, Seed: u.Seed}
	if got := t.cellKey(cfg, dev, v); got != u.Cell {
		return zero, 0, fmt.Errorf("experiments: work unit resolves to cell %q, not %q (catalogs out of sync between coordinator and worker?)", got, u.Cell)
	}
	tc, _ := t.trainConfig(p, cfg, dev)
	return tc, v, nil
}

// workUnit builds the wire form of one replica of this (already
// recipe-resolved) task cell.
func (t taskSpec) workUnit(cfg Config, dev device.Config, v core.Variant, replica int) WorkUnit {
	return WorkUnit{
		Cell:         t.cellKey(cfg, dev, v),
		Task:         t.name,
		LR:           t.lr,
		Batch:        t.batch,
		Epochs:       t.epochs[cfg.Scale],
		DecayAt:      t.decayAt,
		WeightDecay:  t.weightDecay,
		AugmentShift: t.augment.Shift,
		AugmentFlip:  t.augment.Flip,
		Device:       dev.Name,
		Variant:      v.String(),
		Scale:        cfg.Scale.String(),
		Seed:         cfg.Seed,
		Replica:      replica,
	}
}

package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

// TestWorkUnitRoundTripBitIdentical pins the fleet correctness
// contract: a replica resolved from a wire-serialized WorkUnit (a
// worker's view) is bit-identical to the same replica trained through
// the local population path (the coordinator's view).
func TestWorkUnitRoundTripBitIdentical(t *testing.T) {
	cfg := tinyCfg()
	task := tinyTask(1)
	local := NewPopulations(8)
	pop, _, err := local.population(context.Background(), nil, cfg, task, device.V100, core.Impl)
	if err != nil {
		t.Fatal(err)
	}

	u := task.workUnit(cfg, device.V100, core.Impl, 0)
	wire, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var decoded WorkUnit
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	remote := NewPopulations(8) // a "worker": fresh cache, same catalogs
	res, err := remote.TrainUnit(context.Background(), decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(pop[0]) {
		t.Fatal("work-unit round trip is not bit-identical to local training")
	}
}

// TestTrainUnitRefusesDivergedUnit proves the catalog-skew guard: a
// unit whose resolved recipe cannot reproduce its own cell key (here, a
// tampered hyperparameter) is refused, never trained.
func TestTrainUnitRefusesDivergedUnit(t *testing.T) {
	u := tinyTask(1).workUnit(tinyCfg(), device.V100, core.Impl, 0)
	u.LR *= 2 // skew: the cell key still describes the original lr
	if _, err := NewPopulations(8).TrainUnit(context.Background(), u); err == nil ||
		!strings.Contains(err.Error(), "out of sync") {
		t.Fatalf("diverged unit trained anyway (err = %v)", err)
	}
	u = tinyTask(1).workUnit(tinyCfg(), device.V100, core.Impl, 0)
	u.Task = "no-such-task"
	if _, err := NewPopulations(8).TrainUnit(context.Background(), u); err == nil {
		t.Fatal("unknown task resolved")
	}
}

// recordingExecutor captures the units a population dispatches and
// answers them locally.
type recordingExecutor struct {
	inner LocalExecutor
	units []WorkUnit
}

func (r *recordingExecutor) Train(ctx context.Context, u WorkUnit) (*core.RunResult, error) {
	r.units = append(r.units, u)
	return r.inner.Train(ctx, u)
}

// TestExecutorReceivesMissesOnly proves the extraction point sits
// exactly at the miss: ledger hits never reach the executor, every miss
// does, and the results an executor returns still publish to the ledger
// (the single merge point) so a re-request dispatches nothing.
func TestExecutorReceivesMissesOnly(t *testing.T) {
	cfg := tinyCfg()
	cfg.Replicas = 3
	task := tinyTask(1)
	p := NewPopulations(8)
	// Warm replica 0 through the local path first.
	warm := cfg
	warm.Replicas = 1
	if _, _, err := p.population(context.Background(), nil, warm, task, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	exec := &recordingExecutor{inner: LocalExecutor{Pops: NewPopulations(8)}}
	p.SetExecutor(exec)
	pop, _, err := p.population(context.Background(), nil, cfg, task, device.V100, core.Impl)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop) != 3 {
		t.Fatalf("population size %d, want 3", len(pop))
	}
	if len(exec.units) != 2 {
		t.Fatalf("executor saw %d units, want 2 (replica 0 was a ledger hit)", len(exec.units))
	}
	for _, u := range exec.units {
		if u.Replica == 0 {
			t.Fatal("executor dispatched a replica the ledger already held")
		}
	}
	// Everything is merged: a repeat request dispatches nothing.
	seen := len(exec.units)
	if _, _, err := p.population(context.Background(), nil, cfg, task, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	if len(exec.units) != seen {
		t.Fatal("repeat request re-dispatched merged replicas")
	}
	// And executor results are bit-identical to local training.
	q := NewPopulations(8)
	want, _, err := q.population(context.Background(), nil, cfg, task, device.V100, core.Impl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !pop[i].Equal(want[i]) {
			t.Fatalf("replica %d via executor differs from local training", i)
		}
	}
}

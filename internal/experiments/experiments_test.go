package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/report"
)

// testCfg keeps training-backed experiments affordable in unit tests.
func testCfg() Config {
	return Config{Scale: data.ScaleTest, Replicas: 2, Seed: 20220622}
}

func run(t *testing.T, id string, cfg Config) []*reportTable {
	t.Helper()
	res, err := Run(context.Background(), id, cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Experiment != id {
		t.Fatalf("result echoes experiment %q, want %q", res.Experiment, id)
	}
	if res.Config.Scale != cfg.Scale.String() || res.Config.Replicas != cfg.replicas() || res.Config.Seed != cfg.Seed {
		t.Fatalf("%s: config echo %+v does not match %+v", id, res.Config, cfg)
	}
	if res.Kind != report.KindTable && res.Kind != report.KindFigure {
		t.Fatalf("%s: result kind %q", id, res.Kind)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	out := make([]*reportTable, len(res.Tables))
	for i, tb := range res.Tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tb.Title)
		}
		out[i] = &reportTable{Title: tb.Title, Headers: tb.Headers, Rows: tb.TextRows()}
	}
	return out
}

// reportTable mirrors report.Table for local assertions.
type reportTable struct {
	Title   string
	Headers []string
	Rows    [][]string
}

func (t *reportTable) cell(row, col int) string { return t.Rows[row][col] }

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as percent: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig10", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8a", "fig8b", "fig9", "table2", "table3", "table4", "table5",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
	if _, err := Describe("fig99"); err == nil {
		t.Fatal("unknown experiment did not error from Describe")
	}
}

// TestRegistryMetadataComplete asserts every registered experiment carries
// full metadata: a title, a valid artifact kind, and a cost class. The
// serve API and `nnrand list` both surface these fields.
func TestRegistryMetadataComplete(t *testing.T) {
	all := All()
	if len(all) != len(IDs()) {
		t.Fatalf("All() lists %d experiments, registry has %d", len(all), len(IDs()))
	}
	validCost := map[string]bool{CostNone: true, CostLight: true, CostMedium: true, CostHeavy: true}
	for _, m := range all {
		if m.ID == "" || m.Title == "" {
			t.Errorf("experiment %q has an empty title", m.ID)
		}
		if m.Artifact != report.KindTable && m.Artifact != report.KindFigure {
			t.Errorf("experiment %s has invalid artifact kind %q", m.ID, m.Artifact)
		}
		if !validCost[m.Cost] {
			t.Errorf("experiment %s has invalid cost %q", m.ID, m.Cost)
		}
		if strings.HasPrefix(m.ID, "table") && m.Artifact != report.KindTable {
			t.Errorf("experiment %s is kind %q, want table", m.ID, m.Artifact)
		}
		if strings.HasPrefix(m.ID, "fig") && m.Artifact != report.KindFigure {
			t.Errorf("experiment %s is kind %q, want figure", m.ID, m.Artifact)
		}
		got, err := Describe(m.ID)
		if err != nil || got.Title != m.Title {
			t.Errorf("Describe(%s) = %+v, %v", m.ID, got, err)
		}
	}
}

func TestReplicaDefaultsByScale(t *testing.T) {
	if (Config{Scale: data.ScaleTest}).replicas() != 3 {
		t.Fatal("test-scale default replicas")
	}
	if (Config{Scale: data.ScaleQuick}).replicas() != 5 {
		t.Fatal("quick-scale default replicas")
	}
	if (Config{Scale: data.ScaleFull}).replicas() != 10 {
		t.Fatal("full-scale default replicas (paper uses 10)")
	}
	if (Config{Replicas: 7}).replicas() != 7 {
		t.Fatal("explicit replicas ignored")
	}
}

func TestTable3MatchesPaperFractions(t *testing.T) {
	tb := run(t, "table3", testCfg())[0]
	// Rows: Male, Female, Young, Old. Male positives must be ~0.8-1 % of the
	// dataset; Old ~2.5 % (the paper's Table 3).
	if got := tb.cell(0, 0); got != "Male" {
		t.Fatalf("row 0 is %q", got)
	}
	malePos := tb.cell(0, 1)
	if !strings.Contains(malePos, "(0.9%)") && !strings.Contains(malePos, "(0.8%)") {
		t.Errorf("male positive share %q, want ~0.8-0.9%%", malePos)
	}
	oldPos := tb.cell(3, 1)
	if !strings.Contains(oldPos, "(2.5%)") && !strings.Contains(oldPos, "(2.4%)") {
		t.Errorf("old positive share %q, want ~2.5%%", oldPos)
	}
}

func TestTable4ListsAllDatasets(t *testing.T) {
	tb := run(t, "table4", testCfg())[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("table4 has %d rows, want 4 datasets", len(tb.Rows))
	}
}

func TestFig8bMonotoneRows(t *testing.T) {
	tb := run(t, "fig8b", testCfg())[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("fig8b rows: %d", len(tb.Rows))
	}
	for col := 1; col <= 3; col++ {
		prev := 0.0
		for r := range tb.Rows {
			v := parsePct(t, tb.cell(r, col))
			if v <= prev {
				t.Errorf("fig8b column %s not increasing at row %d", tb.Headers[col], r)
			}
			prev = v
		}
	}
	// Headline numbers: P100 k=7 ≈ 746 %, V100 ≈ 241 %, T4 ≈ 196 %.
	if v := parsePct(t, tb.cell(3, 1)); v < 600 || v > 800 {
		t.Errorf("P100 7x7 overhead %v%%, paper 746%%", v)
	}
	if v := parsePct(t, tb.cell(3, 2)); v < 200 || v > 280 {
		t.Errorf("V100 7x7 overhead %v%%, paper 241%%", v)
	}
	if v := parsePct(t, tb.cell(3, 3)); v < 165 || v > 225 {
		t.Errorf("T4 7x7 overhead %v%%, paper 196%%", v)
	}
}

func TestFig8aVGGTopsMobileNetBottom(t *testing.T) {
	tb := run(t, "fig8a", testCfg())[0]
	if len(tb.Rows) != 10 {
		t.Fatalf("fig8a rows: %d, want 10 networks", len(tb.Rows))
	}
	byName := map[string][]float64{}
	for _, row := range tb.Rows {
		byName[row[0]] = []float64{parsePct(t, row[1]), parsePct(t, row[2]), parsePct(t, row[3])}
	}
	for col := 0; col < 3; col++ {
		for name, vals := range byName {
			if name == "VGG19" || name == "VGG16" {
				continue
			}
			if vals[col] > byName["VGG19"][col] {
				t.Errorf("col %d: %s (%v%%) exceeds VGG19 (%v%%)", col, name, vals[col], byName["VGG19"][col])
			}
		}
		if byName["MobileNet"][col] > 110 {
			t.Errorf("col %d: MobileNet overhead %v%%, paper ~101%%", col, byName["MobileNet"][col])
		}
	}
}

func TestFig7KernelSkew(t *testing.T) {
	tables := run(t, "fig7", testCfg())
	if len(tables) != 4 {
		t.Fatalf("fig7 returned %d tables, want 4 (2 nets x 2 modes)", len(tables))
	}
	// Table order: VGG default, VGG deterministic, Inception default,
	// Inception deterministic. Deterministic top-kernel share >= default's.
	for i := 0; i < 4; i += 2 {
		defShare := parsePct(t, tables[i].cell(0, 2))
		detShare := parsePct(t, tables[i+1].cell(0, 2))
		if detShare < defShare {
			t.Errorf("%s: deterministic top share %.1f%% < default %.1f%%", tables[i].Title, detShare, defShare)
		}
	}
}

func TestFig2BatchNormCurbsNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	tb := run(t, "fig2", testCfg())[0]
	// Rows: without x {A+I, ALGO, IMPL}, with x {A+I, ALGO, IMPL}.
	if len(tb.Rows) != 6 {
		t.Fatalf("fig2 rows: %d", len(tb.Rows))
	}
	parse := func(r, c int) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(tb.cell(r, c), "%"), 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q", r, c, tb.cell(r, c))
		}
		return v
	}
	// Paper Fig 2: BN reduces stddev(acc) and churn for the combined-noise
	// setting.
	if withStd, withoutStd := parse(3, 2), parse(0, 2); withStd >= withoutStd {
		t.Errorf("BN did not reduce stddev(acc): %.3f vs %.3f", withStd, withoutStd)
	}
	if withChurn, withoutChurn := parse(3, 3), parse(0, 3); withChurn >= withoutChurn {
		t.Errorf("BN did not reduce churn: %.2f vs %.2f", withChurn, withoutChurn)
	}
	// And IMPL noise alone is substantial without BN.
	if implChurn := parse(2, 3); implChurn <= 0 {
		t.Error("IMPL churn without BN is zero; tooling noise not amplified")
	}
}

func TestFig6DataOrderChurnPositiveEvenFullBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	cfg := testCfg()
	cfg.Replicas = 5 // enough pairs to resolve the small full-batch churn
	tb := run(t, "fig6", cfg)[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("fig6 rows: %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		churn, err := strconv.ParseFloat(strings.TrimSuffix(tb.cell(r, 1), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if churn <= 0 {
			t.Errorf("batch %s: churn %v, paper finds divergence at every batch size", tb.cell(r, 0), churn)
		}
	}
}

func TestTable5MaleFNRDisproportionate(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	cfg := testCfg()
	cfg.Replicas = 5 // sub-group FNR on few positives needs several pairs
	tables := run(t, "table5", cfg)
	if len(tables) != 3 {
		t.Fatalf("table5 returned %d tables, want acc/FPR/FNR", len(tables))
	}
	fnr := tables[2]
	// Rows: All, Male, Female, Young, Old; col 1 = ALGO+IMPL "std (scaleX)".
	var maleScale float64
	for _, row := range fnr.Rows {
		if row[0] == "Male" {
			open := strings.Index(row[1], "(")
			close := strings.Index(row[1], "X)")
			if open < 0 || close < 0 {
				t.Fatalf("cannot parse scale from %q", row[1])
			}
			v, err := strconv.ParseFloat(row[1][open+1:close], 64)
			if err != nil {
				t.Fatal(err)
			}
			maleScale = v
		}
	}
	// Paper Table 5: Male FNR stddev is 4.6X the overall; the reproduction
	// must show a clearly disproportionate (>1.5X) Male FNR variance.
	if maleScale < 1.5 {
		t.Errorf("Male FNR scale %.2fX; paper finds 4.6X (want > 1.5X)", maleScale)
	}
}

func TestFig3ExcludesAllRow(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	cfg := testCfg()
	cfg.Replicas = 5
	tb := run(t, "fig3", cfg)[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("fig3 rows: %d, want 4 sub-groups", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[0] == "All" {
			t.Fatal("fig3 should not include the All row (it is the normalizer)")
		}
	}
}

func TestPopulationCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	// Running fig3 after table5 must reuse the cached populations; verify by
	// checking the cache is populated after the earlier tests, and that a
	// second invocation is idempotent.
	cfg := testCfg()
	cfg.Replicas = 5
	a := run(t, "fig3", cfg)[0]
	b := run(t, "fig3", cfg)[0]
	for r := range a.Rows {
		for c := range a.Rows[r] {
			if a.Rows[r][c] != b.Rows[r][c] {
				t.Fatal("fig3 not reproducible across invocations")
			}
		}
	}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

func init() {
	register("fig1", func(cfg Config) ([]*report.Table, error) {
		return noiseComparison(cfg, "Figure 1: impact of noise source by task (V100)", device.V100, fig1Tasks)
	})
	register("fig9", func(cfg Config) ([]*report.Table, error) {
		return noiseComparison(cfg, "Figure 9: impact of noise source by task (P100)", device.P100, fig1Tasks[:3])
	})
	register("fig10", func(cfg Config) ([]*report.Table, error) {
		return noiseComparison(cfg, "Figure 10: impact of noise source by task (RTX5000)", device.RTX5000, fig1Tasks[:3])
	})
}

// noiseComparison renders the stddev/churn/L2 panels of Figures 1, 9 and 10:
// each task × variant cell of the grid summarizes an independently trained
// replica population. Cells train concurrently on the sched pool; rows are
// emitted in grid order regardless of completion order.
func noiseComparison(cfg Config, title string, dev device.Config, tasks []taskSpec) ([]*report.Table, error) {
	tb := report.New(title,
		"task", "variant", "acc(%)", "stddev(acc)", "churn(%)", "l2")
	var cells []gridCell
	for _, task := range tasks {
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, dev, v})
		}
	}
	stats, err := stabilityGrid(cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		tb.AddStrings(c.task.name, c.v.String(),
			fmt.Sprintf("%.2f", st.AccMean),
			fmt.Sprintf("%.3f", st.AccStd),
			fmt.Sprintf("%.2f", st.Churn),
			fmt.Sprintf("%.3f", st.L2))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig1Title  = "Figure 1: impact of noise source by task (V100)"
	fig9Title  = "Figure 9: impact of noise source by task (P100)"
	fig10Title = "Figure 10: impact of noise source by task (RTX5000)"
)

func init() {
	register(Meta{
		ID:        "fig1",
		Title:     fig1Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks...),
		Cost:      CostHeavy,
	}, func(ctx context.Context, cfg Config) ([]*report.Table, error) {
		return noiseComparison(ctx, cfg, fig1Title, device.V100, fig1Tasks)
	})
	register(Meta{
		ID:        "fig9",
		Title:     fig9Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks[:3]...),
		Cost:      CostHeavy,
	}, func(ctx context.Context, cfg Config) ([]*report.Table, error) {
		return noiseComparison(ctx, cfg, fig9Title, device.P100, fig1Tasks[:3])
	})
	register(Meta{
		ID:        "fig10",
		Title:     fig10Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks[:3]...),
		Cost:      CostHeavy,
	}, func(ctx context.Context, cfg Config) ([]*report.Table, error) {
		return noiseComparison(ctx, cfg, fig10Title, device.RTX5000, fig1Tasks[:3])
	})
}

// noiseComparison renders the stddev/churn/L2 panels of Figures 1, 9 and 10:
// each task × variant cell of the grid summarizes an independently trained
// replica population. Cells train concurrently on the sched pool; rows are
// emitted in grid order regardless of completion order.
func noiseComparison(ctx context.Context, cfg Config, title string, dev device.Config, tasks []taskSpec) ([]*report.Table, error) {
	tb := report.New(title,
		"task", "variant", "acc(%)", "stddev(acc)", "churn(%)", "l2")
	var cells []gridCell
	for _, task := range tasks {
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, dev, v})
		}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		tb.AddCells(report.Str(c.task.name), report.Str(c.v.String()),
			report.Float(st.AccMean, 2).WithUnit("%"),
			report.Float(st.AccStd, 3),
			report.Float(st.Churn, 2).WithUnit("%"),
			report.Float(st.L2, 3))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"repro/internal/grid"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig1Title  = "Figure 1: impact of noise source by task (V100)"
	fig9Title  = "Figure 9: impact of noise source by task (P100)"
	fig10Title = "Figure 10: impact of noise source by task (RTX5000)"
)

func init() {
	registerGrid(Meta{
		ID:        "fig1",
		Title:     fig1Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks...),
		Cost:      CostHeavy,
	}, []grid.Spec{{Tasks: names(fig1Tasks...), Devices: []string{"V100"}}},
		noiseComparison(fig1Title))
	registerGrid(Meta{
		ID:        "fig9",
		Title:     fig9Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks[:3]...),
		Cost:      CostHeavy,
	}, []grid.Spec{{Tasks: names(fig1Tasks[:3]...), Devices: []string{"P100"}}},
		noiseComparison(fig9Title))
	registerGrid(Meta{
		ID:        "fig10",
		Title:     fig10Title,
		Artifact:  report.KindFigure,
		Workloads: names(fig1Tasks[:3]...),
		Cost:      CostHeavy,
	}, []grid.Spec{{Tasks: names(fig1Tasks[:3]...), Devices: []string{"RTX5000"}}},
		noiseComparison(fig10Title))
}

// noiseComparison renders the stddev/churn/L2 panels of Figures 1, 9 and
// 10: one row per task × variant cell of the compiled grid, in grid order.
func noiseComparison(title string) gridRender {
	return func(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
		tb := report.New(title,
			"task", "variant", "acc(%)", "stddev(acc)", "churn(%)", "l2")
		for i, c := range cells {
			st := pops[i].stability()
			tb.AddCells(report.Str(c.task.name), report.Str(c.v.String()),
				report.Float(st.AccMean, 2).WithUnit("%"),
				report.Float(st.AccStd, 3),
				report.Float(st.Churn, 2).WithUnit("%"),
				report.Float(st.L2, 3))
		}
		return []*report.Table{tb}, nil
	}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

func init() {
	register("fig2", runFig2)
	register("fig4", runFig4)
}

// runFig2 reproduces Figure 2: batch normalization curbs the impact of
// every noise source on the small CNN.
func runFig2(cfg Config) ([]*report.Table, error) {
	tb := report.New("Figure 2: model design (batch norm) amplifies or curbs noise (SmallCNN, CIFAR-10-like, V100)",
		"batchnorm", "variant", "stddev(acc)", "churn(%)", "l2")
	var cells []gridCell
	var labels []string
	for _, task := range []taskSpec{taskSmallCNNC10, taskSmallCNNC10BN} {
		label := "without"
		if task.name == taskSmallCNNC10BN.name {
			label = "with"
		}
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, device.V100, v})
			labels = append(labels, label)
		}
	}
	stats, err := stabilityGrid(cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		tb.AddStrings(labels[i], c.v.String(),
			fmt.Sprintf("%.3f", st.AccStd),
			fmt.Sprintf("%.2f", st.Churn),
			fmt.Sprintf("%.3f", st.L2))
	}
	return []*report.Table{tb}, nil
}

// runFig4 reproduces Figure 4: per-class accuracy variance versus overall
// accuracy variance for ResNet-18 on the CIFAR-like datasets.
func runFig4(cfg Config) ([]*report.Table, error) {
	tb := report.New("Figure 4: per-class accuracy variance vs overall (ResNet18, V100)",
		"dataset", "variant", "stddev(acc)", "max per-class stddev", "ratio")
	var cells []gridCell
	for _, task := range []taskSpec{taskResNet18C10, taskResNet18C100} {
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, device.V100, v})
		}
	}
	stats, err := stabilityGrid(cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		ratio := 0.0
		if st.AccStd > 0 {
			ratio = st.MaxPerClassStd / st.AccStd
		}
		tb.AddStrings(c.task.name, c.v.String(),
			fmt.Sprintf("%.3f", st.AccStd),
			fmt.Sprintf("%.3f", st.MaxPerClassStd),
			fmt.Sprintf("%.1fX", ratio))
	}
	return []*report.Table{tb}, nil
}

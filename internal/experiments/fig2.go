package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig2Title = "Figure 2: model design (batch norm) amplifies or curbs noise (SmallCNN, CIFAR-10-like, V100)"
	fig4Title = "Figure 4: per-class accuracy variance vs overall (ResNet18, V100)"
)

func init() {
	register(Meta{
		ID:        "fig2",
		Title:     fig2Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskSmallCNNC10, taskSmallCNNC10BN),
		Cost:      CostMedium,
	}, runFig2)
	register(Meta{
		ID:        "fig4",
		Title:     fig4Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskResNet18C10, taskResNet18C100),
		Cost:      CostHeavy,
	}, runFig4)
}

// runFig2 reproduces Figure 2: batch normalization curbs the impact of
// every noise source on the small CNN.
func runFig2(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(fig2Title,
		"batchnorm", "variant", "stddev(acc)", "churn(%)", "l2")
	var cells []gridCell
	var labels []string
	for _, task := range []taskSpec{taskSmallCNNC10, taskSmallCNNC10BN} {
		label := "without"
		if task.name == taskSmallCNNC10BN.name {
			label = "with"
		}
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, device.V100, v})
			labels = append(labels, label)
		}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		tb.AddCells(report.Str(labels[i]), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.Churn, 2).WithUnit("%"),
			report.Float(st.L2, 3))
	}
	return []*report.Table{tb}, nil
}

// runFig4 reproduces Figure 4: per-class accuracy variance versus overall
// accuracy variance for ResNet-18 on the CIFAR-like datasets.
func runFig4(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(fig4Title,
		"dataset", "variant", "stddev(acc)", "max per-class stddev", "ratio")
	var cells []gridCell
	for _, task := range []taskSpec{taskResNet18C10, taskResNet18C100} {
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{task, device.V100, v})
		}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		ratio := 0.0
		if st.AccStd > 0 {
			ratio = st.MaxPerClassStd / st.AccStd
		}
		tb.AddCells(report.Str(c.task.name), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.MaxPerClassStd, 3),
			report.Float(ratio, 1).WithUnit("X"))
	}
	return []*report.Table{tb}, nil
}

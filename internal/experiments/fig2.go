package experiments

import (
	"repro/internal/grid"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig2Title = "Figure 2: model design (batch norm) amplifies or curbs noise (SmallCNN, CIFAR-10-like, V100)"
	fig4Title = "Figure 4: per-class accuracy variance vs overall (ResNet18, V100)"
)

func init() {
	registerGrid(Meta{
		ID:        "fig2",
		Title:     fig2Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskSmallCNNC10, taskSmallCNNC10BN),
		Cost:      CostMedium,
	}, []grid.Spec{{Tasks: names(taskSmallCNNC10, taskSmallCNNC10BN), Devices: []string{"V100"}}},
		renderFig2)
	registerGrid(Meta{
		ID:        "fig4",
		Title:     fig4Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskResNet18C10, taskResNet18C100),
		Cost:      CostHeavy,
	}, []grid.Spec{{Tasks: names(taskResNet18C10, taskResNet18C100), Devices: []string{"V100"}}},
		renderFig4)
}

// renderFig2 reproduces Figure 2: batch normalization curbs the impact of
// every noise source on the small CNN. Rows are labeled with/without by
// which task variant the cell trained.
func renderFig2(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	tb := report.New(fig2Title,
		"batchnorm", "variant", "stddev(acc)", "churn(%)", "l2")
	for i, c := range cells {
		label := "without"
		if c.task.name == taskSmallCNNC10BN.name {
			label = "with"
		}
		st := pops[i].stability()
		tb.AddCells(report.Str(label), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.Churn, 2).WithUnit("%"),
			report.Float(st.L2, 3))
	}
	return []*report.Table{tb}, nil
}

// renderFig4 reproduces Figure 4: per-class accuracy variance versus
// overall accuracy variance for ResNet-18 on the CIFAR-like datasets.
func renderFig4(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	tb := report.New(fig4Title,
		"dataset", "variant", "stddev(acc)", "max per-class stddev", "ratio")
	for i, c := range cells {
		st := pops[i].stability()
		ratio := 0.0
		if st.AccStd > 0 {
			ratio = st.MaxPerClassStd / st.AccStd
		}
		tb.AddCells(report.Str(c.task.name), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.MaxPerClassStd, 3),
			report.Float(ratio, 1).WithUnit("X"))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/report"
	"repro/internal/sched"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig5Title = "Figure 5: stability by accelerator (ResNet18, CIFAR-100-like)"
	fig6Title = "Figure 6: data input order alone breaks determinism on TPU (SmallCNN)"
)

func init() {
	register(Meta{
		ID:        "fig5",
		Title:     fig5Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskResNet18C100),
		Cost:      CostHeavy,
	}, runFig5)
	register(Meta{
		ID:        "fig6",
		Title:     fig6Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskSmallCNNC10),
		Cost:      CostMedium,
	}, runFig6)
}

// runFig5 reproduces Figure 5: ResNet-18 / CIFAR-100-like across the
// accelerator catalog — CUDA-core GPUs with different core counts, Tensor
// Cores, and the systolic TPU.
func runFig5(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(fig5Title,
		"accelerator", "variant", "stddev(acc)", "churn(%)", "l2")
	devices := []device.Config{device.P100, device.V100, device.RTX5000, device.RTX5000TC, device.TPUv2}
	var cells []gridCell
	for _, dev := range devices {
		for _, v := range core.StandardVariants {
			cells = append(cells, gridCell{taskResNet18C100, dev, v})
		}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		st := stats[i]
		tb.AddCells(report.Str(c.dev.Name), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.Churn, 2).WithUnit("%"),
			report.Float(st.L2, 3))
	}
	return []*report.Table{tb}, nil
}

// runFig6 reproduces Figure 6: on the deterministic TPU, varying only the
// data order still produces predictive divergence at every batch size —
// including full batch, where all models "should" mathematically agree.
func runFig6(ctx context.Context, cfg Config) ([]*report.Table, error) {
	ds := datasetCached(taskSmallCNNC10.name, cfg.Scale, taskSmallCNNC10.dataset)
	n := ds.Train.N()
	batches := []int{n / 15, n / 4, n} // small, medium, full batch
	tb := report.New(fig6Title,
		"batch size", "churn(%)", "stddev(acc)")
	tr := newTracker(ctx, len(batches))
	stats, err := sched.Map(ctx, len(batches), func(i int) (core.Stability, error) {
		b := batches[i]
		task := taskSmallCNNC10
		task.name = fmt.Sprintf("%s/batch%d", task.name, b)
		task.batch = b
		task.augment = data.Augment{} // no augmentation: isolate pure ordering
		// Large batches are trained with the same LR, so cool it slightly to
		// keep every batch size in the stable regime; fixed-epoch budget
		// across batch sizes (full batch takes one step per epoch, so the
		// budget is generous for noise to amplify).
		task.lr = 0.06
		task.epochs = [3]int{100, 140, 200}
		results, dsUsed, err := population(ctx, cfg, task, device.TPUv2, core.DataOrderOnly)
		if err != nil {
			return core.Stability{}, err
		}
		tr.tick()
		return core.Summarize(results, dsUsed.Test.Y, dsUsed.Classes), nil
	})
	if err != nil {
		return nil, err
	}
	for i, b := range batches {
		tb.AddCells(report.Int(b),
			report.Float(stats[i].Churn, 2).WithUnit("%"),
			report.Float(stats[i].AccStd, 3))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig5Title = "Figure 5: stability by accelerator (ResNet18, CIFAR-100-like)"
	fig6Title = "Figure 6: data input order alone breaks determinism on TPU (SmallCNN)"
)

func init() {
	registerGrid(Meta{
		ID:        "fig5",
		Title:     fig5Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskResNet18C100),
		Cost:      CostHeavy,
	}, []grid.Spec{{
		Tasks:   names(taskResNet18C100),
		Devices: []string{"P100", "V100", "RTX5000", "RTX5000 TC", "TPUv2"},
	}}, renderFig5)
	register(Meta{
		ID:        "fig6",
		Title:     fig6Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskSmallCNNC10),
		Cost:      CostMedium,
	}, runFig6)
}

// renderFig5 reproduces Figure 5: ResNet-18 / CIFAR-100-like across the
// accelerator catalog — CUDA-core GPUs with different core counts, Tensor
// Cores, and the systolic TPU.
func renderFig5(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	tb := report.New(fig5Title,
		"accelerator", "variant", "stddev(acc)", "churn(%)", "l2")
	for i, c := range cells {
		st := pops[i].stability()
		tb.AddCells(report.Str(c.dev.Name), report.Str(c.v.String()),
			report.Float(st.AccStd, 3),
			report.Float(st.Churn, 2).WithUnit("%"),
			report.Float(st.L2, 3))
	}
	return []*report.Table{tb}, nil
}

// runFig6 reproduces Figure 6: on the deterministic TPU, varying only the
// data order still produces predictive divergence at every batch size —
// including full batch, where all models "should" mathematically agree.
// The batch-size axis depends on the generated dataset's size, so the
// cells are built at run time (with recipe overrides on the catalog task)
// rather than declared statically; they still execute on the engine.
func runFig6(ctx context.Context, cfg Config) ([]*report.Table, error) {
	ds := datasetCached(taskSmallCNNC10.name, cfg.Scale, taskSmallCNNC10.dataset)
	n := ds.Train.N()
	batches := []int{n / 15, n / 4, n} // small, medium, full batch
	cells := make([]gridCell, len(batches))
	for i, b := range batches {
		// Large batches are trained with the same LR, so cool it slightly to
		// keep every batch size in the stable regime; fixed-epoch budget
		// across batch sizes (full batch takes one step per epoch, so the
		// budget is generous for noise to amplify). No augmentation: isolate
		// pure ordering.
		task := taskSmallCNNC10
		task.batch = b
		task.augment = data.Augment{}
		task.lr = 0.06
		task.epochs = [3]int{100, 140, 200}
		cells[i] = gridCell{task: task, dev: device.TPUv2, v: core.DataOrderOnly}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	tb := report.New(fig6Title,
		"batch size", "churn(%)", "stddev(acc)")
	for i, b := range batches {
		tb.AddCells(report.Int(b),
			report.Float(stats[i].Churn, 2).WithUnit("%"),
			report.Float(stats[i].AccStd, 3))
	}
	return []*report.Table{tb}, nil
}

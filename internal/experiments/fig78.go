package experiments

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profile"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	fig8aTitle = "Figure 8a: normalized deterministic execution GPU time across networks"
	fig8bTitle = "Figure 8b: normalized deterministic GPU time vs conv kernel size (medium CNN)"
)

func init() {
	register(Meta{
		ID:        "fig7",
		Title:     "Figure 7: top-20 GPU kernels by cumulative time, TF default vs deterministic mode (V100)",
		Artifact:  report.KindFigure,
		Workloads: []string{"VGG19", "InceptionV3"},
		Cost:      CostNone,
	}, runFig7)
	register(Meta{
		ID:        "fig8a",
		Title:     fig8aTitle,
		Artifact:  report.KindFigure,
		Workloads: []string{"profiling zoo (10 networks)"},
		Cost:      CostNone,
	}, runFig8a)
	register(Meta{
		ID:        "fig8b",
		Title:     fig8bTitle,
		Artifact:  report.KindFigure,
		Workloads: []string{"MediumCNN"},
		Cost:      CostNone,
	}, runFig8b)
}

// runFig7 reproduces Figure 7: the top-20 GPU kernels by cumulative time
// for VGG-19 and InceptionV3 in TF-default versus TF-deterministic mode,
// showing deterministic mode's skew toward a narrow kernel set.
func runFig7(ctx context.Context, cfg Config) ([]*report.Table, error) {
	type cell struct {
		g    *models.Graph
		mode device.Mode
	}
	var cells []cell
	for _, g := range []*models.Graph{models.VGG19Graph(), models.InceptionV3Graph()} {
		for _, mode := range []device.Mode{device.Default, device.Deterministic} {
			cells = append(cells, cell{g, mode})
		}
	}
	return fanout(ctx, len(cells), func(i int) (*report.Table, error) {
		g, mode := cells[i].g, cells[i].mode
		p, err := profile.Graph(g, device.ArchVolta, mode, profile.Options{})
		if err != nil {
			return nil, err
		}
		tb := report.New(
			fmt.Sprintf("Figure 7: top-20 kernels, %s, TF %s mode (V100, batch %d, %d steps)",
				g.Name, mode, p.Batch, p.Steps),
			"kernel", "cumulative time (ms)", "share")
		for _, k := range p.TopK(20) {
			tb.AddCells(report.Str(k.Name),
				report.Float(k.Millis, 1),
				report.Float(100*k.Millis/p.Total, 1).WithUnit("%"))
		}
		return tb, nil
	})
}

// runFig8a reproduces Figure 8a: deterministic-mode GPU time relative to
// default mode for the ten profiled networks on P100, V100 and T4.
func runFig8a(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(fig8aTitle,
		"network", "P100", "V100", "T4")
	zoo := models.Zoo()
	rows, err := fanout(ctx, len(zoo), func(i int) ([]report.Cell, error) {
		g := zoo[i]
		row := []report.Cell{report.Str(g.Name)}
		for _, arch := range []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring} {
			ov, err := profile.Overhead(g, arch, profile.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, report.Float(100*ov, 0).WithUnit("%"))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddCells(row...)
	}
	return []*report.Table{tb}, nil
}

// runFig8b reproduces Figure 8b: overhead versus convolution kernel size on
// the six-layer medium CNN.
func runFig8b(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(fig8bTitle,
		"kernel", "P100", "V100", "T4")
	kernels := []int{1, 3, 5, 7}
	rows, err := fanout(ctx, len(kernels), func(i int) ([]report.Cell, error) {
		k := kernels[i]
		g := models.MediumCNNGraph(k)
		row := []report.Cell{report.Str(fmt.Sprintf("%d*%d", k, k))}
		for _, arch := range []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring} {
			ov, err := profile.Overhead(g, arch, profile.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, report.Float(100*ov, 0).WithUnit("%"))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddCells(row...)
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sched"
)

func init() {
	register("fig7", runFig7)
	register("fig8a", runFig8a)
	register("fig8b", runFig8b)
}

// runFig7 reproduces Figure 7: the top-20 GPU kernels by cumulative time
// for VGG-19 and InceptionV3 in TF-default versus TF-deterministic mode,
// showing deterministic mode's skew toward a narrow kernel set.
func runFig7(cfg Config) ([]*report.Table, error) {
	type cell struct {
		g    *models.Graph
		mode device.Mode
	}
	var cells []cell
	for _, g := range []*models.Graph{models.VGG19Graph(), models.InceptionV3Graph()} {
		for _, mode := range []device.Mode{device.Default, device.Deterministic} {
			cells = append(cells, cell{g, mode})
		}
	}
	return sched.Map(len(cells), func(i int) (*report.Table, error) {
		g, mode := cells[i].g, cells[i].mode
		p, err := profile.Graph(g, device.ArchVolta, mode, profile.Options{})
		if err != nil {
			return nil, err
		}
		tb := report.New(
			fmt.Sprintf("Figure 7: top-20 kernels, %s, TF %s mode (V100, batch %d, %d steps)",
				g.Name, mode, p.Batch, p.Steps),
			"kernel", "cumulative time (ms)", "share")
		for _, k := range p.TopK(20) {
			tb.AddStrings(k.Name,
				fmt.Sprintf("%.1f", k.Millis),
				fmt.Sprintf("%.1f%%", 100*k.Millis/p.Total))
		}
		return tb, nil
	})
}

// runFig8a reproduces Figure 8a: deterministic-mode GPU time relative to
// default mode for the ten profiled networks on P100, V100 and T4.
func runFig8a(cfg Config) ([]*report.Table, error) {
	tb := report.New("Figure 8a: normalized deterministic execution GPU time across networks",
		"network", "P100", "V100", "T4")
	zoo := models.Zoo()
	rows, err := sched.Map(len(zoo), func(i int) ([]string, error) {
		g := zoo[i]
		row := []string{g.Name}
		for _, arch := range []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring} {
			ov, err := profile.Overhead(g, arch, profile.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*ov))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddStrings(row...)
	}
	return []*report.Table{tb}, nil
}

// runFig8b reproduces Figure 8b: overhead versus convolution kernel size on
// the six-layer medium CNN.
func runFig8b(cfg Config) ([]*report.Table, error) {
	tb := report.New("Figure 8b: normalized deterministic GPU time vs conv kernel size (medium CNN)",
		"kernel", "P100", "V100", "T4")
	kernels := []int{1, 3, 5, 7}
	rows, err := sched.Map(len(kernels), func(i int) ([]string, error) {
		k := kernels[i]
		g := models.MediumCNNGraph(k)
		row := []string{fmt.Sprintf("%d*%d", k, k)}
		for _, arch := range []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring} {
			ov, err := profile.Overhead(g, arch, profile.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*ov))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddStrings(row...)
	}
	return []*report.Table{tb}, nil
}

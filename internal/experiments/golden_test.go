package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
)

// goldenConfig is the fixed configuration every golden artifact is rendered
// under: the smallest scale, two replicas, the paper seed.
func goldenConfig() Config {
	return Config{Scale: data.ScaleTest, Replicas: 2, Seed: 20220622}
}

// goldenCheap marks the artifacts with no training behind them; their
// goldens are compared on every test run. The training-backed artifacts
// (everything else) train ~50 populations even at test scale, so they are
// compared only when NNRAND_GOLDEN_ALL is set.
var goldenCheap = map[string]bool{
	"table3": true, "table4": true, "fig7": true, "fig8a": true, "fig8b": true,
}

// TestGoldenArtifacts pins the rendered JSON of every registered paper
// artifact byte-for-byte (wall time zeroed): any refactor of the experiment
// layer must be rendering-identical. Regenerate with
//
//	NNRAND_GOLDEN_UPDATE=1 [NNRAND_GOLDEN_ALL=1] go test -run TestGoldenArtifacts ./internal/experiments/
func TestGoldenArtifacts(t *testing.T) {
	update := os.Getenv("NNRAND_GOLDEN_UPDATE") != ""
	all := os.Getenv("NNRAND_GOLDEN_ALL") != ""
	for _, id := range IDs() {
		if !goldenCheap[id] && (!all || testing.Short()) {
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(context.Background(), id, goldenConfig())
			if err != nil {
				t.Fatal(err)
			}
			res.WallTimeSeconds = 0 // the only field that varies run to run
			var buf bytes.Buffer
			if err := res.RenderJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".json")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with NNRAND_GOLDEN_UPDATE=1): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s: rendered JSON differs from golden %s\n--- golden ---\n%s\n--- got ---\n%s",
					id, path, want, buf.Bytes())
			}
		})
	}
}

package experiments

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/ledger"
)

// TestReplicaPrefixBitIdentical is the tentpole's correctness hinge:
// replica i must be bit-identical whether it trains inside a 5-replica
// or a 30-replica population, and whether it is served fresh, from the
// in-memory ledger, or from a disk ledger written by a "previous
// process". Replica outcomes depend only on (cell key, index) — never on
// the population size or the storage path.
func TestReplicaPrefixBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	task := tinyTask(1) // 1-epoch SmallCNN: ~tens of ms per replica
	small := Config{Scale: data.ScaleTest, Replicas: 5, Seed: 7}
	large := small
	large.Replicas = 30
	ctx := context.Background()

	// A size-5 population on a fresh engine.
	p1 := NewPopulations(64)
	res5, _, err := p1.population(ctx, nil, small, task, device.V100, core.AlgoImpl)
	if err != nil {
		t.Fatal(err)
	}

	// A size-30 population on another fresh engine, persisted to disk.
	dir := t.TempDir()
	led, err := ledger.Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	p2 := NewPopulations(64)
	p2.SetLedger(led)
	res30, _, err := p2.population(ctx, nil, large, task, device.V100, core.AlgoImpl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p2.Trains(), int64(30); got != want {
		t.Fatalf("fresh size-30 run trained %d replicas, want %d", got, want)
	}
	for i := range res5 {
		if !res5[i].Equal(res30[i]) {
			t.Fatalf("replica %d differs between a size-5 and a size-30 population", i)
		}
	}

	// A cold process over the warm directory: everything served from disk,
	// bit-identical, zero retrains.
	led2, err := ledger.Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	p3 := NewPopulations(64)
	p3.SetLedger(led2)
	got30, _, err := p3.population(ctx, nil, large, task, device.V100, core.AlgoImpl)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Trains() != 0 {
		t.Fatalf("warm ledger retrained %d replicas, want 0", p3.Trains())
	}
	for i := range res30 {
		if !res30[i].Equal(got30[i]) {
			t.Fatalf("replica %d served from disk differs from fresh-trained", i)
		}
	}

	// Growing the population over a warm ledger trains only the delta.
	p4 := NewPopulations(64)
	led3, err := ledger.Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	p4.SetLedger(led3)
	grown := large
	grown.Replicas = 32
	res32, _, err := p4.population(ctx, nil, grown, task, device.V100, core.AlgoImpl)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p4.Trains(), int64(2); got != want {
		t.Fatalf("growing 30 -> 32 replicas trained %d, want %d (the delta)", got, want)
	}
	for i := range res30 {
		if !res30[i].Equal(res32[i]) {
			t.Fatalf("replica %d changed when the population grew", i)
		}
	}
}

// TestPopulationsEstimateCreditsWarmReplicas: the warm estimate credits
// exactly the ledger-resident prefix of each cell.
func TestPopulationsEstimateCreditsWarmReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	p := NewPopulations(64)
	cfg := Config{Scale: data.ScaleTest, Replicas: 2, Seed: 7}
	task := tinyTask(3)
	if _, _, err := p.population(context.Background(), nil, cfg, task, device.V100, core.Impl); err != nil {
		t.Fatal(err)
	}
	plan, err := CompileSpec(grid.Spec{
		Tasks:    []string{"SmallCNN CIFAR-10"},
		Devices:  []string{"V100"},
		Variants: []string{"IMPL"},
		Recipes:  []grid.Recipe{{Epochs: 3}}, // resolves to the same cell as tinyTask(3)
	})
	if err != nil {
		t.Fatal(err)
	}
	est := p.Estimate(plan, Config{Scale: data.ScaleTest, Replicas: 5, Seed: 7})
	if est.TrainingRuns != 5 || est.CachedReplicas != 2 || est.TrainReplicas != 3 {
		t.Fatalf("estimate = %+v, want 2 cached / 3 to train of 5", est)
	}
	if est.TrainEpochs != 3*3 || est.TotalEpochs != 5*3 {
		t.Fatalf("epochs split = %d/%d, want 9/15", est.TrainEpochs, est.TotalEpochs)
	}
}

package experiments

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/sched"
)

// TestMain lets CI and the BENCH harness pin the worker pool from the
// environment (NNRAND_WORKERS=n) — in particular so the golden-artifact
// suite can assert byte-identical output at several worker counts.
func TestMain(m *testing.M) {
	if s := os.Getenv("NNRAND_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			sched.SetWorkers(n)
		}
	}
	os.Exit(m.Run())
}

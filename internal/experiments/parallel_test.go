package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// TestPopulationSingleflight proves the per-replica singleflight: many
// goroutines racing for the same (task, device, variant) cell must train
// each replica exactly once, and all of them must observe the identical
// replica objects.
func TestPopulationSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	ResetCache()
	cfg := testCfg()

	const callers = 8
	results := make([][]*core.RunResult, callers)
	errs := make([]error, callers)
	before := ReplicaTrains()

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize contention: release everyone at once
			res, _, err := population(context.Background(), cfg, taskSmallCNNC10, device.V100, core.Control)
			results[i], errs[i] = res, err
		}(i)
	}
	start.Done()
	done.Wait()

	trained := ReplicaTrains() - before
	if want := int64(cfg.replicas()); trained != want {
		t.Fatalf("%d concurrent callers trained %d replicas, want exactly %d (each replica once)", callers, trained, want)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(results[i]) != cfg.replicas() {
			t.Fatalf("caller %d got %d replicas, want %d", i, len(results[i]), cfg.replicas())
		}
		// Singleflight shares each flight's result, it does not re-run it:
		// every caller sees the same underlying replica objects.
		for j := range results[i] {
			if results[i][j] != results[0][j] {
				t.Fatalf("caller %d received a different replica %d object", i, j)
			}
		}
	}

	// A second, sequential call is a pure cache hit.
	if _, _, err := population(context.Background(), cfg, taskSmallCNNC10, device.V100, core.Control); err != nil {
		t.Fatal(err)
	}
	if got, want := ReplicaTrains()-before, int64(cfg.replicas()); got != want {
		t.Fatalf("cache hit retrained: %d trainings, want %d", got, want)
	}
}

// TestPopulationWaiterCancellation pins two cancellation properties of the
// singleflight cache: a waiter whose own context dies stops waiting
// immediately (without killing the flight), and a caller arriving after an
// owner-cancelled flight retrains rather than inheriting the stale error.
func TestPopulationWaiterCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	ResetCache()
	cfg := testCfg()

	// Owner with a context we cancel mid-training.
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := population(ownerCtx, cfg, taskSmallCNNC10BN, device.V100, core.Control)
		ownerErr <- err
	}()

	// Waiter joins the same flight, then its own context is cancelled: it
	// must return promptly even though the flight keeps running.
	time.Sleep(20 * time.Millisecond)
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := population(waiterCtx, cfg, taskSmallCNNC10BN, device.V100, core.Control)
		waiterErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelWaiter()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled waiter kept blocking on the flight")
	}

	// Now cancel the owner and confirm its flight aborts.
	cancelOwner()
	select {
	case err := <-ownerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("owner err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled owner kept training")
	}

	// A fresh caller with a live context must retrain successfully: the
	// aborted flight's entry may not poison the cache.
	res, _, err := population(context.Background(), cfg, taskSmallCNNC10BN, device.V100, core.Control)
	if err != nil {
		t.Fatalf("post-cancellation retrain: %v", err)
	}
	if len(res) != cfg.replicas() {
		t.Fatalf("post-cancellation retrain returned %d replicas, want %d", len(res), cfg.replicas())
	}
}

// TestDatasetCachedSingleflight checks the dataset cache builds each
// dataset once under concurrency and always returns the same instance.
func TestDatasetCachedSingleflight(t *testing.T) {
	cfg := testCfg()
	const callers = 8
	got := make([]interface{}, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			got[i] = datasetCached(taskResNet18C10.name, cfg.Scale, taskResNet18C10.dataset)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a distinct dataset instance", i)
		}
	}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
)

// DefaultPopulationCapacity bounds how many completed replica populations
// a Populations cache retains before evicting least-recently-used entries.
// Populations hold full model weights, so the bound is what keeps a
// long-lived server's memory flat under arbitrary custom grids.
const DefaultPopulationCapacity = 64

// Populations is the engine-owned cache of trained replica populations
// and generated datasets. It replaces the old package-global singleflight
// maps: construct one with NewPopulations to isolate an engine (tests,
// embedded services), or use the package-level helpers that delegate to
// the shared default instance — registered paper artifacts and custom
// grids run on the same default cache, which is how a custom cell whose
// resolved recipe matches a paper cell reuses its population.
//
// Entries are keyed by the full resolved recipe fingerprint (every
// hyperparameter, the device, variant, replica count, scale and seed —
// see taskSpec.fingerprint), not the task name, so recipe overrides can
// never collide with paper populations. Lookups are singleflight: the
// first caller of a key trains while concurrent callers block on the
// entry's done channel; waiters select on their own context, and a
// cancelled flight owner never poisons the key for live waiters. Completed
// entries are LRU-evicted beyond the capacity; in-flight entries are never
// evicted.
type Populations struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*popEntry
	// lru holds completed keys, least recently used first.
	lru []string

	dsMu sync.Mutex
	ds   map[string]*dsEntry

	// trains counts populations actually trained (not served from cache);
	// tests use deltas to prove singleflight dedup and key separation.
	trains atomic.Int64
}

// NewPopulations returns an empty cache retaining at most capacity
// completed populations (<= 0 picks DefaultPopulationCapacity).
func NewPopulations(capacity int) *Populations {
	if capacity <= 0 {
		capacity = DefaultPopulationCapacity
	}
	return &Populations{
		cap:     capacity,
		entries: map[string]*popEntry{},
		ds:      map[string]*dsEntry{},
	}
}

// defaultPops is the shared engine cache behind the package-level API.
var defaultPops = NewPopulations(DefaultPopulationCapacity)

// DefaultPopulations returns the shared cache used by registered paper
// artifacts and RunSpec, so embedders can run custom grids on an engine
// that shares populations with the registry.
func DefaultPopulations() *Populations { return defaultPops }

// ResetCache clears the default population cache (tests use this to force
// retrains).
func ResetCache() { defaultPops.Reset() }

// PopulationTrains reports how many populations the default cache has
// actually trained (cache hits excluded) since process start. The server
// tests use deltas of this counter to prove that concurrent identical
// requests train each population exactly once.
func PopulationTrains() int64 { return defaultPops.Trains() }

// Reset drops every cached population and dataset.
func (p *Populations) Reset() {
	p.mu.Lock()
	p.entries = map[string]*popEntry{}
	p.lru = nil
	p.mu.Unlock()
	p.dsMu.Lock()
	p.ds = map[string]*dsEntry{}
	p.dsMu.Unlock()
}

// Trains reports how many populations this cache has actually trained.
func (p *Populations) Trains() int64 { return p.trains.Load() }

// Len reports how many completed populations are currently cached.
func (p *Populations) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.lru)
}

type popEntry struct {
	done    chan struct{}
	results []*core.RunResult
	err     error
}

type dsEntry struct {
	once sync.Once
	ds   *data.Dataset
	err  error // set when gen panicked; waiters re-panic with this context
}

// datasetCached delegates to the default cache (taskSpec.trainConfig and
// the dataset-only artifacts run there).
func datasetCached(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	return defaultPops.dataset(task, s, gen)
}

// dataset builds (or fetches) the dataset for one task at one scale.
// Concurrent callers build it exactly once and share the instance.
func (p *Populations) dataset(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	key := fmt.Sprintf("%s@%s", task, s)
	p.dsMu.Lock()
	e, ok := p.ds[key]
	if !ok {
		e = &dsEntry{}
		p.ds[key] = e
	}
	p.dsMu.Unlock()
	e.once.Do(func() {
		// A panic in gen would otherwise poison the entry forever (sync.Once
		// marks done even on panic): record the cause for concurrent waiters,
		// drop the entry so a retry can rebuild, and keep crash semantics.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiments: dataset %s: panic during generation: %v", key, r)
				p.dsMu.Lock()
				if p.ds[key] == e {
					delete(p.ds, key)
				}
				p.dsMu.Unlock()
				panic(r)
			}
		}()
		e.ds = gen(s)
	})
	if e.err != nil {
		// A waiter whose flight owner panicked: surface the original cause
		// instead of handing out a nil dataset that crashes far away.
		panic(e.err)
	}
	return e.ds
}

// population delegates to the default cache.
func population(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	return defaultPops.population(ctx, cfg, t, dev, v)
}

// population trains (or fetches from cache) the replica population for one
// (recipe, device, variant) cell of an experiment grid. Concurrent calls
// with the same fingerprint train the population exactly once. If the
// flight owner is cancelled, callers whose own context is still live
// transparently retry with a fresh flight, so one aborted request never
// poisons the result for everyone queued behind it.
func (p *Populations) population(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	for {
		results, ds, err := p.flight(ctx, cfg, t, dev, v)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The owner of the flight we waited on was cancelled; our
			// context is live, so run (or join) a fresh flight.
			continue
		}
		return results, ds, err
	}
}

func (p *Populations) flight(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	tc, ds := t.trainConfig(p, cfg, dev)
	key := t.fingerprint(cfg, dev, v)
	p.mu.Lock()
	e, ok := p.entries[key]
	if !ok {
		e = &popEntry{done: make(chan struct{})}
		p.entries[key] = e
	}
	p.mu.Unlock()

	if ok {
		// Someone else owns the flight (or it is already complete): wait for
		// it or for our own cancellation, whichever comes first.
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	} else {
		// We own the flight. If training panics, record the cause for the
		// waiters, drop the entry so a retry can rebuild, and keep crash
		// semantics on this goroutine.
		func() {
			defer close(e.done)
			defer func() {
				if r := recover(); r != nil {
					e.err = fmt.Errorf("experiments: %s on %s under %s: panic during training: %v", t.name, dev.Name, v, r)
					panic(r)
				}
			}()
			p.trains.Add(1)
			results, err := core.RunVariant(ctx, tc, v, cfg.replicas())
			if err != nil {
				e.err = fmt.Errorf("experiments: %s on %s under %s: %w", t.name, dev.Name, v, err)
				return
			}
			e.results = results
		}()
	}
	if e.err != nil {
		// Drop the failed entry so a later call can retry (the error is
		// still returned to everyone who waited on this flight).
		p.mu.Lock()
		if p.entries[key] == e {
			delete(p.entries, key)
		}
		p.mu.Unlock()
		return nil, nil, e.err
	}
	p.touch(key, e)
	return e.results, ds, nil
}

// touch records a completed entry as most recently used and evicts the
// least recently used completed entries beyond capacity. In-flight entries
// (not yet in lru) are never evicted, so a key being trained cannot be
// dropped mid-flight by cache pressure.
func (p *Populations) touch(key string, e *popEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries[key] != e {
		return // raced with Reset or a failure-path delete
	}
	for i, k := range p.lru {
		if k == key {
			p.lru = append(append(p.lru[:i:i], p.lru[i+1:]...), key)
			return
		}
	}
	p.lru = append(p.lru, key)
	for len(p.lru) > p.cap {
		delete(p.entries, p.lru[0])
		p.lru = p.lru[1:]
	}
}

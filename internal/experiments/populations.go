package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/ledger"
	"repro/internal/lru"
	"repro/internal/sched"
)

// DefaultReplicaCapacity bounds how many trained replicas a Populations
// cache retains before evicting least-recently-used ones. Replicas hold
// full model weights, so the bound is what keeps a long-lived server's
// memory flat under arbitrary custom grids. Sized for every registered
// paper artifact at the paper's 10-replica populations with headroom for
// custom grids.
const DefaultReplicaCapacity = ledger.DefaultCapacity

// DefaultDatasetCapacity bounds the generated-dataset cache. Each entry
// is a full synthetic dataset (the largest, ImageNet-like at full scale,
// is tens of MB), and the shipped catalog has 4 distinct datasets × 3
// scales — 8 retains a whole scale's worth plus cross-scale slack while
// still evicting under adversarial grid mixes.
const DefaultDatasetCapacity = 8

// Populations is the engine-owned population layer: a thin view over a
// replica ledger (internal/ledger). The paper's central object — a
// population of independently seeded replicas — is replica-addressable by
// construction: replica i's outcome is fully determined by (cell key, i)
// and never by the population's size. So a request for an N-replica
// population resolves indices 0..N-1 individually against the ledger,
// serves hits from memory or disk, and singleflights only the misses onto
// the sched worker pool. Consequences:
//
//   - populations of different sizes share prefixes: a 30-replica request
//     over a cell a 10-replica run already trained pays for 20 replicas;
//   - custom grids warm-start from the paper artifacts' replicas (the
//     cell key excludes the replica count);
//   - with a disk-backed ledger attached (SetLedger), a restarted server
//     retrains nothing it has ever trained before.
//
// Construct one with NewPopulations to isolate an engine (tests, embedded
// services), or use the package-level helpers that delegate to the shared
// default instance — registered paper artifacts and custom grids run on
// the same default cache.
//
// Cell keys are the full resolved recipe fingerprint (every
// hyperparameter, the device, variant, scale and seed — see
// taskSpec.cellKey) *without* the replica count, plus the replica index.
// Per-replica lookups are singleflight: the first caller of a missing
// (cell, index) trains while concurrent callers block on the flight's
// done channel; waiters select on their own context, and a cancelled
// flight owner never poisons the replica for live waiters. Completed
// replicas are LRU-evicted beyond the ledger's capacity; in-flight ones
// are never evicted (they are not in the ledger until complete).
type Populations struct {
	mu      sync.Mutex
	led     *ledger.Ledger
	exec    Executor
	flights map[string]*repFlight

	dsMu  sync.Mutex
	dsCap int
	ds    *lru.List[string, *dsEntry]

	// trains counts replicas actually trained by this cache (ledger hits
	// excluded); tests use deltas to prove singleflight dedup, prefix
	// sharing and warm restarts.
	trains atomic.Int64
}

// NewPopulations returns an empty cache backed by a memory-only ledger
// retaining at most capacity replicas (<= 0 picks
// DefaultReplicaCapacity).
func NewPopulations(capacity int) *Populations {
	return &Populations{
		led:     ledger.Memory(capacity),
		flights: map[string]*repFlight{},
		dsCap:   DefaultDatasetCapacity,
		ds:      lru.New[string, *dsEntry](),
	}
}

// SetLedger replaces the cache's backing replica store — the server's
// -ledger wiring attaches a disk-backed ledger here at startup so every
// replica trained survives restarts. Call before serving traffic;
// replicas recorded in the previous ledger are no longer visible.
func (p *Populations) SetLedger(l *ledger.Ledger) {
	if l == nil {
		return
	}
	p.mu.Lock()
	p.led = l
	p.mu.Unlock()
}

// Ledger exposes the backing replica store (diagnostics and the server's
// estimate path).
func (p *Populations) Ledger() *ledger.Ledger {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.led
}

// defaultPops is the shared engine cache behind the package-level API.
var defaultPops = NewPopulations(DefaultReplicaCapacity)

// DefaultPopulations returns the shared cache used by registered paper
// artifacts and RunSpec, so embedders can run custom grids on an engine
// that shares populations with the registry.
func DefaultPopulations() *Populations { return defaultPops }

// ResetCache clears the default population cache (tests use this to force
// retrains).
func ResetCache() { defaultPops.Reset() }

// ReplicaTrains reports how many replicas the default cache has actually
// trained (ledger hits excluded) since process start. The server tests
// use deltas of this counter to prove that concurrent identical requests
// train each replica exactly once and that warm ledgers train only the
// delta.
func ReplicaTrains() int64 { return defaultPops.Trains() }

// Reset drops every cached replica and dataset. In-flight trainings
// complete into the (cleared) ledger but their flights are forgotten.
func (p *Populations) Reset() {
	p.mu.Lock()
	p.led.Reset()
	p.flights = map[string]*repFlight{}
	p.mu.Unlock()
	p.dsMu.Lock()
	p.ds = lru.New[string, *dsEntry]()
	p.dsMu.Unlock()
}

// Trains reports how many replicas this cache has actually trained.
func (p *Populations) Trains() int64 { return p.trains.Load() }

// Len reports how many completed replicas are currently retained.
func (p *Populations) Len() int { return p.Ledger().Len() }

// repFlight is one in-flight replica training.
type repFlight struct {
	done chan struct{}
	res  *core.RunResult
	err  error
}

// dsEntry is one generated dataset; once guards single generation under
// concurrency.
type dsEntry struct {
	once sync.Once
	ds   *data.Dataset
	err  error // set when gen panicked; waiters re-panic with this context
}

// datasetCached delegates to the default cache (taskSpec.trainConfig and
// the dataset-only artifacts run there).
func datasetCached(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	return defaultPops.dataset(task, s, gen)
}

// dataset builds (or fetches) the dataset for one task at one scale.
// Concurrent callers build it exactly once and share the instance. The
// cache is LRU-bounded: beyond dsCap entries the coldest is dropped (its
// current holders keep their reference; a later request regenerates —
// generation is deterministic, so the regenerated dataset is identical).
func (p *Populations) dataset(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	key := fmt.Sprintf("%s@%s", task, s)
	p.dsMu.Lock()
	var e *dsEntry
	if node, ok := p.ds.Get(key); ok {
		p.ds.MoveToFront(node)
		e = node.Value
	} else {
		e = &dsEntry{}
		p.ds.PushFront(key, e)
		for p.ds.Len() > p.dsCap {
			p.ds.Remove(p.ds.Back())
		}
	}
	p.dsMu.Unlock()
	e.once.Do(func() {
		// A panic in gen would otherwise poison the entry forever (sync.Once
		// marks done even on panic): record the cause for concurrent waiters,
		// drop the entry so a retry can rebuild, and keep crash semantics.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiments: dataset %s: panic during generation: %v", key, r)
				p.dsMu.Lock()
				if node, ok := p.ds.Get(key); ok && node.Value == e {
					p.ds.Remove(node)
				}
				p.dsMu.Unlock()
				panic(r)
			}
		}()
		e.ds = gen(s)
	})
	if e.err != nil {
		// A waiter whose flight owner panicked: surface the original cause
		// instead of handing out a nil dataset that crashes far away.
		panic(e.err)
	}
	return e.ds
}

// population delegates to the default cache (no progress tracking).
func population(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	return defaultPops.population(ctx, nil, cfg, t, dev, v)
}

// population resolves the replica population for one (recipe, device,
// variant) cell: ledger hits (memory or disk) are served directly, and
// only the missing replica indices train, fanned out over the sched pool
// with per-replica singleflight — concurrent calls needing the same
// (cell, index) train it exactly once, whatever their population sizes.
// Each resolved replica (hit or fresh) ticks tr once, so progress is
// replica-granular. If a flight's owner is cancelled, waiters whose own
// context is still live transparently retry with a fresh flight, so one
// aborted request never poisons a replica for everyone queued behind it.
func (p *Populations) population(ctx context.Context, tr *tracker, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	tc, ds := t.trainConfig(p, cfg, dev)
	cell := t.cellKey(cfg, dev, v)
	n := cfg.replicas()
	out := make([]*core.RunResult, n)
	var misses []int
	p.mu.Lock()
	led := p.led
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		if res, ok := led.Get(cell, i); ok {
			out[i] = res
			tr.tick()
		} else {
			misses = append(misses, i)
		}
	}
	if len(misses) == 0 {
		return out, ds, nil
	}
	_, err := sched.Map(ctx, len(misses), func(k int) (struct{}, error) {
		i := misses[k]
		res, err := p.replica(ctx, cell, cfg, t, dev, tc, v, i)
		if err != nil {
			return struct{}{}, err
		}
		out[i] = res
		tr.tick()
		return struct{}{}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, ds, nil
}

// replica resolves one (cell, index) with owner-cancellation retry: a
// waiter that inherited a cancelled owner's error re-flights as long as
// its own context is live.
func (p *Populations) replica(ctx context.Context, cell string, cfg Config, t taskSpec, dev device.Config, tc core.TrainConfig, v core.Variant, i int) (*core.RunResult, error) {
	for {
		res, err := p.replicaFlight(ctx, cell, cfg, t, dev, tc, v, i)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The owner of the flight we waited on was cancelled; our
			// context is live, so run (or join) a fresh flight.
			continue
		}
		return res, err
	}
}

func (p *Populations) replicaFlight(ctx context.Context, cell string, cfg Config, t taskSpec, dev device.Config, tc core.TrainConfig, v core.Variant, i int) (*core.RunResult, error) {
	key := fmt.Sprintf("%s#%d", cell, i)
	p.mu.Lock()
	led := p.led
	e, waiting := p.flights[key]
	if !waiting {
		// Re-check the ledger under the flights lock: the previous owner
		// publishes to the ledger *before* retiring its flight, so a miss
		// here while no flight exists means the replica truly needs
		// training.
		if res, ok := led.Get(cell, i); ok {
			p.mu.Unlock()
			return res, nil
		}
		e = &repFlight{done: make(chan struct{})}
		p.flights[key] = e
	}
	p.mu.Unlock()

	if waiting {
		// Someone else owns the flight: wait for it or for our own
		// cancellation, whichever comes first.
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return e.res, e.err
	}

	// We own the flight. If training panics, record the cause for the
	// waiters, drop the flight so a retry can rebuild, and keep crash
	// semantics on this goroutine.
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("experiments: %s on %s under %s replica %d: panic during training: %v", t.name, dev.Name, v, i, r)
			p.dropFlight(key, e)
			close(e.done)
			panic(r)
		}
	}()
	p.trains.Add(1)
	res, err := p.trainMiss(ctx, cfg, t, dev, tc, v, i)
	if err != nil {
		e.err = fmt.Errorf("experiments: %s on %s under %s: %w", t.name, dev.Name, v, err)
	} else {
		e.res = res
		// Publish before retiring the flight so no caller can miss both. A
		// failed disk write degrades durability, not correctness: the
		// replica is still indexed in memory.
		_ = led.Put(cell, i, res)
	}
	p.dropFlight(key, e)
	close(e.done)
	return e.res, e.err
}

// trainMiss runs one replica miss: through the installed executor when
// one is configured (as a self-contained WorkUnit), in process on the
// calling sched slot otherwise. The nil-executor path is exactly the
// pre-fleet code, so single-process behaviour is byte-identical to a
// build without executors.
func (p *Populations) trainMiss(ctx context.Context, cfg Config, t taskSpec, dev device.Config, tc core.TrainConfig, v core.Variant, i int) (*core.RunResult, error) {
	p.mu.Lock()
	x := p.exec
	p.mu.Unlock()
	if x == nil {
		return core.RunReplica(ctx, tc, v, i)
	}
	return x.Train(ctx, t.workUnit(cfg, dev, v, i))
}

// dropFlight retires a finished flight (guarded against racing Reset).
func (p *Populations) dropFlight(key string, e *repFlight) {
	p.mu.Lock()
	if p.flights[key] == e {
		delete(p.flights, key)
	}
	p.mu.Unlock()
}

package experiments

import (
	"context"
	"sync/atomic"
)

// ProgressFunc observes grid completion: done cells finished out of total.
// It is called once with (0, total) when a runner sizes its grid and once
// per completed cell after that. Calls may arrive concurrently from the
// worker pool, so implementations must be safe for concurrent use; done is
// monotone per runner but deliveries may be observed out of order.
type ProgressFunc func(done, total int)

type progressKeyType struct{}

var progressKey progressKeyType

// WithProgress attaches a progress observer to ctx. Every runner invoked
// with the returned context reports its grid size and per-cell completion
// through fn — this is how the job engine turns a blocking experiment run
// into a pollable progress fraction.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey, fn)
}

// ProgressFrom extracts the observer installed by WithProgress, or nil.
// Exported so runner stubs outside this package (server and engine
// tests) can report progress the way real grid runners do.
func ProgressFrom(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressKey).(ProgressFunc)
	return fn
}

// tracker counts completed grid cells for one runner invocation and
// forwards the fraction to the context's observer. A nil tracker (no
// observer installed) is valid and every method is a no-op, so call sites
// stay unconditional.
type tracker struct {
	fn    ProgressFunc
	total int
	done  atomic.Int64
}

// newTracker announces a grid of total cells to the context's observer
// (if any) and returns the tracker whose tick method reports completions.
func newTracker(ctx context.Context, total int) *tracker {
	fn := ProgressFrom(ctx)
	if fn == nil {
		return nil
	}
	fn(0, total)
	return &tracker{fn: fn, total: total}
}

// tick records one completed cell and reports the new fraction.
func (t *tracker) tick() {
	if t == nil {
		return
	}
	t.fn(int(t.done.Add(1)), t.total)
}

package experiments

import (
	"context"
	"sync"
	"testing"
)

// progressRecorder collects observer calls; safe for the concurrent
// deliveries the grid runners produce.
type progressRecorder struct {
	mu    sync.Mutex
	total int
	last  int
	max   int
	calls int
}

func (p *progressRecorder) observe(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.last = done
	if done > p.max {
		p.max = done
	}
	p.calls++
}

// TestWithProgressRoundTrip pins the context plumbing itself.
func TestWithProgressRoundTrip(t *testing.T) {
	if fn := ProgressFrom(context.Background()); fn != nil {
		t.Fatal("bare context carries an observer")
	}
	rec := &progressRecorder{}
	ctx := WithProgress(context.Background(), rec.observe)
	fn := ProgressFrom(ctx)
	if fn == nil {
		t.Fatal("observer lost in the context")
	}
	fn(3, 9)
	if rec.last != 3 || rec.total != 9 {
		t.Fatalf("recorded %d/%d, want 3/9", rec.last, rec.total)
	}
	if WithProgress(context.Background(), nil) == nil {
		t.Fatal("WithProgress(nil) must return the context unchanged")
	}
}

// TestRunnerReportsProgress runs a real (no-training) grid experiment
// under an observer and checks the announced total matches the grid and
// every cell ticks: fig8b profiles 4 kernel sizes.
func TestRunnerReportsProgress(t *testing.T) {
	rec := &progressRecorder{}
	ctx := WithProgress(context.Background(), rec.observe)
	if _, err := Run(ctx, "fig8b", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if rec.total != 4 {
		t.Fatalf("announced total = %d, want 4 (kernel sizes)", rec.total)
	}
	if rec.max != 4 {
		t.Fatalf("max done = %d, want 4 (every cell ticked)", rec.max)
	}
	if rec.calls != 5 { // 1 announcement + 4 ticks
		t.Fatalf("observer called %d times, want 5", rec.calls)
	}
}

// TestRunnerWithoutObserverUnaffected: the nil-tracker fast path.
func TestRunnerWithoutObserverUnaffected(t *testing.T) {
	if _, err := Run(context.Background(), "fig8b", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/sched"
)

// taskSpec is a dataset/model training recipe, the reproduction analogue of
// the paper's Appendix B methodology table. Epochs scale with the
// experiment scale; learning rates were tuned once so that implementation
// noise amplifies into measurable divergence while accuracy still
// converges (see DESIGN.md).
type taskSpec struct {
	name        string
	dataset     func(data.Scale) *data.Dataset
	model       func(classes int) *nn.Sequential
	epochs      [3]int // indexed by data.Scale
	batch       int
	lr          float64
	decayAt     float64 // fraction of epochs after which LR divides by 10
	weightDecay float64 // L2 regularization; 0 for every paper recipe
	augment     data.Augment
}

func (t taskSpec) trainConfig(cfg Config, dev device.Config) (core.TrainConfig, *data.Dataset) {
	ds := datasetCached(t.name, cfg.Scale, t.dataset)
	epochs := t.epochs[cfg.Scale]
	return core.TrainConfig{
		Model:       func() *nn.Sequential { return t.model(ds.Classes) },
		Dataset:     ds,
		Device:      dev,
		Epochs:      epochs,
		Batch:       t.batch,
		Schedule:    opt.StepDecay{Base: t.lr, Factor: 10, Every: int(float64(epochs) * t.decayAt)},
		Momentum:    0.9,
		WeightDecay: t.weightDecay,
		Augment:     t.augment,
		BaseSeed:    cfg.Seed,
	}, ds
}

// The task table. Names follow the paper's workload labels.
var (
	taskSmallCNNC10 = taskSpec{
		name:    "SmallCNN CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   func(k int) *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(k)) },
		epochs:  [3]int{40, 48, 64},
		batch:   32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskSmallCNNC10BN = taskSpec{
		name:    "SmallCNN+BN CIFAR-10",
		dataset: data.CIFAR10Like,
		model: func(k int) *nn.Sequential {
			c := models.DefaultSmallCNN(k)
			c.BatchNorm = true
			return models.SmallCNN(c)
		},
		epochs: [3]int{40, 48, 64},
		batch:  32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet18C10 = taskSpec{
		name:    "ResNet18 CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet18C100 = taskSpec{
		name:    "ResNet18 CIFAR-100",
		dataset: data.CIFAR100Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet50ImageNet = taskSpec{
		name:    "ResNet50 ImageNet",
		dataset: data.ImageNetLike,
		model:   models.ResNet50,
		epochs:  [3]int{24, 30, 45},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	// CelebA: no augmentation, shorter schedule (paper Appendix B).
	taskCelebA = taskSpec{
		name:    "ResNet18 CelebA",
		dataset: data.CelebALike,
		model:   func(int) *nn.Sequential { return models.CelebAResNet18() },
		epochs:  [3]int{16, 20, 28},
		batch:   32, lr: 0.05, decayAt: 0.75,
	}
)

// fig1Tasks are the four panels of Figure 1 (and Table 2's V100 block).
var fig1Tasks = []taskSpec{taskSmallCNNC10, taskResNet18C10, taskResNet18C100, taskResNet50ImageNet}

// population caching ---------------------------------------------------------
//
// Grid runners execute their cells concurrently, and several artifacts
// share populations (Figure 1, Figure 4 and Table 2 all train ResNet-18 on
// V100), so the cache is singleflight-style: the first caller of a key
// trains the population while every concurrent caller of the same key
// blocks on the entry's done channel and then reads the shared result —
// shared work trains exactly once no matter how many cells race for it.
// Waiters select on their own context, so a cancelled request stops
// waiting immediately without disturbing the flight.

type popEntry struct {
	done    chan struct{}
	results []*core.RunResult
	err     error
}

type dsEntry struct {
	once sync.Once
	ds   *data.Dataset
	err  error // set when gen panicked; waiters re-panic with this context
}

var (
	popMu    sync.Mutex
	popCache = map[string]*popEntry{}

	dsMu    sync.Mutex
	dsCache = map[string]*dsEntry{}

	// popTrains counts populations actually trained (not served from
	// cache); tests use it to prove singleflight dedup.
	popTrains atomic.Int64
)

func datasetCached(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	key := fmt.Sprintf("%s@%s", task, s)
	dsMu.Lock()
	e, ok := dsCache[key]
	if !ok {
		e = &dsEntry{}
		dsCache[key] = e
	}
	dsMu.Unlock()
	e.once.Do(func() {
		// A panic in gen would otherwise poison the entry forever (sync.Once
		// marks done even on panic): record the cause for concurrent waiters,
		// drop the entry so a retry can rebuild, and keep crash semantics.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("experiments: dataset %s: panic during generation: %v", key, r)
				dsMu.Lock()
				if dsCache[key] == e {
					delete(dsCache, key)
				}
				dsMu.Unlock()
				panic(r)
			}
		}()
		e.ds = gen(s)
	})
	if e.err != nil {
		// A waiter whose flight owner panicked: surface the original cause
		// instead of handing out a nil dataset that crashes far away.
		panic(e.err)
	}
	return e.ds
}

// population trains (or fetches from cache) the replica population for one
// (task, device, variant) cell of an experiment grid. Concurrent calls
// with the same key train the population exactly once. If the flight owner
// is cancelled, callers whose own context is still live transparently
// retry with a fresh flight, so one aborted request never poisons the
// result for everyone queued behind it.
func population(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	for {
		results, ds, err := populationFlight(ctx, cfg, t, dev, v)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The owner of the flight we waited on was cancelled; our
			// context is live, so run (or join) a fresh flight.
			continue
		}
		return results, ds, err
	}
}

func populationFlight(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	tc, ds := t.trainConfig(cfg, dev)
	key := fmt.Sprintf("%s|%s|%s|%d|%s|%d", t.name, dev.Name, v, cfg.replicas(), cfg.Scale, cfg.Seed)
	popMu.Lock()
	e, ok := popCache[key]
	if !ok {
		e = &popEntry{done: make(chan struct{})}
		popCache[key] = e
	}
	popMu.Unlock()

	if ok {
		// Someone else owns the flight: wait for it or for our own
		// cancellation, whichever comes first.
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	} else {
		// We own the flight. If training panics, record the cause for the
		// waiters, drop the entry so a retry can rebuild, and keep crash
		// semantics on this goroutine.
		func() {
			defer close(e.done)
			defer func() {
				if r := recover(); r != nil {
					e.err = fmt.Errorf("experiments: %s on %s under %s: panic during training: %v", t.name, dev.Name, v, r)
					panic(r)
				}
			}()
			popTrains.Add(1)
			results, err := core.RunVariant(ctx, tc, v, cfg.replicas())
			if err != nil {
				e.err = fmt.Errorf("experiments: %s on %s under %s: %w", t.name, dev.Name, v, err)
				return
			}
			e.results = results
		}()
	}
	if e.err != nil {
		// Drop the failed entry so a later call can retry (the error is
		// still returned to everyone who waited on this flight).
		popMu.Lock()
		if popCache[key] == e {
			delete(popCache, key)
		}
		popMu.Unlock()
		return nil, nil, e.err
	}
	return e.results, ds, nil
}

// stability trains a population and summarizes it in one call.
func stability(ctx context.Context, cfg Config, t taskSpec, dev device.Config, v core.Variant) (core.Stability, error) {
	results, ds, err := population(ctx, cfg, t, dev, v)
	if err != nil {
		return core.Stability{}, err
	}
	return core.Summarize(results, ds.Test.Y, ds.Classes), nil
}

// gridCell is one (task, device, variant) cell of an experiment grid.
type gridCell struct {
	task taskSpec
	dev  device.Config
	v    core.Variant
}

// stabilityGrid trains every cell's population concurrently on the sched
// pool and returns per-cell stability summaries in cell order. Shared
// populations dedup through the singleflight cache; cancelling ctx aborts
// in-flight training at the next batch boundary. Each completed cell ticks
// the context's progress observer (see WithProgress), which is how grid
// runners feed the job engine's done/total fraction.
func stabilityGrid(ctx context.Context, cfg Config, cells []gridCell) ([]core.Stability, error) {
	tr := newTracker(ctx, len(cells))
	return sched.Map(ctx, len(cells), func(i int) (core.Stability, error) {
		st, err := stability(ctx, cfg, cells[i].task, cells[i].dev, cells[i].v)
		if err != nil {
			return core.Stability{}, err
		}
		tr.tick()
		return st, nil
	})
}

// ResetCache clears the population cache (tests use this to force retrains).
func ResetCache() {
	popMu.Lock()
	popCache = map[string]*popEntry{}
	popMu.Unlock()
}

// PopulationTrains reports how many populations have actually been trained
// (cache hits excluded) since process start. The server tests use deltas of
// this counter to prove that concurrent identical requests train each
// population exactly once.
func PopulationTrains() int64 { return popTrains.Load() }

// names collects the workload labels of a task list for registry metadata.
func names(tasks ...taskSpec) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.name
	}
	return out
}

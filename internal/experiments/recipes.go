package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

// taskSpec is a dataset/model training recipe, the reproduction analogue of
// the paper's Appendix B methodology table. Epochs scale with the
// experiment scale; learning rates were tuned once so that implementation
// noise amplifies into measurable divergence while accuracy still
// converges (see DESIGN.md).
type taskSpec struct {
	name    string
	dataset func(data.Scale) *data.Dataset
	model   func(classes int) *nn.Sequential
	epochs  [3]int // indexed by data.Scale
	batch   int
	lr      float64
	decayAt float64 // fraction of epochs after which LR divides by 10
	augment data.Augment
}

func (t taskSpec) trainConfig(cfg Config, dev device.Config) (core.TrainConfig, *data.Dataset) {
	ds := datasetCached(t.name, cfg.Scale, t.dataset)
	epochs := t.epochs[cfg.Scale]
	return core.TrainConfig{
		Model:    func() *nn.Sequential { return t.model(ds.Classes) },
		Dataset:  ds,
		Device:   dev,
		Epochs:   epochs,
		Batch:    t.batch,
		Schedule: opt.StepDecay{Base: t.lr, Factor: 10, Every: int(float64(epochs) * t.decayAt)},
		Momentum: 0.9,
		Augment:  t.augment,
		BaseSeed: cfg.Seed,
	}, ds
}

// The task table. Names follow the paper's workload labels.
var (
	taskSmallCNNC10 = taskSpec{
		name:    "SmallCNN CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   func(k int) *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(k)) },
		epochs:  [3]int{40, 48, 64},
		batch:   32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskSmallCNNC10BN = taskSpec{
		name:    "SmallCNN+BN CIFAR-10",
		dataset: data.CIFAR10Like,
		model: func(k int) *nn.Sequential {
			c := models.DefaultSmallCNN(k)
			c.BatchNorm = true
			return models.SmallCNN(c)
		},
		epochs: [3]int{40, 48, 64},
		batch:  32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet18C10 = taskSpec{
		name:    "ResNet18 CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet18C100 = taskSpec{
		name:    "ResNet18 CIFAR-100",
		dataset: data.CIFAR100Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	taskResNet50ImageNet = taskSpec{
		name:    "ResNet50 ImageNet",
		dataset: data.ImageNetLike,
		model:   models.ResNet50,
		epochs:  [3]int{24, 30, 45},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	}
	// CelebA: no augmentation, shorter schedule (paper Appendix B).
	taskCelebA = taskSpec{
		name:    "ResNet18 CelebA",
		dataset: data.CelebALike,
		model:   func(int) *nn.Sequential { return models.CelebAResNet18() },
		epochs:  [3]int{16, 20, 28},
		batch:   32, lr: 0.05, decayAt: 0.75,
	}
)

// fig1Tasks are the four panels of Figure 1 (and Table 2's V100 block).
var fig1Tasks = []taskSpec{taskSmallCNNC10, taskResNet18C10, taskResNet18C100, taskResNet50ImageNet}

// population caching ---------------------------------------------------------

var (
	popMu    sync.Mutex
	popCache = map[string][]*core.RunResult{}

	dsMu    sync.Mutex
	dsCache = map[string]*data.Dataset{}
)

func datasetCached(task string, s data.Scale, gen func(data.Scale) *data.Dataset) *data.Dataset {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := fmt.Sprintf("%s@%s", task, s)
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds := gen(s)
	dsCache[key] = ds
	return ds
}

// population trains (or fetches from cache) the replica population for one
// (task, device, variant) cell of an experiment grid.
func population(cfg Config, t taskSpec, dev device.Config, v core.Variant) ([]*core.RunResult, *data.Dataset, error) {
	tc, ds := t.trainConfig(cfg, dev)
	key := fmt.Sprintf("%s|%s|%s|%d|%s|%d", t.name, dev.Name, v, cfg.replicas(), cfg.Scale, cfg.Seed)
	popMu.Lock()
	cached, ok := popCache[key]
	popMu.Unlock()
	if ok {
		return cached, ds, nil
	}
	results, err := core.RunVariant(tc, v, cfg.replicas())
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s on %s under %s: %w", t.name, dev.Name, v, err)
	}
	popMu.Lock()
	popCache[key] = results
	popMu.Unlock()
	return results, ds, nil
}

// stability trains a population and summarizes it in one call.
func stability(cfg Config, t taskSpec, dev device.Config, v core.Variant) (core.Stability, error) {
	results, ds, err := population(cfg, t, dev, v)
	if err != nil {
		return core.Stability{}, err
	}
	return core.Summarize(results, ds.Test.Y, ds.Classes), nil
}

// ResetCache clears the population cache (tests use this to force retrains).
func ResetCache() {
	popMu.Lock()
	popCache = map[string][]*core.RunResult{}
	popMu.Unlock()
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/grid"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opt"
)

// taskSpec is a dataset/model training recipe, the reproduction analogue of
// the paper's Appendix B methodology table. Epochs scale with the
// experiment scale; learning rates were tuned once so that implementation
// noise amplifies into measurable divergence while accuracy still
// converges (see DESIGN.md).
type taskSpec struct {
	name        string
	dataset     func(data.Scale) *data.Dataset
	model       func(classes int) *nn.Sequential
	epochs      [3]int // indexed by data.Scale
	batch       int
	lr          float64
	decayAt     float64 // fraction of epochs after which LR divides by 10
	weightDecay float64 // L2 regularization; 0 for every paper recipe
	augment     data.Augment
}

func (t taskSpec) trainConfig(p *Populations, cfg Config, dev device.Config) (core.TrainConfig, *data.Dataset) {
	ds := p.dataset(t.name, cfg.Scale, t.dataset)
	epochs := t.epochs[cfg.Scale]
	return core.TrainConfig{
		Model:       func() *nn.Sequential { return t.model(ds.Classes) },
		Dataset:     ds,
		Device:      dev,
		Epochs:      epochs,
		Batch:       t.batch,
		Schedule:    opt.StepDecay{Base: t.lr, Factor: 10, Every: int(float64(epochs) * t.decayAt)},
		Momentum:    0.9,
		WeightDecay: t.weightDecay,
		Augment:     t.augment,
		BaseSeed:    cfg.Seed,
	}, ds
}

// cellKey is the replica-ledger identity of one grid cell: the full
// resolved training recipe (not just the task name), the device, the
// noise variant, scale and seed — and deliberately *not* the replica
// count. Replica i's outcome depends only on this key and i (seed
// policies derive from (seed, variant, index); see core.SeedsFor), so
// populations of every size over one cell share the same ledger records:
// a 30-replica request warm-starts from a 10-replica run's prefix.
// Keying on every hyperparameter is what lets custom grids with recipe
// overrides coexist with the paper populations in one ledger without
// collisions — and conversely lets a custom cell whose recipe matches a
// paper artifact's reuse its replicas verbatim.
func (t taskSpec) cellKey(cfg Config, dev device.Config, v core.Variant) string {
	return fmt.Sprintf("%s|lr%g|b%d|e%d|d%g|wd%g|aug%d:%t|%s|%s|%s|s%d",
		t.name, t.lr, t.batch, t.epochs[cfg.Scale], t.decayAt, t.weightDecay,
		t.augment.Shift, t.augment.Flip,
		dev.Name, v, cfg.Scale, cfg.Seed)
}

// withRecipe returns a copy of the task with the override's non-zero
// fields applied. An Epochs override flattens the scale schedule (the
// user asked for exactly that many epochs at any scale).
func (t taskSpec) withRecipe(r grid.Recipe) taskSpec {
	if r.LR > 0 {
		t.lr = r.LR
	}
	if r.Batch > 0 {
		t.batch = r.Batch
	}
	if r.Epochs > 0 {
		t.epochs = [3]int{r.Epochs, r.Epochs, r.Epochs}
	}
	if r.DecayAt > 0 {
		t.decayAt = r.DecayAt
	}
	if r.WeightDecay > 0 {
		t.weightDecay = r.WeightDecay
	}
	if r.NoAugment {
		t.augment = data.Augment{}
	}
	return t
}

// taskRegistry maps canonical workload names (taskKey form) to recipes.
// Registration happens in the var block below, so by init time every grid
// spec can resolve its task names.
var taskRegistry = map[string]taskSpec{}

// registerTask records a recipe under its canonical name and returns it,
// letting the task table below both declare and register in one step.
func registerTask(t taskSpec) taskSpec {
	key := taskKey(t.name)
	if _, dup := taskRegistry[key]; dup {
		panic(fmt.Sprintf("experiments: duplicate task %q", t.name))
	}
	taskRegistry[key] = t
	return t
}

// taskKey canonicalizes a workload name for lookup, with the same rule as
// device aliases (lowercase, punctuation and spacing dropped) so
// "ResNet18 CIFAR-10" and "resnet18-cifar10" address the same recipe and
// both catalogs match names identically.
func taskKey(name string) string { return device.Alias(name) }

// taskByName resolves a workload name from a grid spec onto its recipe.
func taskByName(name string) (taskSpec, error) {
	if t, ok := taskRegistry[taskKey(name)]; ok {
		return t, nil
	}
	known := make([]string, 0, len(taskRegistry))
	for _, t := range taskRegistry {
		known = append(known, t.name)
	}
	sort.Strings(known)
	return taskSpec{}, fmt.Errorf("experiments: unknown task %q (known: %s)", name, strings.Join(known, ", "))
}

// Workload is the JSON-ready description of one registered training
// recipe, served by `nnrand workloads` and GET /v1/workloads so users can
// compose grid specs against the real catalog.
type Workload struct {
	Name string `json:"name"`
	// Alias is the canonical punctuation-free lookup key.
	Alias string `json:"alias"`
	// Epochs is the schedule at [test, quick, full] scale.
	Epochs      [3]int  `json:"epochs"`
	Batch       int     `json:"batch"`
	LR          float64 `json:"lr"`
	DecayAt     float64 `json:"decay_at"`
	WeightDecay float64 `json:"weight_decay,omitempty"`
	// Augment summarizes data augmentation ("shift=1,flip" or "none").
	Augment string `json:"augment"`
}

// Workloads lists every registered training recipe, sorted by name.
func Workloads() []Workload {
	out := make([]Workload, 0, len(taskRegistry))
	for _, t := range taskRegistry {
		aug := "none"
		if t.augment.Enabled() {
			parts := []string{}
			if t.augment.Shift > 0 {
				parts = append(parts, fmt.Sprintf("shift=%d", t.augment.Shift))
			}
			if t.augment.Flip {
				parts = append(parts, "flip")
			}
			aug = strings.Join(parts, ",")
		}
		out = append(out, Workload{
			Name:        t.name,
			Alias:       taskKey(t.name),
			Epochs:      t.epochs,
			Batch:       t.batch,
			LR:          t.lr,
			DecayAt:     t.decayAt,
			WeightDecay: t.weightDecay,
			Augment:     aug,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// The task table. Names follow the paper's workload labels.
var (
	taskSmallCNNC10 = registerTask(taskSpec{
		name:    "SmallCNN CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   func(k int) *nn.Sequential { return models.SmallCNN(models.DefaultSmallCNN(k)) },
		epochs:  [3]int{40, 48, 64},
		batch:   32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	})
	taskSmallCNNC10BN = registerTask(taskSpec{
		name:    "SmallCNN+BN CIFAR-10",
		dataset: data.CIFAR10Like,
		model: func(k int) *nn.Sequential {
			c := models.DefaultSmallCNN(k)
			c.BatchNorm = true
			return models.SmallCNN(c)
		},
		epochs: [3]int{40, 48, 64},
		batch:  32, lr: 0.07, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	})
	taskResNet18C10 = registerTask(taskSpec{
		name:    "ResNet18 CIFAR-10",
		dataset: data.CIFAR10Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	})
	taskResNet18C100 = registerTask(taskSpec{
		name:    "ResNet18 CIFAR-100",
		dataset: data.CIFAR100Like,
		model:   models.ResNet18,
		epochs:  [3]int{24, 36, 50},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	})
	taskResNet50ImageNet = registerTask(taskSpec{
		name:    "ResNet50 ImageNet",
		dataset: data.ImageNetLike,
		model:   models.ResNet50,
		epochs:  [3]int{24, 30, 45},
		batch:   32, lr: 0.05, decayAt: 0.75,
		augment: data.Augment{Shift: 1, Flip: true},
	})
	// CelebA: no augmentation, shorter schedule (paper Appendix B).
	taskCelebA = registerTask(taskSpec{
		name:    "ResNet18 CelebA",
		dataset: data.CelebALike,
		model:   func(int) *nn.Sequential { return models.CelebAResNet18() },
		epochs:  [3]int{16, 20, 28},
		batch:   32, lr: 0.05, decayAt: 0.75,
	})
)

// fig1Tasks are the four panels of Figure 1 (and Table 2's V100 block).
var fig1Tasks = []taskSpec{taskSmallCNNC10, taskResNet18C10, taskResNet18C100, taskResNet50ImageNet}

// names collects the workload labels of a task list for registry metadata.
func names(tasks ...taskSpec) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.name
	}
	return out
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/grid"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	table3Title = "Table 3: data point distribution in the CelebA-like dataset (train split)"
	fig3Title   = "Figure 3: normalized sub-group stddev, ALGO+IMPL (ResNet18, CelebA-like, V100)"
)

// subgroupSpec is the CelebA grid Table 5 and Figure 3 share: one task,
// one device, the three standard variants. Registering it twice costs
// nothing — the populations dedup through the engine cache.
func subgroupSpec() []grid.Spec {
	return []grid.Spec{{Tasks: names(taskCelebA), Devices: []string{"V100"}}}
}

func init() {
	register(Meta{
		ID:        "table3",
		Title:     table3Title,
		Artifact:  report.KindTable,
		Workloads: names(taskCelebA),
		Cost:      CostNone,
	}, runTable3)
	registerGrid(Meta{
		ID:        "table5",
		Title:     "Table 5: STDDEV of sub-group accuracy/FPR/FNR (ResNet18, CelebA-like, V100)",
		Artifact:  report.KindTable,
		Workloads: names(taskCelebA),
		Cost:      CostMedium,
	}, subgroupSpec(), renderTable5)
	registerGrid(Meta{
		ID:        "fig3",
		Title:     fig3Title,
		Artifact:  report.KindFigure,
		Workloads: names(taskCelebA),
		Cost:      CostMedium,
	}, subgroupSpec(), renderFig3)
}

// runTable3 reproduces Table 3: the CelebA-like attribute imbalance. No
// training involved — this documents the dataset property that drives the
// sub-group variance results.
func runTable3(ctx context.Context, cfg Config) ([]*report.Table, error) {
	ds := datasetCached(taskCelebA.name, cfg.Scale, taskCelebA.dataset)
	total := float64(ds.Train.N())
	tb := report.New(table3Title,
		"group", "positive", "negative")
	for _, c := range data.CountSubgroups(ds.Train) {
		tb.AddStrings(c.Group,
			fmt.Sprintf("%d (%.1f%%)", c.Positive, 100*float64(c.Positive)/total),
			fmt.Sprintf("%d (%.1f%%)", c.Negative, 100*float64(c.Negative)/total))
	}
	return []*report.Table{tb}, nil
}

// subgroupRows summarizes each cell's population into per-variant
// sub-group stability rows — the shape Table 5 and Figure 3 render from.
func subgroupRows(cells []gridCell, pops []cellPop) map[core.Variant][]core.SubgroupStability {
	out := map[core.Variant][]core.SubgroupStability{}
	for i, c := range cells {
		out[c.v] = core.SummarizeSubgroups(pops[i].results, pops[i].ds.Test)
	}
	return out
}

// renderTable5 reproduces Table 5: stddev of sub-group accuracy, FPR and
// FNR across replicas, with relative scale against the overall dataset.
func renderTable5(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	rows := subgroupRows(cells, pops)
	var tables []*report.Table
	for _, metric := range []string{"Accuracy", "FPR", "FNR"} {
		tb := report.New(fmt.Sprintf("Table 5: STDDEV(%s) by sub-group (ResNet18, CelebA-like, V100)", metric),
			"subgroup", "ALGO+IMPL", "ALGO", "IMPL")
		groups := rows[core.AlgoImpl]
		for gi := range groups {
			cells := []string{groups[gi].Group}
			for _, v := range core.StandardVariants {
				s := rows[v][gi]
				var std, scale float64
				switch metric {
				case "Accuracy":
					std, scale = s.AccStd, s.AccScale
				case "FPR":
					std, scale = s.FPRStd, s.FPRScale
				default:
					std, scale = s.FNRStd, s.FNRScale
				}
				cells = append(cells, fmt.Sprintf("%.3f (%.2fX)", std, scale))
			}
			tb.AddStrings(cells...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// renderFig3 reproduces Figure 3: sub-group stddev normalized against the
// overall dataset for the default (ALGO+IMPL) setting.
func renderFig3(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	rows := subgroupRows(cells, pops)
	tb := report.New(fig3Title,
		"subgroup", "norm stddev(acc)", "norm stddev(FPR)", "norm stddev(FNR)")
	for _, s := range rows[core.AlgoImpl] {
		if s.Group == "All" {
			continue
		}
		tb.AddCells(report.Str(s.Group),
			report.Float(s.AccScale, 2).WithUnit("X"),
			report.Float(s.FPRScale, 2).WithUnit("X"),
			report.Float(s.FNRScale, 2).WithUnit("X"))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	table2Title = "Table 2: test accuracy ± stddev under each noise variant"
	table4Title = "Table 4: dataset overview (synthetic stand-ins, see DESIGN.md)"
)

func init() {
	// Table 2 is a union of two grids, not one cross product: P100 and
	// RTX5000 train the three CIFAR-scale tasks, V100 adds ResNet50/
	// ImageNet (paper Table 2). The specs concatenate in hardware-block
	// order, which is exactly the table's row order.
	registerGrid(Meta{
		ID:        "table2",
		Title:     table2Title,
		Artifact:  report.KindTable,
		Workloads: names(fig1Tasks...),
		Cost:      CostHeavy,
	}, []grid.Spec{
		{Tasks: names(fig1Tasks[:3]...), Devices: []string{"P100", "RTX5000"}},
		{Tasks: names(fig1Tasks...), Devices: []string{"V100"}},
	}, renderTable2)
	register(Meta{
		ID:        "table4",
		Title:     table4Title,
		Artifact:  report.KindTable,
		Workloads: names(taskSmallCNNC10, taskResNet18C100, taskResNet50ImageNet, taskCelebA),
		Cost:      CostNone,
	}, runTable4)
}

// renderTable2 reproduces Table 2: test-set accuracy ± stddev under each
// type of noise, one row per hardware × task block with the three noise
// variants as columns.
func renderTable2(cells []gridCell, pops []cellPop) ([]*report.Table, error) {
	tb := report.New(table2Title,
		"hardware", "task", "ALGO+IMPL", "ALGO", "IMPL")
	for i := 0; i < len(cells); i += len(core.StandardVariants) {
		row := make([]report.Cell, 0, len(core.StandardVariants))
		for j := range core.StandardVariants {
			st := pops[i+j].stability()
			row = append(row, report.Str(fmt.Sprintf("%.2f%%±%.2f", st.AccMean, st.AccStd)))
		}
		tb.AddCells(report.Str(cells[i].dev.Name), report.Str(cells[i].task.name), row[0], row[1], row[2])
	}
	return []*report.Table{tb}, nil
}

// runTable4 reproduces Table 4: the dataset overview.
func runTable4(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(table4Title,
		"dataset", "train/test split", "classes")
	for _, task := range []taskSpec{taskSmallCNNC10, taskResNet18C100, taskResNet50ImageNet, taskCelebA} {
		ds := datasetCached(task.name, cfg.Scale, task.dataset)
		tb.AddCells(report.Str(ds.Name),
			report.Str(fmt.Sprintf("%d/%d", ds.Train.N(), ds.Test.N())),
			report.Int(ds.Classes))
	}
	return []*report.Table{tb}, nil
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

// Artifact titles, declared once so the registry metadata and the
// rendered tables can never drift apart.
const (
	table2Title = "Table 2: test accuracy ± stddev under each noise variant"
	table4Title = "Table 4: dataset overview (synthetic stand-ins, see DESIGN.md)"
)

func init() {
	register(Meta{
		ID:        "table2",
		Title:     table2Title,
		Artifact:  report.KindTable,
		Workloads: names(fig1Tasks...),
		Cost:      CostHeavy,
	}, runTable2)
	register(Meta{
		ID:        "table4",
		Title:     table4Title,
		Artifact:  report.KindTable,
		Workloads: names(taskSmallCNNC10, taskResNet18C100, taskResNet50ImageNet, taskCelebA),
		Cost:      CostNone,
	}, runTable4)
}

// runTable2 reproduces Table 2: test-set accuracy ± stddev under each type
// of noise, for every hardware/task combination the paper trains.
func runTable2(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(table2Title,
		"hardware", "task", "ALGO+IMPL", "ALGO", "IMPL")
	type block struct {
		dev   device.Config
		tasks []taskSpec
	}
	blocks := []block{
		{device.P100, fig1Tasks[:3]},
		{device.RTX5000, fig1Tasks[:3]},
		{device.V100, fig1Tasks}, // V100 adds ResNet50/ImageNet (paper Table 2)
	}
	// Flatten the hardware × task × variant grid and train every population
	// concurrently; the singleflight cache dedups cells shared with other
	// artifacts (Figure 1/9/10 reuse entire blocks of this table).
	var cells []gridCell
	for _, b := range blocks {
		for _, task := range b.tasks {
			for _, v := range core.StandardVariants {
				cells = append(cells, gridCell{task, b.dev, v})
			}
		}
	}
	stats, err := stabilityGrid(ctx, cfg, cells)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(cells); i += len(core.StandardVariants) {
		row := make([]report.Cell, 0, 3)
		for j := range core.StandardVariants {
			st := stats[i+j]
			row = append(row, report.Str(fmt.Sprintf("%.2f%%±%.2f", st.AccMean, st.AccStd)))
		}
		tb.AddCells(report.Str(cells[i].dev.Name), report.Str(cells[i].task.name), row[0], row[1], row[2])
	}
	return []*report.Table{tb}, nil
}

// runTable4 reproduces Table 4: the dataset overview.
func runTable4(ctx context.Context, cfg Config) ([]*report.Table, error) {
	tb := report.New(table4Title,
		"dataset", "train/test split", "classes")
	for _, task := range []taskSpec{taskSmallCNNC10, taskResNet18C100, taskResNet50ImageNet, taskCelebA} {
		ds := datasetCached(task.name, cfg.Scale, task.dataset)
		tb.AddCells(report.Str(ds.Name),
			report.Str(fmt.Sprintf("%d/%d", ds.Train.N(), ds.Test.N())),
			report.Int(ds.Classes))
	}
	return []*report.Table{tb}, nil
}

// Package faults provides named, programmatically armed fault-injection
// points for crash-safety and degradation testing. Production code marks
// its failure-prone sites with a call to Fire (I/O, execution) or
// FireWrite (persistence paths that can tear), each under a stable name
// like "ledger.write"; tests arm those names with an Injection — an
// error to return, a delay, a panic, or a torn write that truncates the
// payload at byte N — and the site misbehaves exactly as armed.
//
// The package is the test backbone for the serving stack's failure
// model: torn-write recovery, quarantine routing, transient-retry and
// watchdog behavior in the job engine, and readiness degradation are all
// exercised by arming these points rather than by mocking whole
// subsystems.
//
// Disarmed cost: Fire and FireWrite first read one atomic counter and
// return immediately when nothing is armed anywhere, so instrumented
// production paths pay a single atomic load — no map lookup, no lock.
//
// All functions are safe for concurrent use. Arming is process-global
// (the registry is package state), so tests that arm points must not run
// in parallel with tests observing the same names; the repository's
// convention is to arm via Arm's returned disarm func in a defer or
// t.Cleanup.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error an armed point returns (unless
// the injection supplies its own error), so callers and tests can
// recognize injected failures with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Injection describes what an armed point does when it fires.
type Injection struct {
	// Err is returned from the point (nil with Truncate set means the
	// torn write is silent — the caller observes success).
	Err error
	// Delay is slept before anything else, simulating a slow device.
	Delay time.Duration
	// Panic, when non-nil, is panicked with — simulating a crashing
	// runner. Err and Truncate are then never reached.
	Panic any
	// Truncate enables torn writes at FireWrite points: the payload is
	// cut to TruncateAt bytes, simulating a write the filesystem
	// acknowledged but never completed.
	Truncate bool
	// TruncateAt is the byte offset a torn write cuts at (only read when
	// Truncate is set).
	TruncateAt int
	// After skips the first After passes through the point before the
	// fault starts firing — "fail the third write", not just the first.
	After int
	// Count disarms the point after it has fired Count times (0 = fire
	// until explicitly disarmed).
	Count int
}

type point struct {
	inj    Injection
	passes int
	fired  int
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	// armed counts registered points; the zero check is the fast path
	// every Fire call takes in production.
	armed atomic.Int32
)

// Arm registers an injection under name and returns its disarm func.
// Re-arming a name replaces the previous injection and resets its
// counters.
func Arm(name string, inj Injection) (disarm func()) {
	mu.Lock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{inj: inj}
	mu.Unlock()
	return func() { Disarm(name) }
}

// Disarm removes the injection registered under name (no-op when none).
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	mu.Unlock()
}

// Fired reports how many times the point named has fired since it was
// armed (0 when not armed).
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Fire is the generic fault point: it returns nil instantly when nothing
// is armed, otherwise sleeps, panics or returns an error as the armed
// injection dictates.
func Fire(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	_, err := fire(name, nil)
	return err
}

// FireWrite is the persistence fault point: data passes through
// unchanged when the name is not armed; an armed torn write returns a
// truncated copy (the caller publishes it as if complete), and an armed
// error is returned for the caller to fail the write with.
func FireWrite(name string, data []byte) ([]byte, error) {
	if armed.Load() == 0 {
		return data, nil
	}
	return fire(name, data)
}

func fire(name string, data []byte) ([]byte, error) {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return data, nil
	}
	p.passes++
	if p.passes <= p.inj.After {
		mu.Unlock()
		return data, nil
	}
	inj := p.inj
	p.fired++
	if inj.Count > 0 && p.fired >= inj.Count {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()

	if inj.Delay > 0 {
		time.Sleep(inj.Delay)
	}
	if inj.Panic != nil {
		panic(fmt.Sprintf("faults: injected panic at %s: %v", name, inj.Panic))
	}
	if inj.Truncate && data != nil {
		n := inj.TruncateAt
		if n < 0 {
			n = 0
		}
		if n > len(data) {
			n = len(data)
		}
		data = data[:n:n]
	}
	err := inj.Err
	if err == nil && !inj.Truncate && inj.Delay == 0 {
		// An armed point with nothing else configured still fails — the
		// common "make this write error" case needs no Err boilerplate.
		err = fmt.Errorf("%w at %s", ErrInjected, name)
	}
	return data, err
}

package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
	data, err := FireWrite("nowhere", []byte("abc"))
	if err != nil || string(data) != "abc" {
		t.Fatalf("disarmed FireWrite = %q, %v", data, err)
	}
}

func TestArmedErrorAndDisarm(t *testing.T) {
	boom := errors.New("boom")
	disarm := Arm("p", Injection{Err: boom})
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	if got := Fired("p"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	disarm()
	if err := Fire("p"); err != nil {
		t.Fatalf("post-disarm Fire = %v", err)
	}
}

func TestDefaultErrorWrapsErrInjected(t *testing.T) {
	defer Arm("p", Injection{})()
	if err := Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire = %v, want ErrInjected", err)
	}
}

func TestTornWriteTruncates(t *testing.T) {
	defer Arm("w", Injection{Truncate: true, TruncateAt: 2})()
	data, err := FireWrite("w", []byte("abcdef"))
	if err != nil {
		t.Fatalf("silent torn write returned %v", err)
	}
	if string(data) != "ab" {
		t.Fatalf("truncated to %q, want \"ab\"", data)
	}
	// Out-of-range offsets clamp instead of panicking.
	Arm("w", Injection{Truncate: true, TruncateAt: 100})
	if data, _ = FireWrite("w", []byte("xy")); string(data) != "xy" {
		t.Fatalf("over-length truncate = %q", data)
	}
}

func TestAfterAndCount(t *testing.T) {
	defer Arm("p", Injection{After: 2, Count: 1})()
	for i := 0; i < 2; i++ {
		if err := Fire("p"); err != nil {
			t.Fatalf("pass %d fired early: %v", i, err)
		}
	}
	if err := Fire("p"); err == nil {
		t.Fatal("third pass did not fire")
	}
	// Count: 1 auto-disarmed the point.
	if err := Fire("p"); err != nil {
		t.Fatalf("fired past Count: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	defer Arm("p", Injection{Panic: "kaboom"})()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = Fire("p")
}

func TestDelayInjection(t *testing.T) {
	defer Arm("p", Injection{Delay: 20 * time.Millisecond})()
	start := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatalf("delay-only injection returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("returned after %v, want >= 20ms", d)
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Arm("p", Injection{})()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = Fire("p")
				_ = Fire("unarmed")
			}
		}()
	}
	wg.Wait()
	if got := Fired("p"); got != 800 {
		t.Fatalf("Fired = %d, want 800", got)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Arm("a", Injection{})
	Arm("b", Injection{})
	Reset()
	if err := Fire("a"); err != nil {
		t.Fatalf("post-Reset Fire = %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after Reset", armed.Load())
	}
}

// Package fleet shards replica training across processes.
//
// The paper's experiments are embarrassingly parallel at replica
// granularity: a replica's outcome is fully determined by (cell key,
// replica index), never by where or when it trains. fleet exploits that
// by splitting the population layer's replica misses between a
// Coordinator (in the serving process) and any number of Workers
// (separate processes, typically other machines):
//
//   - The Coordinator implements experiments.Executor. Every replica
//     miss arrives as a self-contained experiments.WorkUnit, is queued,
//     and is handed to workers in batches under TTL leases. Workers
//     heartbeat to keep leases alive; a lease that expires silently
//     requeues at the front of the queue, so surviving workers steal
//     abandoned units. Results come back as checkpoint-codec records
//     (CRC-verified on arrival); a record that fails verification is
//     preserved for diagnosis and rejected, never merged.
//   - The Worker (see worker.go) is a pull → train → upload loop around
//     experiments.TrainUnit, which resolves units against the worker's
//     own catalogs and refuses units whose cell key it cannot reproduce.
//
// The single merge point is unchanged from single-node operation: a
// verified result is delivered to the population flight that enqueued
// the unit, and that flight publishes it to the coordinator's replica
// ledger exactly as if it had trained locally. Duplicate completions
// (two workers racing the same stolen unit, or an upload retried after
// a lost response) are acknowledged and dropped — the first verified
// result wins, and the ledger write is keyed so even a re-merge would
// be idempotent. Bit-identity goldens hold across the fleet because
// workers run the same deterministic training code on the same resolved
// units.
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/quarantine"
)

// Executor is the seam the coordinator plugs into: an alias for the
// population layer's executor interface, re-exported here so the fleet
// subsystem names its own contract.
type Executor = experiments.Executor

// DefaultTTL is the lease TTL when Options does not set one: long
// enough that a worker heartbeating at TTL/3 survives scheduling
// hiccups, short enough that a SIGKILLed worker's units are stolen
// within seconds.
const DefaultTTL = 15 * time.Second

// MaxLeaseBatch caps how many units one lease request can pull,
// whatever the worker asks for.
const MaxLeaseBatch = 64

// maxLeaseWait caps server-side long-polling on an empty queue.
const maxLeaseWait = 30 * time.Second

// doneCap bounds how many completed units the coordinator remembers for
// duplicate detection; older completions are forgotten (a duplicate of
// a forgotten unit is acknowledged as stale and dropped).
const doneCap = 1024

// unitState is one work unit's position in the lease state machine.
type unitState int

const (
	statePending unitState = iota // queued, waiting for a lease
	stateLeased                   // held by a worker under a TTL deadline
	stateDone                     // verified result merged
	stateDead                     // abandoned (no waiters) or failed; terminal
)

// unit is one enqueued replica training.
type unit struct {
	id       string
	wu       experiments.WorkUnit
	state    unitState
	worker   string    // current lease holder when stateLeased
	deadline time.Time // lease expiry when stateLeased
	waiters  int       // Train calls blocked on this unit
	res      *core.RunResult
	err      error
	done     chan struct{} // closed once res/err is set
}

// workerInfo is per-worker bookkeeping for stats and lease accounting.
type workerInfo struct {
	name      string
	lastSeen  time.Time
	leases    int64
	completed int64
	trains    int64 // worker-reported cumulative replica trains
}

// Options configures a Coordinator.
type Options struct {
	// TTL is the lease time-to-live (0 picks DefaultTTL). Heartbeats and
	// re-leases extend it; a lease past its deadline is stolen by the
	// next lease request.
	TTL time.Duration
	// Dir, when set, is where rejected uploads are preserved: a payload
	// that fails CRC or unit verification is written there and moved to
	// its quarantine/ subdirectory with a reason sidecar. Empty drops
	// rejected payloads (they are still counted and refused).
	Dir string
}

// Coordinator owns the fleet's work queue and lease state machine. It
// is the experiments.Executor a fleet-enabled server installs on its
// population cache; HTTP handlers (internal/server) translate the wire
// protocol onto Lease, Heartbeat and CompleteUpload. Safe for
// concurrent use.
type Coordinator struct {
	ttl time.Duration
	dir string
	now func() time.Time

	mu        sync.Mutex
	units     map[string]*unit // every live unit plus the done ring
	queue     []*unit          // pending units, FIFO; stolen units re-enter at the front
	doneOrder []string         // completed unit ids, oldest first, bounded by doneCap
	workers   map[string]*workerInfo
	notify    chan struct{} // closed+replaced whenever pending work appears

	completed  int64
	duplicates int64
	expired    int64
	rejected   int64
	failed     int64
}

// New returns an idle coordinator. Install it with
// Populations.SetExecutor to route that cache's replica misses through
// the fleet.
func New(opts Options) *Coordinator {
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Coordinator{
		ttl:     ttl,
		dir:     opts.Dir,
		now:     time.Now,
		units:   map[string]*unit{},
		workers: map[string]*workerInfo{},
		notify:  make(chan struct{}),
	}
}

// TTL reports the configured lease time-to-live.
func (c *Coordinator) TTL() time.Duration { return c.ttl }

// UnitID derives the stable id of one replica work unit — the same
// digest-stem scheme the replica ledger files use, so a unit id can be
// eyeballed against ledger and quarantine filenames.
func UnitID(cell string, replica int) string {
	sum := sha256.Sum256([]byte(cell))
	return hex.EncodeToString(sum[:8]) + "-r" + strconv.Itoa(replica)
}

// Train implements experiments.Executor: enqueue the unit (or join an
// identical one already queued, leased, or recently completed) and
// block until a worker's verified result arrives or ctx ends. When the
// last waiter abandons an uncompleted unit, the unit dies with it — a
// worker still training it gets "gone" on its next heartbeat.
func (c *Coordinator) Train(ctx context.Context, wu experiments.WorkUnit) (*core.RunResult, error) {
	id := UnitID(wu.Cell, wu.Replica)
	c.mu.Lock()
	u, ok := c.units[id]
	if ok && u.state == stateDone {
		c.mu.Unlock()
		return u.res, u.err
	}
	if !ok {
		u = &unit{id: id, wu: wu, state: statePending, done: make(chan struct{})}
		c.units[id] = u
		c.queue = append(c.queue, u)
		c.wakeLocked()
	}
	u.waiters++
	c.mu.Unlock()

	select {
	case <-u.done:
		return u.res, u.err
	case <-ctx.Done():
		c.abandon(u)
		return nil, ctx.Err()
	}
}

// abandon drops one waiter; the last waiter out kills an uncompleted
// unit so workers stop burning time on results nobody wants.
func (c *Coordinator) abandon(u *unit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u.waiters--
	if u.waiters <= 0 && u.state != stateDone {
		u.state = stateDead
		delete(c.units, u.id)
	}
}

// wakeLocked signals every blocked lease long-poll. Callers hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// reapLocked requeues every expired lease at the front of the queue —
// the steal path. Callers hold c.mu.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, u := range c.units {
		if u.state == stateLeased && now.After(u.deadline) {
			u.state = statePending
			u.worker = ""
			c.queue = append([]*unit{u}, c.queue...)
			c.expired++
		}
	}
}

// touchLocked records a sighting of worker (creating it on first
// contact) and folds in its self-reported train count. Callers hold
// c.mu.
func (c *Coordinator) touchLocked(worker string, trains int64) *workerInfo {
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{name: worker}
		c.workers[worker] = w
	}
	w.lastSeen = c.now()
	if trains > w.trains {
		w.trains = trains
	}
	return w
}

// Lease hands worker up to max pending units (after reaping expired
// leases, so abandoned work is stolen first), each under a fresh TTL
// deadline. With wait > 0 an empty queue long-polls until work appears,
// the wait elapses, or ctx ends. trains is the worker's cumulative
// self-reported replica-train count (stats).
func (c *Coordinator) Lease(ctx context.Context, worker string, max int, wait time.Duration, trains int64) ([]Leased, time.Duration) {
	if max <= 0 {
		max = 1
	}
	if max > MaxLeaseBatch {
		max = MaxLeaseBatch
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	deadline := c.now().Add(wait)
	for {
		c.mu.Lock()
		now := c.now()
		c.reapLocked(now)
		w := c.touchLocked(worker, trains)
		var out []Leased
		for len(out) < max && len(c.queue) > 0 {
			u := c.queue[0]
			c.queue = c.queue[1:]
			if u.state != statePending { // stolen entry already re-leased, or dead
				continue
			}
			u.state = stateLeased
			u.worker = worker
			u.deadline = now.Add(c.ttl)
			w.leases++
			out = append(out, Leased{ID: u.id, Unit: u.wu})
		}
		notify := c.notify
		c.mu.Unlock()
		if len(out) > 0 || wait <= 0 || !c.now().Before(deadline) || ctx.Err() != nil {
			return out, c.ttl
		}
		remain := deadline.Sub(c.now())
		t := time.NewTimer(remain)
		select {
		case <-notify:
		case <-t.C:
		case <-ctx.Done():
		}
		t.Stop()
	}
}

// Leased is one unit handed out under a lease.
type Leased struct {
	ID   string               `json:"id"`
	Unit experiments.WorkUnit `json:"unit"`
}

// Heartbeat statuses.
const (
	// HeartbeatOK: the lease is (still, or again) this worker's; keep
	// training.
	HeartbeatOK = "ok"
	// HeartbeatGone: the unit was stolen, finished by someone else and
	// forgotten, or abandoned; stop training it.
	HeartbeatGone = "gone"
	// HeartbeatDone: a verified result for this unit is already merged;
	// stop training it (an upload would be acknowledged as duplicate).
	HeartbeatDone = "done"
)

// Heartbeat extends worker's lease on unit id and reports the unit's
// fate. A unit that expired but was not yet stolen is quietly
// re-leased to its original worker — slow is not dead.
func (c *Coordinator) Heartbeat(worker, id string, trains int64) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	c.touchLocked(worker, trains)
	u, ok := c.units[id]
	if !ok {
		return HeartbeatGone
	}
	switch u.state {
	case stateDone:
		return HeartbeatDone
	case stateLeased:
		if u.worker != worker {
			return HeartbeatGone // stolen; the thief owns it now
		}
		u.deadline = now.Add(c.ttl)
		return HeartbeatOK
	case statePending:
		// Expired and requeued but not yet stolen: hand it back.
		u.state = stateLeased
		u.worker = worker
		u.deadline = now.Add(c.ttl)
		return HeartbeatOK
	default:
		return HeartbeatGone
	}
}

// Complete statuses.
const (
	// CompleteMerged: first verified result for the unit; delivered to
	// its waiters and merged through the population layer's keyed ledger
	// write.
	CompleteMerged = "merged"
	// CompleteDuplicate: the unit already completed; the upload is
	// acknowledged and dropped.
	CompleteDuplicate = "duplicate"
	// CompleteStale: the unit is unknown (abandoned, or completed long
	// enough ago to be forgotten); the upload is acknowledged and
	// dropped.
	CompleteStale = "stale"
)

// complete delivers a verified (or failed) outcome for unit id. Late
// completions from expired leases are accepted — the work is done and
// deterministic, whoever finished it.
func (c *Coordinator) complete(worker, id string, res *core.RunResult, err error) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchLocked(worker, 0)
	u, ok := c.units[id]
	if !ok {
		c.duplicates++
		return CompleteStale
	}
	if u.state == stateDone {
		c.duplicates++
		return CompleteDuplicate
	}
	if err != nil {
		// A worker-side permanent failure (unit refused to resolve, for
		// example): fail the waiters and forget the unit so a future
		// request can retry from scratch.
		u.err = err
		u.state = stateDead
		delete(c.units, id)
		c.failed++
		close(u.done)
		return CompleteMerged
	}
	u.res = res
	u.state = stateDone
	u.worker = worker
	w.completed++
	c.completed++
	c.doneOrder = append(c.doneOrder, id)
	for len(c.doneOrder) > doneCap {
		old := c.doneOrder[0]
		c.doneOrder = c.doneOrder[1:]
		if ou := c.units[old]; ou != nil && ou.state == stateDone {
			delete(c.units, old)
		}
	}
	close(u.done)
	return CompleteMerged
}

// FailUnit reports a worker-side permanent failure for unit id (the
// JSON error form of the complete endpoint).
func (c *Coordinator) FailUnit(worker, id, msg string) string {
	return c.complete(worker, id, nil, fmt.Errorf("fleet: worker %s failed unit %s: %s", worker, id, msg))
}

// CompleteUpload verifies and merges one uploaded checkpoint record. The
// body must decode under the checkpoint codec (CRC-verified) to exactly
// the unit's (cell, replica); anything else is rejected — preserved
// under the coordinator's quarantine directory when one is configured —
// and the lease is left standing so the worker can retry a torn upload.
// This is the gate in front of the merge point: the ledger only ever
// sees results that round-tripped the codec intact.
func (c *Coordinator) CompleteUpload(worker, id string, cell string, res *core.RunResult, decodeErr error, raw []byte) (string, error) {
	if decodeErr != nil {
		c.reject(id, raw, fmt.Sprintf("upload for unit %s failed to decode: %v", id, decodeErr))
		return "", fmt.Errorf("fleet: unit %s: upload rejected: %w", id, decodeErr)
	}
	c.mu.Lock()
	u, ok := c.units[id]
	var wantCell string
	var wantReplica int
	live := false
	if ok {
		wantCell, wantReplica = u.wu.Cell, u.wu.Replica
		live = u.state != stateDone
	}
	c.mu.Unlock()
	if ok && live && (cell != wantCell || res.Replica != wantReplica) {
		c.reject(id, raw, fmt.Sprintf("upload for unit %s carries cell %q replica %d, want cell %q replica %d", id, cell, res.Replica, wantCell, wantReplica))
		return "", fmt.Errorf("fleet: unit %s: upload rejected: wrong cell or replica", id)
	}
	return c.complete(worker, id, res, nil), nil
}

// reject counts a refused upload and preserves its payload for
// diagnosis when a directory is configured.
func (c *Coordinator) reject(id string, raw []byte, reason string) {
	c.mu.Lock()
	c.rejected++
	seq := c.rejected
	dir := c.dir
	c.mu.Unlock()
	if dir == "" || len(raw) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	name := fmt.Sprintf("%s-upload-%d.bin", id, seq)
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		return
	}
	_ = quarantine.Move(dir, name, reason)
}

// Stats is the coordinator's observable state for /v1/stats.
type Stats struct {
	LeaseTTLSeconds  float64       `json:"lease_ttl_seconds"`
	PendingUnits     int           `json:"pending_units"`
	LeasedUnits      int           `json:"leased_units"`
	CompletedUnits   int64         `json:"completed_units"`
	DuplicateUploads int64         `json:"duplicate_uploads"`
	ExpiredLeases    int64         `json:"expired_leases"`
	RejectedUploads  int64         `json:"rejected_uploads"`
	FailedUnits      int64         `json:"failed_units"`
	Workers          []WorkerStats `json:"workers,omitempty"`
}

// WorkerStats is one worker's view in Stats.
type WorkerStats struct {
	Name               string  `json:"name"`
	LastSeenSecondsAgo float64 `json:"last_seen_seconds_ago"`
	Leases             int64   `json:"leases"`
	Completed          int64   `json:"completed"`
	ReportedTrains     int64   `json:"reported_trains"`
}

// Stats snapshots queue depth, lease counters and per-worker activity
// (workers sorted by name).
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.reapLocked(now)
	s := Stats{
		LeaseTTLSeconds:  c.ttl.Seconds(),
		CompletedUnits:   c.completed,
		DuplicateUploads: c.duplicates,
		ExpiredLeases:    c.expired,
		RejectedUploads:  c.rejected,
		FailedUnits:      c.failed,
	}
	for _, u := range c.units {
		switch u.state {
		case statePending:
			s.PendingUnits++
		case stateLeased:
			s.LeasedUnits++
		}
	}
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStats{
			Name:               w.name,
			LastSeenSecondsAgo: now.Sub(w.lastSeen).Seconds(),
			Leases:             w.leases,
			Completed:          w.completed,
			ReportedTrains:     w.trains,
		})
	}
	sort.Slice(s.Workers, func(i, k int) bool { return s.Workers[i].Name < s.Workers[k].Name })
	return s
}

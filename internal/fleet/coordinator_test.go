package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/quarantine"
)

// testUnit is a synthetic work unit; coordinator tests never resolve or
// train it, so the recipe fields can stay zero.
func testUnit(cell string, replica int) experiments.WorkUnit {
	return experiments.WorkUnit{Cell: cell, Task: "t", Variant: "IMPL", Replica: replica}
}

// testResult fabricates the matching replica result.
func testResult(replica int) *core.RunResult {
	return &core.RunResult{
		Variant:      core.Impl,
		Replica:      replica,
		TestAccuracy: 0.5,
		Predictions:  []int{1, 2, 3},
		Weights:      []float32{0.25},
		EpochLoss:    []float64{1.0},
	}
}

// trainAsync enqueues a unit and returns channels carrying Train's
// outcome.
func trainAsync(ctx context.Context, c *Coordinator, u experiments.WorkUnit) (<-chan *core.RunResult, <-chan error) {
	resCh := make(chan *core.RunResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := c.Train(ctx, u)
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

// leaseOne pulls until a unit arrives or the deadline passes.
func leaseOne(t *testing.T, c *Coordinator, worker string) Leased {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		units, _ := c.Lease(context.Background(), worker, 1, 50*time.Millisecond, 0)
		if len(units) > 0 {
			return units[0]
		}
	}
	t.Fatalf("worker %s leased nothing before the deadline", worker)
	return Leased{}
}

// TestLeaseExpirySteal walks the whole satellite scenario: worker one
// leases a unit and goes silent, the lease expires and requeues, worker
// two steals and completes it, the silent worker learns "gone" from its
// next heartbeat, and its late duplicate upload is acknowledged and
// dropped — exactly one result reaches the waiter.
func TestLeaseExpirySteal(t *testing.T) {
	c := New(Options{TTL: 40 * time.Millisecond})
	u := testUnit("cell-steal", 0)
	resCh, errCh := trainAsync(context.Background(), c, u)

	got := leaseOne(t, c, "w1")
	if got.Unit.Cell != u.Cell {
		t.Fatalf("leased unit for cell %q, want %q", got.Unit.Cell, u.Cell)
	}
	// w1 goes silent (no heartbeat): the lease expires and w2 steals it.
	time.Sleep(60 * time.Millisecond)
	stolen := leaseOne(t, c, "w2")
	if stolen.ID != got.ID {
		t.Fatalf("w2 stole unit %s, want %s", stolen.ID, got.ID)
	}
	if s := c.Stats(); s.ExpiredLeases == 0 {
		t.Fatal("expired lease not counted")
	}
	if hb := c.Heartbeat("w1", got.ID, 0); hb != HeartbeatGone {
		t.Fatalf("silent worker's heartbeat = %q, want %q", hb, HeartbeatGone)
	}
	if hb := c.Heartbeat("w2", got.ID, 0); hb != HeartbeatOK {
		t.Fatalf("thief's heartbeat = %q, want %q", hb, HeartbeatOK)
	}

	res := testResult(0)
	status, err := c.CompleteUpload("w2", stolen.ID, u.Cell, res, nil, nil)
	if err != nil || status != CompleteMerged {
		t.Fatalf("steal completion = (%q, %v), want merged", status, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := <-resCh; !got.Equal(res) {
		t.Fatal("waiter received a different result than the worker uploaded")
	}

	// w1 finally finishes too: idempotent, acknowledged, dropped.
	status, err = c.CompleteUpload("w1", got.ID, u.Cell, testResult(0), nil, nil)
	if err != nil || status != CompleteDuplicate {
		t.Fatalf("duplicate completion = (%q, %v), want duplicate", status, err)
	}
	s := c.Stats()
	if s.CompletedUnits != 1 || s.DuplicateUploads != 1 {
		t.Fatalf("completed=%d duplicates=%d, want 1 and 1", s.CompletedUnits, s.DuplicateUploads)
	}
}

// TestHeartbeatKeepsLeaseAlive proves the inverse of stealing: a worker
// heartbeating inside the TTL retains its unit well past several TTLs.
func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	c := New(Options{TTL: 50 * time.Millisecond})
	_, errCh := trainAsync(context.Background(), c, testUnit("cell-alive", 1))
	got := leaseOne(t, c, "w1")
	for i := 0; i < 8; i++ { // ~4 TTLs of heartbeats at TTL/2.5
		time.Sleep(20 * time.Millisecond)
		if hb := c.Heartbeat("w1", got.ID, 0); hb != HeartbeatOK {
			t.Fatalf("heartbeat %d = %q, want ok", i, hb)
		}
		if units, _ := c.Lease(context.Background(), "w2", 1, 0, 0); len(units) != 0 {
			t.Fatal("heartbeated lease was stolen")
		}
	}
	if _, err := c.CompleteUpload("w1", got.ID, "cell-alive", testResult(1), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestAbandonedUnitDies proves waiter-driven cleanup: when the only
// Train call for a unit is cancelled, workers stop seeing the unit, and
// a worker already holding it is told "gone".
func TestAbandonedUnitDies(t *testing.T) {
	c := New(Options{TTL: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	_, errCh := trainAsync(ctx, c, testUnit("cell-abandon", 0))
	got := leaseOne(t, c, "w1")
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("abandoned Train returned %v", err)
	}
	if hb := c.Heartbeat("w1", got.ID, 0); hb != HeartbeatGone {
		t.Fatalf("heartbeat for abandoned unit = %q, want gone", hb)
	}
	if units, _ := c.Lease(context.Background(), "w2", 4, 0, 0); len(units) != 0 {
		t.Fatal("abandoned unit still leasable")
	}
	// A late upload for it is stale, not an error.
	if status, err := c.CompleteUpload("w1", got.ID, "cell-abandon", testResult(0), nil, nil); err != nil || status != CompleteStale {
		t.Fatalf("late upload = (%q, %v), want stale", status, err)
	}
}

// TestFailUnitPropagates proves permanent worker-side failures reach
// the waiter as errors and free the unit for a fresh future attempt.
func TestFailUnitPropagates(t *testing.T) {
	c := New(Options{TTL: time.Minute})
	_, errCh := trainAsync(context.Background(), c, testUnit("cell-fail", 2))
	got := leaseOne(t, c, "w1")
	c.FailUnit("w1", got.ID, "catalog mismatch")
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "catalog mismatch") {
		t.Fatalf("Train returned %v, want the worker's failure", err)
	}
	// The failed unit is forgotten: a new Train re-queues it.
	_, errCh2 := trainAsync(context.Background(), c, testUnit("cell-fail", 2))
	retry := leaseOne(t, c, "w1")
	if retry.ID != got.ID {
		t.Fatalf("retry leased %s, want %s", retry.ID, got.ID)
	}
	if _, err := c.CompleteUpload("w1", retry.ID, "cell-fail", testResult(2), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh2; err != nil {
		t.Fatal(err)
	}
}

// TestTornUploadQuarantined proves the merge gate: a CRC-torn record is
// rejected with its payload preserved in quarantine, the lease stays
// with the worker, and the retried intact upload merges — the waiter
// only ever sees the verified result.
func TestTornUploadQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{TTL: time.Minute, Dir: dir})
	u := testUnit("cell-torn", 0)
	resCh, errCh := trainAsync(context.Background(), c, u)
	got := leaseOne(t, c, "w1")

	want := testResult(0)
	var buf bytes.Buffer
	if err := checkpoint.EncodeResult(&buf, u.Cell, want); err != nil {
		t.Fatal(err)
	}
	intact := buf.Bytes()
	torn := intact[:len(intact)-3]

	cell, res, derr := checkpoint.DecodeResult(bytes.NewReader(torn))
	if derr == nil {
		t.Fatal("torn record decoded cleanly; the test is not testing anything")
	}
	if _, err := c.CompleteUpload("w1", got.ID, cell, res, derr, torn); err == nil {
		t.Fatal("torn upload accepted")
	}
	if n := quarantine.Count(dir); n != 1 {
		t.Fatalf("quarantined %d payloads, want 1", n)
	}
	if s := c.Stats(); s.RejectedUploads != 1 || s.CompletedUnits != 0 {
		t.Fatalf("rejected=%d completed=%d after torn upload, want 1 and 0", s.RejectedUploads, s.CompletedUnits)
	}
	// The lease survived the rejection: the worker retries and merges.
	if hb := c.Heartbeat("w1", got.ID, 0); hb != HeartbeatOK {
		t.Fatalf("lease did not survive a rejected upload: %q", hb)
	}
	cell, res, derr = checkpoint.DecodeResult(bytes.NewReader(intact))
	if derr != nil {
		t.Fatal(derr)
	}
	if status, err := c.CompleteUpload("w1", got.ID, cell, res, nil, intact); err != nil || status != CompleteMerged {
		t.Fatalf("retried upload = (%q, %v), want merged", status, err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if final := <-resCh; !final.Equal(want) {
		t.Fatal("merged result differs from the worker's")
	}
}

// TestWrongCellUploadRejected proves an intact record for the wrong
// cell cannot complete a unit (digest collisions and client bugs both
// land here).
func TestWrongCellUploadRejected(t *testing.T) {
	c := New(Options{TTL: time.Minute})
	u := testUnit("cell-right", 0)
	_, errCh := trainAsync(context.Background(), c, u)
	got := leaseOne(t, c, "w1")
	if _, err := c.CompleteUpload("w1", got.ID, "cell-wrong", testResult(0), nil, nil); err == nil {
		t.Fatal("wrong-cell upload accepted")
	}
	if _, err := c.CompleteUpload("w1", got.ID, u.Cell, testResult(5), nil, nil); err == nil {
		t.Fatal("wrong-replica upload accepted")
	}
	if _, err := c.CompleteUpload("w1", got.ID, u.Cell, testResult(0), nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestLeaseBatching proves one pull can carry several units and that
// identical Train calls join one unit instead of duplicating work.
func TestLeaseBatching(t *testing.T) {
	c := New(Options{TTL: time.Minute})
	for i := 0; i < 3; i++ {
		trainAsync(context.Background(), c, testUnit("cell-batch", i))
	}
	// A duplicate Train for replica 0 must join, not re-queue.
	dupRes, dupErr := trainAsync(context.Background(), c, testUnit("cell-batch", 0))
	deadline := time.Now().Add(5 * time.Second)
	var units []Leased
	for len(units) < 3 && time.Now().Before(deadline) {
		got, _ := c.Lease(context.Background(), "w1", 8, 20*time.Millisecond, 0)
		units = append(units, got...)
	}
	if len(units) != 3 {
		t.Fatalf("leased %d units, want 3 (duplicate Train must join the live unit)", len(units))
	}
	for _, lu := range units {
		if _, err := c.CompleteUpload("w1", lu.ID, "cell-batch", testResult(lu.Unit.Replica), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-dupErr; err != nil {
		t.Fatal(err)
	}
	if res := <-dupRes; res.Replica != 0 {
		t.Fatalf("joined waiter got replica %d, want 0", res.Replica)
	}
}

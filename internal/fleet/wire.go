package fleet

// Wire types for the fleet work endpoints (docs/api.md #13–#15). The
// worker and the server's handlers share these definitions so the
// protocol cannot skew between the two halves.

// LeaseRequest is the POST /v1/work/lease body: worker identity, batch
// size, how long the server may hold the request open when the queue is
// empty, and the worker's cumulative self-reported replica-train count
// (surfaces in /v1/stats; the fleet-wide sum proves zero duplicate
// trains).
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Trains int64  `json:"trains,omitempty"`
}

// LeaseResponse carries the leased units (possibly none, after an empty
// long-poll) and the TTL the worker must heartbeat within.
type LeaseResponse struct {
	Units []Leased `json:"units"`
	TTLMS int64    `json:"ttl_ms"`
}

// HeartbeatRequest is the POST /v1/work/{id}/heartbeat body.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Trains int64  `json:"trains,omitempty"`
}

// HeartbeatResponse reports the unit's fate: HeartbeatOK, HeartbeatGone
// or HeartbeatDone.
type HeartbeatResponse struct {
	Status string `json:"status"`
}

// CompleteResponse is the POST /v1/work/{id}/complete reply:
// CompleteMerged, CompleteDuplicate or CompleteStale.
type CompleteResponse struct {
	Status string `json:"status"`
}

// FailRequest is the JSON form of the complete endpoint: a worker that
// cannot execute a unit at all (its catalogs refuse to resolve it)
// reports the permanent failure instead of a result.
type FailRequest struct {
	Worker string `json:"worker"`
	Error  string `json:"error"`
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/jobs"
)

// DefaultLeaseWait is how long a worker's lease request long-polls an
// empty queue before returning and re-polling.
const DefaultLeaseWait = 15 * time.Second

// defaultBackoff is the base reconnect/re-upload backoff when Options
// does not set one (doubled per attempt with jitter — see
// jobs.SleepBackoff).
const defaultBackoff = 200 * time.Millisecond

// uploadAttempts bounds complete-upload retries per unit. Past it the
// worker drops the unit; the lease expires and another worker (or this
// one, later) re-trains it — determinism makes that merely wasteful,
// never wrong.
const uploadAttempts = 6

// Worker is the fleet's training client: a pull → train → upload loop
// against a coordinator's work endpoints. Each of Trainers goroutines
// independently leases up to Batch units, trains them with
// experiments.TrainUnit (bit-identical to coordinator-local training),
// heartbeats every held lease at TTL/3, and uploads results as
// checkpoint-codec records. Transport failures back off with the job
// engine's capped-jittered policy and never kill the loop; the faults
// points "fleet.lease" (fail the pull) and "fleet.complete" (corrupt
// the upload bytes) exist for chaos tests.
//
// Configure the fields before Run; zero values pick the documented
// defaults. A Worker runs until its context ends.
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// Name identifies this worker in leases and stats (default:
	// "<hostname>-<pid>").
	Name string
	// Trainers is the number of concurrent training loops (default 1).
	Trainers int
	// Batch is how many units each trainer pulls per lease (default 1;
	// trainers work a batch sequentially while heartbeating all of it).
	Batch int
	// Backoff is the base retry backoff (default 200ms).
	Backoff time.Duration
	// Wait bounds lease long-polling (default DefaultLeaseWait).
	Wait time.Duration
	// Client is the HTTP client (default: a client with no global
	// timeout — every request carries its own context deadline).
	Client *http.Client
	// Pops is the population cache units resolve against (default: a
	// fresh isolated cache, so the worker's dataset cache warms up
	// per-process).
	Pops *experiments.Populations
	// Logf, when set, receives progress lines (lease/complete/retry).
	Logf func(format string, args ...any)

	trains atomic.Int64
}

// Trains reports how many replicas this worker has trained to
// completion (it self-reports the same number to the coordinator on
// every lease and heartbeat).
func (w *Worker) Trains() int64 { return w.trains.Load() }

// Run normalizes defaults, starts the trainer loops and blocks until
// ctx ends. It returns ctx's error — a worker has no other way to
// finish.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		w.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if w.Trainers <= 0 {
		w.Trainers = 1
	}
	if w.Batch <= 0 {
		w.Batch = 1
	}
	if w.Backoff <= 0 {
		w.Backoff = defaultBackoff
	}
	if w.Wait <= 0 {
		w.Wait = DefaultLeaseWait
	}
	if w.Client == nil {
		w.Client = &http.Client{}
	}
	if w.Pops == nil {
		w.Pops = experiments.NewPopulations(0)
	}
	w.Base = strings.TrimRight(w.Base, "/")
	var wg sync.WaitGroup
	for i := 0; i < w.Trainers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// loop is one trainer: lease a batch, work it, repeat. Lease failures
// (network, coordinator restarting, armed faults) back off and retry
// forever — a worker outlives its coordinator's outages.
func (w *Worker) loop(ctx context.Context) {
	attempt := 0
	for ctx.Err() == nil {
		if err := faults.Fire("fleet.lease"); err != nil {
			w.logf("lease: %v", err)
			attempt++
			if !jobs.SleepBackoff(ctx, w.Backoff, attempt-1) {
				return
			}
			continue
		}
		resp, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("lease: %v", err)
			attempt++
			if !jobs.SleepBackoff(ctx, w.Backoff, attempt-1) {
				return
			}
			continue
		}
		attempt = 0
		ttl := time.Duration(resp.TTLMS) * time.Millisecond
		for _, lu := range resp.Units {
			w.process(ctx, lu, ttl)
		}
	}
}

// process trains one leased unit under a heartbeat and uploads the
// result. A heartbeat answer of "gone" or "done" cancels the training
// mid-epoch (the unit was stolen or already merged); a genuine training
// failure is reported to the coordinator as a permanent unit failure.
func (w *Worker) process(ctx context.Context, lu Leased, ttl time.Duration) {
	uctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var gone atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(uctx, cancel, lu.ID, ttl, &gone)
	}()
	res, err := w.Pops.TrainUnit(uctx, lu.Unit)
	cancel()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil || gone.Load() {
			return // shutting down, or the unit is no longer ours
		}
		w.logf("unit %s failed: %v", lu.ID, err)
		w.fail(ctx, lu.ID, err)
		return
	}
	w.trains.Add(1)
	w.upload(ctx, lu, res)
}

// heartbeats extends the lease on id every TTL/3 until ctx ends or the
// coordinator reports the unit gone (then cancel aborts the training).
// Transport errors are tolerated: a missed heartbeat only matters if
// enough of them miss that the lease expires, and then the steal path
// handles it.
func (w *Worker) heartbeats(ctx context.Context, cancel func(), id string, ttl time.Duration, gone *atomic.Bool) {
	ival := ttl / 3
	if ival < 10*time.Millisecond {
		ival = 10 * time.Millisecond
	}
	t := time.NewTicker(ival)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			status, err := w.heartbeat(ctx, id)
			if err != nil {
				continue
			}
			if status != HeartbeatOK {
				gone.Store(true)
				cancel()
				return
			}
		}
	}
}

// upload encodes the result as a checkpoint record and posts it,
// retrying with backoff: the coordinator rejects anything that fails
// CRC (the "fleet.complete" fault point tears the bytes in chaos
// tests), and a retried upload re-encodes from the intact in-memory
// result, so a torn attempt costs one round trip, never the unit.
func (w *Worker) upload(ctx context.Context, lu Leased, res *core.RunResult) {
	var buf bytes.Buffer
	if err := checkpoint.EncodeResult(&buf, lu.Unit.Cell, res); err != nil {
		w.fail(ctx, lu.ID, err)
		return
	}
	enc := buf.Bytes()
	for attempt := 0; attempt < uploadAttempts && ctx.Err() == nil; attempt++ {
		body, err := faults.FireWrite("fleet.complete", enc)
		if err == nil {
			var status string
			status, err = w.complete(ctx, lu.ID, body)
			if err == nil {
				w.logf("completed %s (%s)", lu.ID, status)
				return
			}
		}
		w.logf("upload %s: %v", lu.ID, err)
		if !jobs.SleepBackoff(ctx, w.Backoff, attempt) {
			return
		}
	}
	w.logf("upload %s: giving up; lease will expire and the unit will be re-trained", lu.ID)
}

// lease pulls up to Batch units, long-polling an empty queue.
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, error) {
	req := LeaseRequest{Worker: w.Name, Max: w.Batch, WaitMS: w.Wait.Milliseconds(), Trains: w.trains.Load()}
	var resp LeaseResponse
	if err := w.postJSON(ctx, "/v1/work/lease", req, &resp, w.Wait+10*time.Second); err != nil {
		return nil, err
	}
	return &resp, nil
}

// heartbeat reports liveness for one held unit.
func (w *Worker) heartbeat(ctx context.Context, id string) (string, error) {
	req := HeartbeatRequest{Worker: w.Name, Trains: w.trains.Load()}
	var resp HeartbeatResponse
	if err := w.postJSON(ctx, "/v1/work/"+id+"/heartbeat", req, &resp, 10*time.Second); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// complete uploads one encoded result record.
func (w *Worker) complete(ctx context.Context, id string, body []byte) (string, error) {
	rctx, cancelReq := context.WithTimeout(ctx, 30*time.Second)
	defer cancelReq()
	u := w.Base + "/v1/work/" + id + "/complete?worker=" + url.QueryEscape(w.Name)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	hr, err := w.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer hr.Body.Close()
	var resp CompleteResponse
	if err := readJSON(hr, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// fail reports a permanent unit failure (best effort — if even this
// fails, the lease expires and another worker hits the same wall).
func (w *Worker) fail(ctx context.Context, id string, trainErr error) {
	var resp CompleteResponse
	_ = w.postJSON(ctx, "/v1/work/"+id+"/complete", FailRequest{Worker: w.Name, Error: trainErr.Error()}, &resp, 10*time.Second)
}

// postJSON posts a JSON body to path and decodes the JSON reply,
// turning non-2xx statuses (the server's {"error": ...} shape) into
// errors.
func (w *Worker) postJSON(ctx context.Context, path string, in, out any, timeout time.Duration) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	rctx, cancelReq := context.WithTimeout(ctx, timeout)
	defer cancelReq()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.Base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	hr, err := w.Client.Do(req)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	return readJSON(hr, out)
}

// readJSON decodes a response body, surfacing the server's error shape
// on non-2xx statuses.
func readJSON(hr *http.Response, out any) error {
	raw, err := io.ReadAll(io.LimitReader(hr.Body, 1<<20))
	if err != nil {
		return err
	}
	if hr.StatusCode < 200 || hr.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", hr.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", hr.Status, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// logf emits one progress line when a logger is configured.
func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Package grid defines the declarative experiment-grid model. A Spec is a
// plain value — JSON-(de)serializable, hashable, comparable — describing a
// population-training grid: which workload recipes to train, on which
// simulated accelerators, under which noise variants, optionally sweeping
// recipe overrides, and which stability metrics to report. Specs carry no
// behavior beyond structural validation and canonical hashing; resolving
// names against the workload/device/variant catalogs and executing the
// grid is the experiment engine's job (internal/experiments), which keeps
// this package dependency-free and lets every layer — CLI flags, HTTP
// bodies, registered paper artifacts — speak the same value.
//
// Hashing contract: Hash (and ID) digest the canonical JSON encoding of
// the normalized spec. Two specs with the same axes in the same order hash
// identically, which is what keys results in the persistent store; callers
// that accept loose user input should canonicalize names (via the engine)
// before hashing so spelling variants of the same grid collide.
package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// MaxCells bounds how many cells one spec may expand to; Validate rejects
// anything larger so a typo'd axis cannot submit months of training.
const MaxCells = 4096

// Per-cell override bounds, closing the same gap as MaxCells from the
// other side: one cell must not be able to request effectively unbounded
// work through a huge epoch budget or batch size.
const (
	// MaxEpochs bounds a Recipe's epoch override (the largest shipped
	// schedule is 200 epochs; 10000 leaves two orders of headroom).
	MaxEpochs = 10000
	// MaxBatch bounds a Recipe's batch override (full-batch on the largest
	// shipped dataset is ~100k examples).
	MaxBatch = 1 << 20
	// MaxReplicas bounds the population size per cell (the paper uses 10;
	// TrainingRuns = cells × replicas, so this closes the last unbounded
	// factor of a submission's cost).
	MaxReplicas = 1000
)

// DefaultVariants are the three arms every paper comparison reports,
// applied when a spec lists none.
var DefaultVariants = []string{"ALGO+IMPL", "ALGO", "IMPL"}

// DefaultMetrics are the stability columns reported when a spec lists
// none: mean accuracy, its spread, predictive churn and weight distance.
var DefaultMetrics = []string{"acc", "stddev_acc", "churn", "l2"}

// Recipe overrides parts of a workload's training recipe for every cell it
// is applied to. Zero fields keep the recipe's published value; listing
// several Recipes in a Spec adds a sweep axis (one cell per recipe).
type Recipe struct {
	// Label names the override in rendered tables; empty derives one from
	// the overridden fields.
	Label string `json:"label,omitempty"`
	// LR overrides the base learning rate (0 keeps the recipe's).
	LR float64 `json:"lr,omitempty"`
	// Batch overrides the minibatch size (0 keeps the recipe's).
	Batch int `json:"batch,omitempty"`
	// Epochs overrides the epoch budget at every scale (0 keeps the
	// recipe's scale-dependent schedule).
	Epochs int `json:"epochs,omitempty"`
	// DecayAt overrides the fraction of epochs after which the LR divides
	// by 10 (0 keeps the recipe's).
	DecayAt float64 `json:"decay_at,omitempty"`
	// WeightDecay overrides L2 regularization (0 keeps the recipe's).
	WeightDecay float64 `json:"weight_decay,omitempty"`
	// NoAugment disables data augmentation.
	NoAugment bool `json:"no_augment,omitempty"`
}

// IsZero reports whether the recipe overrides nothing.
func (r Recipe) IsZero() bool { return r == Recipe{} }

// String returns the recipe's rendering label: Label if set, otherwise a
// compact "lr=0.1,batch=64" form, or "paper" for a zero override.
func (r Recipe) String() string {
	if r.Label != "" {
		return r.Label
	}
	var parts []string
	if r.LR > 0 {
		parts = append(parts, fmt.Sprintf("lr=%g", r.LR))
	}
	if r.Batch > 0 {
		parts = append(parts, fmt.Sprintf("batch=%d", r.Batch))
	}
	if r.Epochs > 0 {
		parts = append(parts, fmt.Sprintf("epochs=%d", r.Epochs))
	}
	if r.DecayAt > 0 {
		parts = append(parts, fmt.Sprintf("decay_at=%g", r.DecayAt))
	}
	if r.WeightDecay > 0 {
		parts = append(parts, fmt.Sprintf("weight_decay=%g", r.WeightDecay))
	}
	if r.NoAugment {
		parts = append(parts, "no_augment")
	}
	if len(parts) == 0 {
		return "paper"
	}
	return strings.Join(parts, ",")
}

// Spec declares one experiment grid: the cross product of Tasks × Devices
// × Variants × Recipes (Recipes defaulting to a single zero override),
// trained with Replicas models per cell and summarized into the Metrics
// columns. The zero value is invalid; a usable spec names at least one
// task and one device.
type Spec struct {
	// Name optionally labels the grid for humans (it does not enter Hash's
	// identity — two differently named specs over the same axes collide,
	// which is what result dedup wants). See Normalized.
	Name string `json:"name,omitempty"`
	// Title overrides the rendered table title.
	Title string `json:"title,omitempty"`
	// Tasks lists workload recipe names (see the experiments catalog;
	// matching is case- and punctuation-insensitive, e.g.
	// "resnet18-cifar10").
	Tasks []string `json:"tasks"`
	// Devices lists simulated accelerator names or aliases ("V100",
	// "rtx5000tc", ...).
	Devices []string `json:"devices"`
	// Variants lists noise arms ("ALGO+IMPL", "ALGO", "IMPL", "CONTROL",
	// "DATA-ORDER"); empty means DefaultVariants.
	Variants []string `json:"variants,omitempty"`
	// Recipes optionally sweeps recipe overrides as a fourth axis.
	Recipes []Recipe `json:"recipes,omitempty"`
	// Metrics selects the reported stability columns; empty means
	// DefaultMetrics.
	Metrics []string `json:"metrics,omitempty"`
	// Replicas overrides the run configuration's replica count when > 0.
	Replicas int `json:"replicas,omitempty"`
}

// Normalized returns a copy with whitespace-trimmed axis entries, empty
// entries dropped, defaults applied, and the display-only Name/Title
// cleared of surrounding space. It is the form Hash digests.
func (s Spec) Normalized() Spec {
	out := s
	out.Name = strings.TrimSpace(s.Name)
	out.Title = strings.TrimSpace(s.Title)
	out.Tasks = trimAll(s.Tasks)
	out.Devices = trimAll(s.Devices)
	out.Variants = trimAll(s.Variants)
	if len(out.Variants) == 0 {
		out.Variants = append([]string(nil), DefaultVariants...)
	}
	out.Metrics = trimAll(s.Metrics)
	if len(out.Metrics) == 0 {
		out.Metrics = append([]string(nil), DefaultMetrics...)
	}
	if len(out.Recipes) > 0 {
		out.Recipes = append([]Recipe(nil), s.Recipes...)
	}
	return out
}

func trimAll(in []string) []string {
	out := make([]string, 0, len(in))
	for _, v := range in {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks the spec's structure: at least one task and device, no
// negative replica count, and a cell count within MaxCells. Whether the
// names resolve against the catalogs is checked by the engine's compiler.
func (s Spec) Validate() error {
	n := s.Normalized()
	if len(n.Tasks) == 0 {
		return fmt.Errorf("grid: spec lists no tasks")
	}
	if len(n.Devices) == 0 {
		return fmt.Errorf("grid: spec lists no devices")
	}
	if n.Replicas < 0 {
		return fmt.Errorf("grid: replicas must be >= 0, got %d", n.Replicas)
	}
	if n.Replicas > MaxReplicas {
		return fmt.Errorf("grid: replicas = %d, max %d", n.Replicas, MaxReplicas)
	}
	for i, r := range n.Recipes {
		// Zero means "keep the recipe's value"; negative overrides would
		// otherwise be silently ignored and the cell mislabeled as a sweep.
		if r.LR < 0 || r.Batch < 0 || r.Epochs < 0 || r.DecayAt < 0 || r.WeightDecay < 0 {
			return fmt.Errorf("grid: recipe %d has a negative override (zero means keep the recipe's value)", i)
		}
		if r.DecayAt > 1 {
			return fmt.Errorf("grid: recipe %d overrides decay_at to %g; it is a fraction of training (0, 1]", i, r.DecayAt)
		}
		if r.Epochs > MaxEpochs {
			return fmt.Errorf("grid: recipe %d overrides epochs to %d, max %d", i, r.Epochs, MaxEpochs)
		}
		if r.Batch > MaxBatch {
			return fmt.Errorf("grid: recipe %d overrides batch to %d, max %d", i, r.Batch, MaxBatch)
		}
	}
	if cells := n.CellCount(); cells > MaxCells {
		return fmt.Errorf("grid: spec expands to %d cells, max %d", cells, MaxCells)
	}
	return nil
}

// CellCount is the number of grid cells the spec expands to:
// tasks × devices × variants × max(1, recipes).
func (s Spec) CellCount() int {
	n := s.Normalized()
	sweep := len(n.Recipes)
	if sweep == 0 {
		sweep = 1
	}
	return len(n.Tasks) * len(n.Devices) * len(n.Variants) * sweep
}

// Hash returns the canonical content hash of the spec: the first 12 hex
// characters of the SHA-256 of its normalized JSON encoding, with every
// display-only field excluded — the spec's Name and Title and each
// recipe's Label — so relabeling a grid or its sweep rows does not re-key
// its results.
func (s Spec) Hash() string {
	n := s.Normalized()
	n.Name, n.Title = "", ""
	for i := range n.Recipes {
		n.Recipes[i].Label = "" // Normalized copied the slice
	}
	// The resolved replica count is already part of every result key
	// (grid-<hash>-<scale>-rN-sM), so a spec-level replica override must
	// not also enter the hash: "replicas in the spec" and "replicas in
	// the run request" are the same work and must share one identity.
	n.Replicas = 0
	b, err := json.Marshal(n)
	if err != nil {
		// Spec contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("grid: hashing spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// ID is the registry-style identifier of the grid: "grid-<hash>". It
// prefixes result keys so custom grids share the persistent store's
// key space with registered paper artifacts without colliding.
func (s Spec) ID() string { return "grid-" + s.Hash() }

// Parse decodes a JSON spec strictly (unknown fields and trailing content
// are errors, catching typo'd or corrupted spec files before they
// silently train the wrong grid).
func Parse(b []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("grid: parsing spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("grid: parsing spec: trailing content after the spec object")
	}
	return s, nil
}

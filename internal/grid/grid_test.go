package grid

import (
	"strings"
	"testing"
)

func TestNormalizedAppliesDefaults(t *testing.T) {
	s := Spec{Tasks: []string{" ResNet18 CIFAR-10 ", ""}, Devices: []string{"V100"}}
	n := s.Normalized()
	if len(n.Tasks) != 1 || n.Tasks[0] != "ResNet18 CIFAR-10" {
		t.Fatalf("tasks not trimmed: %q", n.Tasks)
	}
	if len(n.Variants) != 3 || n.Variants[0] != "ALGO+IMPL" {
		t.Fatalf("default variants not applied: %q", n.Variants)
	}
	if len(n.Metrics) != 4 {
		t.Fatalf("default metrics not applied: %q", n.Metrics)
	}
	// Normalization must not mutate the receiver.
	if s.Variants != nil {
		t.Fatal("Normalized mutated its receiver")
	}
}

func TestValidate(t *testing.T) {
	ok := Spec{Tasks: []string{"t"}, Devices: []string{"d"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Devices: []string{"d"}},
		{Tasks: []string{"t"}},
		{Tasks: []string{"t"}, Devices: []string{"d"}, Replicas: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	huge := Spec{Tasks: make([]string, 100), Devices: make([]string, 100)}
	for i := range huge.Tasks {
		huge.Tasks[i] = "t"
	}
	for i := range huge.Devices {
		huge.Devices[i] = "d"
	}
	if err := huge.Validate(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("oversized spec accepted (err=%v)", err)
	}
}

func TestCellCount(t *testing.T) {
	s := Spec{Tasks: []string{"a", "b"}, Devices: []string{"d"}, Variants: []string{"IMPL"}}
	if got := s.CellCount(); got != 2 {
		t.Fatalf("CellCount = %d, want 2", got)
	}
	s.Recipes = []Recipe{{}, {LR: 0.1}, {Batch: 64}}
	if got := s.CellCount(); got != 6 {
		t.Fatalf("CellCount with sweep = %d, want 6", got)
	}
	// Default variants: 2 tasks x 1 device x 3 variants.
	s = Spec{Tasks: []string{"a", "b"}, Devices: []string{"d"}}
	if got := s.CellCount(); got != 6 {
		t.Fatalf("CellCount with default variants = %d, want 6", got)
	}
}

func TestHashStableAndLabelInsensitive(t *testing.T) {
	a := Spec{Tasks: []string{"t"}, Devices: []string{"d"}}
	b := Spec{Name: "my grid", Title: "My Grid", Tasks: []string{" t "}, Devices: []string{"d"}}
	if a.Hash() != b.Hash() {
		t.Fatalf("labels/whitespace changed the hash: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 12 {
		t.Fatalf("hash length %d, want 12", len(a.Hash()))
	}
	c := Spec{Tasks: []string{"t"}, Devices: []string{"d"}, Variants: []string{"IMPL"}}
	if a.Hash() == c.Hash() {
		t.Fatal("different axes hash identically")
	}
	// Explicitly spelling the defaults is the same grid.
	d := Spec{Tasks: []string{"t"}, Devices: []string{"d"},
		Variants: []string{"ALGO+IMPL", "ALGO", "IMPL"},
		Metrics:  []string{"acc", "stddev_acc", "churn", "l2"}}
	if a.Hash() != d.Hash() {
		t.Fatal("explicit defaults changed the hash")
	}
	if a.ID() != "grid-"+a.Hash() {
		t.Fatalf("ID = %q", a.ID())
	}
}

func TestParseStrict(t *testing.T) {
	s, err := Parse([]byte(`{"tasks":["t"],"devices":["V100"],"recipes":[{"lr":0.1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Recipes) != 1 || s.Recipes[0].LR != 0.1 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := Parse([]byte(`{"tasks":["t"],"devises":["V100"]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRecipeString(t *testing.T) {
	if got := (Recipe{}).String(); got != "paper" {
		t.Fatalf("zero recipe label %q", got)
	}
	if got := (Recipe{LR: 0.1, Batch: 64, NoAugment: true}).String(); got != "lr=0.1,batch=64,no_augment" {
		t.Fatalf("derived label %q", got)
	}
	if got := (Recipe{Label: "warm", LR: 0.1}).String(); got != "warm" {
		t.Fatalf("explicit label %q", got)
	}
	if !(Recipe{}).IsZero() || (Recipe{Epochs: 3}).IsZero() {
		t.Fatal("IsZero")
	}
}

func TestValidateRejectsNegativeRecipeOverrides(t *testing.T) {
	for _, r := range []Recipe{{LR: -1}, {Batch: -8}, {Epochs: -2}, {DecayAt: -0.5}, {WeightDecay: -0.1}} {
		s := Spec{Tasks: []string{"t"}, Devices: []string{"d"}, Recipes: []Recipe{r}}
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "negative") {
			t.Errorf("recipe %+v accepted (err=%v)", r, err)
		}
	}
}

func TestParseRejectsTrailingContent(t *testing.T) {
	if _, err := Parse([]byte(`{"tasks":["t"],"devices":["d"]}{"oops":1}`)); err == nil {
		t.Fatal("trailing JSON document accepted")
	}
}

func TestHashIgnoresReplicas(t *testing.T) {
	a := Spec{Tasks: []string{"t"}, Devices: []string{"d"}}
	b := Spec{Tasks: []string{"t"}, Devices: []string{"d"}, Replicas: 2}
	if a.Hash() != b.Hash() {
		t.Fatal("spec-level replicas entered the hash; the resolved count already keys results")
	}
}

func TestValidateBoundsOverrideMagnitudes(t *testing.T) {
	base := Spec{Tasks: []string{"t"}, Devices: []string{"d"}}
	base.Recipes = []Recipe{{Epochs: MaxEpochs + 1}}
	if err := base.Validate(); err == nil {
		t.Fatal("unbounded epochs accepted")
	}
	base.Recipes = []Recipe{{Batch: MaxBatch + 1}}
	if err := base.Validate(); err == nil {
		t.Fatal("unbounded batch accepted")
	}
	base.Recipes = []Recipe{{DecayAt: 75}}
	if err := base.Validate(); err == nil {
		t.Fatal("decay_at > 1 accepted (it is a fraction of training)")
	}
	base.Recipes = []Recipe{{Epochs: MaxEpochs, Batch: MaxBatch, DecayAt: 1}}
	if err := base.Validate(); err != nil {
		t.Fatalf("at-bound overrides rejected: %v", err)
	}
}

func TestValidateBoundsReplicas(t *testing.T) {
	s := Spec{Tasks: []string{"t"}, Devices: []string{"d"}, Replicas: MaxReplicas + 1}
	if err := s.Validate(); err == nil {
		t.Fatal("unbounded replicas accepted")
	}
	s.Replicas = MaxReplicas
	if err := s.Validate(); err != nil {
		t.Fatalf("at-bound replicas rejected: %v", err)
	}
}

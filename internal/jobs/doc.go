// Package jobs turns experiment runs into first-class, durable objects:
// an asynchronous job engine over a bounded queue, plus a
// content-addressed on-disk store for completed results.
//
// # Engine
//
// Submit enqueues one experiment run and returns immediately with a Job
// whose snapshot carries status (queued / running / done / failed /
// cancelled), progress (grid cells completed out of total, fed by the
// experiments package's progress observer), and a typed *Error on
// failure. Identical live submissions (same result key) join the same
// job, and submissions whose result already sits in the store complete
// instantly as cached — the engine is the singleflight layer that the
// HTTP server and CLI build on. Cancel aborts a queued job immediately
// and a running job at its next training-batch boundary via context
// cancellation.
//
// # Store
//
// The Store persists completed report.Results as JSON files keyed by the
// canonical result key (see ResultKey): writes go to a temp file in the
// same directory and are published by atomic rename, so a crash can
// never leave a torn result visible. The in-memory index is an LRU with
// an intrusive doubly-linked list (O(1) touch and eviction); evicting an
// entry also unlinks its file, so the directory is bounded by the same
// capacity. Opening a Store re-indexes the directory in modification-time
// order, which is how a restarted server serves previously computed
// results without retraining anything.
//
// # Concurrency and determinism contract
//
// Engine and Store are safe for concurrent use by any number of
// goroutines. Jobs are process-scoped (a restart forgets queued and
// running jobs); results are durable. Because every experiment derives
// its randomness from explicit seeds, a result loaded from disk is
// bit-identical to what rerunning the same configuration would produce —
// serving from the store is an optimization, never an approximation.
package jobs

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/sched"
)

// State is a job's lifecycle phase. Transitions are monotone:
//
//	queued -> running -> done | failed | cancelled
//	queued -> cancelled            (cancelled before a worker picked it up)
//	queued -> done                 (result already in the store: "cached")
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Error kinds for Error.Kind.
const (
	// ErrKindCancelled marks jobs stopped by Cancel or by every attached
	// waiter disconnecting.
	ErrKindCancelled = "cancelled"
	// ErrKindFailed marks jobs whose runner returned an error.
	ErrKindFailed = "failed"
	// ErrKindPanic marks jobs whose runner panicked; the panic is captured
	// so the worker goroutine (and the process) survives.
	ErrKindPanic = "panic"
	// ErrKindTimeout marks jobs stopped by the engine's wall-clock
	// watchdog (Options.JobTimeout) — distinguished from cancellation so
	// clients can tell "we gave up on it" from "you stopped it".
	ErrKindTimeout = "timeout"
)

// Error is the typed failure attached to a failed or cancelled job; it
// serializes into job snapshots so HTTP clients can branch on Kind
// without parsing messages.
type Error struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Transient reports that the failure was classified as retryable (an
	// injected I/O hiccup, a full queue downstream) and the retry budget
	// was exhausted — the submission is worth repeating as-is.
	Transient bool `json:"transient,omitempty"`
}

func (e *Error) Error() string { return fmt.Sprintf("job %s: %s", e.Kind, e.Message) }

// transientError tags an error as retryable. It is created by Transient
// and detected (anywhere in a wrap chain) by IsTransient.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient marks err as a transient failure: the engine retries the
// attempt (with capped exponential backoff) instead of failing the job
// outright. Runners wrap errors they know to be retryable — flaky I/O,
// contended resources — while everything unmarked fails fast.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (anywhere in its wrap chain) was
// marked with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// panicError carries a recovered runner panic through the error path so
// finish can classify it as ErrKindPanic.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("runner panicked: %v", p.val) }

// timeoutError marks an attempt stopped by the watchdog rather than by
// the caller.
type timeoutError struct{ after time.Duration }

func (t *timeoutError) Error() string {
	return fmt.Sprintf("runner exceeded the %s watchdog timeout", t.after)
}

// Progress is the fraction of an experiment's work completed: Done units
// out of Total. Training grids report replica-granular units (a cell's
// cached replicas tick instantly, so a mostly-warm grid shows most of its
// bar at submission); profiling experiments report per-cell units. Total
// is 0 until the runner sizes its work (and stays 0 for experiments with
// no grid, which complete near-instantly).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Snapshot is a point-in-time, JSON-ready view of a job. Result is
// populated only in StateDone.
type Snapshot struct {
	ID         string            `json:"id"`
	Experiment string            `json:"experiment"`
	Key        string            `json:"key"`
	State      State             `json:"state"`
	Progress   Progress          `json:"progress"`
	Config     report.ConfigEcho `json:"config"`
	// Cached reports that the result came from the store (or from a
	// concurrently completed identical job) without training anything.
	Cached bool `json:"cached"`
	// Retries counts transient-failure attempts that were retried.
	Retries int            `json:"retries,omitempty"`
	Error   *Error         `json:"error,omitempty"`
	Result  *report.Result `json:"result,omitempty"`
}

// RunFunc executes one experiment. Production engines use
// experiments.Run; tests substitute stubs.
type RunFunc func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error)

// Options configures an Engine.
type Options struct {
	// Workers is the number of jobs executed concurrently (each job still
	// parallelizes internally on the sched pool). 0 picks half of
	// GOMAXPROCS, minimum 1 — jobs are coarse units; the fine-grained
	// parallelism lives inside them.
	Workers int
	// QueueDepth bounds how many submitted jobs may wait behind the
	// running ones before Submit returns ErrQueueFull (0 = DefaultQueueDepth).
	QueueDepth int
	// Store persists and dedups completed results (nil = a fresh
	// memory-only store).
	Store *Store
	// Run overrides the experiment executor (nil = experiments.Run).
	Run RunFunc
	// RetainJobs bounds how many terminal jobs stay addressable by ID
	// before the oldest are forgotten (0 = DefaultRetainJobs).
	RetainJobs int
	// Journal, when set, durably records every non-terminal detached job
	// so a restarted engine can Recover the work that was still owed.
	Journal *Journal
	// Retries bounds how many times a transiently failing attempt is
	// retried (0 = DefaultRetries; negative = never retry).
	Retries int
	// RetryBackoff is the base delay before the first retry; subsequent
	// retries double it (capped, jittered). 0 = DefaultRetryBackoff.
	RetryBackoff time.Duration
	// JobTimeout, when positive, arms a wall-clock watchdog per attempt:
	// an attempt still running after this long is cancelled and the job
	// fails with ErrKindTimeout.
	JobTimeout time.Duration
}

// Defaults for Options.
const (
	DefaultQueueDepth   = 64
	DefaultRetainJobs   = 256
	DefaultRetries      = 2
	DefaultRetryBackoff = 100 * time.Millisecond
	// maxRetryBackoff caps the exponential growth of retry delays.
	maxRetryBackoff = 5 * time.Second
)

// ErrQueueFull is returned by Submit when the backlog is at capacity.
// (Alias of the scheduler's error so callers need only one import.)
var ErrQueueFull = sched.ErrQueueFull

// ErrQueueClosed is returned by Submit once the engine is closed or
// draining — shutdown, not backpressure, so the serve layer maps it to
// a distinct machine-readable reason.
var ErrQueueClosed = sched.ErrQueueClosed

// Engine owns the job table and the bounded execution queue.
type Engine struct {
	run        RunFunc
	store      *Store
	queue      *sched.Queue
	journal    *Journal // nil = no durability for in-flight jobs
	retries    int
	backoff    time.Duration
	jobTimeout time.Duration

	mu       sync.Mutex
	closed   bool
	draining bool
	seq      int
	jobs     map[string]*Job // every job still addressable by ID
	byKey    map[string]*Job // live (queued/running) jobs, for dedup
	finished []string        // terminal job IDs in completion order
	retain   int
}

// NewEngine starts the worker set and returns a ready engine. Close it
// to stop accepting work and wait for in-flight jobs.
func NewEngine(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = max(runtime.GOMAXPROCS(0)/2, 1)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	retain := opts.RetainJobs
	if retain <= 0 {
		retain = DefaultRetainJobs
	}
	retries := opts.Retries
	switch {
	case retries == 0:
		retries = DefaultRetries
	case retries < 0:
		retries = 0
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	e := &Engine{
		run:        opts.Run,
		store:      opts.Store,
		queue:      sched.NewQueue(workers, depth),
		journal:    opts.Journal,
		retries:    retries,
		backoff:    backoff,
		jobTimeout: opts.JobTimeout,
		jobs:       map[string]*Job{},
		byKey:      map[string]*Job{},
		retain:     retain,
	}
	if e.run == nil {
		e.run = func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			return experiments.Run(ctx, id, cfg)
		}
	}
	if e.store == nil {
		e.store, _ = Open("", 0) // memory-only Open cannot fail
	}
	return e
}

// Store exposes the engine's result store (the server's GET /v1/results
// reads through it).
func (e *Engine) Store() *Store { return e.store }

// Journal exposes the engine's job journal (nil when jobs are not
// durable).
func (e *Engine) Journal() *Journal { return e.journal }

// QueueBacklog reports the submission backlog and its capacity — the
// readiness signal for /v1/readyz.
func (e *Engine) QueueBacklog() (queued, capacity int) { return e.queue.Backlog() }

// Draining reports whether Drain has begun (new submissions are being
// refused).
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// Close cancels every live job, drains the queue, and waits for workers
// to finish. Further Submits return ErrQueueClosed. Shutdown
// cancellations keep their journal entries: the process is exiting, and
// the owed work belongs to the next one (`serve -resume`).
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	live := e.liveLocked()
	e.mu.Unlock()
	for _, j := range live {
		j.cancelForShutdown(&Error{Kind: ErrKindCancelled, Message: "engine shutting down"})
	}
	e.queue.Close()
}

// Drain begins graceful shutdown: new submissions are refused while
// in-flight jobs keep running. It returns nil once every live job has
// reached a terminal state, or ctx's error after cancelling whatever was
// still running at the deadline. Either way, journal entries of jobs
// that did not complete survive for the next process to Recover.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	live := e.liveLocked()
	e.mu.Unlock()
	for _, j := range live {
		select {
		case <-j.Done():
		case <-ctx.Done():
			// Deadline: abandon the wait and stop everything still live
			// (including jobs this loop never reached).
			e.mu.Lock()
			remaining := e.liveLocked()
			e.mu.Unlock()
			for _, r := range remaining {
				r.cancelForShutdown(&Error{Kind: ErrKindCancelled, Message: "server draining"})
			}
			return ctx.Err()
		}
	}
	return nil
}

// liveLocked snapshots the live jobs. Callers hold e.mu.
func (e *Engine) liveLocked() []*Job {
	live := make([]*Job, 0, len(e.byKey))
	for _, j := range e.byKey {
		live = append(live, j)
	}
	return live
}

// Resolver rebuilds the runnable for a journaled task entry (KindTask)
// from its payload — the server's resolver recompiles the grid spec the
// payload carries. Returning an error leaves the entry in the journal
// (a resolver bug must not silently discard owed work).
type Resolver func(entry JournalEntry) (func(context.Context) (*report.Result, error), error)

// Recover resubmits every journaled job through the normal submission
// path: entries whose results landed in the store before the crash
// complete instantly as cached (settling their entries), everything else
// queues again — and grid jobs retrain only the replicas the ledger does
// not already hold. It returns how many entries were resubmitted and a
// joined error for the ones that could not be (those stay journaled).
// Call it once at startup, before serving traffic.
func (e *Engine) Recover(resolve Resolver) (int, error) {
	if e.journal == nil {
		return 0, fmt.Errorf("jobs: Recover needs a journal (Options.Journal)")
	}
	entries, err := e.journal.Entries()
	if err != nil {
		return 0, err
	}
	recovered := 0
	var errs []error
	for _, entry := range entries {
		cfg, err := entry.Config()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		switch entry.Kind {
		case KindExperiment:
			if _, err := e.submit(entry.Experiment, entry.Key, cfg, true, nil, nil); err != nil {
				errs = append(errs, fmt.Errorf("jobs: recovering %q: %w", entry.Key, err))
				continue
			}
		case KindTask:
			if resolve == nil {
				errs = append(errs, fmt.Errorf("jobs: journal entry %q is a task but no resolver was given", entry.Key))
				continue
			}
			run, err := resolve(entry)
			if err != nil {
				errs = append(errs, fmt.Errorf("jobs: resolving journal entry %q: %w", entry.Key, err))
				continue
			}
			if _, err := e.SubmitTask(entry.Experiment, entry.Key, cfg, entry.Payload, run); err != nil {
				errs = append(errs, fmt.Errorf("jobs: recovering %q: %w", entry.Key, err))
				continue
			}
		default:
			errs = append(errs, fmt.Errorf("jobs: journal entry %q has unknown kind %q", entry.Key, entry.Kind))
			continue
		}
		recovered++
	}
	return recovered, errors.Join(errs...)
}

// Submit enqueues a detached run of one experiment: the job runs to
// completion (and persists its result) whether or not anyone is
// watching. A submission whose result is already stored completes
// instantly as cached; one whose key matches a live job joins that job.
func (e *Engine) Submit(experiment string, cfg experiments.Config) (*Job, error) {
	return e.submit(experiment, ResultKey(experiment, cfg), cfg, true, nil, nil)
}

// SubmitAttached enqueues a run owned by its waiters: each call
// registers one waiter, and when every waiter has Released before
// completion the job is cancelled so abandoned work stops burning the
// pool. If a detached submission later joins the same job it upgrades to
// detached and survives its waiters.
func (e *Engine) SubmitAttached(experiment string, cfg experiments.Config) (*Job, error) {
	return e.submit(experiment, ResultKey(experiment, cfg), cfg, false, nil, nil)
}

// SubmitTask enqueues a detached run of an arbitrary task — the grid
// endpoint's entry point. label identifies the task in snapshots (the
// Experiment field); key is its canonical result key and must be
// deterministic for the work run performs, because it addresses the
// persistent store (a restarted engine serves a stored key without
// re-running) and dedups identical live submissions. run receives a
// context carrying the job's progress observer and its cancellation.
//
// payload is the task's durable spec (for grids, the canonical spec
// JSON): it goes into the job journal so a restarted engine can hand it
// to a Resolver and rebuild run. nil payload means the task cannot be
// recovered and is journaled only if a journal is configured anyway
// (the entry will fail to resolve, loudly).
func (e *Engine) SubmitTask(label, key string, cfg experiments.Config, payload json.RawMessage, run func(context.Context) (*report.Result, error)) (*Job, error) {
	if run == nil {
		return nil, fmt.Errorf("jobs: SubmitTask %q: nil run func", label)
	}
	return e.submit(label, key, cfg, true, run, payload)
}

func (e *Engine) submit(experiment, key string, cfg experiments.Config, detached bool, run func(context.Context) (*report.Result, error), payload json.RawMessage) (*Job, error) {
	// Probe the store before taking the engine lock: a cold key may lazily
	// load its file from disk, and that I/O must not stall every other
	// engine operation. A result stored between this miss and execution is
	// still caught by the worker-side re-check.
	stored, hit := e.store.Get(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.draining {
		return nil, sched.ErrQueueClosed
	}
	if j, ok := e.byKey[key]; ok {
		// Join the live job for this key.
		j.mu.Lock()
		upgraded := detached && !j.detached
		if detached {
			j.detached = true
		} else {
			j.waiters++
		}
		j.mu.Unlock()
		if upgraded {
			// The job just became detached — it now survives its waiters, so
			// it becomes durable like any other detached submission.
			e.journalRecordLocked(j)
		}
		return j, nil
	}
	e.seq++
	id := fmt.Sprintf("job-%06d", e.seq)
	ctx, cancel := context.WithCancel(context.Background())
	kind := KindExperiment
	if run != nil {
		kind = KindTask
	}
	j := &Job{
		id:         id,
		experiment: experiment,
		cfg:        cfg,
		key:        key,
		kind:       kind,
		payload:    payload,
		engine:     e,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		state:      StateQueued,
		detached:   detached,
		runFn:      run,
	}
	if j.runFn == nil {
		j.runFn = func(ctx context.Context) (*report.Result, error) {
			return e.run(ctx, experiment, cfg)
		}
	}
	if !detached {
		j.waiters = 1
	}
	if hit {
		// Served from the store: the job is born terminal. It is still a
		// first-class object so clients can poll it uniformly. A journal
		// entry left by a crashed predecessor is settled — the result it
		// owed is in the store.
		j.state = StateDone
		j.res = stored
		j.cached = true
		cancel()
		close(j.done)
		e.jobs[id] = j
		e.retire(id)
		if e.journal != nil {
			e.journal.Remove(key)
		}
		return j, nil
	}
	if err := e.queue.Submit(func() { e.execute(j) }); err != nil {
		cancel()
		return nil, err
	}
	e.jobs[id] = j
	e.byKey[key] = j
	if detached {
		e.journalRecordLocked(j)
	}
	return j, nil
}

// journalRecordLocked durably records j's submission. Best-effort: a
// failed journal write degrades crash durability, not the run itself —
// the disk problem surfaces through /v1/readyz, not by refusing work.
// Callers hold e.mu, which orders Record against the Remove in finish
// for the same key.
func (e *Engine) journalRecordLocked(j *Job) {
	if e.journal == nil {
		return
	}
	_ = e.journal.Record(journalEntry(j.kind, j.experiment, j.key, j.cfg, j.payload))
}

// journalForget settles j's journal entry after a terminal transition —
// unless the cancellation was a shutdown/drain (the entry IS the resume
// record), or another live job has since claimed the key (its entry must
// survive).
func (e *Engine) journalForget(j *Job, preserve bool) {
	if e.journal == nil || preserve {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, live := e.byKey[j.key]; !live {
		e.journal.Remove(j.key)
	}
}

// Jobs returns every retained job in submission order (the zero-padded
// IDs sort lexicographically) — the GET /v1/jobs listing.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// Get returns the job addressed by ID, if it is still retained.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel stops the job addressed by ID: a queued job terminates
// immediately, a running one at its next training-batch boundary.
// Cancelling a terminal job is a no-op. The second return is false when
// no such job is retained.
func (e *Engine) Cancel(id string) (*Job, bool) {
	j, ok := e.Get(id)
	if !ok {
		return nil, false
	}
	j.cancelWith(&Error{Kind: ErrKindCancelled, Message: "cancelled by request"})
	return j, true
}

// execute runs one queued job on an engine worker, retrying transient
// failures with capped exponential backoff.
func (e *Engine) execute(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	ctx := j.ctx
	j.mu.Unlock()

	// A duplicate may have been queued behind the job that computed this
	// key (it missed the byKey dedup window), or the store may have been
	// warmed since submission: re-check before paying for training.
	if res, ok := e.store.Get(j.key); ok {
		e.finish(j, res, nil, true)
		return
	}

	var res *report.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = e.runAttempt(j, ctx)
		if err == nil || !IsTransient(err) || attempt >= e.retries || ctx.Err() != nil {
			break
		}
		j.noteRetry()
		if !sleepBackoff(ctx, e.backoff, attempt) {
			break // job cancelled mid-backoff; finish classifies via ctx
		}
	}
	e.finish(j, res, err, false)
}

// runAttempt executes one attempt of j's runner: panics become typed
// errors so the worker goroutine survives, and the optional watchdog
// bounds the attempt's wall-clock time. The "jobs.run" fault point fires
// before the runner so tests can inject failures into the execution path
// itself.
func (e *Engine) runAttempt(j *Job, ctx context.Context) (res *report.Result, err error) {
	actx := ctx
	if e.jobTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, e.jobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &panicError{val: r}
			return
		}
		// The watchdog expiring (while the job itself was not cancelled)
		// outranks whatever error the runner surfaced for it.
		if err != nil && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			err = &timeoutError{after: e.jobTimeout}
		}
	}()
	if err := faults.Fire("jobs.run"); err != nil {
		return nil, err
	}
	return j.runFn(experiments.WithProgress(actx, j.setProgress))
}

// SleepBackoff waits out the attempt'th retry delay under the engine's
// retry policy: base doubled per attempt, capped at 5s, with ±25% jitter
// so retry storms decorrelate. It returns false if ctx ended first. The
// fleet worker reuses this for its reconnect and re-upload loops so
// every retrying client in the system backs off the same way.
func SleepBackoff(ctx context.Context, base time.Duration, attempt int) bool {
	return sleepBackoff(ctx, base, attempt)
}

// sleepBackoff waits out the attempt'th retry delay: base doubled per
// attempt, capped, with ±25% jitter so retry storms decorrelate. It
// returns false if ctx ended first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) bool {
	d := base << attempt
	if d > maxRetryBackoff || d <= 0 { // <= 0: shift overflow
		d = maxRetryBackoff
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	select {
	case <-time.After(d + jitter):
		return true
	case <-ctx.Done():
		return false
	}
}

// finish publishes a job's outcome: the live-key entry is retired, a
// successful result enters the store, and done wakes every watcher.
func (e *Engine) finish(j *Job, res *report.Result, err error, cached bool) {
	e.mu.Lock()
	if e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	e.retire(j.id)
	e.mu.Unlock()

	if err == nil {
		// The store keeps the result addressable (and durable) even after
		// the job itself is forgotten. A failed disk write degrades
		// durability, not correctness: the result still serves from memory.
		if !cached {
			_ = e.store.Put(j.key, res)
		}
	}

	j.mu.Lock()
	if j.state.Terminal() { // lost a race against cancelWith on a queued job
		j.mu.Unlock()
		return
	}
	var pe *panicError
	var te *timeoutError
	switch {
	case err == nil:
		// A cancel may have raced a run that completed anyway; the result
		// won, so the job is done and the provisional cancel cause is moot.
		j.state = StateDone
		j.res = res
		j.cached = cached
		j.err = nil
	case errors.As(err, &te):
		// Checked before the context kinds: the watchdog works through
		// DeadlineExceeded but means "the engine gave up", not "you
		// cancelled it".
		j.state = StateFailed
		j.err = &Error{Kind: ErrKindTimeout, Message: err.Error()}
	case errors.As(err, &pe):
		j.state = StateFailed
		j.err = &Error{Kind: ErrKindPanic, Message: err.Error()}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		if j.err == nil {
			j.err = &Error{Kind: ErrKindCancelled, Message: err.Error()}
		}
	default:
		j.state = StateFailed
		j.err = &Error{Kind: ErrKindFailed, Message: err.Error(), Transient: IsTransient(err)}
	}
	preserve := j.preserve
	j.cancel() // release the context's resources
	close(j.done)
	j.mu.Unlock()
	e.journalForget(j, preserve)
}

// retire records a terminal job and forgets the oldest terminal jobs
// beyond the retention bound. Callers hold e.mu.
func (e *Engine) retire(id string) {
	e.finished = append(e.finished, id)
	for len(e.finished) > e.retain {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}

// Job is one submitted experiment run. All state is guarded by mu;
// clients read it through Snapshot.
type Job struct {
	id         string
	experiment string
	cfg        experiments.Config
	key        string
	kind       string          // KindExperiment or KindTask, for the journal
	payload    json.RawMessage // task recovery spec, for the journal
	engine     *Engine
	ctx        context.Context
	cancel     context.CancelFunc
	done       chan struct{}
	// runFn executes the job's work; for experiment submissions it closes
	// over the engine's RunFunc, for task submissions (custom grids) it is
	// caller-provided.
	runFn func(context.Context) (*report.Result, error)

	mu       sync.Mutex
	state    State
	progress Progress
	waiters  int
	detached bool
	cached   bool
	retries  int
	// preserve keeps the journal entry through the terminal transition:
	// set when the cancellation is a shutdown/drain, so the entry survives
	// as the next process's resume record.
	preserve bool
	res      *report.Result
	err      *Error
}

// ID returns the engine-scoped job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the canonical result key the job computes.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns a consistent point-in-time view of the job.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:         j.id,
		Experiment: j.experiment,
		Key:        j.key,
		State:      j.state,
		Progress:   j.progress,
		Config:     j.cfg.Echo(),
		Cached:     j.cached,
		Retries:    j.retries,
		Error:      j.err,
	}
	if j.state == StateDone {
		s.Result = j.res
	}
	return s
}

// Wait blocks until the job is terminal or ctx is cancelled (which
// abandons the wait, not the job) and returns the job's result or typed
// error.
func (j *Job) Wait(ctx context.Context) (*report.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.res, nil
}

// Release drops one attached waiter (see SubmitAttached). When the last
// waiter of a still-attached job leaves before completion, the job is
// cancelled — the asynchronous analogue of every HTTP client
// disconnecting from a synchronous run. The abandon decision holds both
// the engine and job locks, the same pair submit's join path holds, so
// it is atomic with joins: a client joining concurrently either lands
// before the decision (waiters > 0, no cancel) or finds the key already
// retired and starts a fresh job — it can never inherit a cancellation
// triggered by someone else's disconnect.
func (j *Job) Release() {
	e := j.engine
	e.mu.Lock()
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached && !j.state.Terminal()
	if abandon && e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	j.mu.Unlock()
	e.mu.Unlock()
	if abandon {
		j.transitionCancel(&Error{Kind: ErrKindCancelled, Message: "every waiter disconnected"})
	}
}

// setProgress is the experiments.ProgressFunc fed to the runner.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	if done >= j.progress.Done { // deliveries may race; keep monotone
		j.progress = Progress{Done: done, Total: total}
	}
	j.mu.Unlock()
}

// noteRetry counts one retried transient failure.
func (j *Job) noteRetry() {
	j.mu.Lock()
	j.retries++
	j.mu.Unlock()
}

// cancelForShutdown cancels the job like cancelWith but marks its
// journal entry preserved: shutdown cancellation is not a verdict on the
// job, and the entry is what lets the next process resume it.
func (j *Job) cancelForShutdown(cause *Error) {
	j.mu.Lock()
	j.preserve = true
	j.mu.Unlock()
	j.cancelWith(cause)
}

// cancelWith drives the job toward StateCancelled: the live-key entry
// is retired immediately so an identical submission arriving during the
// wind-down starts fresh instead of inheriting the cancellation, then
// the state transition proceeds.
func (j *Job) cancelWith(cause *Error) {
	e := j.engine
	e.mu.Lock()
	if e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	e.mu.Unlock()
	j.transitionCancel(cause)
}

// transitionCancel moves an already key-retired job toward
// StateCancelled: a queued job is finished on the spot (its queue slot
// becomes a no-op), a running job has its context cancelled and
// finishes when the runner observes it.
func (j *Job) transitionCancel(cause *Error) {
	e := j.engine
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = cause
		preserve := j.preserve
		j.mu.Unlock()
		e.mu.Lock()
		e.retire(j.id)
		e.mu.Unlock()
		j.cancel()
		close(j.done)
		e.journalForget(j, preserve)
	case StateRunning:
		if j.err == nil {
			j.err = cause
		}
		j.mu.Unlock()
		j.cancel() // finish() completes the transition
	default:
		j.mu.Unlock()
	}
}

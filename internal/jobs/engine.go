package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sched"
)

// State is a job's lifecycle phase. Transitions are monotone:
//
//	queued -> running -> done | failed | cancelled
//	queued -> cancelled            (cancelled before a worker picked it up)
//	queued -> done                 (result already in the store: "cached")
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Error kinds for Error.Kind.
const (
	// ErrKindCancelled marks jobs stopped by Cancel or by every attached
	// waiter disconnecting.
	ErrKindCancelled = "cancelled"
	// ErrKindFailed marks jobs whose runner returned an error or panicked.
	ErrKindFailed = "failed"
)

// Error is the typed failure attached to a failed or cancelled job; it
// serializes into job snapshots so HTTP clients can branch on Kind
// without parsing messages.
type Error struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("job %s: %s", e.Kind, e.Message) }

// Progress is the fraction of an experiment's work completed: Done units
// out of Total. Training grids report replica-granular units (a cell's
// cached replicas tick instantly, so a mostly-warm grid shows most of its
// bar at submission); profiling experiments report per-cell units. Total
// is 0 until the runner sizes its work (and stays 0 for experiments with
// no grid, which complete near-instantly).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Snapshot is a point-in-time, JSON-ready view of a job. Result is
// populated only in StateDone.
type Snapshot struct {
	ID         string            `json:"id"`
	Experiment string            `json:"experiment"`
	Key        string            `json:"key"`
	State      State             `json:"state"`
	Progress   Progress          `json:"progress"`
	Config     report.ConfigEcho `json:"config"`
	// Cached reports that the result came from the store (or from a
	// concurrently completed identical job) without training anything.
	Cached bool           `json:"cached"`
	Error  *Error         `json:"error,omitempty"`
	Result *report.Result `json:"result,omitempty"`
}

// RunFunc executes one experiment. Production engines use
// experiments.Run; tests substitute stubs.
type RunFunc func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error)

// Options configures an Engine.
type Options struct {
	// Workers is the number of jobs executed concurrently (each job still
	// parallelizes internally on the sched pool). 0 picks half of
	// GOMAXPROCS, minimum 1 — jobs are coarse units; the fine-grained
	// parallelism lives inside them.
	Workers int
	// QueueDepth bounds how many submitted jobs may wait behind the
	// running ones before Submit returns ErrQueueFull (0 = DefaultQueueDepth).
	QueueDepth int
	// Store persists and dedups completed results (nil = a fresh
	// memory-only store).
	Store *Store
	// Run overrides the experiment executor (nil = experiments.Run).
	Run RunFunc
	// RetainJobs bounds how many terminal jobs stay addressable by ID
	// before the oldest are forgotten (0 = DefaultRetainJobs).
	RetainJobs int
}

// Defaults for Options.
const (
	DefaultQueueDepth = 64
	DefaultRetainJobs = 256
)

// ErrQueueFull is returned by Submit when the backlog is at capacity.
// (Alias of the scheduler's error so callers need only one import.)
var ErrQueueFull = sched.ErrQueueFull

// Engine owns the job table and the bounded execution queue.
type Engine struct {
	run   RunFunc
	store *Store
	queue *sched.Queue

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job // every job still addressable by ID
	byKey    map[string]*Job // live (queued/running) jobs, for dedup
	finished []string        // terminal job IDs in completion order
	retain   int
}

// NewEngine starts the worker set and returns a ready engine. Close it
// to stop accepting work and wait for in-flight jobs.
func NewEngine(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = max(runtime.GOMAXPROCS(0)/2, 1)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	retain := opts.RetainJobs
	if retain <= 0 {
		retain = DefaultRetainJobs
	}
	e := &Engine{
		run:    opts.Run,
		store:  opts.Store,
		queue:  sched.NewQueue(workers, depth),
		jobs:   map[string]*Job{},
		byKey:  map[string]*Job{},
		retain: retain,
	}
	if e.run == nil {
		e.run = func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			return experiments.Run(ctx, id, cfg)
		}
	}
	if e.store == nil {
		e.store, _ = Open("", 0) // memory-only Open cannot fail
	}
	return e
}

// Store exposes the engine's result store (the server's GET /v1/results
// reads through it).
func (e *Engine) Store() *Store { return e.store }

// Close cancels every live job, drains the queue, and waits for workers
// to finish. Further Submits return ErrQueueClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	live := make([]*Job, 0, len(e.byKey))
	for _, j := range e.byKey {
		live = append(live, j)
	}
	e.mu.Unlock()
	for _, j := range live {
		j.cancelWith(&Error{Kind: ErrKindCancelled, Message: "engine shutting down"})
	}
	e.queue.Close()
}

// Submit enqueues a detached run of one experiment: the job runs to
// completion (and persists its result) whether or not anyone is
// watching. A submission whose result is already stored completes
// instantly as cached; one whose key matches a live job joins that job.
func (e *Engine) Submit(experiment string, cfg experiments.Config) (*Job, error) {
	return e.submit(experiment, ResultKey(experiment, cfg), cfg, true, nil)
}

// SubmitAttached enqueues a run owned by its waiters: each call
// registers one waiter, and when every waiter has Released before
// completion the job is cancelled so abandoned work stops burning the
// pool. If a detached submission later joins the same job it upgrades to
// detached and survives its waiters.
func (e *Engine) SubmitAttached(experiment string, cfg experiments.Config) (*Job, error) {
	return e.submit(experiment, ResultKey(experiment, cfg), cfg, false, nil)
}

// SubmitTask enqueues a detached run of an arbitrary task — the grid
// endpoint's entry point. label identifies the task in snapshots (the
// Experiment field); key is its canonical result key and must be
// deterministic for the work run performs, because it addresses the
// persistent store (a restarted engine serves a stored key without
// re-running) and dedups identical live submissions. run receives a
// context carrying the job's progress observer and its cancellation.
func (e *Engine) SubmitTask(label, key string, cfg experiments.Config, run func(context.Context) (*report.Result, error)) (*Job, error) {
	if run == nil {
		return nil, fmt.Errorf("jobs: SubmitTask %q: nil run func", label)
	}
	return e.submit(label, key, cfg, true, run)
}

func (e *Engine) submit(experiment, key string, cfg experiments.Config, detached bool, run func(context.Context) (*report.Result, error)) (*Job, error) {
	// Probe the store before taking the engine lock: a cold key may lazily
	// load its file from disk, and that I/O must not stall every other
	// engine operation. A result stored between this miss and execution is
	// still caught by the worker-side re-check.
	stored, hit := e.store.Get(key)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, sched.ErrQueueClosed
	}
	if j, ok := e.byKey[key]; ok {
		// Join the live job for this key.
		j.mu.Lock()
		if detached {
			j.detached = true
		} else {
			j.waiters++
		}
		j.mu.Unlock()
		return j, nil
	}
	e.seq++
	id := fmt.Sprintf("job-%06d", e.seq)
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:         id,
		experiment: experiment,
		cfg:        cfg,
		key:        key,
		engine:     e,
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		state:      StateQueued,
		detached:   detached,
		runFn:      run,
	}
	if j.runFn == nil {
		j.runFn = func(ctx context.Context) (*report.Result, error) {
			return e.run(ctx, experiment, cfg)
		}
	}
	if !detached {
		j.waiters = 1
	}
	if hit {
		// Served from the store: the job is born terminal. It is still a
		// first-class object so clients can poll it uniformly.
		j.state = StateDone
		j.res = stored
		j.cached = true
		cancel()
		close(j.done)
		e.jobs[id] = j
		e.retire(id)
		return j, nil
	}
	if err := e.queue.Submit(func() { e.execute(j) }); err != nil {
		cancel()
		return nil, err
	}
	e.jobs[id] = j
	e.byKey[key] = j
	return j, nil
}

// Get returns the job addressed by ID, if it is still retained.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Cancel stops the job addressed by ID: a queued job terminates
// immediately, a running one at its next training-batch boundary.
// Cancelling a terminal job is a no-op. The second return is false when
// no such job is retained.
func (e *Engine) Cancel(id string) (*Job, bool) {
	j, ok := e.Get(id)
	if !ok {
		return nil, false
	}
	j.cancelWith(&Error{Kind: ErrKindCancelled, Message: "cancelled by request"})
	return j, true
}

// execute runs one queued job on an engine worker.
func (e *Engine) execute(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	ctx := j.ctx
	j.mu.Unlock()

	// A duplicate may have been queued behind the job that computed this
	// key (it missed the byKey dedup window), or the store may have been
	// warmed since submission: re-check before paying for training.
	if res, ok := e.store.Get(j.key); ok {
		e.finish(j, res, nil, true)
		return
	}

	res, err := func() (res *report.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("runner panicked: %v", r)
			}
		}()
		return j.runFn(experiments.WithProgress(ctx, j.setProgress))
	}()
	e.finish(j, res, err, false)
}

// finish publishes a job's outcome: the live-key entry is retired, a
// successful result enters the store, and done wakes every watcher.
func (e *Engine) finish(j *Job, res *report.Result, err error, cached bool) {
	e.mu.Lock()
	if e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	e.retire(j.id)
	e.mu.Unlock()

	if err == nil {
		// The store keeps the result addressable (and durable) even after
		// the job itself is forgotten. A failed disk write degrades
		// durability, not correctness: the result still serves from memory.
		if !cached {
			_ = e.store.Put(j.key, res)
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() { // lost a race against cancelWith on a queued job
		return
	}
	switch {
	case err == nil:
		// A cancel may have raced a run that completed anyway; the result
		// won, so the job is done and the provisional cancel cause is moot.
		j.state = StateDone
		j.res = res
		j.cached = cached
		j.err = nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		if j.err == nil {
			j.err = &Error{Kind: ErrKindCancelled, Message: err.Error()}
		}
	default:
		j.state = StateFailed
		j.err = &Error{Kind: ErrKindFailed, Message: err.Error()}
	}
	j.cancel() // release the context's resources
	close(j.done)
}

// retire records a terminal job and forgets the oldest terminal jobs
// beyond the retention bound. Callers hold e.mu.
func (e *Engine) retire(id string) {
	e.finished = append(e.finished, id)
	for len(e.finished) > e.retain {
		delete(e.jobs, e.finished[0])
		e.finished = e.finished[1:]
	}
}

// Job is one submitted experiment run. All state is guarded by mu;
// clients read it through Snapshot.
type Job struct {
	id         string
	experiment string
	cfg        experiments.Config
	key        string
	engine     *Engine
	ctx        context.Context
	cancel     context.CancelFunc
	done       chan struct{}
	// runFn executes the job's work; for experiment submissions it closes
	// over the engine's RunFunc, for task submissions (custom grids) it is
	// caller-provided.
	runFn func(context.Context) (*report.Result, error)

	mu       sync.Mutex
	state    State
	progress Progress
	waiters  int
	detached bool
	cached   bool
	res      *report.Result
	err      *Error
}

// ID returns the engine-scoped job identifier.
func (j *Job) ID() string { return j.id }

// Key returns the canonical result key the job computes.
func (j *Job) Key() string { return j.key }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns a consistent point-in-time view of the job.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:         j.id,
		Experiment: j.experiment,
		Key:        j.key,
		State:      j.state,
		Progress:   j.progress,
		Config:     j.cfg.Echo(),
		Cached:     j.cached,
		Error:      j.err,
	}
	if j.state == StateDone {
		s.Result = j.res
	}
	return s
}

// Wait blocks until the job is terminal or ctx is cancelled (which
// abandons the wait, not the job) and returns the job's result or typed
// error.
func (j *Job) Wait(ctx context.Context) (*report.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.res, nil
}

// Release drops one attached waiter (see SubmitAttached). When the last
// waiter of a still-attached job leaves before completion, the job is
// cancelled — the asynchronous analogue of every HTTP client
// disconnecting from a synchronous run. The abandon decision holds both
// the engine and job locks, the same pair submit's join path holds, so
// it is atomic with joins: a client joining concurrently either lands
// before the decision (waiters > 0, no cancel) or finds the key already
// retired and starts a fresh job — it can never inherit a cancellation
// triggered by someone else's disconnect.
func (j *Job) Release() {
	e := j.engine
	e.mu.Lock()
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters <= 0 && !j.detached && !j.state.Terminal()
	if abandon && e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	j.mu.Unlock()
	e.mu.Unlock()
	if abandon {
		j.transitionCancel(&Error{Kind: ErrKindCancelled, Message: "every waiter disconnected"})
	}
}

// setProgress is the experiments.ProgressFunc fed to the runner.
func (j *Job) setProgress(done, total int) {
	j.mu.Lock()
	if done >= j.progress.Done { // deliveries may race; keep monotone
		j.progress = Progress{Done: done, Total: total}
	}
	j.mu.Unlock()
}

// cancelWith drives the job toward StateCancelled: the live-key entry
// is retired immediately so an identical submission arriving during the
// wind-down starts fresh instead of inheriting the cancellation, then
// the state transition proceeds.
func (j *Job) cancelWith(cause *Error) {
	e := j.engine
	e.mu.Lock()
	if e.byKey[j.key] == j {
		delete(e.byKey, j.key)
	}
	e.mu.Unlock()
	j.transitionCancel(cause)
}

// transitionCancel moves an already key-retired job toward
// StateCancelled: a queued job is finished on the spot (its queue slot
// becomes a no-op), a running job has its context cancelled and
// finishes when the runner observes it.
func (j *Job) transitionCancel(cause *Error) {
	e := j.engine
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = cause
		j.mu.Unlock()
		e.mu.Lock()
		e.retire(j.id)
		e.mu.Unlock()
		j.cancel()
		close(j.done)
	case StateRunning:
		if j.err == nil {
			j.err = cause
		}
		j.mu.Unlock()
		j.cancel() // finish() completes the transition
	default:
		j.mu.Unlock()
	}
}

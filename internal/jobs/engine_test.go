package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/report"
)

func testConfig() experiments.Config {
	return experiments.Config{Scale: data.ScaleTest, Replicas: 1, Seed: 7}
}

// newTestEngine builds an engine around a stub runner; the cleanup
// closes it so blocked stubs get cancelled at test end.
func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := NewEngine(opts)
	t.Cleanup(e.Close)
	return e
}

func waitTerminal(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never terminal: %+v", j.ID(), j.Snapshot())
	}
	return j.Snapshot()
}

// TestJobLifecycle drives one job queued -> running -> done and checks
// every observable along the way, including the progress fed through the
// experiments observer.
func TestJobLifecycle(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		progress := experiments.ProgressFrom(ctx)
		progress(0, 4)
		close(started)
		<-release
		progress(3, 4)
		return stubResult(id), nil
	}})

	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if j.Key() != "fig1-test-r1-s7" {
		t.Fatalf("key = %q", j.Key())
	}
	<-started
	snap := j.Snapshot()
	if snap.State != StateRunning {
		t.Fatalf("state = %s, want running", snap.State)
	}
	if snap.Progress.Total != 4 || snap.Progress.Done != 0 {
		t.Fatalf("progress = %+v, want 0/4", snap.Progress)
	}
	if snap.Result != nil {
		t.Fatal("non-terminal snapshot carries a result")
	}
	close(release)
	snap = waitTerminal(t, j)
	if snap.State != StateDone || snap.Cached || snap.Error != nil {
		t.Fatalf("final snapshot = %+v", snap)
	}
	if snap.Progress.Done != 3 || snap.Progress.Total != 4 {
		t.Fatalf("final progress = %+v, want 3/4", snap.Progress)
	}
	if snap.Result == nil || snap.Result.Experiment != "fig1" {
		t.Fatalf("result = %+v", snap.Result)
	}
	// The result is now stored: a fresh submission is born done+cached.
	j2, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s2 := j2.Snapshot(); s2.State != StateDone || !s2.Cached || s2.Result == nil {
		t.Fatalf("cached submission snapshot = %+v", s2)
	}
	if j2.ID() == j.ID() {
		t.Fatal("cached submission reused the finished job's ID")
	}
}

// TestLiveJobDedup: identical submissions while a job is live join it
// instead of queueing duplicate work.
func TestLiveJobDedup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(id), nil
	}})
	a, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical live submissions produced distinct jobs %s and %s", a.ID(), b.ID())
	}
	// A different config is a different job.
	other := testConfig()
	other.Seed = 8
	c, err := e.Submit("fig1", other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed joined the same job")
	}
	close(release)
	waitTerminal(t, a)
	waitTerminal(t, c)
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner ran %d times, want 2", got)
	}
}

// TestCancelRunningJob proves Cancel reaches a running job's context
// promptly and the job lands in StateCancelled with a typed error.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	observed := make(chan struct{})
	e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done() // a training loop checks ctx at every batch boundary
		close(observed)
		return nil, ctx.Err()
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := e.Cancel(j.ID()); !ok {
		t.Fatal("Cancel did not find the job")
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("running job's context was not cancelled promptly")
	}
	snap := waitTerminal(t, j)
	if snap.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", snap.State)
	}
	if snap.Error == nil || snap.Error.Kind != ErrKindCancelled {
		t.Fatalf("error = %+v, want kind %q", snap.Error, ErrKindCancelled)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("Wait on a cancelled job succeeded")
	}
	// The key is free again: a new submission starts a fresh job.
	j2, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if j2 == j {
		t.Fatal("submission after cancel joined the cancelled job")
	}
}

// TestCancelQueuedJob: a job cancelled before any worker picks it up
// terminates immediately and its queue slot becomes a no-op.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	e := newTestEngine(t, Options{Workers: 1, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(id), nil
	}})
	blocker, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queuedCfg := testConfig()
	queuedCfg.Seed = 99
	queued, err := e.Submit("fig2", queuedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := queued.Snapshot(); s.State != StateQueued {
		t.Fatalf("second job state = %s, want queued (1 worker)", s.State)
	}
	if _, ok := e.Cancel(queued.ID()); !ok {
		t.Fatal("Cancel did not find the queued job")
	}
	snap := waitTerminal(t, queued) // must not require a worker
	if snap.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", snap.State)
	}
	close(release)
	waitTerminal(t, blocker)
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner ran %d times; the cancelled queued job must never run", got)
	}
}

// TestQueueFullBackpressure: a bounded backlog rejects the overflow
// submission with ErrQueueFull instead of queueing unboundedly.
func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 1, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		<-release
		return stubResult(id), nil
	}})
	cfg := testConfig()
	var jobs []*Job
	var errFull error
	for i := 0; i < 8; i++ {
		cfg.Seed = uint64(100 + i) // distinct keys, no dedup
		j, err := e.Submit("fig1", cfg)
		if err != nil {
			errFull = err
			break
		}
		jobs = append(jobs, j)
	}
	if !errors.Is(errFull, ErrQueueFull) {
		t.Fatalf("overflow submission error = %v, want ErrQueueFull", errFull)
	}
	if len(jobs) < 1 {
		t.Fatal("no submission accepted")
	}
	close(release)
	for _, j := range jobs {
		if s := waitTerminal(t, j); s.State != StateDone {
			t.Fatalf("accepted job %s finished %s", s.ID, s.State)
		}
	}
}

// TestAttachedJobCancelledWhenAbandoned: SubmitAttached jobs die with
// their last waiter; a detached join keeps them alive instead.
func TestAttachedJobCancelledWhenAbandoned(t *testing.T) {
	t.Run("abandoned", func(t *testing.T) {
		started := make(chan struct{})
		e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}})
		j, err := e.SubmitAttached("fig1", testConfig())
		if err != nil {
			t.Fatal(err)
		}
		<-started
		j.Release()
		if snap := waitTerminal(t, j); snap.State != StateCancelled {
			t.Fatalf("abandoned attached job finished %s, want cancelled", snap.State)
		}
	})
	t.Run("upgraded to detached", func(t *testing.T) {
		started := make(chan struct{})
		release := make(chan struct{})
		e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			close(started)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-release:
				return stubResult(id), nil
			}
		}})
		j, err := e.SubmitAttached("fig1", testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit("fig1", testConfig()); err != nil { // async claim
			t.Fatal(err)
		}
		<-started
		j.Release() // last waiter leaves, but the job is detached now
		select {
		case <-j.Done():
			t.Fatalf("detached job was cancelled by waiter release: %+v", j.Snapshot())
		case <-time.After(100 * time.Millisecond):
		}
		close(release)
		if snap := waitTerminal(t, j); snap.State != StateDone {
			t.Fatalf("detached job finished %s, want done", snap.State)
		}
	})
}

// TestFailedJobTypedError: runner errors and panics land in StateFailed
// with ErrKindFailed, and the key is immediately reusable.
func TestFailedJobTypedError(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("boom")
		}
		panic("kaboom")
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error == nil || snap.Error.Kind != ErrKindFailed {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !strings.Contains(snap.Error.Message, "boom") {
		t.Fatalf("error message = %q", snap.Error.Message)
	}
	// Failures are not stored; the retry runs (and this one panics, which
	// must mark the job failed rather than kill the worker).
	j2, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap2 := waitTerminal(t, j2)
	if snap2.State != StateFailed || !strings.Contains(snap2.Error.Message, "kaboom") {
		t.Fatalf("panicking job snapshot = %+v", snap2)
	}
}

// TestQueuedDuplicateServedFromStore: a duplicate that slipped past the
// live-dedup window (its twin finished first) is served from the store
// at execution time instead of retraining.
func TestQueuedDuplicateServedFromStore(t *testing.T) {
	var calls atomic.Int64
	store, _ := Open("", 8)
	e := newTestEngine(t, Options{Workers: 1, Store: store, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		calls.Add(1)
		return stubResult(id), nil
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	// Simulate the race: wipe only the live-dedup effect by submitting
	// after completion but with the store entry removed from... the store
	// is the dedup here; a fresh submit is born done. So instead prove the
	// worker-side re-check: seed the store under a key a queued job will
	// compute.
	cfg := testConfig()
	cfg.Seed = 42
	key := ResultKey("fig9", cfg)
	if err := store.Put(key, stubResult("fig9")); err != nil {
		t.Fatal(err)
	}
	before := calls.Load()
	j2, err := e.Submit("fig9", cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j2)
	if snap.State != StateDone || !snap.Cached {
		t.Fatalf("snapshot = %+v, want done+cached", snap)
	}
	if got := calls.Load() - before; got != 0 {
		t.Fatalf("stored key still ran the runner %d times", got)
	}
}

// TestEngineCloseCancelsLiveJobs: Close is a clean shutdown — live jobs
// are cancelled, workers drain, and later submissions are refused.
func TestEngineCloseCancelsLiveJobs(t *testing.T) {
	started := make(chan struct{})
	e := NewEngine(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() { e.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	if snap := j.Snapshot(); snap.State != StateCancelled {
		t.Fatalf("job survived Close in state %s", snap.State)
	}
	if _, err := e.Submit("fig1", testConfig()); err == nil {
		t.Fatal("Submit accepted after Close")
	}
}

// TestJobRetention: terminal jobs beyond the retention bound are
// forgotten oldest-first, while the newest stay addressable.
func TestJobRetention(t *testing.T) {
	e := newTestEngine(t, Options{RetainJobs: 2, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return stubResult(id), nil
	}})
	cfg := testConfig()
	var ids []string
	for i := 0; i < 4; i++ {
		cfg.Seed = uint64(200 + i)
		j, err := e.Submit("fig1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.ID())
	}
	if _, ok := e.Get(ids[0]); ok {
		t.Fatal("oldest job still addressable beyond retention bound")
	}
	if _, ok := e.Get(ids[3]); !ok {
		t.Fatal("newest job was forgotten")
	}
}

// TestSubmitTask drives the arbitrary-task path the grid endpoint uses:
// caller-provided run func, explicit key, snapshot label, store dedup.
func TestSubmitTask(t *testing.T) {
	var calls atomic.Int64
	e := newTestEngine(t, Options{})
	run := func(ctx context.Context) (*report.Result, error) {
		calls.Add(1)
		if progress := experiments.ProgressFrom(ctx); progress == nil {
			t.Error("task run func context carries no progress observer")
		}
		return stubResult("grid-abc123"), nil
	}

	j, err := e.SubmitTask("grid-abc123", "grid-abc123-test-r1-s7", testConfig(), nil, run)
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateDone || snap.Error != nil {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Experiment != "grid-abc123" || snap.Key != "grid-abc123-test-r1-s7" {
		t.Fatalf("label/key = %q/%q", snap.Experiment, snap.Key)
	}
	if calls.Load() != 1 {
		t.Fatalf("run func called %d times", calls.Load())
	}

	// The completed result is stored under the task key: resubmitting the
	// same key is born done+cached with zero executions — the property that
	// makes grid results survive restarts when the store is disk-backed.
	j2, err := e.SubmitTask("grid-abc123", "grid-abc123-test-r1-s7", testConfig(), nil, run)
	if err != nil {
		t.Fatal(err)
	}
	if s2 := j2.Snapshot(); s2.State != StateDone || !s2.Cached || s2.Result == nil {
		t.Fatalf("resubmission snapshot = %+v", s2)
	}
	if calls.Load() != 1 {
		t.Fatalf("resubmission re-ran the task: %d calls", calls.Load())
	}

	// A different key is different work.
	j3, err := e.SubmitTask("grid-def456", "grid-def456-test-r1-s7", testConfig(), nil, run)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j3)
	if calls.Load() != 2 {
		t.Fatalf("distinct key did not run: %d calls", calls.Load())
	}

	if _, err := e.SubmitTask("grid-x", "grid-x-test-r1-s7", testConfig(), nil, nil); err == nil {
		t.Fatal("nil run func accepted")
	}
}

package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/quarantine"
)

// Journal entry kinds.
const (
	// KindExperiment marks a registered-experiment submission; recovery
	// resubmits it through the engine's default RunFunc.
	KindExperiment = "experiment"
	// KindTask marks an arbitrary-task submission (custom grids); recovery
	// needs a Resolver to turn the entry's payload back into a runnable.
	KindTask = "task"
)

// JournalEntry is the durable spec of one non-terminal job: everything a
// future process needs to resubmit it. It deliberately stores the
// *request* (experiment or grid spec plus configuration), not any
// partial result — partial training state already persists replica by
// replica in the ledger, so a recovered job retrains only the delta.
type JournalEntry struct {
	// Kind is KindExperiment or KindTask.
	Kind string `json:"kind"`
	// Experiment is the job's label: a registry ID for experiment jobs, a
	// "grid-<hash>" identity for task jobs.
	Experiment string `json:"experiment"`
	// Key is the job's canonical result key (and the entry's filename
	// stem — one entry per key, exactly like the live-job dedup).
	Key string `json:"key"`
	// Scale, Replicas and Seed reconstruct the run configuration.
	Scale    string `json:"scale"`
	Replicas int    `json:"replicas,omitempty"`
	Seed     uint64 `json:"seed"`
	// Payload carries kind-specific recovery data: for task jobs, the
	// canonical grid spec JSON.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Config reconstructs the run configuration the entry was submitted with.
func (e JournalEntry) Config() (experiments.Config, error) {
	scale, err := data.ParseScale(e.Scale)
	if err != nil {
		return experiments.Config{}, fmt.Errorf("jobs: journal entry %q: %w", e.Key, err)
	}
	return experiments.Config{Scale: scale, Replicas: e.Replicas, Seed: e.Seed}, nil
}

// journalEntry builds the durable form of one submission.
func journalEntry(kind, experiment, key string, cfg experiments.Config, payload json.RawMessage) JournalEntry {
	return JournalEntry{
		Kind:       kind,
		Experiment: experiment,
		Key:        key,
		Scale:      cfg.Scale.String(),
		Replicas:   cfg.Replicas,
		Seed:       cfg.Seed,
		Payload:    payload,
	}
}

// Journal is the durable job journal: one JSON file per non-terminal
// job, keyed (and named) by the job's result key, published by
// write-to-temp + atomic rename. The engine records an entry when a job
// is queued and removes it when the job reaches a genuine terminal state
// (done, failed, or user-cancelled) — but NOT when a shutdown or drain
// cancels it, so `serve -resume` after a crash *or* a graceful restart
// resubmits exactly the work that was still owed. Entries that fail to
// decode are quarantined, never deleted.
//
// A Journal is safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	dir string

	quarantined atomic.Int64
}

// OpenJournal returns a journal over dir, creating it if needed. The
// server places it next to the result store (a subdirectory, so the
// store's own directory scan never mistakes entries for results).
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: journal needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir reports the backing directory.
func (j *Journal) Dir() string { return j.dir }

// Quarantined reports how many undecodable entries this journal has
// moved aside since it was opened.
func (j *Journal) Quarantined() int64 { return j.quarantined.Load() }

// Record persists entry under its key, replacing any previous entry for
// that key. The write is atomic (temp + rename); the "journal.write"
// fault point can fail or tear it.
func (j *Journal) Record(e JournalEntry) error {
	if e.Key == "" || strings.ContainsAny(e.Key, "/\\") || strings.HasPrefix(e.Key, ".") {
		return fmt.Errorf("jobs: invalid journal key %q", e.Key)
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding journal entry %q: %w", e.Key, err)
	}
	b = append(b, '\n')
	b, injErr := faults.FireWrite("journal.write", b)
	if injErr != nil {
		return fmt.Errorf("jobs: journaling %q: %w", e.Key, injErr)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp, err := os.CreateTemp(j.dir, tmpPrefix+"entry-*")
	if err != nil {
		return fmt.Errorf("jobs: journaling %q: %w", e.Key, err)
	}
	_, werr := tmp.Write(b)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), j.path(e.Key))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: journaling %q: %w", e.Key, werr)
	}
	return nil
}

// Remove forgets the entry for key (no-op when none exists). Removal is
// how a job's terminal state becomes durable — a crash between the
// terminal transition and Remove merely resubmits a job whose result is
// already in the store, which completes instantly as cached.
func (j *Journal) Remove(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = os.Remove(j.path(key))
}

// Len counts the journaled entries (diagnostics and tests).
func (j *Journal) Len() int {
	entries, err := j.Entries()
	if err != nil {
		return 0
	}
	return len(entries)
}

// Entries returns every decodable journal entry, oldest first (by file
// modification time), so recovery resubmits in roughly original
// submission order. Leftover temp files and entries that fail to decode
// are quarantined and skipped.
func (j *Journal) Entries() ([]JournalEntry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	files, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning journal: %w", err)
	}
	type onDisk struct {
		name string
		mod  int64
	}
	var found []onDisk
	for _, f := range files {
		name := f.Name()
		if f.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			j.quarantineFile(name, "orphaned temp file from an interrupted write")
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := f.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{name, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, k int) bool { return found[i].mod < found[k].mod })
	var out []JournalEntry
	for _, f := range found {
		b, err := os.ReadFile(filepath.Join(j.dir, f.name))
		if err != nil {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(b, &e); err != nil || e.Key == "" || e.Kind == "" {
			j.quarantineFile(f.name, fmt.Sprintf("journal entry failed to decode: %v", err))
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// Writable probes the journal directory for write access — the serve
// layer's readiness check (a journal that cannot record makes every
// detached submit fail, so readiness must surface it). The
// "journal.probe" fault point can force a failure.
func (j *Journal) Writable() error {
	if err := faults.Fire("journal.probe"); err != nil {
		return err
	}
	f, err := os.CreateTemp(j.dir, tmpPrefix+"probe-*")
	if err != nil {
		return fmt.Errorf("jobs: journal %s not writable: %w", j.dir, err)
	}
	name := f.Name()
	f.Close()
	_ = os.Remove(name)
	return nil
}

// quarantine an undecodable entry. Callers hold j.mu.
func (j *Journal) quarantineFile(name, reason string) {
	if err := quarantine.Move(j.dir, name, reason); err == nil {
		j.quarantined.Add(1)
	}
}

func (j *Journal) path(key string) string { return filepath.Join(j.dir, key+".json") }

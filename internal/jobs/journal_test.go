package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/quarantine"
	"repro/internal/report"
)

// compactJSON normalizes raw JSON for comparison: the journal's pretty
// encoder re-indents embedded RawMessage payloads without changing them
// semantically.
func compactJSON(t *testing.T, raw json.RawMessage) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %s: %v", raw, err)
	}
	return buf.String()
}

func newTestJournal(t *testing.T) *Journal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	j := newTestJournal(t)
	e := journalEntry(KindTask, "grid-abc", "grid-abc-test-r2-s7", testConfig(), json.RawMessage(`{"tasks":["x"]}`))
	e.Replicas = 2
	if err := j.Record(e); err != nil {
		t.Fatal(err)
	}
	entries, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	got := entries[0]
	if got.Kind != KindTask || got.Experiment != "grid-abc" || got.Key != "grid-abc-test-r2-s7" {
		t.Fatalf("entry = %+v", got)
	}
	if compactJSON(t, got.Payload) != `{"tasks":["x"]}` {
		t.Fatalf("payload = %s", got.Payload)
	}
	cfg, err := got.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale != testConfig().Scale || cfg.Replicas != 2 || cfg.Seed != 7 {
		t.Fatalf("config = %+v", cfg)
	}
	j.Remove(got.Key)
	if n := j.Len(); n != 0 {
		t.Fatalf("after remove Len = %d", n)
	}
	j.Remove("never-existed") // no-op, must not panic or error
}

func TestJournalRejectsTraversalKeys(t *testing.T) {
	j := newTestJournal(t)
	for _, key := range []string{"", "../escape", "a/b", `a\b`, ".hidden"} {
		if err := j.Record(JournalEntry{Kind: KindExperiment, Key: key, Scale: "test"}); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
}

// TestJournalQuarantinesCorruptEntries: an undecodable entry is moved
// aside with a reason, never deleted, and does not block the others.
func TestJournalQuarantinesCorruptEntries(t *testing.T) {
	j := newTestJournal(t)
	if err := j.Record(journalEntry(KindExperiment, "fig1", "fig1-test-r1-s7", testConfig(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(j.Dir(), "torn.json"), []byte(`{"kind":"ta`), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Key != "fig1-test-r1-s7" {
		t.Fatalf("entries = %+v", entries)
	}
	if j.Quarantined() != 1 || quarantine.Count(j.Dir()) != 1 {
		t.Fatalf("quarantined = %d, on disk = %d", j.Quarantined(), quarantine.Count(j.Dir()))
	}
	if reason := quarantine.Reason(j.Dir(), "torn.json"); reason == "" {
		t.Fatal("no quarantine reason recorded")
	}
}

// TestJournalTornWriteNeverPublishesPartial: tearing the journal write
// fails Record, and the half-written temp file is quarantined (not
// trusted, not deleted) by the next scan.
func TestJournalTornWrite(t *testing.T) {
	j := newTestJournal(t)
	defer faults.Reset()
	faults.Arm("journal.write", faults.Injection{Err: errors.New("disk gone"), Count: 1})
	if err := j.Record(journalEntry(KindExperiment, "fig1", "fig1-test-r1-s7", testConfig(), nil)); err == nil {
		t.Fatal("record with injected write fault succeeded")
	}
	if n := j.Len(); n != 0 {
		t.Fatalf("failed record left %d entries", n)
	}
}

// TestJournalFollowsDetachedJobLifecycle pins the journal contract:
// detached submissions are recorded, completion and explicit
// cancellation settle the entry, and engine shutdown preserves it.
func TestJournalFollowsDetachedJobLifecycle(t *testing.T) {
	journal := newTestJournal(t)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	e := newTestEngine(t, Options{Journal: journal, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return stubResult(id), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})

	// Attached jobs are not durable: no one owes their waiters a restart.
	att, err := e.SubmitAttached("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if n := journal.Len(); n != 0 {
		t.Fatalf("attached submission journaled (%d entries)", n)
	}
	// A detached join upgrades the same job — now it must be durable.
	det, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if det != att {
		t.Fatal("detached submission did not join the live attached job")
	}
	if n := journal.Len(); n != 1 {
		t.Fatalf("upgraded job not journaled (%d entries)", n)
	}
	close(release)
	waitTerminal(t, det)
	if n := journal.Len(); n != 0 {
		t.Fatalf("done job still journaled (%d entries)", n)
	}

	// Explicit cancellation is a verdict: the entry goes too.
	release = make(chan struct{})
	cfg2 := testConfig()
	cfg2.Seed = 8
	j2, err := e.Submit("fig1", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if n := journal.Len(); n != 1 {
		t.Fatalf("live detached job not journaled (%d entries)", n)
	}
	if _, ok := e.Cancel(j2.ID()); !ok {
		t.Fatal("cancel failed")
	}
	waitTerminal(t, j2)
	if n := journal.Len(); n != 0 {
		t.Fatalf("user-cancelled job still journaled (%d entries)", n)
	}

	// Engine shutdown is not a verdict: the entry survives for -resume.
	cfg3 := testConfig()
	cfg3.Seed = 9
	j3, err := e.Submit("fig1", cfg3)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	e.Close()
	waitTerminal(t, j3)
	if n := journal.Len(); n != 1 {
		t.Fatalf("shutdown-cancelled job lost its journal entry (%d entries)", n)
	}
}

// TestRecoverResubmitsJournaledWork: a fresh engine over the same
// journal and store resubmits exactly what was owed — entries whose
// results landed before the crash settle as cached.
func TestRecoverResubmitsJournaledWork(t *testing.T) {
	dir := t.TempDir()
	journal, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	store, err := Open(filepath.Join(dir, "results"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crashed predecessor: two experiment entries — one whose
	// result made it into the store, one still owed — and one task entry.
	owedCfg := testConfig()
	settledCfg := testConfig()
	settledCfg.Seed = 8
	for _, entry := range []JournalEntry{
		journalEntry(KindExperiment, "fig1", ResultKey("fig1", owedCfg), owedCfg, nil),
		journalEntry(KindExperiment, "fig1", ResultKey("fig1", settledCfg), settledCfg, nil),
		journalEntry(KindTask, "grid-abc", "grid-abc-test-r1-s7", owedCfg, json.RawMessage(`{"devices":["V100"]}`)),
	} {
		if err := journal.Record(entry); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Put(ResultKey("fig1", settledCfg), stubResult("fig1")); err != nil {
		t.Fatal(err)
	}

	var ranExperiments, ranTasks int
	e := newTestEngine(t, Options{Journal: journal, Store: store,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			ranExperiments++
			return stubResult(id), nil
		}})
	var taskPayload string
	n, err := e.Recover(func(entry JournalEntry) (func(context.Context) (*report.Result, error), error) {
		taskPayload = compactJSON(t, entry.Payload)
		return func(context.Context) (*report.Result, error) {
			ranTasks++
			return stubResult(entry.Experiment), nil
		}, nil
	})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n != 3 {
		t.Fatalf("recovered = %d, want 3", n)
	}
	if taskPayload != `{"devices":["V100"]}` {
		t.Fatalf("resolver saw payload %s", taskPayload)
	}
	for _, j := range e.Jobs() {
		waitTerminal(t, j)
	}
	if ranExperiments != 1 || ranTasks != 1 {
		t.Fatalf("ran %d experiments and %d tasks, want 1 and 1 (settled entry must serve cached)", ranExperiments, ranTasks)
	}
	if n := journal.Len(); n != 0 {
		t.Fatalf("%d entries left after recovery completed", n)
	}
}

// TestRecoverKeepsUnresolvableEntries: a resolver failure reports the
// entry and leaves it journaled — owed work is never silently dropped.
func TestRecoverKeepsUnresolvableEntries(t *testing.T) {
	journal := newTestJournal(t)
	if err := journal.Record(journalEntry(KindTask, "grid-abc", "grid-abc-test-r1-s7", testConfig(), nil)); err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Options{Journal: journal})
	n, err := e.Recover(func(entry JournalEntry) (func(context.Context) (*report.Result, error), error) {
		return nil, fmt.Errorf("no payload")
	})
	if n != 0 || err == nil {
		t.Fatalf("recover = %d, %v; want 0 and an error", n, err)
	}
	if journal.Len() != 1 {
		t.Fatal("unresolvable entry was dropped from the journal")
	}
	// No resolver at all is the same contract.
	if n, err := e.Recover(nil); n != 0 || err == nil {
		t.Fatalf("recover without resolver = %d, %v", n, err)
	}
}

// TestTransientFailuresRetry: an error marked Transient is retried with
// backoff up to the budget; success on a later attempt is an ordinary
// done job that records its retry count.
func TestTransientFailuresRetry(t *testing.T) {
	attempts := 0
	e := newTestEngine(t, Options{Retries: 3, RetryBackoff: time.Millisecond,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			attempts++
			if attempts < 3 {
				return nil, Transient(errors.New("flaky I/O"))
			}
			return stubResult(id), nil
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateDone {
		t.Fatalf("state = %s (%+v)", snap.State, snap.Error)
	}
	if attempts != 3 || snap.Retries != 2 {
		t.Fatalf("attempts = %d, snapshot retries = %d; want 3 and 2", attempts, snap.Retries)
	}
}

// TestTransientBudgetExhausted: when every attempt fails the job fails
// with the Transient bit set, so clients know resubmitting may work.
func TestTransientBudgetExhausted(t *testing.T) {
	attempts := 0
	e := newTestEngine(t, Options{Retries: 2, RetryBackoff: time.Millisecond,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			attempts++
			return nil, Transient(errors.New("still flaky"))
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error == nil || snap.Error.Kind != ErrKindFailed {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !snap.Error.Transient {
		t.Fatal("exhausted transient failure not marked Transient")
	}
	if attempts != 3 { // 1 initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

// TestNonTransientFailsFast: unmarked errors never retry.
func TestNonTransientFailsFast(t *testing.T) {
	attempts := 0
	e := newTestEngine(t, Options{Retries: 5, RetryBackoff: time.Millisecond,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			attempts++
			return nil, errors.New("deterministic bug")
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error.Transient || attempts != 1 {
		t.Fatalf("attempts = %d, snapshot = %+v", attempts, snap)
	}
}

// TestNegativeRetriesDisablesRetry: Options.Retries < 0 means even
// transient failures fail on the first attempt.
func TestNegativeRetriesDisablesRetry(t *testing.T) {
	attempts := 0
	e := newTestEngine(t, Options{Retries: -1,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			attempts++
			return nil, Transient(errors.New("flaky"))
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

// TestPanicBecomesTypedFailure: a panicking runner fails its job with
// kind "panic" and the worker survives to run the next job.
func TestPanicBecomesTypedFailure(t *testing.T) {
	e := newTestEngine(t, Options{Workers: 1, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		if cfg.Seed == 7 {
			panic("boom")
		}
		return stubResult(id), nil
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error == nil || snap.Error.Kind != ErrKindPanic {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The single worker must still be alive to run this.
	cfg2 := testConfig()
	cfg2.Seed = 8
	j2, err := e.Submit("fig1", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if snap := waitTerminal(t, j2); snap.State != StateDone {
		t.Fatalf("post-panic job = %+v", snap)
	}
}

// TestInjectedPanicViaFaultPoint: the "jobs.run" fault point can panic
// the execution path itself; the engine contains it identically.
func TestInjectedPanicViaFaultPoint(t *testing.T) {
	defer faults.Reset()
	faults.Arm("jobs.run", faults.Injection{Panic: "injected", Count: 1})
	e := newTestEngine(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return stubResult(id), nil
	}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error.Kind != ErrKindPanic {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestWatchdogTimeout: an attempt exceeding JobTimeout fails with kind
// "timeout" — not "cancelled", which is reserved for the caller's verdict.
func TestWatchdogTimeout(t *testing.T) {
	e := newTestEngine(t, Options{JobTimeout: 20 * time.Millisecond,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateFailed || snap.Error == nil || snap.Error.Kind != ErrKindTimeout {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestWatchdogDoesNotMaskUserCancel: a cancel arriving while the
// watchdog is armed still reports as cancelled.
func TestWatchdogDoesNotMaskUserCancel(t *testing.T) {
	started := make(chan struct{})
	e := newTestEngine(t, Options{JobTimeout: time.Hour,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	e.Cancel(j.ID())
	snap := waitTerminal(t, j)
	if snap.State != StateCancelled || snap.Error.Kind != ErrKindCancelled {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestDrainWaitsForInFlight: Drain refuses new work, lets running jobs
// finish, and returns cleanly once they have.
func TestDrainWaitsForInFlight(t *testing.T) {
	journal := newTestJournal(t)
	started := make(chan struct{})
	release := make(chan struct{})
	e := newTestEngine(t, Options{Journal: journal,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			close(started)
			<-release
			return stubResult(id), nil
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	drained := make(chan error, 1)
	go func() { drained <- e.Drain(context.Background()) }()
	// Draining refuses new submissions (poll: the flag flips inside Drain).
	deadline := time.Now().Add(5 * time.Second)
	for !e.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Draining() never became true")
		}
		time.Sleep(time.Millisecond)
	}
	cfg2 := testConfig()
	cfg2.Seed = 8
	if _, err := e.Submit("fig1", cfg2); err == nil {
		t.Fatal("submit during drain succeeded")
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if snap := j.Snapshot(); snap.State != StateDone {
		t.Fatalf("drained job = %+v", snap)
	}
	if journal.Len() != 0 {
		t.Fatal("completed job still journaled after drain")
	}
}

// TestDrainDeadlineCancelsAndPreserves: past the deadline, Drain cancels
// what is left but keeps the journal entries — the next process resumes
// them.
func TestDrainDeadlineCancelsAndPreserves(t *testing.T) {
	journal := newTestJournal(t)
	started := make(chan struct{})
	e := newTestEngine(t, Options{Journal: journal,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	j, err := e.Submit("fig1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := e.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want deadline exceeded", err)
	}
	snap := waitTerminal(t, j)
	if snap.State != StateCancelled {
		t.Fatalf("snapshot = %+v", snap)
	}
	if journal.Len() != 1 {
		t.Fatal("drain-cancelled job lost its journal entry")
	}
}

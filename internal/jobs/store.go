package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/lru"
	"repro/internal/quarantine"
	"repro/internal/report"
)

// DefaultStoreCapacity bounds the result index when Open is given a
// non-positive capacity.
const DefaultStoreCapacity = 64

// ResultKey is the canonical, URL- and filename-safe identity of a run:
// {id}-{scale}-r{replicas}-s{seed} with the scale-default replica count
// resolved, so equivalent configurations collide. It is the store's
// content address: two configurations with the same key are guaranteed
// (by the determinism contract) to produce bit-identical results.
func ResultKey(id string, cfg experiments.Config) string {
	return fmt.Sprintf("%s-%s-r%d-s%d", id, cfg.Scale, cfg.EffectiveReplicas(), cfg.Seed)
}

// Store is a bounded, optionally disk-backed cache of completed results.
// The index is LRU-ordered via the shared intrusive doubly-linked list
// (internal/lru — the same machinery behind the replica ledger's GC):
// Get and Put are O(1) including eviction. With a directory configured,
// Put persists each result as {key}.json via write-to-temp + atomic
// rename, eviction unlinks the file, and Open rebuilds the index from
// the directory — so results survive process restarts and the directory
// never outgrows the configured capacity.
type Store struct {
	mu  sync.Mutex
	dir string // "" = memory-only
	cap int
	// idx values are nil for entries known only from the directory scan;
	// Get loads them lazily.
	idx *lru.List[string, *report.Result]

	// quarantined counts corrupt files moved aside (never deleted); see
	// internal/quarantine.
	quarantined atomic.Int64

	// hits/misses count Get outcomes since Open. Every submission probes
	// the store first, so these are the result-cache traffic counters the
	// stats and metrics endpoints report.
	hits   atomic.Int64
	misses atomic.Int64
}

// Open returns a Store holding at most capacity results (<= 0 picks
// DefaultStoreCapacity). dir "" keeps the store memory-only; otherwise
// the directory is created if needed and existing results are indexed in
// modification-time order (newest = most recently used), with anything
// beyond capacity evicted oldest-first. Leftover temp files from a
// crashed writer are quarantined; files that fail to parse are
// quarantined at read time rather than trusted (or deleted).
func Open(dir string, capacity int) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	s := &Store{dir: dir, cap: capacity, idx: lru.New[string, *report.Result]()}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: opening store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning store: %w", err)
	}
	type onDisk struct {
		key string
		mod int64
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// A writer crashed between create and rename; the torn file was
			// never published, so it cannot be served — but it is evidence
			// of the crash, so it is preserved in quarantine, not deleted.
			s.quarantineFile(name, "orphaned temp file from an interrupted write")
			continue
		}
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || key == "" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{key, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	for _, f := range found { // oldest first, so the newest ends up MRU
		s.idx.PushFront(f.key, nil)
	}
	s.evictOverCap()
	return s, nil
}

const tmpPrefix = ".tmp-"

// Dir reports the backing directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Len reports the number of indexed results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.idx.Len()
}

// Get returns the result stored under key, loading it from disk if the
// entry was indexed by Open but not yet read. A hit refreshes the entry's
// LRU position. A file that no longer parses is moved to quarantine
// (with a reason sidecar), dropped from the index and reported as a
// miss — so one corrupt file degrades that key to a recompute instead of
// wedging it, and the evidence survives for diagnosis.
func (s *Store) Get(key string) (*report.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx.Get(key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	if e.Value == nil {
		res, err := s.load(key)
		if err != nil {
			if !os.IsNotExist(err) {
				s.quarantineFile(key+".json", fmt.Sprintf("result failed to decode: %v", err))
			}
			s.remove(e, false)
			s.misses.Add(1)
			return nil, false
		}
		e.Value = res
	}
	s.idx.MoveToFront(e)
	s.hits.Add(1)
	return e.Value, true
}

// Hits reports how many Get calls were served from the store since
// Open.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses reports how many Get calls found nothing since Open.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Quarantined reports how many corrupt files this store has moved to
// quarantine since it was opened.
func (s *Store) Quarantined() int64 { return s.quarantined.Load() }

// quarantineFile moves one corrupt file aside and counts it; a failed
// move leaves the file in place for the next attempt — never a silent
// delete.
func (s *Store) quarantineFile(name, reason string) {
	if s.dir == "" {
		return
	}
	if err := quarantine.Move(s.dir, name, reason); err == nil {
		s.quarantined.Add(1)
	}
}

// Writable probes the backing directory for write access — the serve
// layer's readiness check. A memory-only store is always writable.
func (s *Store) Writable() error {
	if err := faults.Fire("store.probe"); err != nil {
		return err
	}
	if s.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+"probe-*")
	if err != nil {
		return fmt.Errorf("jobs: store %s not writable: %w", s.dir, err)
	}
	name := f.Name()
	f.Close()
	_ = os.Remove(name)
	return nil
}

// Put stores res under key, evicting the least recently used entries
// (and their files) beyond capacity. With a directory configured the
// result is also written to {key}.json atomically; the in-memory index
// is updated even if the disk write fails, and the write error is
// returned so callers can surface degraded durability. The file is
// published while the lock is held so it can never race a concurrent
// eviction's unlink and resurrect an evicted key on disk — writes are
// one small JSON file per completed job, so the hold is cheap.
func (s *Store) Put(key string, res *report.Result) error {
	if res == nil {
		return fmt.Errorf("jobs: refusing to store nil result under %q", key)
	}
	if strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		return fmt.Errorf("jobs: invalid result key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.idx.Get(key); ok {
		e.Value = res
		s.idx.MoveToFront(e)
	} else {
		s.idx.PushFront(key, res)
		s.evictOverCap()
	}
	if s.dir == "" {
		return nil
	}
	return s.persist(key, res)
}

// persist publishes res as {key}.json with write-to-temp + rename, so
// readers (including a future process) only ever observe complete files
// — unless the "store.write" fault point is armed, which can fail the
// write outright or tear it (publish a truncated file, simulating a
// filesystem that acknowledged a write it never completed).
func (s *Store) persist(key string, res *report.Result) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding result %q: %w", key, err)
	}
	b = append(b, '\n')
	b, injErr := faults.FireWrite("store.write", b)
	if injErr != nil {
		return fmt.Errorf("jobs: persisting result %q: %w", key, injErr)
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("jobs: persisting result %q: %w", key, err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), s.path(key))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("jobs: persisting result %q: %w", key, werr)
	}
	return nil
}

func (s *Store) load(key string) (*report.Result, error) {
	if err := faults.Fire("store.read"); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, err
	}
	var res report.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, fmt.Errorf("jobs: corrupt stored result %q: %w", key, err)
	}
	return &res, nil
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Keys lists the indexed keys from most to least recently used (tests
// and diagnostics).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.idx.Len())
	for e := s.idx.Front(); e != nil; e = e.Next() {
		out = append(out, e.Key)
	}
	return out
}

// remove unlinks e from the index; dropFile also unlinks its on-disk
// form so eviction bounds the directory, not just memory. Callers hold
// s.mu.
func (s *Store) remove(e *lru.Entry[string, *report.Result], dropFile bool) {
	s.idx.Remove(e)
	if dropFile && s.dir != "" {
		_ = os.Remove(s.path(e.Key))
	}
}

func (s *Store) evictOverCap() {
	for s.idx.Len() > s.cap {
		s.remove(s.idx.Back(), true)
	}
}

package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/quarantine"
)

// TestStoreTornWriteQuarantinedOnReread: a torn result write (published
// truncated via the "store.write" fault point) degrades to a miss on the
// next read, moves to quarantine with a reason, and the key accepts a
// healthy re-put.
func TestStoreTornWriteQuarantinedOnReread(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm("store.write", faults.Injection{Truncate: true, TruncateAt: 12, Count: 1})
	if err := s.Put("fig1-test-r1-s7", stubResult("fig1")); err != nil {
		t.Fatalf("torn put surfaced an error (the write was acknowledged): %v", err)
	}

	// The successor process: the file is indexed by the scan, then fails
	// to decode on first read.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("fig1-test-r1-s7"); ok {
		t.Fatal("torn result served")
	}
	if s2.Quarantined() != 1 || quarantine.Count(dir) != 1 {
		t.Fatalf("quarantined = %d, on disk = %d, want 1 and 1", s2.Quarantined(), quarantine.Count(dir))
	}
	if reason := quarantine.Reason(dir, "fig1-test-r1-s7.json"); !strings.Contains(reason, "decode") {
		t.Fatalf("reason = %q", reason)
	}

	// Not wedged: re-put and reopen serve normally.
	if err := s2.Put("fig1-test-r1-s7", stubResult("fig1")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res, ok := s3.Get("fig1-test-r1-s7"); !ok || res.Experiment != "fig1" {
		t.Fatalf("re-put after quarantine: ok=%v res=%+v", ok, res)
	}
}

// TestStoreQuarantinesOrphanedTemp: a temp file left by a crashed writer
// is quarantined by the next Open, not deleted and not indexed.
func TestStoreQuarantinesOrphanedTemp(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"fig1-xyz"), []byte(`{"exp`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("orphaned temp file indexed: len %d", s.Len())
	}
	if s.Quarantined() != 1 || quarantine.Count(dir) != 1 {
		t.Fatalf("quarantined = %d, on disk = %d", s.Quarantined(), quarantine.Count(dir))
	}
}

// TestStoreInjectedWriteErrorSurfaces: a hard persist failure reaches
// the caller while the result still serves from memory.
func TestStoreInjectedWriteErrorSurfaces(t *testing.T) {
	defer faults.Reset()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm("store.write", faults.Injection{Err: errors.New("device offline"), Count: 1})
	if err := s.Put("fig1-test-r1-s7", stubResult("fig1")); err == nil {
		t.Fatal("injected write error did not surface")
	}
	if _, ok := s.Get("fig1-test-r1-s7"); !ok {
		t.Fatal("result lost from memory after failed persist")
	}
}

// TestStoreWritableProbe: readiness probe on a healthy directory and
// through the "store.probe" fault point.
func TestStoreWritableProbe(t *testing.T) {
	defer faults.Reset()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Writable(); err != nil {
		t.Fatalf("healthy store not writable: %v", err)
	}
	faults.Arm("store.probe", faults.Injection{})
	if err := s.Writable(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("probe fault not surfaced: %v", err)
	}
	faults.Reset()
	files, _ := os.ReadDir(s.Dir())
	for _, f := range files {
		if strings.HasPrefix(f.Name(), tmpPrefix) {
			t.Fatalf("probe left %s behind", f.Name())
		}
	}
}

// TestStoreQuarantineIsInvisibleToReindex: once a corrupt file is
// quarantined, reopening the directory must not resurrect it.
func TestStoreQuarantineIsInvisibleToReindex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad-key.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("bad-key"); ok {
		t.Fatal("corrupt result served")
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("quarantined file re-indexed: len %d", s2.Len())
	}
	if _, ok := s2.Get("bad-key"); ok {
		t.Fatal("quarantined result served after reopen")
	}
}

package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/report"
)

func stubResult(id string) *report.Result {
	tb := report.New("stub", "k", "v")
	tb.AddCells(report.Str(id), report.Float(1.25, 2).WithUnit("%"))
	return &report.Result{Experiment: id, Title: "stub " + id, Kind: report.KindTable,
		Config: report.ConfigEcho{Scale: "test", Replicas: 1, Seed: 7}, Tables: []*report.Table{tb}}
}

func TestResultKeyResolvesDefaults(t *testing.T) {
	cfg := experiments.Config{Scale: data.ScaleTest, Seed: 7}
	if key := ResultKey("fig5", cfg); key != "fig5-test-r3-s7" {
		t.Fatalf("key = %q", key)
	}
	cfg.Replicas = 9
	if key := ResultKey("fig5", cfg); key != "fig5-test-r9-s7" {
		t.Fatalf("key = %q", key)
	}
}

// TestStoreLRUEviction pins the extracted LRU's behavior: capacity is
// enforced, a Get refreshes recency, and eviction drops both the index
// entry and the on-disk file.
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		if err := s.Put(k, stubResult(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("a"); !ok { // refresh a; b becomes the eviction candidate
		t.Fatal("a missing")
	}
	if err := s.Put("c", stubResult("c")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, "b.json")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry's file still on disk (err = %v)", err)
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Fatalf("%s.json missing: %v", k, err)
		}
	}
	if got := s.Keys(); len(got) != 2 || got[0] != "c" || got[1] != "a" {
		t.Fatalf("LRU order = %v, want [c a]", got)
	}
}

// TestStoreMemoryOnly proves dir "" never touches the filesystem API
// paths and still enforces the LRU contract.
func TestStoreMemoryOnly(t *testing.T) {
	s, err := Open("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", stubResult("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", stubResult("b")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if res, ok := s.Get("b"); !ok || res.Experiment != "b" {
		t.Fatalf("b = %+v, %v", res, ok)
	}
}

// TestStoreReopenRoundTrip is the durability core: results written by
// one Store are served — bit-identically through the JSON round trip —
// by a second Store opened on the same directory, newest first.
func TestStoreReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := stubResult("fig1")
	if err := s.Put("fig1-test-r1-s7", want); err != nil {
		t.Fatal(err)
	}
	// Different mtimes order the reopened index.
	old := time.Now().Add(-time.Hour)
	if err := s.Put("fig2-test-r1-s7", stubResult("fig2")); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(filepath.Join(dir, "fig2-test-r1-s7.json"), old, old); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened len = %d, want 2", re.Len())
	}
	if keys := re.Keys(); keys[0] != "fig1-test-r1-s7" {
		t.Fatalf("newest file should be MRU after reopen, got order %v", keys)
	}
	got, ok := re.Get("fig1-test-r1-s7")
	if !ok {
		t.Fatal("persisted result missing after reopen")
	}
	wantJSON := renderJSON(t, want)
	if gotJSON := renderJSON(t, got); gotJSON != wantJSON {
		t.Fatalf("round-tripped result differs:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

// TestStoreReopenEvictsBeyondCapacity: opening with a smaller capacity
// keeps the newest results and deletes the rest from disk.
func TestStoreReopenEvictsBeyondCapacity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"k0", "k1", "k2"} {
		if err := s.Put(k, stubResult(k)); err != nil {
			t.Fatal(err)
		}
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, k+".json"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("len = %d, want 2", re.Len())
	}
	if _, ok := re.Get("k0"); ok {
		t.Fatal("oldest result should have been evicted at reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, "k0.json")); !os.IsNotExist(err) {
		t.Fatalf("evicted file still present (err = %v)", err)
	}
}

// TestStoreIgnoresGarbage: leftover temp files are cleaned at open, and
// a corrupt published file is a miss, not a crash.
func TestStoreIgnoresGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"x-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"x-123")); !os.IsNotExist(err) {
		t.Fatalf("temp file survived open (err = %v)", err)
	}
	if _, ok := s.Get("bad"); ok {
		t.Fatal("corrupt file served as a result")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after dropping corrupt entry, want 0", s.Len())
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"../escape", "a/b", ".hidden"} {
		if err := s.Put(k, stubResult("x")); err == nil {
			t.Errorf("key %q accepted", k)
		}
	}
	if err := s.Put("ok", nil); err == nil {
		t.Error("nil result accepted")
	}
}

func renderJSON(t *testing.T, res *report.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

package ledger

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/quarantine"
)

// TestTornWriteQuarantinedOnReread simulates the headline crash: a
// filesystem acknowledges a record write it never completed (the
// "ledger.write" fault point truncates the payload mid-record), the
// process dies, and a successor opens the directory. The torn record
// must degrade to a miss, move to quarantine with a reason — never a
// silent delete — and the key must accept a fresh, bit-identical re-put.
func TestTornWriteQuarantinedOnReread(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm("ledger.write", faults.Injection{Truncate: true, TruncateAt: 10, Count: 1})
	if err := l.Put("c", 0, fakeResult(0)); err != nil {
		t.Fatalf("torn put surfaced an error (the write was acknowledged): %v", err)
	}
	// The truncated record was published under the real name.
	if fi, err := os.Stat(l.path(stem("c", 0))); err != nil || fi.Size() != 10 {
		t.Fatalf("torn record: %v, size %d", err, fi.Size())
	}

	// The successor process.
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l2.Get("c", 0); ok {
		t.Fatal("torn record served")
	}
	if l2.Quarantined() != 1 || quarantine.Count(dir) != 1 {
		t.Fatalf("quarantined = %d, on disk = %d, want 1 and 1", l2.Quarantined(), quarantine.Count(dir))
	}
	name := stem("c", 0) + fileExt
	if reason := quarantine.Reason(dir, name); !strings.Contains(reason, "decode") {
		t.Fatalf("reason = %q", reason)
	}

	// The key is not wedged: a healthy re-put round-trips bit-exactly
	// across another reopen.
	if err := l2.Put("c", 0, fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := l3.Get("c", 0)
	if !ok || !got.Equal(fakeResult(0)) {
		t.Fatalf("re-put after quarantine: ok=%v res=%+v", ok, got)
	}
	// The quarantined evidence is still there.
	if quarantine.Count(dir) != 1 {
		t.Fatalf("quarantine count after recovery = %d", quarantine.Count(dir))
	}
}

// TestCrashBetweenTempAndRename: a writer that died before publishing
// leaves a temp file; the next Open quarantines it as crash evidence
// instead of deleting it, and never serves it.
func TestCrashBetweenTempAndRename(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"record-123"), []byte("half a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("orphaned temp file indexed: len %d", l.Len())
	}
	if l.Quarantined() != 1 || quarantine.Count(dir) != 1 {
		t.Fatalf("quarantined = %d, on disk = %d", l.Quarantined(), quarantine.Count(dir))
	}
}

// TestInjectedWriteErrorSurfaces: a hard write failure (not a torn
// write) propagates to the caller so degraded durability is visible.
func TestInjectedWriteErrorSurfaces(t *testing.T) {
	defer faults.Reset()
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm("ledger.write", faults.Injection{Err: errors.New("device offline"), Count: 1})
	if err := l.Put("c", 0, fakeResult(0)); err == nil {
		t.Fatal("injected write error did not surface")
	}
	// The record still serves from memory (durability degraded, not
	// correctness), and the next put persists.
	if _, ok := l.Get("c", 0); !ok {
		t.Fatal("record lost from memory after failed persist")
	}
}

// TestWritableProbe: the readiness probe passes on a healthy directory
// and fails through the "ledger.probe" fault point.
func TestWritableProbe(t *testing.T) {
	defer faults.Reset()
	l, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Writable(); err != nil {
		t.Fatalf("healthy ledger not writable: %v", err)
	}
	faults.Arm("ledger.probe", faults.Injection{})
	if err := l.Writable(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("probe fault not surfaced: %v", err)
	}
	faults.Reset()
	// The probe leaves no debris behind.
	files, _ := os.ReadDir(l.Dir())
	for _, f := range files {
		if strings.HasPrefix(f.Name(), tmpPrefix) {
			t.Fatalf("probe left %s behind", f.Name())
		}
	}
}

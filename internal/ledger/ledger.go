// Package ledger is the replica-granular training ledger: a bounded,
// optionally disk-backed store of trained replica outcomes
// (core.RunResult), keyed by (cell key, replica index). The cell key is a
// population's full resolved identity *without* its replica count, so a
// 5-replica and a 30-replica population over the same cell address the
// same records — populations of different sizes share prefixes, and a
// request only ever pays for the replica indices the ledger has never
// seen.
//
// With a directory configured, every Put also persists the replica as a
// checkpoint record (write-to-temp + atomic rename, content checksum) and
// Open rebuilds the index from the directory in modification-time order —
// a restarted process serves every replica it has ever trained without
// retraining any of them. Eviction is LRU beyond the configured capacity
// and unlinks the on-disk record, so the directory never outgrows the
// bound either.
//
// Determinism contract: a replica's outcome is fully determined by its
// cell key and index, so a record served from disk is bit-identical to
// retraining it — the codec round-trips every float by bit pattern and
// the decoder verifies the content checksum before serving.
//
// Corruption degrades, it never destroys: a record that fails to decode
// (torn write, bit rot) or carries an unparseable name is moved to a
// quarantine/ subdirectory with a reason sidecar (internal/quarantine),
// counted via Quarantined, and treated as a cache miss — the replica
// retrains bit-identically and the evidence survives for diagnosis.
//
// A Ledger is safe for concurrent use.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lru"
	"repro/internal/quarantine"
)

// DefaultCapacity bounds retained replicas when Open is given a
// non-positive capacity: enough for every registered paper artifact at
// the paper's 10-replica populations with room for custom grids.
const DefaultCapacity = 1024

// fileExt is the on-disk record suffix.
const fileExt = ".nnr"

// tmpPrefix marks in-progress writes; leftovers from a crashed writer
// were never published and are quarantined on Open.
const tmpPrefix = ".tmp-"

// entry is one indexed replica. cell is "" and res nil for records known
// only from the directory scan; Get loads and verifies them lazily.
type entry struct {
	cell    string
	replica int
	res     *core.RunResult
}

// Ledger is the replica store. See the package comment for semantics.
type Ledger struct {
	mu  sync.Mutex
	dir string // "" = memory-only
	cap int
	idx *lru.List[string, *entry]

	// trains counts replicas recorded via Put since open; restart tests
	// use deltas to prove a warm ledger trains only what it has never seen.
	trains atomic.Int64

	// quarantined counts records moved aside (never deleted) because they
	// failed to decode or carried an unparseable name — the observable
	// trace of corruption the ledger degraded around.
	quarantined atomic.Int64

	// hits and misses count Get outcomes since open (a record that fails
	// to load or collides counts as a miss — the caller retrains either
	// way). The stats endpoint exposes them so operators can see how much
	// of a workload the ledger is absorbing.
	hits, misses atomic.Int64
}

// Memory returns a memory-only ledger (capacity <= 0 picks
// DefaultCapacity). It cannot fail: there is no directory to scan.
func Memory(capacity int) *Ledger {
	l, _ := Open("", capacity)
	return l
}

// Open returns a ledger over dir holding at most capacity replicas
// (<= 0 picks DefaultCapacity; list/GC tooling passes a huge capacity to
// index everything). dir "" keeps the ledger memory-only; otherwise the
// directory is created if needed and existing records are indexed in
// modification-time order (newest = most recently used), with anything
// beyond capacity evicted oldest-first.
func Open(dir string, capacity int) (*Ledger, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	l := &Ledger{dir: dir, cap: capacity, idx: lru.New[string, *entry]()}
	if dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ledger: opening %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ledger: scanning %s: %w", dir, err)
	}
	type onDisk struct {
		stem    string
		replica int
		mod     int64
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// A writer crashed between create and rename; the torn file was
			// never published, so it cannot be served — but it is evidence
			// of the crash, so it is preserved in quarantine, not deleted.
			l.quarantineFile(name, "orphaned temp file from an interrupted write")
			continue
		}
		stem, ok := strings.CutSuffix(name, fileExt)
		if !ok {
			continue
		}
		rep, ok := replicaFromStem(stem)
		if !ok {
			// A .nnr file whose name does not parse can never be addressed;
			// move it aside so the corruption is visible and counted.
			l.quarantineFile(name, "unparseable record name")
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, onDisk{stem, rep, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mod < found[j].mod })
	for _, f := range found { // oldest first, so the newest ends up MRU
		l.idx.PushFront(f.stem, &entry{replica: f.replica})
	}
	l.evictOverCap()
	return l, nil
}

// stem is the index key and on-disk filename stem of one record:
// a 16-hex digest of the cell key plus the replica index. The digest
// keeps arbitrary cell keys (spaces, pipes) filename-safe; the full cell
// string is stored inside the record and verified on load, so a digest
// collision degrades to a cache miss, never to serving the wrong replica.
func stem(cell string, replica int) string {
	sum := sha256.Sum256([]byte(cell))
	return hex.EncodeToString(sum[:8]) + "-r" + strconv.Itoa(replica)
}

// replicaFromStem parses the replica index back out of a filename stem.
func replicaFromStem(s string) (int, bool) {
	i := strings.LastIndex(s, "-r")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(s[i+2:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Dir reports the backing directory ("" when memory-only).
func (l *Ledger) Dir() string { return l.dir }

// Len reports the number of indexed replicas.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.idx.Len()
}

// Trains reports how many replicas have been recorded via Put since the
// ledger was opened.
func (l *Ledger) Trains() int64 { return l.trains.Load() }

// Quarantined reports how many corrupt records this ledger has moved to
// quarantine since it was opened (reindex and read-time failures both
// count). The files themselves sit under Dir()/quarantine with a reason
// sidecar each.
func (l *Ledger) Quarantined() int64 { return l.quarantined.Load() }

// quarantineFile moves one corrupt file aside and counts it; a failed
// move falls back to leaving the file in place (it will be skipped or
// re-quarantined next time — never silently deleted).
func (l *Ledger) quarantineFile(name, reason string) {
	if l.dir == "" {
		return
	}
	if err := quarantine.Move(l.dir, name, reason); err == nil {
		l.quarantined.Add(1)
	}
}

// Writable probes the backing directory for write access — the serve
// layer's readiness check. A memory-only ledger is always writable.
func (l *Ledger) Writable() error {
	if err := faults.Fire("ledger.probe"); err != nil {
		return err
	}
	if l.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(l.dir, tmpPrefix+"probe-*")
	if err != nil {
		return fmt.Errorf("ledger: %s not writable: %w", l.dir, err)
	}
	name := f.Name()
	f.Close()
	_ = os.Remove(name)
	return nil
}

// Get returns the replica stored under (cell, index), loading and
// checksum-verifying it from disk if it was indexed by Open but not yet
// read. A hit refreshes the record's LRU position. A record that fails
// to load, or whose stored cell key does not match (digest collision),
// is dropped from the index and reported as a miss; a corrupt file is
// moved to quarantine (with a reason sidecar) rather than deleted, so
// one bad record degrades to a retrain, never to lost evidence.
func (l *Ledger) Get(cell string, replica int) (*core.RunResult, bool) {
	key := stem(cell, replica)
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.idx.Get(key)
	if !ok {
		l.misses.Add(1)
		return nil, false
	}
	if e.Value.res == nil {
		gotCell, res, err := l.load(key)
		if err != nil {
			if !os.IsNotExist(err) {
				// Corrupt (torn write, bit rot, checksum mismatch): keep the
				// file for diagnosis, drop the index entry, report a miss.
				l.quarantineFile(key+fileExt, fmt.Sprintf("record failed to decode: %v", err))
			}
			l.remove(e, false)
			l.misses.Add(1)
			return nil, false
		}
		e.Value.cell, e.Value.replica, e.Value.res = gotCell, res.Replica, res
	}
	if e.Value.cell != cell || e.Value.replica != replica {
		l.misses.Add(1)
		return nil, false // digest collision: the record belongs to another cell
	}
	l.idx.MoveToFront(e)
	l.hits.Add(1)
	return e.Value.res, true
}

// Hits reports how many Get calls were served from the ledger since it
// was opened.
func (l *Ledger) Hits() int64 { return l.hits.Load() }

// Misses reports how many Get calls found nothing servable (absent,
// unloadable, or colliding records all count) since the ledger was
// opened.
func (l *Ledger) Misses() int64 { return l.misses.Load() }

// Has reports whether (cell, index) is indexed, without loading it or
// refreshing its recency — the estimate path's peek.
func (l *Ledger) Has(cell string, replica int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.idx.Get(stem(cell, replica))
	return ok
}

// Warm counts how many of a population's first n replica indices are
// already indexed — the "cache credit" a request for n replicas over
// this cell would get.
func (l *Ledger) Warm(cell string, n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	warm := 0
	for i := 0; i < n; i++ {
		if _, ok := l.idx.Get(stem(cell, i)); ok {
			warm++
		}
	}
	return warm
}

// Put records a trained replica under (cell, index), evicting the least
// recently used records (and their files) beyond capacity. With a
// directory configured the record is also persisted atomically; the
// in-memory index is updated even if the disk write fails, and the write
// error is returned so callers can surface degraded durability.
func (l *Ledger) Put(cell string, replica int, res *core.RunResult) error {
	if res == nil {
		return fmt.Errorf("ledger: refusing to store nil replica %d of %q", replica, cell)
	}
	key := stem(cell, replica)
	// Encode before taking the lock: serializing a weight vector is the
	// CPU-heavy part of a Put, and concurrent replica resolutions must not
	// serialize behind it.
	var buf bytes.Buffer
	var encErr error
	if l.dir != "" {
		encErr = checkpoint.EncodeResult(&buf, cell, res)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.idx.Get(key); ok {
		e.Value.cell, e.Value.res = cell, res
		l.idx.MoveToFront(e)
	} else {
		l.idx.PushFront(key, &entry{cell: cell, replica: replica, res: res})
		l.evictOverCap()
	}
	l.trains.Add(1)
	if l.dir == "" {
		return nil
	}
	if encErr != nil {
		return fmt.Errorf("ledger: persisting %s: %w", key, encErr)
	}
	// Publish (write + rename) while the lock is held so a concurrent
	// eviction's unlink can never race the rename and resurrect an evicted
	// record on disk.
	return l.persist(key, buf.Bytes())
}

// persist publishes an encoded record as {stem}.nnr with write-to-temp +
// rename, so readers (including a future process) only ever observe
// complete, checksummed files — unless the "ledger.write" fault point is
// armed, which can fail the write outright or tear it (publish a
// truncated record, simulating a filesystem that acknowledged a write it
// never completed). Callers hold l.mu.
func (l *Ledger) persist(key string, record []byte) error {
	record, injErr := faults.FireWrite("ledger.write", record)
	if injErr != nil {
		return fmt.Errorf("ledger: persisting %s: %w", key, injErr)
	}
	tmp, err := os.CreateTemp(l.dir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("ledger: persisting %s: %w", key, err)
	}
	_, werr := tmp.Write(record)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), l.path(key))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("ledger: persisting %s: %w", key, werr)
	}
	return nil
}

func (l *Ledger) load(key string) (string, *core.RunResult, error) {
	if err := faults.Fire("ledger.read"); err != nil {
		return "", nil, err
	}
	f, err := os.Open(l.path(key))
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	return checkpoint.DecodeResult(f)
}

func (l *Ledger) path(key string) string { return filepath.Join(l.dir, key+fileExt) }

// remove unlinks e from the index; dropFile also removes its on-disk form.
// Callers hold l.mu.
func (l *Ledger) remove(e *lru.Entry[string, *entry], dropFile bool) {
	l.idx.Remove(e)
	if dropFile && l.dir != "" {
		_ = os.Remove(l.path(e.Key))
	}
}

func (l *Ledger) evictOverCap() {
	for l.idx.Len() > l.cap {
		l.remove(l.idx.Back(), true)
	}
}

// GC evicts the least recently used records beyond keep (files included)
// and returns how many were removed. `nnrand ledger gc` is a thin wrapper
// over this; the same machinery runs implicitly on every Put.
func (l *Ledger) GC(keep int) int {
	if keep < 0 {
		keep = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for l.idx.Len() > keep {
		l.remove(l.idx.Back(), true)
		removed++
	}
	return removed
}

// Reset drops the in-memory index (files are untouched). Tests use it to
// simulate a cold process over a warm directory.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.idx = lru.New[string, *entry]()
}

// Info describes one indexed replica for listings.
type Info struct {
	// Cell is the population identity the replica belongs to.
	Cell string
	// Replica is the index within the population.
	Replica int
	// TestAccuracy is the replica's recorded test accuracy.
	TestAccuracy float64
	// Bytes is the on-disk record size (0 when memory-only or unreadable).
	Bytes int64
	// Loaded reports whether the full record is resident in memory.
	Loaded bool
}

// Entries lists every indexed replica from most to least recently used.
// Records not yet resident have only their headers read from disk (cheap:
// no weight vectors); records whose files have vanished or gone
// unreadable are listed with what the index still knows.
func (l *Ledger) Entries() []Info {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Info, 0, l.idx.Len())
	for e := l.idx.Front(); e != nil; e = e.Next() {
		info := Info{Cell: e.Value.cell, Replica: e.Value.replica, Loaded: e.Value.res != nil}
		if e.Value.res != nil {
			info.TestAccuracy = e.Value.res.TestAccuracy
		}
		if l.dir != "" {
			if st, err := os.Stat(l.path(e.Key)); err == nil {
				info.Bytes = st.Size()
			}
			if e.Value.res == nil {
				if cell, res, err := l.header(e.Key); err == nil {
					info.Cell, info.Replica, info.TestAccuracy = cell, res.Replica, res.TestAccuracy
				}
			}
		}
		out = append(out, info)
	}
	return out
}

func (l *Ledger) header(key string) (string, *core.RunResult, error) {
	f, err := os.Open(l.path(key))
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	return checkpoint.DecodeResultHeader(f)
}

package ledger

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// fakeResult builds a deterministic, structurally interesting RunResult.
func fakeResult(replica int) *core.RunResult {
	return &core.RunResult{
		Variant:      core.Impl,
		Replica:      replica,
		TestAccuracy: 0.75 + float64(replica)/1000,
		Predictions:  []int{0, 3, 1, replica % 7},
		Weights:      []float32{0.5, -1.25, float32(replica), float32(math.Pi)},
		EpochLoss:    []float64{2.3, 1.1, 0.4 + float64(replica)},
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	l := Memory(0)
	if _, ok := l.Get("cell-a", 0); ok {
		t.Fatal("empty ledger reported a hit")
	}
	want := fakeResult(0)
	if err := l.Put("cell-a", 0, want); err != nil {
		t.Fatal(err)
	}
	got, ok := l.Get("cell-a", 0)
	if !ok || !got.Equal(want) {
		t.Fatalf("round trip: ok=%v res=%+v", ok, got)
	}
	if _, ok := l.Get("cell-a", 1); ok {
		t.Fatal("missing replica index reported a hit")
	}
	if _, ok := l.Get("cell-b", 0); ok {
		t.Fatal("missing cell reported a hit")
	}
	if l.Warm("cell-a", 3) != 1 {
		t.Fatalf("warm = %d, want 1", l.Warm("cell-a", 3))
	}
}

func TestDiskRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Put("cell|with spaces|and-pipes", i, fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh ledger over the same directory serves everything bit-exactly.
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 3 {
		t.Fatalf("reopened ledger indexes %d records, want 3", l2.Len())
	}
	for i := 0; i < 3; i++ {
		got, ok := l2.Get("cell|with spaces|and-pipes", i)
		if !ok || !got.Equal(fakeResult(i)) {
			t.Fatalf("replica %d after reopen: ok=%v res=%+v", i, ok, got)
		}
	}
	if l2.Trains() != 0 {
		t.Fatalf("reopened ledger counts %d trains, want 0 (nothing recorded)", l2.Trains())
	}
	if got := l2.Warm("cell|with spaces|and-pipes", 10); got != 3 {
		t.Fatalf("warm = %d, want 3", got)
	}
}

func TestEvictionBoundsDirectory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Put("c", i, fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 2 {
		t.Fatalf("capacity-2 ledger holds %d", l.Len())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+fileExt))
	if len(files) != 2 {
		t.Fatalf("directory holds %d record files, want 2 (eviction must unlink)", len(files))
	}
	// The two newest survive; the oldest were evicted.
	for i := 0; i < 2; i++ {
		if _, ok := l.Get("c", i); ok {
			t.Fatalf("evicted replica %d still served", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := l.Get("c", i); !ok {
			t.Fatalf("retained replica %d missing", i)
		}
	}
}

func TestCorruptRecordIsDroppedNotServed(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, 0)
	if err := l.Put("c", 0, fakeResult(0)); err != nil {
		t.Fatal(err)
	}
	path := l.path(stem("c", 0))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a checksum byte
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l2.Get("c", 0); ok {
		t.Fatal("corrupt record served")
	}
	if l2.Len() != 0 {
		t.Fatalf("corrupt record still indexed: len %d", l2.Len())
	}
}

func TestGCRemovesColdRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, 0)
	for i := 0; i < 5; i++ {
		if err := l.Put("c", i, fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch replica 0 so it is MRU and survives.
	if _, ok := l.Get("c", 0); !ok {
		t.Fatal("replica 0 missing pre-GC")
	}
	if removed := l.GC(2); removed != 3 {
		t.Fatalf("GC removed %d, want 3", removed)
	}
	if _, ok := l.Get("c", 0); !ok {
		t.Fatal("MRU record evicted by GC")
	}
	if _, ok := l.Get("c", 4); !ok {
		t.Fatal("second-warmest record evicted by GC")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+fileExt))
	if len(files) != 2 {
		t.Fatalf("post-GC directory holds %d files, want 2", len(files))
	}
}

func TestEntriesReadHeadersLazily(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, 0)
	if err := l.Put("the-cell", 1, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	l2, _ := Open(dir, 0)
	infos := l2.Entries()
	if len(infos) != 1 {
		t.Fatalf("entries = %d, want 1", len(infos))
	}
	in := infos[0]
	if in.Cell != "the-cell" || in.Replica != 1 || in.Bytes == 0 || in.Loaded {
		t.Fatalf("info = %+v (cell/replica must come from the header without loading)", in)
	}
	if in.TestAccuracy != fakeResult(1).TestAccuracy {
		t.Fatalf("header accuracy = %v", in.TestAccuracy)
	}
}

func TestTrainsCounter(t *testing.T) {
	l := Memory(0)
	for i := 0; i < 3; i++ {
		if err := l.Put("c", i, fakeResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Trains() != 3 {
		t.Fatalf("trains = %d, want 3", l.Trains())
	}
}

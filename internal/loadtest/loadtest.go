// Package loadtest is the serving benchmark harness behind
// `nnrand loadtest`: a deterministic load generator that replays a
// mixed grid/job/result workload against a running server and reports
// per-route latency quantiles, throughput, cache hit rate and shed
// counts at several concurrency levels — the numbers BENCH_server.json
// publishes for the serving path the way BENCH_baseline.json does for
// the kernels.
//
// Discipline (imported from satnet-simulator's trial runner): every
// claim comes from a scripted, repeatable trial. The generator is
// seeded — each client derives its operation sequence from
// (Seed, level, client index) — so two runs against the same server
// issue the same requests in the same per-client order, and the typed
// Report round-trips through JSON so CI can assert on it. Before
// measuring, a warmup phase submits the canned grid once and waits for
// it to finish, so the measured traffic exercises the serving path
// (store hits, ledger reads, admission) rather than training speed; the
// warmup's own requests are reported separately so request accounting
// stays exact.
//
// Latencies are measured client-side around the full HTTP round trip
// with the same fixed-bucket histograms the server's telemetry uses
// (internal/telemetry), so client p50/p99 and server p50/p99 are
// directly comparable.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/telemetry"
)

// Route labels for the three operation kinds, matching the server's
// telemetry labels exactly so client-side counts can be checked against
// server-side counters.
const (
	RouteGrid   = "POST /v1/grid"
	RouteJob    = "GET /v1/jobs/{id}"
	RouteResult = "GET /v1/results/{key}"
)

// Mix weights the three operation kinds. The flag form is
// "G:J:R" (grid:job:result), e.g. "4:2:4".
type Mix struct {
	// Grid is the weight of POST /v1/grid submissions (served cached
	// after warmup).
	Grid int `json:"grid"`
	// Job is the weight of GET /v1/jobs/{id} status polls.
	Job int `json:"job"`
	// Result is the weight of GET /v1/results/{key} fetches.
	Result int `json:"result"`
}

// ParseMix parses the "G:J:R" flag form; weights are non-negative and
// at least one must be positive.
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return Mix{}, fmt.Errorf("loadtest: mix %q: want grid:job:result, e.g. 4:2:4", s)
	}
	var w [3]int
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &w[i]); err != nil {
			return Mix{}, fmt.Errorf("loadtest: mix %q: %q is not an integer", s, p)
		}
		if w[i] < 0 {
			return Mix{}, fmt.Errorf("loadtest: mix %q: negative weight", s)
		}
	}
	m := Mix{Grid: w[0], Job: w[1], Result: w[2]}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadtest: mix %q: all weights zero", s)
	}
	return m, nil
}

func (m Mix) total() int { return m.Grid + m.Job + m.Result }

// String renders the canonical flag form.
func (m Mix) String() string { return fmt.Sprintf("%d:%d:%d", m.Grid, m.Job, m.Result) }

// pick maps one draw from rng onto an operation kind.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total())
	if n < m.Grid {
		return RouteGrid
	}
	if n < m.Grid+m.Job {
		return RouteJob
	}
	return RouteResult
}

// Options configures one loadtest run.
type Options struct {
	// Addr is the server base URL, e.g. "http://127.0.0.1:8080".
	Addr string
	// Levels are the concurrent client counts to measure, in order
	// (the benchmark convention is 1, 4, 16).
	Levels []int
	// Duration bounds each level's measurement window (ignored when
	// Requests is set).
	Duration time.Duration
	// Requests, when positive, has each client issue exactly this many
	// requests per level instead of running for Duration — the fully
	// deterministic mode CI and tests use.
	Requests int
	// Mix weights grid/job/result operations.
	Mix Mix
	// Seed anchors every client's operation sequence.
	Seed uint64
	// Spec is the canned grid the workload replays. Scale/Replicas ride
	// along in the submission body.
	Spec     grid.Spec
	Scale    string
	Replicas int
	// Client overrides the HTTP client (nil builds one sized for the
	// largest level so connection reuse, not dialing, is measured).
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Report is the typed BENCH_server.json document.
type Report struct {
	// Tool identifies the generator ("nnrand loadtest").
	Tool string `json:"tool"`
	// Addr is the target server.
	Addr string `json:"addr"`
	// GridID is the canned grid's canonical identity.
	GridID string `json:"grid_id"`
	// Key is the canned grid's result key (what warmup completed and
	// the result fetches read); JobID is the warm job status polls hit.
	Key   string `json:"key"`
	JobID string `json:"job_id"`
	// Mix echoes the operation weights ("grid:job:result").
	Mix string `json:"mix"`
	// Seed echoes the generator seed.
	Seed uint64 `json:"seed"`
	// Warmup accounts the pre-measurement requests per route, so
	// server-side counters reconcile exactly with the report.
	Warmup map[string]int64 `json:"warmup"`
	// Levels holds one entry per concurrency level, in run order.
	Levels []Level `json:"levels"`
}

// Level is one concurrency level's measurement.
type Level struct {
	// Clients is the number of concurrent clients.
	Clients int `json:"clients"`
	// DurationSeconds is the measured wall time of the level.
	DurationSeconds float64 `json:"duration_seconds"`
	// Requests counts completed requests (transport errors excluded).
	Requests int64 `json:"requests"`
	// RPS is Requests / DurationSeconds.
	RPS float64 `json:"rps"`
	// TransportErrors counts requests that never produced a status.
	TransportErrors int64 `json:"transport_errors"`
	// CacheHits counts grid submissions answered from the result store
	// (the response's cached flag); CacheHitRate is CacheHits over grid
	// submissions.
	CacheHits    int64   `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Rejected counts 429s (admission: budget or rate); Shed counts
	// 503s (backpressure: queue full or draining); ServerErrors counts
	// other 5xx — the count CI pins to zero.
	Rejected     int64 `json:"rejected"`
	Shed         int64 `json:"shed"`
	ServerErrors int64 `json:"server_errors"`
	// Routes breaks the level down per route with latency quantiles.
	Routes []RouteReport `json:"routes"`
}

// RouteReport is one route's share of a level.
type RouteReport struct {
	Route    string  `json:"route"`
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// Status maps "2xx".."5xx" classes to counts.
	Status map[string]int64 `json:"status,omitempty"`
}

// routeTrack accumulates one route's measurements during a level.
// Refusals get exact tallies (429/503 are the admission signals the
// report is for); everything else is tracked by status class.
type routeTrack struct {
	requests atomic.Int64
	status   [5]atomic.Int64
	rejected atomic.Int64 // 429
	shed     atomic.Int64 // 503
	latency  *telemetry.Histogram
}

// gridEcho is the slice of the grid response the generator reads.
type gridEcho struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	GridID string `json:"grid_id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  *struct {
		Message string `json:"message"`
	} `json:"error"`
}

// Run executes the configured loadtest: warmup, then each level in
// order. The context cancels promptly; a cancelled run returns what it
// measured so far along with ctx.Err().
func Run(ctx context.Context, opts Options) (*Report, error) {
	if len(opts.Levels) == 0 {
		return nil, fmt.Errorf("loadtest: no client levels given")
	}
	if opts.Requests <= 0 && opts.Duration <= 0 {
		return nil, fmt.Errorf("loadtest: need -duration or -requests")
	}
	if opts.Mix.total() == 0 {
		opts.Mix = Mix{Grid: 4, Job: 2, Result: 4}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := opts.Client
	if client == nil {
		maxClients := 0
		for _, l := range opts.Levels {
			if l > maxClients {
				maxClients = l
			}
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        maxClients + 2,
			MaxIdleConnsPerHost: maxClients + 2,
		}}
	}
	base := strings.TrimRight(opts.Addr, "/")

	rep := &Report{
		Tool:   "nnrand loadtest",
		Addr:   opts.Addr,
		Mix:    opts.Mix.String(),
		Seed:   opts.Seed,
		Warmup: map[string]int64{},
	}

	body, err := json.Marshal(struct {
		Grid     grid.Spec `json:"grid"`
		Scale    string    `json:"scale,omitempty"`
		Replicas int       `json:"replicas,omitempty"`
		Seed     uint64    `json:"seed,omitempty"`
	}{opts.Spec, opts.Scale, opts.Replicas, opts.Seed})
	if err != nil {
		return nil, err
	}

	if err := warmup(ctx, client, base, body, rep, logf); err != nil {
		return nil, err
	}

	for _, n := range opts.Levels {
		lvl, err := runLevel(ctx, client, base, body, opts, n, rep)
		if lvl != nil {
			rep.Levels = append(rep.Levels, *lvl)
		}
		if err != nil {
			return rep, err
		}
		logf("level %d clients: %d requests in %.2fs (%.0f rps, %d rejected, %d shed)",
			n, lvl.Requests, lvl.DurationSeconds, lvl.RPS, lvl.Rejected, lvl.Shed)
	}
	return rep, nil
}

// warmup submits the canned grid and polls it to completion, so every
// measured submission afterwards is a store hit. Its requests are
// accounted in rep.Warmup.
func warmup(ctx context.Context, client *http.Client, base string, body []byte, rep *Report, logf func(string, ...any)) error {
	logf("warmup: submitting canned grid")
	echo, status, err := postGrid(ctx, client, base, body)
	if err != nil {
		return fmt.Errorf("loadtest: warmup submit: %w", err)
	}
	rep.Warmup[RouteGrid]++
	if status != http.StatusOK && status != http.StatusAccepted {
		return fmt.Errorf("loadtest: warmup submit: HTTP %d", status)
	}
	rep.GridID = echo.GridID
	rep.Key = echo.Key
	rep.JobID = echo.ID
	for !terminalState(echo.State) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
		raw, status, err := get(ctx, client, base+"/v1/jobs/"+echo.ID)
		if err != nil {
			return fmt.Errorf("loadtest: warmup poll: %w", err)
		}
		rep.Warmup[RouteJob]++
		if status != http.StatusOK {
			return fmt.Errorf("loadtest: warmup poll: HTTP %d", status)
		}
		if err := json.Unmarshal(raw, &echo); err != nil {
			return fmt.Errorf("loadtest: warmup poll: %w", err)
		}
	}
	if echo.State != "done" {
		msg := echo.State
		if echo.Error != nil {
			msg = echo.Error.Message
		}
		return fmt.Errorf("loadtest: warmup grid ended %s", msg)
	}
	logf("warmup: grid %s done (key %s)", rep.GridID, rep.Key)
	return nil
}

func terminalState(s string) bool { return s == "done" || s == "failed" || s == "cancelled" }

// runLevel drives n concurrent clients against the warm server.
func runLevel(ctx context.Context, client *http.Client, base string, body []byte, opts Options, n int, rep *Report) (*Level, error) {
	tracks := map[string]*routeTrack{
		RouteGrid:   {latency: telemetry.NewHistogram()},
		RouteJob:    {latency: telemetry.NewHistogram()},
		RouteResult: {latency: telemetry.NewHistogram()},
	}
	var transportErrors, cacheHits, gridPosts atomic.Int64

	// Refresh the polled job before the clients start: job retention is
	// bounded, so the warmup job may have been evicted by an earlier
	// level's submission churn. Clients then track their own most recent
	// submission — poll what you submitted, like a real client — so the
	// ID they poll stays live however fast the retention list turns over.
	// This bookkeeping request is accounted with the warmup so the
	// client/server reconciliation stays exact.
	levelJobID := rep.JobID
	if echo, status, err := postGrid(ctx, client, base, body); err == nil {
		rep.Warmup[RouteGrid]++
		if (status == http.StatusOK || status == http.StatusAccepted) && echo.ID != "" {
			levelJobID = echo.ID
		}
	}

	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// The sequence is a pure function of (seed, level, client): two
			// runs replay identical per-client request streams.
			rng := rand.New(rand.NewSource(int64(opts.Seed) ^ int64(n)<<32 ^ int64(c)))
			jobID := levelJobID
			for i := 0; opts.Requests > 0 && i < opts.Requests || opts.Requests <= 0 && time.Now().Before(deadline); i++ {
				if ctx.Err() != nil {
					return
				}
				op := opts.Mix.pick(rng)
				t := tracks[op]
				reqStart := time.Now()
				var status int
				var err error
				switch op {
				case RouteGrid:
					var echo *gridEcho
					echo, status, err = postGrid(ctx, client, base, body)
					if err == nil {
						gridPosts.Add(1)
						if echo.Cached {
							cacheHits.Add(1)
						}
						if echo.ID != "" {
							jobID = echo.ID
						}
					}
				case RouteJob:
					_, status, err = get(ctx, client, base+"/v1/jobs/"+jobID)
				case RouteResult:
					_, status, err = get(ctx, client, base+"/v1/results/"+rep.Key)
				}
				if err != nil {
					transportErrors.Add(1)
					continue
				}
				t.latency.Observe(time.Since(reqStart))
				t.requests.Add(1)
				if cls := status/100 - 1; cls >= 0 && cls < 5 {
					t.status[cls].Add(1)
				}
				switch status {
				case http.StatusTooManyRequests:
					t.rejected.Add(1)
				case http.StatusServiceUnavailable:
					t.shed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lvl := &Level{
		Clients:         n,
		DurationSeconds: elapsed.Seconds(),
		TransportErrors: transportErrors.Load(),
		CacheHits:       cacheHits.Load(),
	}
	for _, route := range []string{RouteGrid, RouteJob, RouteResult} {
		t := tracks[route]
		reqs := t.requests.Load()
		lvl.Requests += reqs
		snap := t.latency.Snapshot(false)
		rr := RouteReport{
			Route:    route,
			Requests: reqs,
			P50Ms:    snap.P50Millis,
			P90Ms:    snap.P90Millis,
			P99Ms:    snap.P99Millis,
		}
		classes := [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
		for i, name := range classes {
			if cnt := t.status[i].Load(); cnt > 0 {
				if rr.Status == nil {
					rr.Status = map[string]int64{}
				}
				rr.Status[name] = cnt
			}
		}
		lvl.Routes = append(lvl.Routes, rr)
		lvl.Rejected += t.rejected.Load()
		lvl.Shed += t.shed.Load()
		// 5xx class minus the 503 shed = genuine server errors.
		lvl.ServerErrors += t.status[4].Load() - t.shed.Load()
	}
	if lvl.DurationSeconds > 0 {
		lvl.RPS = float64(lvl.Requests) / lvl.DurationSeconds
	}
	if posts := gridPosts.Load(); posts > 0 {
		lvl.CacheHitRate = float64(lvl.CacheHits) / float64(posts)
	}
	return lvl, ctx.Err()
}

// postGrid submits the canned grid and decodes the response echo.
func postGrid(ctx context.Context, client *http.Client, base string, body []byte) (*gridEcho, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/grid", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	echo := &gridEcho{}
	_ = json.Unmarshal(raw, echo) // refusal bodies have no echo; status carries the news
	return echo, resp.StatusCode, nil
}

// get issues one GET, draining the body so the connection is reusable.
func get(ctx context.Context, client *http.Client, url string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	return raw, resp.StatusCode, nil
}

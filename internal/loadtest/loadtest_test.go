package loadtest

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/server"
)

var testSpec = grid.Spec{
	Tasks:    []string{"smallcnn-cifar10"},
	Devices:  []string{"V100", "TPUv2"},
	Variants: []string{"IMPL"},
	Recipes:  []grid.Recipe{{Epochs: 2}},
}

func stubResult(id string) *report.Result {
	tb := report.New("stub", "k", "v")
	tb.AddCells(report.Str(id), report.Int(1))
	return &report.Result{Experiment: id, Title: "stub", Kind: report.KindTable, Tables: []*report.Table{tb}}
}

// newBenchTarget builds a server (grid execution stubbed — the
// benchmark measures serving, not training) and returns it with its
// HTTP front.
func newBenchTarget(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Options{
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			return stubResult(plan.ID()), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func testOptions(addr string) Options {
	return Options{
		Addr:     addr,
		Levels:   []int{1, 2},
		Requests: 20, // deterministic mode: exactly 20 per client per level
		Mix:      Mix{Grid: 4, Job: 2, Result: 4},
		Seed:     7,
		Spec:     testSpec,
		Scale:    "test",
		Replicas: 1,
	}
}

// TestRunReconciles is the determinism satellite: a Requests-mode run
// against a stubbed server must produce a report whose request counts,
// plus the warmup's, exactly match the server's own telemetry counters
// — client books and server books agree to the request.
func TestRunReconciles(t *testing.T) {
	s, srv := newBenchTarget(t)
	rep, err := Run(context.Background(), testOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridID == "" || rep.Key == "" || rep.JobID == "" {
		t.Fatalf("report identity incomplete: %+v", rep)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(rep.Levels))
	}
	for _, lvl := range rep.Levels {
		if want := int64(lvl.Clients * 20); lvl.Requests != want {
			t.Errorf("level %d: requests = %d, want %d", lvl.Clients, lvl.Requests, want)
		}
		if lvl.TransportErrors != 0 || lvl.ServerErrors != 0 {
			t.Errorf("level %d: transport=%d server=%d errors, want 0/0", lvl.Clients, lvl.TransportErrors, lvl.ServerErrors)
		}
		if lvl.RPS <= 0 {
			t.Errorf("level %d: rps = %g, want > 0", lvl.Clients, lvl.RPS)
		}
		// After warmup every grid submission is a store hit.
		if lvl.CacheHitRate != 1 {
			t.Errorf("level %d: cache hit rate = %g, want 1", lvl.Clients, lvl.CacheHitRate)
		}
	}

	// Client-side counts + warmup == server-side telemetry, per route.
	clientTotal := map[string]int64{}
	for route, n := range rep.Warmup {
		clientTotal[route] += n
	}
	for _, lvl := range rep.Levels {
		for _, rr := range lvl.Routes {
			clientTotal[rr.Route] += rr.Requests
		}
	}
	serverSeen := map[string]int64{}
	for _, rs := range s.Telemetry().Snapshot(false) {
		serverSeen[rs.Route] = rs.Requests
		if rs.Requests != rs.Latency.Count {
			t.Errorf("server route %s: requests %d != histogram count %d", rs.Route, rs.Requests, rs.Latency.Count)
		}
	}
	for route, n := range clientTotal {
		if serverSeen[route] != n {
			t.Errorf("route %s: client issued %d, server counted %d", route, n, serverSeen[route])
		}
	}
	for route, n := range serverSeen {
		if _, issued := clientTotal[route]; !issued && n != 0 {
			t.Errorf("server counted %d requests on %s the generator never issued", n, route)
		}
	}
}

// TestReportRoundTrips pins the BENCH_server.json schema: the typed
// report survives marshal/unmarshal without loss, so CI can parse the
// committed artifact back into the same struct.
func TestReportRoundTrips(t *testing.T) {
	_, srv := newBenchTarget(t)
	rep, err := Run(context.Background(), testOptions(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("BENCH_server.json does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatalf("round-trip drift:\n  out: %+v\n  back: %+v", *rep, back)
	}
	if back.Tool != "nnrand loadtest" || back.Mix != "4:2:4" || back.Seed != 7 {
		t.Fatalf("report header = %+v", back)
	}
}

// TestRunDeterministic pins the seeded-generator claim: two runs with
// the same seed against fresh identical servers issue identical
// per-route request counts.
func TestRunDeterministic(t *testing.T) {
	counts := func() map[string]int64 {
		_, srv := newBenchTarget(t)
		rep, err := Run(context.Background(), testOptions(srv.URL))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for i, lvl := range rep.Levels {
			for _, rr := range lvl.Routes {
				out[string(rune('0'+i))+rr.Route] = rr.Requests
			}
		}
		return out
	}
	a, b := counts(), counts()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different workloads:\n  a: %v\n  b: %v", a, b)
	}
}

// TestParseMix pins the flag grammar.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("4:2:4")
	if err != nil || m != (Mix{Grid: 4, Job: 2, Result: 4}) {
		t.Fatalf("ParseMix(4:2:4) = %+v, %v", m, err)
	}
	if m.String() != "4:2:4" {
		t.Fatalf("String() = %q", m.String())
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "a:b:c", "-1:2:3", "0:0:0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

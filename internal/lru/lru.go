// Package lru provides the intrusive doubly-linked-list LRU index shared
// by the caches that need O(1) recency maintenance with eviction from the
// cold end: the jobs result store, the replica ledger, and the experiment
// engine's dataset cache. The list owns ordering and key lookup only —
// capacity policy (when to evict, what teardown an eviction implies, e.g.
// unlinking a file) stays with the caller, which is what lets one type
// back stores with very different eviction side effects.
//
// A List is not safe for concurrent use; callers hold their own mutex, as
// every owner here already serializes its cache operations.
package lru

// List is an intrusive doubly-linked LRU over keyed entries. The zero
// value is not usable; construct with New.
type List[K comparable, V any] struct {
	items      map[K]*Entry[K, V]
	head, tail *Entry[K, V]
}

// Entry is one linked node. Key is immutable after insertion; Value may
// be mutated freely by the owner (the list never reads it).
type Entry[K comparable, V any] struct {
	Key        K
	Value      V
	prev, next *Entry[K, V]
}

// New returns an empty list.
func New[K comparable, V any]() *List[K, V] {
	return &List[K, V]{items: map[K]*Entry[K, V]{}}
}

// Len reports the number of entries.
func (l *List[K, V]) Len() int { return len(l.items) }

// Get returns the entry for k without changing its recency (pair with
// MoveToFront when the access should count as a use).
func (l *List[K, V]) Get(k K) (*Entry[K, V], bool) {
	e, ok := l.items[k]
	return e, ok
}

// PushFront inserts a new most-recently-used entry. The key must not
// already be present (callers look up first; a duplicate insert would
// orphan the old node and leak it from the map).
func (l *List[K, V]) PushFront(k K, v V) *Entry[K, V] {
	if _, dup := l.items[k]; dup {
		panic("lru: duplicate PushFront key")
	}
	e := &Entry[K, V]{Key: k, Value: v, next: l.head}
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.items[k] = e
	return e
}

// MoveToFront marks e most recently used.
func (l *List[K, V]) MoveToFront(e *Entry[K, V]) {
	if l.head == e {
		return
	}
	// Unlink.
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	// Relink at head.
	e.prev, e.next = nil, l.head
	l.head.prev = e
	l.head = e
}

// Remove unlinks e from the list and index. Removing an entry twice is a
// caller bug and corrupts the list; owners guard with their map lookup.
func (l *List[K, V]) Remove(e *Entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(l.items, e.Key)
}

// Front returns the most recently used entry (nil when empty).
func (l *List[K, V]) Front() *Entry[K, V] { return l.head }

// Back returns the least recently used entry — the eviction candidate
// (nil when empty).
func (l *List[K, V]) Back() *Entry[K, V] { return l.tail }

// Next returns the entry one step colder than e (nil at the cold end),
// for MRU-to-LRU iteration from Front.
func (e *Entry[K, V]) Next() *Entry[K, V] { return e.next }

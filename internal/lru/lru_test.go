package lru

import "testing"

func keys[K comparable, V any](l *List[K, V]) []K {
	var out []K
	for e := l.Front(); e != nil; e = e.Next() {
		out = append(out, e.Key)
	}
	return out
}

func TestOrderAndEviction(t *testing.T) {
	l := New[string, int]()
	a := l.PushFront("a", 1)
	l.PushFront("b", 2)
	c := l.PushFront("c", 3)
	if got := keys(l); len(got) != 3 || got[0] != "c" || got[2] != "a" {
		t.Fatalf("order = %v, want [c b a]", got)
	}
	l.MoveToFront(a)
	if l.Front() != a || l.Back().Key != "b" {
		t.Fatalf("after touch: front %v back %v", l.Front().Key, l.Back().Key)
	}
	l.Remove(l.Back()) // evict coldest
	if got := keys(l); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after evict = %v, want [a c]", got)
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("evicted key still indexed")
	}
	l.Remove(a)
	l.Remove(c)
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatalf("emptied list: len %d front %v back %v", l.Len(), l.Front(), l.Back())
	}
	// Reuse after emptying.
	l.PushFront("d", 4)
	if l.Front().Key != "d" || l.Back().Key != "d" {
		t.Fatal("single-entry list broken after drain")
	}
}

func TestMoveToFrontMiddle(t *testing.T) {
	l := New[int, struct{}]()
	for i := 0; i < 5; i++ {
		l.PushFront(i, struct{}{})
	}
	mid, _ := l.Get(2)
	l.MoveToFront(mid)
	got := keys(l)
	want := []int{2, 4, 3, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	l.MoveToFront(mid) // front is a no-op
	if l.Front() != mid {
		t.Fatal("front touch moved the entry")
	}
}

func TestDuplicatePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate PushFront did not panic")
		}
	}()
	l := New[string, int]()
	l.PushFront("k", 1)
	l.PushFront("k", 2)
}

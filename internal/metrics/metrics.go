// Package metrics implements the model-stability measures from Section 2.1
// of the paper: predictive churn between model pairs, L2 distance between
// normalized trained weight vectors, standard deviation of top-line and
// dis-aggregated accuracy, per-class accuracy, and sub-group
// accuracy / false-positive-rate / false-negative-rate statistics.
package metrics

import (
	"fmt"
	"math"
)

// Churn returns the fraction of examples on which two prediction vectors
// disagree (Milani Fard et al. 2016, eq. 2 in the paper).
func Churn(a, b []int) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: churn over mismatched predictions: %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}

// PairwiseMeanChurn averages Churn over all unordered pairs of runs.
func PairwiseMeanChurn(preds [][]int) float64 {
	if len(preds) < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(preds); i++ {
		for j := i + 1; j < len(preds); j++ {
			sum += Churn(preds[i], preds[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// L2Normalized returns ‖a/‖a‖ − b/‖b‖‖₂ — the L2 distance between the two
// weight vectors after normalizing each to unit length, as the paper does
// for a consistent scale across experiments.
func L2Normalized(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: weight vectors differ in length: %d vs %d", len(a), len(b)))
	}
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		panic("metrics: zero-norm weight vector")
	}
	var sum float64
	for i := range a {
		d := float64(a[i])/na - float64(b[i])/nb
		sum += d * d
	}
	return math.Sqrt(sum)
}

func norm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// PairwiseMeanL2 averages L2Normalized over all unordered pairs.
func PairwiseMeanL2(weights [][]float32) float64 {
	if len(weights) < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(weights); i++ {
		for j := i + 1; j < len(weights); j++ {
			sum += L2Normalized(weights[i], weights[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// Accuracy returns the fraction of predictions equal to labels.
func Accuracy(preds, labels []int) float64 {
	if len(preds) != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions for %d labels", len(preds), len(labels)))
	}
	if len(preds) == 0 {
		return 0
	}
	c := 0
	for i := range preds {
		if preds[i] == labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (the paper reports
// spread over a fixed set of replicas, not a sample estimate).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// PerClassAccuracy returns each class's accuracy over the examples whose
// label is that class. Classes absent from labels get NaN.
func PerClassAccuracy(preds, labels []int, classes int) []float64 {
	correct := make([]int, classes)
	total := make([]int, classes)
	for i := range labels {
		total[labels[i]]++
		if preds[i] == labels[i] {
			correct[labels[i]]++
		}
	}
	out := make([]float64, classes)
	for k := range out {
		if total[k] == 0 {
			out[k] = math.NaN()
			continue
		}
		out[k] = float64(correct[k]) / float64(total[k])
	}
	return out
}

// BinaryRates summarizes a binary classifier's error profile on a subset.
type BinaryRates struct {
	Accuracy float64
	FPR      float64 // false positives / negatives
	FNR      float64 // false negatives / positives
	N        int
}

// BinaryRatesOn computes accuracy/FPR/FNR over the examples selected by
// include (nil means all). Labels and predictions are in {0,1}. FPR and FNR
// are NaN when the subset has no negatives or positives respectively.
func BinaryRatesOn(preds, labels []int, include func(i int) bool) BinaryRates {
	var tp, tn, fp, fn int
	for i := range labels {
		if include != nil && !include(i) {
			continue
		}
		switch {
		case labels[i] == 1 && preds[i] == 1:
			tp++
		case labels[i] == 1 && preds[i] == 0:
			fn++
		case labels[i] == 0 && preds[i] == 1:
			fp++
		default:
			tn++
		}
	}
	r := BinaryRates{N: tp + tn + fp + fn}
	if r.N > 0 {
		r.Accuracy = float64(tp+tn) / float64(r.N)
	}
	if fp+tn > 0 {
		r.FPR = float64(fp) / float64(fp+tn)
	} else {
		r.FPR = math.NaN()
	}
	if fn+tp > 0 {
		r.FNR = float64(fn) / float64(fn+tp)
	} else {
		r.FNR = math.NaN()
	}
	return r
}

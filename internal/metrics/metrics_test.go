package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestChurnKnownValues(t *testing.T) {
	if got := Churn([]int{1, 2, 3, 4}, []int{1, 2, 3, 4}); got != 0 {
		t.Fatalf("identical predictions churn %v", got)
	}
	if got := Churn([]int{1, 2, 3, 4}, []int{0, 2, 0, 4}); got != 0.5 {
		t.Fatalf("churn %v, want 0.5", got)
	}
	if got := Churn(nil, nil); got != 0 {
		t.Fatalf("empty churn %v", got)
	}
}

func TestChurnSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := make([]int, 50)
		b := make([]int, 50)
		for i := range a {
			a[i], b[i] = s.Intn(5), s.Intn(5)
		}
		return Churn(a, b) == Churn(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChurnMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Churn([]int{1}, []int{1, 2})
}

func TestPairwiseMeanChurn(t *testing.T) {
	preds := [][]int{{1, 1}, {1, 0}, {0, 0}}
	// pairs: (0,1)=0.5 (0,2)=1.0 (1,2)=0.5 → mean 2/3
	if got := PairwiseMeanChurn(preds); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("pairwise churn %v", got)
	}
	if PairwiseMeanChurn(preds[:1]) != 0 {
		t.Fatal("single-run churn should be 0")
	}
}

func TestL2NormalizedProperties(t *testing.T) {
	a := []float32{1, 0, 0}
	b := []float32{0, 1, 0}
	if got := L2Normalized(a, b); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("orthogonal unit vectors: %v, want sqrt2", got)
	}
	// Scale invariance: the paper normalizes to unit length first.
	c := []float32{5, 0, 0}
	if got := L2Normalized(a, c); got != 0 {
		t.Fatalf("scaled same-direction distance %v, want 0", got)
	}
	// Maximum distance is 2 (antipodal).
	d := []float32{-1, 0, 0}
	if got := L2Normalized(a, d); math.Abs(got-2) > 1e-9 {
		t.Fatalf("antipodal distance %v, want 2", got)
	}
}

func TestL2NormalizedSymmetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		a := make([]float32, 20)
		b := make([]float32, 20)
		s.FillNorm(a, 0, 1)
		s.FillNorm(b, 0, 1)
		x, y := L2Normalized(a, b), L2Normalized(b, a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev %v, want 2", got)
	}
	if StdDev([]float64{3}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate stddev should be 0")
	}
}

func TestPerClassAccuracy(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2}
	preds := []int{0, 1, 1, 1, 0}
	pc := PerClassAccuracy(preds, labels, 4)
	if pc[0] != 0.5 || pc[1] != 1.0 || pc[2] != 0 {
		t.Fatalf("per-class accuracy %v", pc)
	}
	if !math.IsNaN(pc[3]) {
		t.Fatal("absent class should be NaN")
	}
}

func TestBinaryRates(t *testing.T) {
	labels := []int{1, 1, 1, 0, 0, 0, 0, 0}
	preds := []int{1, 0, 0, 0, 0, 0, 1, 1}
	r := BinaryRatesOn(preds, labels, nil)
	if r.N != 8 {
		t.Fatalf("N = %d", r.N)
	}
	if math.Abs(r.Accuracy-4.0/8) > 1e-12 {
		t.Fatalf("accuracy %v", r.Accuracy)
	}
	if math.Abs(r.FNR-2.0/3) > 1e-12 {
		t.Fatalf("FNR %v", r.FNR)
	}
	if math.Abs(r.FPR-2.0/5) > 1e-12 {
		t.Fatalf("FPR %v", r.FPR)
	}
}

func TestBinaryRatesSubset(t *testing.T) {
	labels := []int{1, 0, 1, 0}
	preds := []int{1, 1, 0, 0}
	even := func(i int) bool { return i%2 == 0 }
	r := BinaryRatesOn(preds, labels, even)
	if r.N != 2 {
		t.Fatalf("subset N = %d", r.N)
	}
	if math.Abs(r.FNR-0.5) > 1e-12 {
		t.Fatalf("subset FNR %v", r.FNR)
	}
	if !math.IsNaN(r.FPR) {
		t.Fatalf("subset with no negatives should have NaN FPR, got %v", r.FPR)
	}
}

func TestBinaryRatesEmptySubset(t *testing.T) {
	r := BinaryRatesOn([]int{1}, []int{1}, func(int) bool { return false })
	if r.N != 0 || r.Accuracy != 0 {
		t.Fatalf("empty subset rates: %+v", r)
	}
}

func TestPairwiseMeanL2(t *testing.T) {
	ws := [][]float32{{1, 0}, {0, 1}, {1, 0}}
	got := PairwiseMeanL2(ws)
	want := (math.Sqrt(2) + 0 + math.Sqrt(2)) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pairwise L2 %v, want %v", got, want)
	}
}

package models

import (
	"fmt"
	"math"
)

// OpKind classifies a layer for the kernel-time profiler. The profiler only
// needs to know which cuDNN kernel family a layer dispatches to, because
// the deterministic-mode penalty differs per family (convolutions pay the
// most; elementwise kernels pay nothing).
type OpKind int

// Kernel families.
const (
	OpConv OpKind = iota
	OpDepthwiseConv
	OpDense
	OpPool
	OpBatchNorm
	OpActivation
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpConv:
		return "conv"
	case OpDepthwiseConv:
		return "dwconv"
	case OpDense:
		return "dense"
	case OpPool:
		return "pool"
	case OpBatchNorm:
		return "batchnorm"
	case OpActivation:
		return "activation"
	}
	return "unknown"
}

// LayerSpec describes one layer of a profiled network.
type LayerSpec struct {
	Name   string
	Kind   OpKind
	Kernel int // filter height for convs (also width when KW is 0)
	KW     int // filter width for rectangular (factorized) convs; 0 = square
	InC    int
	OutC   int
	H, W   int // input spatial size
	Stride int
}

// KernelW returns the filter width (Kernel when square).
func (l LayerSpec) KernelW() int {
	if l.KW != 0 {
		return l.KW
	}
	return l.Kernel
}

// EffKernel returns the effective square-kernel size used by the overhead
// model: the geometric mean of the filter dimensions, so a factorized 1×7
// convolution prices like a ~2.6-wide kernel (its reduction footprint)
// rather than a full 7×7.
func (l LayerSpec) EffKernel() float64 {
	return math.Sqrt(float64(l.Kernel * l.KernelW()))
}

// OutH returns the output height (same-padding convention).
func (l LayerSpec) OutH() int { return (l.H + l.Stride - 1) / l.Stride }

// OutW returns the output width.
func (l LayerSpec) OutW() int { return (l.W + l.Stride - 1) / l.Stride }

// FwdFLOPs returns the forward multiply-accumulate count per example.
func (l LayerSpec) FwdFLOPs() int64 {
	oh, ow := int64(l.OutH()), int64(l.OutW())
	switch l.Kind {
	case OpConv:
		return 2 * int64(l.InC) * int64(l.OutC) * int64(l.Kernel*l.KernelW()) * oh * ow
	case OpDepthwiseConv:
		return 2 * int64(l.InC) * int64(l.Kernel*l.KernelW()) * oh * ow
	case OpDense:
		return 2 * int64(l.InC) * int64(l.OutC)
	case OpPool, OpActivation:
		return int64(l.InC) * int64(l.H) * int64(l.W)
	case OpBatchNorm:
		return 4 * int64(l.InC) * int64(l.H) * int64(l.W)
	}
	return 0
}

// Graph is a static network description used by the overhead profiler.
type Graph struct {
	Name   string
	InC    int
	InH    int
	InW    int
	Layers []LayerSpec
}

// ConvLayers returns only the convolutional layers (including depthwise).
func (g *Graph) ConvLayers() []LayerSpec {
	var out []LayerSpec
	for _, l := range g.Layers {
		if l.Kind == OpConv || l.Kind == OpDepthwiseConv {
			out = append(out, l)
		}
	}
	return out
}

// TotalFwdFLOPs sums forward FLOPs across layers, per example.
func (g *Graph) TotalFwdFLOPs() int64 {
	var t int64
	for _, l := range g.Layers {
		t += l.FwdFLOPs()
	}
	return t
}

// graphBuilder accumulates layers while tracking the running activation
// geometry, so the zoo definitions read like the original architectures.
type graphBuilder struct {
	g       Graph
	c, h, w int
	n       int
}

func newGraph(name string, c, h, w int) *graphBuilder {
	return &graphBuilder{g: Graph{Name: name, InC: c, InH: h, InW: w}, c: c, h: h, w: w}
}

func (b *graphBuilder) conv(out, kernel, stride int) *graphBuilder {
	return b.convRect(out, kernel, kernel, stride)
}

func (b *graphBuilder) convRect(out, kh, kw, stride int) *graphBuilder {
	b.n++
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("conv%d_%dx%d", b.n, kh, kw), Kind: OpConv,
		Kernel: kh, KW: kw, InC: b.c, OutC: out, H: b.h, W: b.w, Stride: stride,
	})
	b.c = out
	b.h = (b.h + stride - 1) / stride
	b.w = (b.w + stride - 1) / stride
	return b
}

func (b *graphBuilder) dwconv(kernel, stride int) *graphBuilder {
	b.n++
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("dwconv%d_%dx%d", b.n, kernel, kernel), Kind: OpDepthwiseConv,
		Kernel: kernel, InC: b.c, OutC: b.c, H: b.h, W: b.w, Stride: stride,
	})
	b.h = (b.h + stride - 1) / stride
	b.w = (b.w + stride - 1) / stride
	return b
}

func (b *graphBuilder) bn() *graphBuilder {
	b.n++
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("bn%d", b.n), Kind: OpBatchNorm,
		InC: b.c, OutC: b.c, H: b.h, W: b.w, Stride: 1,
	})
	return b
}

func (b *graphBuilder) act() *graphBuilder {
	b.n++
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("act%d", b.n), Kind: OpActivation,
		InC: b.c, OutC: b.c, H: b.h, W: b.w, Stride: 1,
	})
	return b
}

func (b *graphBuilder) pool(stride int) *graphBuilder {
	b.n++
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("pool%d", b.n), Kind: OpPool,
		InC: b.c, OutC: b.c, H: b.h, W: b.w, Stride: stride,
	})
	b.h = (b.h + stride - 1) / stride
	b.w = (b.w + stride - 1) / stride
	return b
}

func (b *graphBuilder) dense(out int) *graphBuilder {
	b.n++
	in := b.c * b.h * b.w
	b.g.Layers = append(b.g.Layers, LayerSpec{
		Name: fmt.Sprintf("dense%d", b.n), Kind: OpDense,
		InC: in, OutC: out, H: 1, W: 1, Stride: 1,
	})
	b.c, b.h, b.w = out, 1, 1
	return b
}

func (b *graphBuilder) build() *Graph { return &b.g }

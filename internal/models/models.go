// Package models builds the trainable networks the paper evaluates —
// the three-layer small CNN (with and without batch normalization), the
// six-layer medium CNN with configurable convolution kernel size, and
// scaled-down ResNet-18 / ResNet-50 — plus static layer-graph descriptors
// of the ten large CNNs the paper profiles for deterministic-mode overhead
// (VGG, ResNet, DenseNet, Inception, Xception, MobileNet, EfficientNet).
//
// The trainable models are resized for the synthetic 8×8 datasets: widths
// and depths shrink but the structural properties the paper attributes
// results to are preserved — the small CNN's lack of batch normalization,
// ResNet's residual topology with BN everywhere, and the medium CNN's
// kernel-size knob.
package models

import (
	"fmt"

	"repro/internal/nn"
)

// SmallCNNConfig parameterizes the paper's three-layer small CNN
// (Appendix C): three conv+ReLU+maxpool blocks, a dense hidden layer, and
// the classifier head. BatchNorm defaults to off — the small CNN is the
// paper's only unnormalized model, which is what makes it the most
// noise-amplifying architecture in Figure 1.
type SmallCNNConfig struct {
	InC, H, W int
	Classes   int
	Widths    [3]int
	Hidden    int
	BatchNorm bool
}

// DefaultSmallCNN returns the configuration used by the experiments for the
// 3×8×8 synthetic datasets.
func DefaultSmallCNN(classes int) SmallCNNConfig {
	return SmallCNNConfig{InC: 3, H: 8, W: 8, Classes: classes, Widths: [3]int{8, 16, 16}, Hidden: 32}
}

// SmallCNN builds the three-layer small CNN.
func SmallCNN(cfg SmallCNNConfig) *nn.Sequential {
	name := "smallcnn"
	if cfg.BatchNorm {
		name = "smallcnn-bn"
	}
	net := nn.NewSequential(name)
	in := cfg.InC
	spatial := cfg.H
	for i, w := range cfg.Widths {
		net.Append(nn.NewConv2D(fmt.Sprintf("conv%d", i+1), in, w, 3, 1, 1))
		if cfg.BatchNorm {
			net.Append(nn.NewBatchNorm(fmt.Sprintf("bn%d", i+1), w))
		}
		net.Append(nn.NewReLU(fmt.Sprintf("relu%d", i+1)))
		net.Append(nn.NewMaxPool2D(fmt.Sprintf("pool%d", i+1), 2))
		in = w
		spatial /= 2
	}
	flat := in * spatial * spatial
	net.Append(
		nn.NewFlatten("flatten"),
		nn.NewDense("fc1", flat, cfg.Hidden),
		nn.NewReLU("fc1relu"),
		nn.NewDense("head", cfg.Hidden, cfg.Classes),
	)
	return net
}

// MediumCNN builds the six-layer medium CNN (Appendix C): six conv-BN-ReLU
// blocks with a configurable square kernel size (1, 3, 5 or 7 in the
// paper's Figure 8b sweep), pooling after every second block, global
// average pooling and a classifier.
func MediumCNN(kernel, classes int) *nn.Sequential {
	if kernel != 1 && kernel != 3 && kernel != 5 && kernel != 7 {
		panic(fmt.Sprintf("models: MediumCNN kernel must be 1/3/5/7, got %d", kernel))
	}
	widths := []int{8, 8, 16, 16, 32, 32}
	net := nn.NewSequential(fmt.Sprintf("mediumcnn-k%d", kernel))
	in := 3
	for i, w := range widths {
		pad := kernel / 2
		net.Append(
			nn.NewConv2D(fmt.Sprintf("conv%d", i+1), in, w, kernel, 1, pad),
			nn.NewBatchNorm(fmt.Sprintf("bn%d", i+1), w),
			nn.NewReLU(fmt.Sprintf("relu%d", i+1)),
		)
		if i%2 == 1 {
			net.Append(nn.NewMaxPool2D(fmt.Sprintf("pool%d", i/2+1), 2))
		}
		in = w
	}
	net.Append(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("head", in, classes),
	)
	return net
}

// basicBlock builds one ResNet basic block (two 3×3 convs with BN).
func basicBlock(name string, in, out, stride int) *nn.Residual {
	body := nn.NewSequential(name+"/body",
		nn.NewConv2D(name+"/conv1", in, out, 3, stride, 1),
		nn.NewBatchNorm(name+"/bn1", out),
		nn.NewReLU(name+"/relu1"),
		nn.NewConv2D(name+"/conv2", out, out, 3, 1, 1),
		nn.NewBatchNorm(name+"/bn2", out),
	)
	var shortcut *nn.Sequential
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(name+"/short",
			nn.NewConv2D(name+"/proj", in, out, 1, stride, 0),
			nn.NewBatchNorm(name+"/projbn", out),
		)
	}
	return nn.NewResidual(name, body, shortcut)
}

// bottleneckBlock builds one ResNet bottleneck block (1×1 reduce, 3×3,
// 1×1 expand), the ResNet-50 building block.
func bottleneckBlock(name string, in, mid, out, stride int) *nn.Residual {
	body := nn.NewSequential(name+"/body",
		nn.NewConv2D(name+"/conv1", in, mid, 1, 1, 0),
		nn.NewBatchNorm(name+"/bn1", mid),
		nn.NewReLU(name+"/relu1"),
		nn.NewConv2D(name+"/conv2", mid, mid, 3, stride, 1),
		nn.NewBatchNorm(name+"/bn2", mid),
		nn.NewReLU(name+"/relu2"),
		nn.NewConv2D(name+"/conv3", mid, out, 1, 1, 0),
		nn.NewBatchNorm(name+"/bn3", out),
	)
	var shortcut *nn.Sequential
	if stride != 1 || in != out {
		shortcut = nn.NewSequential(name+"/short",
			nn.NewConv2D(name+"/proj", in, out, 1, stride, 0),
			nn.NewBatchNorm(name+"/projbn", out),
		)
	}
	return nn.NewResidual(name, body, shortcut)
}

// ResNet18 builds the scaled-down ResNet-18: a stem conv plus three stages
// of two basic blocks (widths 8/16/32) for 8×8 inputs, global average
// pooling and a linear head. Batch normalization everywhere, as in the
// original — the property the paper credits for ResNet's noise damping.
func ResNet18(classes int) *nn.Sequential {
	const w = 8
	net := nn.NewSequential("resnet18",
		nn.NewConv2D("stem", 3, w, 3, 1, 1),
		nn.NewBatchNorm("stembn", w),
		nn.NewReLU("stemrelu"),
	)
	widths := []int{w, 2 * w, 4 * w}
	in := w
	for s, out := range widths {
		stride := 2
		if s == 0 {
			stride = 1
		}
		net.Append(
			basicBlock(fmt.Sprintf("s%db1", s+1), in, out, stride),
			basicBlock(fmt.Sprintf("s%db2", s+1), out, out, 1),
		)
		in = out
	}
	net.Append(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("head", in, classes),
	)
	return net
}

// ResNet50 builds the scaled-down bottleneck ResNet standing in for the
// paper's ImageNet ResNet-50: three stages of two bottleneck blocks with
// 2× expansion.
func ResNet50(classes int) *nn.Sequential {
	const w = 8
	net := nn.NewSequential("resnet50",
		nn.NewConv2D("stem", 3, w, 3, 1, 1),
		nn.NewBatchNorm("stembn", w),
		nn.NewReLU("stemrelu"),
	)
	in := w
	for s := 0; s < 3; s++ {
		mid := w << s
		out := 2 * mid
		stride := 2
		if s == 0 {
			stride = 1
		}
		net.Append(
			bottleneckBlock(fmt.Sprintf("s%db1", s+1), in, mid, out, stride),
			bottleneckBlock(fmt.Sprintf("s%db2", s+1), out, mid, out, 1),
		)
		in = out
	}
	net.Append(
		nn.NewGlobalAvgPool("gap"),
		nn.NewDense("head", in, classes),
	)
	return net
}

// CelebAResNet18 builds the model for the CelebA-like attribute task: the
// ResNet-18 trunk with a 2-class head (the experiments use softmax over
// {negative, positive}).
func CelebAResNet18() *nn.Sequential { return ResNet18(2) }

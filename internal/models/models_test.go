package models

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func dev() *device.Device { return device.New(device.CPU, device.Deterministic, nil) }

func forwardShape(t *testing.T, net *nn.Sequential, classes int) {
	t.Helper()
	net.Init(rng.New(1))
	x := tensor.New(2, 3, 8, 8)
	rng.New(2).FillNorm(x.Data(), 0, 1)
	y := net.Forward(dev(), x, true)
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != classes {
		t.Fatalf("%s output shape %v, want (2,%d)", net.Name(), y.Shape(), classes)
	}
	// And a full backward pass must run without panicking.
	_, dl := nn.SoftmaxCrossEntropy(dev(), y, make([]int, 2))
	net.Backward(dev(), dl)
}

func TestSmallCNNForwardBackward(t *testing.T) {
	forwardShape(t, SmallCNN(DefaultSmallCNN(10)), 10)
}

func TestSmallCNNWithBN(t *testing.T) {
	cfg := DefaultSmallCNN(10)
	cfg.BatchNorm = true
	net := SmallCNN(cfg)
	forwardShape(t, net, 10)
	hasBN := false
	for _, l := range net.Layers() {
		if _, ok := l.(*nn.BatchNorm); ok {
			hasBN = true
		}
	}
	if !hasBN {
		t.Fatal("BatchNorm config did not add BN layers")
	}
}

func TestSmallCNNDefaultHasNoBN(t *testing.T) {
	net := SmallCNN(DefaultSmallCNN(10))
	for _, l := range net.Layers() {
		if _, ok := l.(*nn.BatchNorm); ok {
			t.Fatal("default small CNN must not contain BatchNorm (paper Appendix C)")
		}
	}
}

func TestMediumCNNKernelSizes(t *testing.T) {
	for _, k := range []int{1, 3, 5, 7} {
		net := MediumCNN(k, 10)
		forwardShape(t, net, 10)
		for _, l := range net.Layers() {
			if c, ok := l.(*nn.Conv2D); ok && c.Kernel() != k {
				t.Fatalf("kernel %d: conv has kernel %d", k, c.Kernel())
			}
		}
	}
}

func TestMediumCNNInvalidKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kernel 4 did not panic")
		}
	}()
	MediumCNN(4, 10)
}

func TestResNet18ForwardBackward(t *testing.T) {
	forwardShape(t, ResNet18(10), 10)
}

func TestResNet18HundredClasses(t *testing.T) {
	forwardShape(t, ResNet18(100), 100)
}

func TestResNet50ForwardBackward(t *testing.T) {
	forwardShape(t, ResNet50(20), 20)
}

func TestCelebAResNet18(t *testing.T) {
	forwardShape(t, CelebAResNet18(), 2)
}

func TestModelsTrainable(t *testing.T) {
	// One SGD step must reduce loss on a tiny overfit batch for each model.
	for _, build := range []func() *nn.Sequential{
		func() *nn.Sequential { return SmallCNN(DefaultSmallCNN(4)) },
		func() *nn.Sequential { return ResNet18(4) },
	} {
		net := build()
		net.Init(rng.New(3))
		d := dev()
		x := tensor.New(8, 3, 8, 8)
		rng.New(4).FillNorm(x.Data(), 0, 1)
		labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
		var first, last float64
		for step := 0; step < 30; step++ {
			net.ZeroGrad()
			logits := net.Forward(d, x.Clone(), true)
			loss, dl := nn.SoftmaxCrossEntropy(d, logits, labels)
			if step == 0 {
				first = loss
			}
			last = loss
			net.Backward(d, dl)
			for _, p := range net.Params() {
				p.Value.AddScaled(-0.05, p.Grad)
			}
		}
		if last > first*0.9 {
			t.Errorf("%s: loss did not decrease (%.4f -> %.4f)", net.Name(), first, last)
		}
	}
}

func TestZooGraphsSane(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 10 {
		t.Fatalf("zoo has %d networks, want 10", len(zoo))
	}
	for _, g := range zoo {
		if len(g.Layers) == 0 {
			t.Fatalf("%s has no layers", g.Name)
		}
		if len(g.ConvLayers()) == 0 {
			t.Fatalf("%s has no conv layers", g.Name)
		}
		if g.TotalFwdFLOPs() <= 0 {
			t.Fatalf("%s has non-positive FLOPs", g.Name)
		}
		for _, l := range g.Layers {
			if l.InC <= 0 || l.OutC <= 0 || l.H <= 0 || l.W <= 0 || l.Stride <= 0 {
				t.Fatalf("%s layer %s has degenerate geometry: %+v", g.Name, l.Name, l)
			}
			if (l.Kind == OpConv || l.Kind == OpDepthwiseConv) && l.Kernel <= 0 {
				t.Fatalf("%s conv layer %s missing kernel", g.Name, l.Name)
			}
		}
	}
}

func TestZooRelativeFLOPsOrdering(t *testing.T) {
	// Published relationships that the cost model depends on:
	// VGG19 > VGG16, ResNet152 > ResNet50, DenseNet201 > DenseNet121,
	// and MobileNet is the lightest of the zoo.
	flops := map[string]int64{}
	for _, g := range Zoo() {
		flops[g.Name] = g.TotalFwdFLOPs()
	}
	pairs := [][2]string{
		{"VGG19", "VGG16"},
		{"ResNet152", "ResNet50"},
		{"DenseNet201", "DenseNet121"},
	}
	for _, p := range pairs {
		if flops[p[0]] <= flops[p[1]] {
			t.Errorf("%s (%d) should exceed %s (%d)", p[0], flops[p[0]], p[1], flops[p[1]])
		}
	}
	// The two mobile-class networks are far lighter than everything else.
	for name, f := range flops {
		if name == "MobileNet" || name == "EfficientNetB0" {
			if f > 2e9 {
				t.Errorf("%s FLOPs %d; mobile-class nets should be < 2 GFLOPs", name, f)
			}
			continue
		}
		if f <= flops["MobileNet"] {
			t.Errorf("%s (%d) should exceed MobileNet (%d)", name, f, flops["MobileNet"])
		}
	}
	// VGG16 is ~15.5 GFLOPs/image in the literature; accept a broad band to
	// confirm the right order of magnitude.
	if v := flops["VGG16"]; v < 10e9 || v > 40e9 {
		t.Errorf("VGG16 FLOPs %d outside plausible band", v)
	}
	// MobileNet is ~1.1 GFLOPs (2×0.57 GMACs).
	if v := flops["MobileNet"]; v < 0.5e9 || v > 3e9 {
		t.Errorf("MobileNet FLOPs %d outside plausible band", v)
	}
}

func TestVGGKernelMix(t *testing.T) {
	// VGG is all 3×3 — the property that gives it the largest deterministic
	// overhead in Figure 8a.
	for _, l := range VGG19Graph().ConvLayers() {
		if l.Kernel != 3 {
			t.Fatalf("VGG19 conv with kernel %d", l.Kernel)
		}
	}
}

func TestMobileNetMostlyPointwise(t *testing.T) {
	var pointwise, other int64
	for _, l := range MobileNetGraph().ConvLayers() {
		if l.Kind == OpConv && l.Kernel == 1 {
			pointwise += l.FwdFLOPs()
		} else {
			other += l.FwdFLOPs()
		}
	}
	if pointwise < 2*other {
		t.Fatalf("MobileNet FLOPs should be dominated by 1x1 convs: 1x1=%d other=%d", pointwise, other)
	}
}

func TestMediumCNNGraphKernels(t *testing.T) {
	for _, k := range []int{1, 3, 5, 7} {
		g := MediumCNNGraph(k)
		convs := g.ConvLayers()
		if len(convs) != 6 {
			t.Fatalf("medium CNN graph has %d convs, want 6", len(convs))
		}
		for _, l := range convs {
			if l.Kernel != k {
				t.Fatalf("graph kernel %d, want %d", l.Kernel, k)
			}
		}
		if !strings.Contains(g.Name, "MediumCNN") {
			t.Fatalf("graph name %q", g.Name)
		}
	}
}

func TestLayerSpecFLOPs(t *testing.T) {
	l := LayerSpec{Kind: OpConv, Kernel: 3, InC: 2, OutC: 4, H: 8, W: 8, Stride: 2}
	// out 4x4, 2*2*4*9*16 = 2304
	if got := l.FwdFLOPs(); got != 2304 {
		t.Fatalf("conv FLOPs %d, want 2304", got)
	}
	d := LayerSpec{Kind: OpDense, InC: 10, OutC: 5, H: 1, W: 1, Stride: 1}
	if got := d.FwdFLOPs(); got != 100 {
		t.Fatalf("dense FLOPs %d, want 100", got)
	}
}

package models

import "fmt"

// The model zoo: layer graphs of the ten networks the paper profiles on
// ImageNet-shaped inputs (3×224×224, Section 4). Graphs carry the data the
// overhead model needs — kernel families, filter sizes, channel counts and
// spatial extents — following each architecture's published configuration.
// Branching topologies (DenseNet concatenation, Inception branches) are
// linearized: the profiler only consumes the multiset of kernels, not the
// dataflow.

// VGG16Graph returns the VGG-16 layer graph (Simonyan & Zisserman 2015).
func VGG16Graph() *Graph { return vggGraph("VGG16", []int{2, 2, 3, 3, 3}) }

// VGG19Graph returns the VGG-19 layer graph.
func VGG19Graph() *Graph { return vggGraph("VGG19", []int{2, 2, 4, 4, 4}) }

func vggGraph(name string, reps []int) *Graph {
	b := newGraph(name, 3, 224, 224)
	widths := []int{64, 128, 256, 512, 512}
	for stage, n := range reps {
		for i := 0; i < n; i++ {
			b.conv(widths[stage], 3, 1).act()
		}
		b.pool(2)
	}
	b.dense(4096).act().dense(4096).act().dense(1000)
	return b.build()
}

// ResNet50Graph returns the ResNet-50 layer graph (He et al. 2016).
func ResNet50Graph() *Graph { return resnetGraph("ResNet50", []int{3, 4, 6, 3}) }

// ResNet152Graph returns the ResNet-152 layer graph.
func ResNet152Graph() *Graph { return resnetGraph("ResNet152", []int{3, 8, 36, 3}) }

func resnetGraph(name string, reps []int) *Graph {
	b := newGraph(name, 3, 224, 224)
	b.conv(64, 7, 2).bn().act().pool(2)
	mids := []int{64, 128, 256, 512}
	for stage, n := range reps {
		mid := mids[stage]
		out := 4 * mid
		for i := 0; i < n; i++ {
			stride := 1
			if i == 0 && stage > 0 {
				stride = 2
			}
			if i == 0 {
				// Projection shortcut.
				saveC, saveH, saveW := b.c, b.h, b.w
				b.conv(out, 1, stride)
				b.c, b.h, b.w = saveC, saveH, saveW
			}
			b.conv(mid, 1, 1).bn().act()
			b.conv(mid, 3, stride).bn().act()
			b.conv(out, 1, 1).bn().act()
		}
	}
	b.pool(7).dense(1000)
	return b.build()
}

// DenseNet121Graph returns the DenseNet-121 layer graph (Huang et al. 2017).
func DenseNet121Graph() *Graph { return denseNetGraph("DenseNet121", []int{6, 12, 24, 16}) }

// DenseNet201Graph returns the DenseNet-201 layer graph.
func DenseNet201Graph() *Graph { return denseNetGraph("DenseNet201", []int{6, 12, 48, 32}) }

func denseNetGraph(name string, reps []int) *Graph {
	const growth = 32
	b := newGraph(name, 3, 224, 224)
	b.conv(64, 7, 2).bn().act().pool(2)
	channels := 64
	for stage, n := range reps {
		for i := 0; i < n; i++ {
			// Dense layer: BN-ReLU-1x1(4k)-BN-ReLU-3x3(k) on concatenated input.
			b.c = channels + i*growth
			b.bn().act().conv(4*growth, 1, 1).bn().act().conv(growth, 3, 1)
		}
		channels += n * growth
		if stage < len(reps)-1 {
			// Transition: 1x1 halving conv + 2x2 pool.
			b.c = channels
			channels /= 2
			b.bn().conv(channels, 1, 1).pool(2)
		}
	}
	b.c = channels
	b.pool(7).dense(1000)
	return b.build()
}

// InceptionV3Graph returns an InceptionV3 layer graph (Szegedy et al. 2015),
// linearized: branch kernels are emitted sequentially per block.
func InceptionV3Graph() *Graph {
	b := newGraph("InceptionV3", 3, 299, 299)
	b.conv(32, 3, 2).bn().act()
	b.conv(32, 3, 1).bn().act()
	b.conv(64, 3, 1).bn().act().pool(2)
	b.conv(80, 1, 1).bn().act()
	b.conv(192, 3, 1).bn().act().pool(2)
	// 3× inception-A at 35×35 (branches: 1x1, 5x5 via 1x1, double 3x3, pool-proj).
	b.h, b.w = 35, 35
	for i := 0; i < 3; i++ {
		b.c = 288
		b.conv(64, 1, 1)
		b.c = 288
		b.conv(48, 1, 1).conv(64, 5, 1)
		b.c = 288
		b.conv(64, 1, 1).conv(96, 3, 1).conv(96, 3, 1)
		b.c = 288
		b.conv(64, 1, 1)
	}
	// Reduction-A then 4× inception-B at 17×17 with factorized 1×7 / 7×1
	// convolutions (rectangular kernels, as in the original).
	b.c, b.h, b.w = 288, 17, 17
	b.conv(384, 3, 2)
	b.h, b.w = 17, 17
	for i := 0; i < 4; i++ {
		b.c = 768
		b.conv(192, 1, 1)
		b.c = 768
		b.conv(128, 1, 1).convRect(128, 1, 7, 1).convRect(192, 7, 1, 1)
		b.c = 768
		b.conv(192, 1, 1)
	}
	// Reduction-B then 2× inception-C at 8×8.
	b.c, b.h, b.w = 768, 8, 8
	b.conv(320, 3, 2)
	b.h, b.w = 8, 8
	for i := 0; i < 2; i++ {
		b.c = 1280
		b.conv(320, 1, 1)
		b.c = 1280
		b.conv(384, 1, 1).conv(384, 3, 1)
		b.c = 1280
		b.conv(448, 1, 1).conv(384, 3, 1)
		b.c = 1280
		b.conv(192, 1, 1)
	}
	b.c, b.h, b.w = 2048, 8, 8
	b.pool(8).dense(1000)
	return b.build()
}

// XceptionGraph returns an Xception layer graph (depthwise-separable stacks).
func XceptionGraph() *Graph {
	b := newGraph("Xception", 3, 299, 299)
	b.conv(32, 3, 2).bn().act().conv(64, 3, 1).bn().act()
	widths := []int{128, 256, 728}
	for _, w := range widths {
		b.dwconv(3, 1).conv(w, 1, 1).bn().act()
		b.dwconv(3, 1).conv(w, 1, 1).bn().pool(2)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 3; j++ {
			b.act().dwconv(3, 1).conv(728, 1, 1).bn()
		}
	}
	b.dwconv(3, 1).conv(728, 1, 1).bn().act()
	b.dwconv(3, 1).conv(1024, 1, 1).bn().pool(2)
	b.dwconv(3, 1).conv(1536, 1, 1).bn().act()
	b.dwconv(3, 1).conv(2048, 1, 1).bn().act()
	b.pool(10).dense(1000)
	return b.build()
}

// MobileNetGraph returns the MobileNetV1 layer graph (Howard et al. 2017):
// a stack of depthwise-separable convolutions dominated by 1×1 kernels,
// which is why it shows the smallest deterministic overhead in Figure 8a.
func MobileNetGraph() *Graph {
	b := newGraph("MobileNet", 3, 224, 224)
	b.conv(32, 3, 2).bn().act()
	type ds struct{ out, stride int }
	cfg := []ds{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	for _, l := range cfg {
		b.dwconv(3, l.stride).bn().act().conv(l.out, 1, 1).bn().act()
	}
	b.pool(7).dense(1000)
	return b.build()
}

// EfficientNetB0Graph returns the EfficientNet-B0 layer graph (Tan & Le
// 2020): MBConv blocks with expansion, depthwise 3×3/5×5 kernels.
func EfficientNetB0Graph() *Graph {
	b := newGraph("EfficientNetB0", 3, 224, 224)
	b.conv(32, 3, 2).bn().act()
	type mb struct{ expand, out, kernel, stride, reps int }
	cfg := []mb{
		{1, 16, 3, 1, 1},
		{6, 24, 3, 2, 2},
		{6, 40, 5, 2, 2},
		{6, 80, 3, 2, 3},
		{6, 112, 5, 1, 3},
		{6, 192, 5, 2, 4},
		{6, 320, 3, 1, 1},
	}
	for _, blk := range cfg {
		for i := 0; i < blk.reps; i++ {
			stride := 1
			if i == 0 {
				stride = blk.stride
			}
			inC := b.c
			if blk.expand != 1 {
				b.conv(inC*blk.expand, 1, 1).bn().act()
			}
			b.dwconv(blk.kernel, stride).bn().act()
			b.conv(blk.out, 1, 1).bn()
		}
	}
	b.conv(1280, 1, 1).bn().act().pool(7).dense(1000)
	return b.build()
}

// MediumCNNGraph returns the six-layer medium CNN at the paper's profiling
// geometry (224×224 input, Figure 8b) with the given kernel size.
func MediumCNNGraph(kernel int) *Graph {
	if kernel != 1 && kernel != 3 && kernel != 5 && kernel != 7 {
		panic(fmt.Sprintf("models: MediumCNNGraph kernel must be 1/3/5/7, got %d", kernel))
	}
	b := newGraph(fmt.Sprintf("MediumCNN-%dx%d", kernel, kernel), 3, 224, 224)
	widths := []int{16, 32, 64, 128, 256, 512}
	for _, w := range widths {
		b.conv(w, kernel, 1).bn().act().pool(2)
	}
	b.dense(1000)
	return b.build()
}

// Zoo returns the ten profiled networks in the order of Figure 8a.
func Zoo() []*Graph {
	return []*Graph{
		VGG16Graph(), VGG19Graph(),
		ResNet50Graph(), ResNet152Graph(),
		DenseNet121Graph(), DenseNet201Graph(),
		InceptionV3Graph(), XceptionGraph(),
		MobileNetGraph(), EfficientNetB0Graph(),
	}
}

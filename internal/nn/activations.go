package nn

import (
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise. Elementwise ops involve no reductions
// and are order-insensitive, so they run identically on every device.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU builds a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Init implements Layer.
func (r *ReLU) Init(*rng.Stream) {}

// Forward implements Layer.
func (r *ReLU) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	if cap(r.mask) < len(d) {
		r.mask = make([]bool, len(d))
	}
	r.mask = r.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	dx := dy.Clone()
	d := dx.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return dx
}

// Dropout zeroes activations with probability Rate during training and
// scales survivors by 1/(1-Rate) (inverted dropout). The mask stream is an
// algorithmic noise source: it is split off the init stream, so a fixed
// seed policy (IMPL/CONTROL variants) makes dropout reproducible.
type Dropout struct {
	name   string
	rate   float64
	stream *rng.Stream
	mask   []float32
}

// NewDropout builds a dropout layer with the given drop rate in [0, 1).
func NewDropout(name string, rate float64) *Dropout {
	return &Dropout{name: name, rate: rate}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Init captures the stochastic mask stream.
func (d *Dropout) Init(stream *rng.Stream) { d.stream = stream.Split("mask") }

// Forward implements Layer.
func (d *Dropout) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.rate == 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	data := out.Data()
	if cap(d.mask) < len(data) {
		d.mask = make([]float32, len(data))
	}
	d.mask = d.mask[:len(data)]
	keep := float32(1 / (1 - d.rate))
	for i := range data {
		if d.stream.Bernoulli(d.rate) {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = keep
			data[i] *= keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return dy
	}
	dx := dy.Clone()
	data := dx.Data()
	for i := range data {
		data[i] *= d.mask[i]
	}
	return dx
}

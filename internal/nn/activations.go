package nn

import (
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// bitmask is packed boolean storage for activation masks: 1 bit per
// element instead of the 1 byte a []bool costs, so a ReLU over a conv
// feature map keeps its backward mask in 1/8th the memory.
type bitmask []uint64

// grow resizes the mask to cover n bits, reusing the backing array when
// possible. Contents are unspecified; callers set every bit they read.
func (m *bitmask) grow(n int) {
	words := (n + 63) / 64
	if cap(*m) < words {
		*m = make([]uint64, words)
		return
	}
	*m = (*m)[:words]
}

func (m bitmask) set(i int)      { m[i>>6] |= 1 << (uint(i) & 63) }
func (m bitmask) clear(i int)    { m[i>>6] &^= 1 << (uint(i) & 63) }
func (m bitmask) get(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// ReLU applies max(0, x) elementwise. Elementwise ops involve no reductions
// and are order-insensitive, so they run identically on every device.
//
// In reference mode Forward/Backward clone their inputs; once the owning
// Sequential grants in-place mode (UseWorkspace) they mutate the input
// tensor instead — bit-identical, because the per-element operation is
// unchanged and the chain guarantees nothing else reads the input again.
type ReLU struct {
	name    string
	mask    bitmask
	inPlace bool
}

// NewReLU builds a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Init implements Layer.
func (r *ReLU) Init(*rng.Stream) {}

func (r *ReLU) markInPlace() { r.inPlace = true }

// Forward implements Layer.
func (r *ReLU) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x
	if !r.inPlace {
		out = x.Clone()
	}
	d := out.Data()
	r.mask.grow(len(d))
	for i, v := range d {
		if v > 0 {
			r.mask.set(i)
		} else {
			r.mask.clear(i)
			d[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	dx := dy
	if !r.inPlace {
		dx = dy.Clone()
	}
	d := dx.Data()
	for i := range d {
		if !r.mask.get(i) {
			d[i] = 0
		}
	}
	return dx
}

// Dropout zeroes activations with probability Rate during training and
// scales survivors by 1/(1-Rate) (inverted dropout). The mask stream is an
// algorithmic noise source: it is split off the init stream, so a fixed
// seed policy (IMPL/CONTROL variants) makes dropout reproducible.
//
// Like ReLU, Dropout clones in reference mode and mutates in place once
// its Sequential grants in-place mode; the stream draw sequence and the
// per-element arithmetic are identical either way.
type Dropout struct {
	name    string
	rate    float64
	stream  *rng.Stream
	mask    []float32
	active  bool // mask valid for the last Forward (train mode, rate > 0)
	inPlace bool
}

// NewDropout builds a dropout layer with the given drop rate in [0, 1).
func NewDropout(name string, rate float64) *Dropout {
	return &Dropout{name: name, rate: rate}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Init captures the stochastic mask stream.
func (d *Dropout) Init(stream *rng.Stream) { d.stream = stream.Split("mask") }

func (d *Dropout) markInPlace() { d.inPlace = true }

// Forward implements Layer.
func (d *Dropout) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.rate == 0 {
		d.active = false
		return x
	}
	out := x
	if !d.inPlace {
		out = x.Clone()
	}
	data := out.Data()
	if cap(d.mask) < len(data) {
		d.mask = make([]float32, len(data))
	}
	d.mask = d.mask[:len(data)]
	d.active = true
	keep := float32(1 / (1 - d.rate))
	for i := range data {
		if d.stream.Bernoulli(d.rate) {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = keep
			data[i] *= keep
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if !d.active {
		return dy
	}
	dx := dy
	if !d.inPlace {
		dx = dy.Clone()
	}
	data := dx.Data()
	for i := range data {
		data[i] *= d.mask[i]
	}
	return dx
}

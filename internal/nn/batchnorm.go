package nn

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// BatchNorm normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions (Ioffe & Szegedy 2015). The paper identifies BN as the
// model-design choice that most strongly curbs noise amplification (Fig. 2);
// the batch-statistic reductions here run through the device, so BN both
// consumes and damps implementation noise.
type BatchNorm struct {
	name     string
	channels int
	momentum float32
	eps      float32

	Gamma, Beta *Param
	runMean     []float32
	runVar      []float32

	// Cached forward state for backward. lastXHat is backed by xhatBuf,
	// reused across steps; it never escapes the layer.
	lastXHat   *tensor.Tensor
	lastInvStd []float32
	lastShape  []int
	xhatBuf    []float32

	// Reduction buffers reused across steps. sumDyBuf and sumDyXBuf are
	// distinct because backward holds both reductions live at once.
	meanBuf   []float32
	varBuf    []float32
	sumBuf    []float32
	sumDyBuf  []float32
	sumDyXBuf []float32

	// Reused tensor headers for the scratch-backed views above (the
	// channel-major temporaries and xhat), so rebinding them each step
	// allocates nothing.
	xcHdr   tensor.Tensor
	dyCHdr  tensor.Tensor
	prodHdr tensor.Tensor
	xhatHdr tensor.Tensor
}

// NewBatchNorm builds a batch-normalization layer over c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{
		name: name, channels: c, momentum: 0.9, eps: 1e-5,
		Gamma:   newParam(name+"/gamma", c),
		Beta:    newParam(name+"/beta", c),
		runMean: make([]float32, c),
		runVar:  make([]float32, c),
	}
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Init sets gamma to 1, beta to 0, and running stats to the identity
// transform. BN has no random initialization.
func (b *BatchNorm) Init(*rng.Stream) {
	b.Gamma.Value.Fill(1)
	b.Beta.Value.Zero()
	for i := range b.runMean {
		b.runMean[i] = 0
		b.runVar[i] = 1
	}
}

// channelMajor copies an NCHW tensor into a (C, N*H*W) matrix backed by the
// caller-supplied scratch and header (every element is overwritten).
func channelMajor(x *tensor.Tensor, scr []float32, hdr *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	out := tensor.FromSliceInto(hdr, scr[:n*c*hw], c, n*hw)
	xd, od := x.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			src := xd[(ni*c+ci)*hw : (ni*c+ci+1)*hw]
			dst := od[(ci*n+ni)*hw : (ci*n+ni+1)*hw]
			copy(dst, src)
		}
	}
	return out
}

// Forward implements Layer.
func (b *BatchNorm) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != b.channels {
		panic(fmt.Sprintf("nn: BatchNorm %s input must be (N,%d,H,W), got %v", b.name, b.channels, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m := float32(n * h * w)

	var mean, variance []float32
	if train {
		// Batch statistics via device reductions (order-sensitive). The
		// channel-major temporary is pooled scratch, dead by return.
		scr := tensor.GetScratch(n * c * h * w)
		xc := channelMajor(x, scr, &b.xcHdr)
		b.sumBuf = dev.SumRowsInto(xc, b.sumBuf)
		b.meanBuf = scratchFloats(b.meanBuf, c)
		mean = b.meanBuf
		for i, s := range b.sumBuf[:c] {
			mean[i] = s / m
		}
		// E[(x-mean)^2] per channel.
		sq := xc // reuse: subtract mean, square in place
		sd := sq.Data()
		cols := n * h * w
		for ci := 0; ci < c; ci++ {
			mu := mean[ci]
			row := sd[ci*cols : (ci+1)*cols]
			for i, v := range row {
				d := v - mu
				row[i] = d * d
			}
		}
		b.sumBuf = dev.SumRowsInto(sq, b.sumBuf) // sums dead; reuse buffer
		tensor.PutScratch(scr)
		b.varBuf = scratchFloats(b.varBuf, c)
		variance = b.varBuf
		for i, s := range b.sumBuf[:c] {
			variance[i] = s / m
		}
		// Update running stats.
		for i := range b.runMean {
			b.runMean[i] = b.momentum*b.runMean[i] + (1-b.momentum)*mean[i]
			b.runVar[i] = b.momentum*b.runVar[i] + (1-b.momentum)*variance[i]
		}
	} else {
		mean, variance = b.runMean, b.runVar
	}

	b.lastInvStd = scratchFloats(b.lastInvStd, c)
	invStd := b.lastInvStd
	for i := range invStd {
		invStd[i] = 1 / float32(math.Sqrt(float64(variance[i]+b.eps)))
	}

	out := dev.Alloc(n, c, h, w)
	b.xhatBuf = scratchFloats(b.xhatBuf, n*c*h*w)
	xhat := tensor.FromSliceInto(&b.xhatHdr, b.xhatBuf, n, c, h, w)
	xd, od, hd := x.Data(), out.Data(), xhat.Data()
	gd, bd := b.Gamma.Value.Data(), b.Beta.Value.Data()
	hw := h * w
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			mu, is, g, be := mean[ci], invStd[ci], gd[ci], bd[ci]
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				xh := (xd[base+i] - mu) * is
				hd[base+i] = xh
				od[base+i] = g*xh + be
			}
		}
	}
	if train {
		b.lastXHat = xhat
		b.lastShape = append(b.lastShape[:0], x.Shape()...)
	} else {
		b.lastXHat = nil
	}
	return out
}

// Backward implements Layer (training-mode statistics).
func (b *BatchNorm) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic(fmt.Sprintf("nn: BatchNorm %s Backward before training-mode Forward", b.name))
	}
	n, c, h, w := b.lastShape[0], b.lastShape[1], b.lastShape[2], b.lastShape[3]
	hw := h * w
	m := float32(n * hw)

	// Per-channel reductions: sum(dy) and sum(dy * xhat). Both channel-major
	// temporaries are pooled scratch, released after the reductions.
	dyScr := tensor.GetScratch(n * c * hw)
	dyC := channelMajor(dy, dyScr, &b.dyCHdr)
	prodScr := tensor.GetScratch(n * c * hw)
	prod := channelMajor(b.lastXHat, prodScr, &b.prodHdr)
	prod.MulElem(dyC)
	b.sumDyBuf = dev.SumRowsInto(dyC, b.sumDyBuf)
	b.sumDyXBuf = dev.SumRowsInto(prod, b.sumDyXBuf)
	sumDy, sumDyXhat := b.sumDyBuf, b.sumDyXBuf
	tensor.PutScratch(dyScr)
	tensor.PutScratch(prodScr)

	// Parameter gradients.
	gg, bg := b.Gamma.Grad.Data(), b.Beta.Grad.Data()
	for i := 0; i < c; i++ {
		gg[i] += sumDyXhat[i]
		bg[i] += sumDy[i]
	}

	// dx = (gamma*invStd/m) * (m*dy - sum(dy) - xhat*sum(dy*xhat))
	dx := dev.Alloc(n, c, h, w)
	dxd, dyd, hd := dx.Data(), dy.Data(), b.lastXHat.Data()
	gd := b.Gamma.Value.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			coef := gd[ci] * b.lastInvStd[ci] / m
			sDy, sDyX := sumDy[ci], sumDyXhat[ci]
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				dxd[base+i] = coef * (m*dyd[base+i] - sDy - hd[base+i]*sDyX)
			}
		}
	}
	b.lastXHat = nil
	return dx
}

// scratchFloats grows a layer-owned float buffer to length n, reusing its
// backing array when possible. Contents are unspecified.
func scratchFloats(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// RunningStats exposes the running mean and variance (for tests).
func (b *BatchNorm) RunningStats() (mean, variance []float32) {
	return b.runMean, b.runVar
}

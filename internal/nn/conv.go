package nn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution in NCHW layout, lowered to GEMM via im2col —
// the same lowering cuDNN's implicit-GEMM algorithms use. The weight is
// stored as (OutC, InC*KH*KW); bias is per output channel. The column
// matrix is never materialized: forward and backward-weights GEMMs generate
// im2col panels directly into the device's pack scratch
// (device.MatMulIm2Col / MatMulIm2ColT), which is safe because no layer
// mutates a produced activation, so the retained input x still holds the
// forward values at backward time.
type Conv2D struct {
	name                string
	inC, outC           int
	kh, kw, stride, pad int
	W, B                *Param
	lastX               *tensor.Tensor  // input retained for backward-weights
	lastGeom            tensor.ConvGeom // geometry of the last forward
	haveForward         bool

	// Scratch reused across training steps. dxBuf backs the backward-data
	// output and must stay layer-owned: the returned gradient aliases it
	// until the caller consumes it. dbBuf holds the bias-gradient
	// reduction. dxHdr and dyHdr are reused tensor headers for the
	// backward-data output and the gradient's GEMM-layout view.
	dxBuf []float32
	dbBuf []float32
	dxHdr tensor.Tensor
	dyHdr tensor.Tensor
}

// NewConv2D builds a convolution layer. kernel is the (square) filter size.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	c := &Conv2D{
		name: name, inC: inC, outC: outC,
		kh: kernel, kw: kernel, stride: stride, pad: pad,
	}
	c.W = newParam(name+"/W", outC, inC*kernel*kernel)
	c.B = newParam(name+"/b", outC)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Init uses He initialization (the network's nonlinearity is ReLU).
func (c *Conv2D) Init(stream *rng.Stream) {
	fanIn := c.inC * c.kh * c.kw
	stream.Split("W").HeNormal(c.W.Value.Data(), fanIn)
	c.B.Value.Zero()
}

// Kernel returns the filter size (square).
func (c *Conv2D) Kernel() int { return c.kh }

// OutChannels returns the number of output channels.
func (c *Conv2D) OutChannels() int { return c.outC }

// Forward implements Layer.
func (c *Conv2D) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D %s input must be NCHW, got %v", c.name, x.Shape()))
	}
	g := tensor.ConvGeom{
		Batch: x.Dim(0), InC: c.inC, InH: x.Dim(2), InW: x.Dim(3),
		OutC: c.outC, KH: c.kh, KW: c.kw, Stride: c.stride, Pad: c.pad,
	}
	if x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.inC, x.Dim(1)))
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	// yMat: (OutC, N*OH*OW) = W × im2col(x), with the column matrix
	// generated panel-by-panel inside the kernel.
	yMat := dev.MatMulIm2Col(c.W.Value, x, g)
	addBiasRows(yMat, c.B.Value.Data())

	c.lastX, c.lastGeom, c.haveForward = x, g, true
	return matToNCHW(dev, yMat, g)
}

// Backward implements Layer.
func (c *Conv2D) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if !c.haveForward {
		panic(fmt.Sprintf("nn: Conv2D %s Backward before Forward", c.name))
	}
	g := c.lastGeom
	dyScr := tensor.GetScratch(g.OutC * g.ColCols())
	dyMat := nchwToMat(dy, g, dyScr, &c.dyHdr) // (OutC, N*OH*OW)

	// dW = dyMat × im2col(x)^T (fused, colᵀ never materialized);
	// dB = row sums of dyMat.
	dW := dev.MatMulIm2ColT(dyMat, c.lastX, g)
	c.W.Grad.Add(dW)
	c.dbBuf = dev.SumRowsInto(dyMat, c.dbBuf)
	bg := c.B.Grad.Data()
	for i, v := range c.dbBuf {
		bg[i] += v
	}

	// dcol = W^T × dyMat, then scatter back to image space (atomicAdd sim).
	dcol := dev.MatMul(c.W.Value, dyMat, true, false)
	tensor.PutScratch(dyScr)
	n := g.Batch * g.InC * g.InH * g.InW
	if cap(c.dxBuf) < n {
		c.dxBuf = make([]float32, n)
	}
	dx := tensor.FromSliceInto(&c.dxHdr, c.dxBuf[:n], g.Batch, g.InC, g.InH, g.InW)
	dx.Zero() // Col2Im accumulates; the scratch holds last step's values
	dev.Col2Im(dcol, g, dx)
	c.lastX, c.haveForward = nil, false
	return dx
}

// addBiasRows adds bias[r] to every element of row r.
func addBiasRows(m *tensor.Tensor, bias []float32) {
	rows, cols := m.Dim(0), m.Dim(1)
	d := m.Data()
	for r := 0; r < rows; r++ {
		b := bias[r]
		row := d[r*cols : (r+1)*cols]
		for i := range row {
			row[i] += b
		}
	}
}

// matToNCHW reorders a (OutC, N*OH*OW) GEMM output into (N, OutC, OH, OW).
// The output is device-allocated (workspace-backed when one is attached)
// and fully overwritten.
func matToNCHW(dev *device.Device, m *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	outH, outW := g.OutH(), g.OutW()
	hw := outH * outW
	out := dev.Alloc(g.Batch, g.OutC, outH, outW)
	md, od := m.Data(), out.Data()
	for c := 0; c < g.OutC; c++ {
		for n := 0; n < g.Batch; n++ {
			src := md[(c*g.Batch+n)*hw : (c*g.Batch+n+1)*hw]
			dst := od[(n*g.OutC+c)*hw : (n*g.OutC+c+1)*hw]
			copy(dst, src)
		}
	}
	return out
}

// nchwToMat reorders (N, OutC, OH, OW) gradients into GEMM layout
// (OutC, N*OH*OW), backed by the caller-supplied scratch and header.
func nchwToMat(t *tensor.Tensor, g tensor.ConvGeom, scr []float32, hdr *tensor.Tensor) *tensor.Tensor {
	outH, outW := g.OutH(), g.OutW()
	hw := outH * outW
	out := tensor.FromSliceInto(hdr, scr[:g.OutC*g.Batch*hw], g.OutC, g.Batch*hw)
	td, od := t.Data(), out.Data()
	for n := 0; n < g.Batch; n++ {
		for c := 0; c < g.OutC; c++ {
			src := td[(n*g.OutC+c)*hw : (n*g.OutC+c+1)*hw]
			dst := od[(c*g.Batch+n)*hw : (c*g.Batch+n+1)*hw]
			copy(dst, src)
		}
	}
	return out
}

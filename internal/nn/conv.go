package nn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution in NCHW layout, lowered to GEMM via im2col —
// the same lowering cuDNN's implicit-GEMM algorithms use. The weight is
// stored as (OutC, InC*KH*KW); bias is per output channel.
type Conv2D struct {
	name                string
	inC, outC           int
	kh, kw, stride, pad int
	W, B                *Param
	lastCol             *tensor.Tensor  // cached im2col matrix
	lastGeom            tensor.ConvGeom // geometry of the last forward
	haveForward         bool

	// Scratch backing storage reused across training steps: the im2col
	// matrix (the largest allocation in the network) and the backward-data
	// output. Both are fully overwritten each use — Im2Col writes every
	// element including padding zeros, and dx is zeroed before the col2im
	// scatter — and neither escapes the step: downstream layers never
	// retain gradient tensors, only forward activations.
	colBuf []float32
	dxBuf  []float32
}

// NewConv2D builds a convolution layer. kernel is the (square) filter size.
func NewConv2D(name string, inC, outC, kernel, stride, pad int) *Conv2D {
	c := &Conv2D{
		name: name, inC: inC, outC: outC,
		kh: kernel, kw: kernel, stride: stride, pad: pad,
	}
	c.W = newParam(name+"/W", outC, inC*kernel*kernel)
	c.B = newParam(name+"/b", outC)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Init uses He initialization (the network's nonlinearity is ReLU).
func (c *Conv2D) Init(stream *rng.Stream) {
	fanIn := c.inC * c.kh * c.kw
	stream.Split("W").HeNormal(c.W.Value.Data(), fanIn)
	c.B.Value.Zero()
}

// Kernel returns the filter size (square).
func (c *Conv2D) Kernel() int { return c.kh }

// OutChannels returns the number of output channels.
func (c *Conv2D) OutChannels() int { return c.outC }

// Forward implements Layer.
func (c *Conv2D) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2D %s input must be NCHW, got %v", c.name, x.Shape()))
	}
	g := tensor.ConvGeom{
		Batch: x.Dim(0), InC: c.inC, InH: x.Dim(2), InW: x.Dim(3),
		OutC: c.outC, KH: c.kh, KW: c.kw, Stride: c.stride, Pad: c.pad,
	}
	if x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: Conv2D %s expects %d input channels, got %d", c.name, c.inC, x.Dim(1)))
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	rows, cols := g.ColRows(), g.ColCols()
	if cap(c.colBuf) < rows*cols {
		c.colBuf = make([]float32, rows*cols)
	}
	col := tensor.FromSlice(c.colBuf[:rows*cols], rows, cols)
	tensor.Im2Col(x, g, col)
	// yMat: (OutC, N*OH*OW)
	yMat := dev.MatMul(c.W.Value, col, false, false)
	addBiasRows(yMat, c.B.Value.Data())

	c.lastCol, c.lastGeom, c.haveForward = col, g, true
	return matToNCHW(yMat, g)
}

// Backward implements Layer.
func (c *Conv2D) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if !c.haveForward {
		panic(fmt.Sprintf("nn: Conv2D %s Backward before Forward", c.name))
	}
	g := c.lastGeom
	dyMat := nchwToMat(dy, g) // (OutC, N*OH*OW)

	// dW = dyMat × col^T; dB = row sums of dyMat.
	dW := dev.MatMul(dyMat, c.lastCol, false, true)
	c.W.Grad.Add(dW)
	db := dev.SumRows(dyMat)
	bg := c.B.Grad.Data()
	for i, v := range db {
		bg[i] += v
	}

	// dcol = W^T × dyMat, then scatter back to image space (atomicAdd sim).
	dcol := dev.MatMul(c.W.Value, dyMat, true, false)
	n := g.Batch * g.InC * g.InH * g.InW
	if cap(c.dxBuf) < n {
		c.dxBuf = make([]float32, n)
	}
	dx := tensor.FromSlice(c.dxBuf[:n], g.Batch, g.InC, g.InH, g.InW)
	dx.Zero() // Col2Im accumulates; the scratch holds last step's values
	dev.Col2Im(dcol, g, dx)
	c.haveForward = false
	return dx
}

// addBiasRows adds bias[r] to every element of row r.
func addBiasRows(m *tensor.Tensor, bias []float32) {
	rows, cols := m.Dim(0), m.Dim(1)
	d := m.Data()
	for r := 0; r < rows; r++ {
		b := bias[r]
		row := d[r*cols : (r+1)*cols]
		for i := range row {
			row[i] += b
		}
	}
}

// matToNCHW reorders a (OutC, N*OH*OW) GEMM output into (N, OutC, OH, OW).
func matToNCHW(m *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	outH, outW := g.OutH(), g.OutW()
	hw := outH * outW
	out := tensor.New(g.Batch, g.OutC, outH, outW)
	md, od := m.Data(), out.Data()
	for c := 0; c < g.OutC; c++ {
		for n := 0; n < g.Batch; n++ {
			src := md[(c*g.Batch+n)*hw : (c*g.Batch+n+1)*hw]
			dst := od[(n*g.OutC+c)*hw : (n*g.OutC+c+1)*hw]
			copy(dst, src)
		}
	}
	return out
}

// nchwToMat reorders (N, OutC, OH, OW) gradients into GEMM layout
// (OutC, N*OH*OW).
func nchwToMat(t *tensor.Tensor, g tensor.ConvGeom) *tensor.Tensor {
	outH, outW := g.OutH(), g.OutW()
	hw := outH * outW
	out := tensor.New(g.OutC, g.Batch*hw)
	td, od := t.Data(), out.Data()
	for n := 0; n < g.Batch; n++ {
		for c := 0; c < g.OutC; c++ {
			src := td[(n*g.OutC+c)*hw : (n*g.OutC+c+1)*hw]
			dst := od[(c*g.Batch+n)*hw : (c*g.Batch+n+1)*hw]
			copy(dst, src)
		}
	}
	return out
}

package nn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b with W of shape (Out, In).
type Dense struct {
	name    string
	in, out int
	W, B    *Param
	lastX   *tensor.Tensor
	dbBuf   []float32 // bias-gradient reduction, reused across steps
}

// NewDense builds a fully connected layer.
func NewDense(name string, in, out int) *Dense {
	return &Dense{
		name: name, in: in, out: out,
		W: newParam(name+"/W", out, in),
		B: newParam(name+"/b", out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Init uses Glorot uniform initialization (dense heads in the paper's small
// CNNs follow the TF default).
func (d *Dense) Init(stream *rng.Stream) {
	stream.Split("W").GlorotUniform(d.W.Value.Data(), d.in, d.out)
	d.B.Value.Zero()
}

// Forward implements Layer. x must be (N, In).
func (d *Dense) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		panic(fmt.Sprintf("nn: Dense %s input must be (N, %d), got %v", d.name, d.in, x.Shape()))
	}
	d.lastX = x
	y := dev.MatMul(x, d.W.Value, false, true) // (N, Out)
	yd := y.Data()
	bd := d.B.Value.Data()
	n := y.Dim(0)
	for r := 0; r < n; r++ {
		row := yd[r*d.out : (r+1)*d.out]
		for i := range row {
			row[i] += bd[i]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic(fmt.Sprintf("nn: Dense %s Backward before Forward", d.name))
	}
	// dW = dyᵀ × x, dB = column sums of dy, dx = dy × W.
	dW := dev.MatMul(dy, d.lastX, true, false)
	d.W.Grad.Add(dW)
	d.dbBuf = dev.SumColsInto(dy, d.dbBuf)
	bg := d.B.Grad.Data()
	for i, v := range d.dbBuf {
		bg[i] += v
	}
	dx := dev.MatMul(dy, d.W.Value, false, false)
	d.lastX = nil
	return dx
}

// Flatten reshapes (N, ...) to (N, prod(rest)). It has no parameters.
// fwdHdr/bwdHdr are reused headers for the forward and backward views;
// they are distinct because the forward view is retained downstream (as
// Dense's lastX) until the backward view is made.
type Flatten struct {
	name      string
	lastShape []int
	fwdHdr    tensor.Tensor
	bwdHdr    tensor.Tensor
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Init implements Layer.
func (f *Flatten) Init(*rng.Stream) {}

// Forward implements Layer.
func (f *Flatten) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], x.Shape()...)
	return x.ReshapeInto(&f.fwdHdr, x.Dim(0), -1)
}

// Backward implements Layer.
func (f *Flatten) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	return dy.ReshapeInto(&f.bwdHdr, f.lastShape...)
}

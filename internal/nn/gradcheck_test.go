package nn

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// lossOf runs a forward pass and returns the scalar loss.
func lossOf(dev *device.Device, net *Sequential, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(dev, x.Clone(), true)
	loss, _ := SoftmaxCrossEntropy(dev, logits, labels)
	return loss
}

// checkGradients compares analytic parameter gradients against central
// finite differences. Float32 forward passes limit attainable precision, so
// tolerances are loose but still catch sign errors, missing terms, and
// off-by-scale bugs.
func checkGradients(t *testing.T, net *Sequential, x *tensor.Tensor, labels []int, samples int) {
	t.Helper()
	dev := device.New(device.CPU, device.Deterministic, nil)
	net.ZeroGrad()
	logits := net.Forward(dev, x.Clone(), true)
	_, dlogits := SoftmaxCrossEntropy(dev, logits, labels)
	net.Backward(dev, dlogits)

	numericAt := func(p *Param, i int, eps float64) float64 {
		vd := p.Value.Data()
		orig := vd[i]
		vd[i] = orig + float32(eps)
		lp := lossOf(dev, net, x, labels)
		vd[i] = orig - float32(eps)
		lm := lossOf(dev, net, x, labels)
		vd[i] = orig
		return (lp - lm) / (2 * eps)
	}

	sampler := rng.New(12345)
	for _, p := range net.Params() {
		gd := p.Grad.Data()
		n := p.Value.Len()
		for s := 0; s < samples && s < n; s++ {
			i := sampler.Intn(n)
			// Two step sizes: if the estimates disagree with each other the
			// perturbation crosses a ReLU/max kink and the sample is not a
			// valid derivative estimate — skip it.
			n1 := numericAt(p, i, 1e-2)
			n2 := numericAt(p, i, 2.5e-3)
			analytic := float64(gd[i])
			scale := math.Max(math.Abs(n2), math.Abs(analytic))
			if scale < 1e-4 {
				continue // both effectively zero at float32 resolution
			}
			if math.Abs(n1-n2) > 0.2*scale {
				continue // kink crossing: finite difference unreliable here
			}
			diff := math.Abs(n2 - analytic)
			if diff/scale > 0.15 && diff > 1e-3 {
				t.Errorf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, n2)
			}
		}
	}
}

func smallInput(seed uint64, n, c, h, w int) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	rng.New(seed).FillNorm(x.Data(), 0, 1)
	return x
}

func TestGradCheckDense(t *testing.T) {
	net := NewSequential("dense",
		NewFlatten("flat"),
		NewDense("fc1", 12, 8),
		NewReLU("relu1"),
		NewDense("fc2", 8, 3),
	)
	net.Init(rng.New(1))
	x := smallInput(2, 4, 3, 2, 2)
	checkGradients(t, net, x, []int{0, 1, 2, 1}, 12)
}

func TestGradCheckConv(t *testing.T) {
	net := NewSequential("conv",
		NewConv2D("c1", 2, 3, 3, 1, 1),
		NewReLU("r1"),
		NewFlatten("flat"),
		NewDense("fc", 3*4*4, 3),
	)
	net.Init(rng.New(3))
	x := smallInput(4, 2, 2, 4, 4)
	checkGradients(t, net, x, []int{0, 2}, 12)
}

func TestGradCheckConvStride(t *testing.T) {
	net := NewSequential("convs",
		NewConv2D("c1", 1, 2, 3, 2, 1),
		NewFlatten("flat"),
		NewDense("fc", 2*3*3, 2),
	)
	net.Init(rng.New(4))
	x := smallInput(5, 2, 1, 6, 6)
	checkGradients(t, net, x, []int{1, 0}, 12)
}

func TestGradCheckBatchNorm(t *testing.T) {
	net := NewSequential("bn",
		NewConv2D("c1", 1, 4, 3, 1, 1),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewFlatten("flat"),
		NewDense("fc", 4*4*4, 3),
	)
	net.Init(rng.New(5))
	x := smallInput(6, 4, 1, 4, 4)
	checkGradients(t, net, x, []int{0, 1, 2, 0}, 10)
}

func TestGradCheckMaxPool(t *testing.T) {
	net := NewSequential("pool",
		NewConv2D("c1", 1, 3, 3, 1, 1),
		NewMaxPool2D("p1", 2),
		NewFlatten("flat"),
		NewDense("fc", 3*2*2, 2),
	)
	net.Init(rng.New(7))
	x := smallInput(8, 2, 1, 4, 4)
	checkGradients(t, net, x, []int{0, 1}, 10)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	net := NewSequential("gap",
		NewConv2D("c1", 2, 4, 3, 1, 1),
		NewGlobalAvgPool("gap1"),
		NewDense("fc", 4, 3),
	)
	net.Init(rng.New(9))
	x := smallInput(10, 2, 2, 4, 4)
	checkGradients(t, net, x, []int{2, 0}, 10)
}

func TestGradCheckResidualIdentity(t *testing.T) {
	body := NewSequential("body",
		NewConv2D("c1", 3, 3, 3, 1, 1),
		NewBatchNorm("bn1", 3),
		NewReLU("r1"),
		NewConv2D("c2", 3, 3, 3, 1, 1),
		NewBatchNorm("bn2", 3),
	)
	net := NewSequential("res",
		NewResidual("block", body, nil),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 3, 2),
	)
	net.Init(rng.New(11))
	x := smallInput(12, 2, 3, 4, 4)
	checkGradients(t, net, x, []int{0, 1}, 10)
}

func TestGradCheckResidualProjection(t *testing.T) {
	body := NewSequential("body",
		NewConv2D("c1", 2, 4, 3, 2, 1),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewConv2D("c2", 4, 4, 3, 1, 1),
		NewBatchNorm("bn2", 4),
	)
	short := NewSequential("short",
		NewConv2D("proj", 2, 4, 1, 2, 0),
		NewBatchNorm("projbn", 4),
	)
	net := NewSequential("res",
		NewResidual("block", body, short),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 2),
	)
	net.Init(rng.New(13))
	x := smallInput(14, 2, 2, 4, 4)
	checkGradients(t, net, x, []int{1, 0}, 10)
}

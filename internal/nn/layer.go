// Package nn implements the neural-network layers, losses and containers
// used by every experiment in the repository: 2-D convolution (via
// im2col/GEMM, the same lowering cuDNN uses), dense layers, ReLU, max and
// global-average pooling, batch normalization, dropout, and softmax
// cross-entropy.
//
// Every reduction on the training path — GEMMs, bias gradients,
// normalization statistics, the col2im scatter in the convolution backward
// pass, loss averaging — is routed through a device.Device so that the
// simulated accelerator controls floating-point accumulation order. That is
// the hook the paper's IMPL noise flows through.
package nn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// newParam allocates a parameter and matching gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward caches whatever
// Backward needs; Backward consumes the cached state, accumulates parameter
// gradients, and returns the gradient with respect to the layer input.
// Layers are stateful and owned by exactly one training replica.
type Layer interface {
	// Name identifies the layer instance (used to derive init streams).
	Name() string
	// Forward computes the layer output. train selects training behaviour
	// (batch statistics, active dropout).
	Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes input gradients from output gradients.
	Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (may be empty).
	Params() []*Param
	// Init initializes parameters and stochastic state from the stream.
	Init(stream *rng.Stream)
}

// Sequential chains layers. A Sequential optionally owns an activation
// workspace (UseWorkspace): with one attached, in-place-capable layers
// (ReLU, Dropout, the residual gradient mask) take ownership of their
// inputs and mutate them instead of cloning — safe because the graph is a
// linear chain and no layer retains a produced activation (DESIGN.md §15).
// Without a workspace the network keeps the Clone-based reference
// semantics, which the property tests pin the in-place path against.
type Sequential struct {
	name   string
	layers []Layer
	params []*Param // cached Params() result; reset by Append
	ws     *tensor.Workspace
}

// inPlaceMarker is implemented by layers that can switch to in-place
// activation updates once a workspace guarantees ownership of the chain.
type inPlaceMarker interface {
	markInPlace()
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name returns the network name.
func (s *Sequential) Name() string { return s.name }

// Layers exposes the chain (read-only use expected).
func (s *Sequential) Layers() []Layer { return s.layers }

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) {
	s.layers = append(s.layers, layers...)
	s.params = nil
	if s.ws != nil {
		s.markInPlace()
	}
}

// UseWorkspace switches the network into workspace mode and returns the
// workspace: activations and kernel outputs should be drawn from it (the
// training loop attaches it to the device), and in-place-capable layers
// mutate their inputs. The caller resets the workspace at batch
// boundaries. Idempotent; the reference Clone-based semantics apply only
// to networks that never call this.
func (s *Sequential) UseWorkspace() *tensor.Workspace {
	if s.ws == nil {
		s.ws = tensor.NewWorkspace()
		s.markInPlace()
	}
	return s.ws
}

// Workspace returns the attached workspace, or nil for a reference-mode
// network.
func (s *Sequential) Workspace() *tensor.Workspace { return s.ws }

// markInPlace implements inPlaceMarker: nested Sequentials (residual bodies
// and shortcuts) propagate the in-place grant without owning a workspace.
func (s *Sequential) markInPlace() {
	for _, l := range s.layers {
		if m, ok := l.(inPlaceMarker); ok {
			m.markInPlace()
		}
	}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(dev, x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		dy = s.layers[i].Backward(dev, dy)
	}
	return dy
}

// Params collects every trainable parameter in chain order. The slice is
// computed once and cached (Append invalidates it): the optimizer and
// ZeroGrad call this every batch, so it must not allocate at steady state.
// Callers must not mutate the returned slice.
func (s *Sequential) Params() []*Param {
	if s.params == nil {
		for _, l := range s.layers {
			s.params = append(s.params, l.Params()...)
		}
	}
	return s.params
}

// Init initializes every layer from sub-streams split off the given stream,
// keyed by layer name, so initialization is independent of layer order and
// of how many draws other layers consume.
func (s *Sequential) Init(stream *rng.Stream) {
	seen := map[string]bool{}
	for _, l := range s.layers {
		if seen[l.Name()] {
			panic(fmt.Sprintf("nn: duplicate layer name %q; init streams would collide", l.Name()))
		}
		seen[l.Name()] = true
		l.Init(stream.Split(l.Name()))
	}
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// WeightVector flattens all parameter values into one new slice, in
// deterministic chain order. Used by the stability metrics (L2 distance).
func (s *Sequential) WeightVector() []float32 {
	var n int
	ps := s.Params()
	for _, p := range ps {
		n += p.Value.Len()
	}
	out := make([]float32, 0, n)
	for _, p := range ps {
		out = append(out, p.Value.Data()...)
	}
	return out
}

// NumParams returns the total trainable parameter count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}

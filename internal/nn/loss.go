package nn

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes mean softmax cross-entropy over a batch of
// logits (N, K) against integer labels, returning the scalar loss and the
// gradient with respect to the logits. The final loss averaging runs
// through the device's reduction path. The logits are left intact and the
// gradient is freshly allocated — this is the reference form; the training
// loop uses SoftmaxCrossEntropyInPlace.
func SoftmaxCrossEntropy(dev *device.Device, logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := checkLogits(logits, labels)
	dlogits := tensor.New(n, k)
	loss := softmaxCE(dev, logits.Data(), dlogits.Data(), n, k, labels)
	return loss, dlogits
}

// SoftmaxCrossEntropyInPlace is SoftmaxCrossEntropy writing the gradient
// over the logits tensor itself (returned), destroying the logits. The
// per-element arithmetic and the stream/reduction behaviour are identical
// to the reference form — softmaxCE reads each logit before overwriting it
// — so losses and gradients are bit-identical (pinned by TestSoftmaxCEInPlaceMatchesReference).
func SoftmaxCrossEntropyInPlace(dev *device.Device, logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := checkLogits(logits, labels)
	loss := softmaxCE(dev, logits.Data(), logits.Data(), n, k, labels)
	return loss, logits
}

func checkLogits(logits *tensor.Tensor, labels []int) (n, k int) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: logits must be (N, K), got %v", logits.Shape()))
	}
	n, k = logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	return n, k
}

// softmaxCE is the shared kernel: gradient rows are written to gd, which
// may alias ld (the in-place form). Each ld element is read before the
// aliased gd element is written — the label logit is captured before the
// exp loop — so aliasing never changes a result bit.
func softmaxCE(dev *device.Device, ld, gd []float32, n, k int, labels []int) float64 {
	perExample := tensor.GetScratch(n)
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := ld[i*k : (i+1)*k]
		grow := gd[i*k : (i+1)*k]
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		// Numerically stable softmax.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		vy := row[y]
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			grow[j] = float32(e)
			sum += e
		}
		logZ := math.Log(sum)
		perExample[i] = float32(logZ - float64(vy-maxV))
		inv := float32(1 / sum)
		for j := range grow {
			grow[j] *= inv * invN
		}
		grow[y] -= invN
	}
	loss := float64(dev.ReduceSum(perExample)) / float64(n)
	tensor.PutScratch(perExample)
	return loss
}

// SigmoidBCE computes mean binary cross-entropy with logits for multi-label
// targets (N, K) in {0,1}, returning the scalar loss and dlogits. Used by
// the CelebA-like attribute task.
func SigmoidBCE(dev *device.Device, logits *tensor.Tensor, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	if !tensor.SameShape(logits, targets) {
		panic(fmt.Sprintf("nn: BCE shape mismatch %v vs %v", logits.Shape(), targets.Shape()))
	}
	n, k := logits.Dim(0), logits.Dim(1)
	dlogits := tensor.New(n, k)
	perExample := make([]float32, n)
	ld, td, gd := logits.Data(), targets.Data(), dlogits.Data()
	invNK := 1 / float32(n*k)
	for i := 0; i < n; i++ {
		var rowLoss float64
		for j := 0; j < k; j++ {
			idx := i*k + j
			z, t := float64(ld[idx]), float64(td[idx])
			// loss = max(z,0) - z*t + log(1+exp(-|z|)) (stable form)
			rowLoss += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
			s := 1 / (1 + math.Exp(-z))
			gd[idx] = float32(s-t) * invNK
		}
		perExample[i] = float32(rowLoss) / float32(k)
	}
	loss := float64(dev.ReduceSum(perExample)) / float64(n)
	return loss, dlogits
}

// Sigmoid applies the logistic function elementwise into a new tensor.
func Sigmoid(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

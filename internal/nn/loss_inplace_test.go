package nn

import (
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestSoftmaxCEInPlaceMatchesReference pins that the in-place loss —
// gradient written over the logits storage — produces bit-identical losses
// and gradients to the reference form, including in Default mode where the
// final averaging draws scheduler entropy (both forms must draw the same
// sequence).
func TestSoftmaxCEInPlaceMatchesReference(t *testing.T) {
	for _, mode := range []device.Mode{device.Deterministic, device.Default} {
		t.Run(mode.String(), func(t *testing.T) {
			mkDev := func() *device.Device {
				var entropy *rng.Stream
				if mode == device.Default {
					entropy = rng.New(11)
				}
				return device.New(device.V100, mode, entropy)
			}
			devA, devB := mkDev(), mkDev()
			s := rng.New(3)
			for trial := 0; trial < 10; trial++ {
				n, k := 1+s.Intn(64), 2+s.Intn(20)
				logits := tensor.New(n, k)
				ld := logits.Data()
				labels := make([]int, n)
				for i := range ld {
					ld[i] = float32(s.Float64()*20 - 10)
				}
				for i := range labels {
					labels[i] = s.Intn(k)
				}
				inPlace := logits.Clone()

				wantLoss, wantGrad := SoftmaxCrossEntropy(devA, logits, labels)
				gotLoss, gotGrad := SoftmaxCrossEntropyInPlace(devB, inPlace, labels)

				if gotGrad != inPlace {
					t.Fatal("in-place form must return the logits tensor itself")
				}
				if gotLoss != wantLoss {
					t.Fatalf("trial %d (n=%d k=%d): loss %v, want %v", trial, n, k, gotLoss, wantLoss)
				}
				if !tensor.Equal(gotGrad, wantGrad) {
					t.Fatalf("trial %d (n=%d k=%d): in-place gradient diverges from reference", trial, n, k)
				}
			}
		})
	}
}

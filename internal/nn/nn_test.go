package nn

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func detDev() *device.Device { return device.New(device.CPU, device.Deterministic, nil) }

func TestConvKnownValues(t *testing.T) {
	// 1 input channel, 1 output channel, 2x2 all-ones kernel, bias 1:
	// output = sum of each window + 1.
	c := NewConv2D("c", 1, 1, 2, 1, 0)
	c.W.Value.Fill(1)
	c.B.Value.Fill(1)
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	y := c.Forward(detDev(), x, false)
	want := []float32{1 + 2 + 4 + 5 + 1, 2 + 3 + 5 + 6 + 1, 4 + 5 + 7 + 8 + 1, 5 + 6 + 8 + 9 + 1}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConvOutputShape(t *testing.T) {
	c := NewConv2D("c", 3, 8, 3, 2, 1)
	c.Init(rng.New(1))
	x := tensor.New(2, 3, 8, 8)
	y := c.Forward(detDev(), x, false)
	wantShape := []int{2, 8, 4, 4}
	for i, d := range y.Shape() {
		if d != wantShape[i] {
			t.Fatalf("conv output shape %v, want %v", y.Shape(), wantShape)
		}
	}
}

func TestConvChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	c := NewConv2D("c", 3, 8, 3, 1, 1)
	c.Forward(detDev(), tensor.New(1, 2, 4, 4), false)
}

func TestDenseKnownValues(t *testing.T) {
	d := NewDense("fc", 2, 2)
	copy(d.W.Value.Data(), []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Value.Data(), []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := d.Forward(detDev(), x, false)
	// y = x·Wᵀ + b = [1+2+10, 3+4+20]
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("dense output %v", y.Data())
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 0, 2}, 1, 3)
	y := r.Forward(detDev(), x, true)
	if y.At(0, 0) != 0 || y.At(0, 1) != 0 || y.At(0, 2) != 2 {
		t.Fatalf("relu forward %v", y.Data())
	}
	if x.At(0, 0) != -1 {
		t.Fatal("ReLU mutated its input")
	}
	dy := tensor.FromSlice([]float32{5, 5, 5}, 1, 3)
	dx := r.Backward(detDev(), dy)
	if dx.At(0, 0) != 0 || dx.At(0, 1) != 0 || dx.At(0, 2) != 5 {
		t.Fatalf("relu backward %v", dx.Data())
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(detDev(), x, true)
	want := []float32{4, 8, 12, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool[%d] = %v, want %v", i, v, want[i])
		}
	}
	dy := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(detDev(), dy)
	// Gradient must land exactly on each window's argmax.
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("maxpool backward: %v", dx.Data())
	}
	var sum float32
	for _, v := range dx.Data() {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("maxpool backward leaked gradient: total %v", sum)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	p := NewGlobalAvgPool("gap")
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := p.Forward(detDev(), x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap forward %v", y.Data())
	}
	dy := tensor.FromSlice([]float32{4, 8}, 1, 2)
	dx := p.Backward(detDev(), dy)
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Fatalf("gap backward %v", dx.Data())
	}
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.Init(rng.New(1))
	x := tensor.New(4, 2, 3, 3)
	rng.New(2).FillNorm(x.Data(), 5, 3) // deliberately off-center
	y := bn.Forward(detDev(), x, true)
	// Per-channel output mean ~0, variance ~1.
	n, c, hw := 4, 2, 9
	for ci := 0; ci < c; ci++ {
		var sum, sumSq float64
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * hw
			for i := 0; i < hw; i++ {
				v := float64(y.Data()[base+i])
				sum += v
				sumSq += v * v
			}
		}
		m := float64(n * hw)
		mean := sum / m
		variance := sumSq/m - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean %v after BN", ci, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d variance %v after BN", ci, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.Init(rng.New(1))
	x := tensor.New(8, 1, 2, 2)
	rng.New(3).FillNorm(x.Data(), 2, 1)
	for i := 0; i < 50; i++ {
		bn.Forward(detDev(), x, true)
	}
	mean, variance := bn.RunningStats()
	if math.Abs(float64(mean[0])-2) > 0.2 {
		t.Errorf("running mean %v, want ~2", mean[0])
	}
	if variance[0] <= 0 {
		t.Errorf("running variance %v", variance[0])
	}
	// Eval mode on the same data should produce roughly normalized output.
	y := bn.Forward(detDev(), x, false)
	var sum float64
	for _, v := range y.Data() {
		sum += float64(v)
	}
	if got := sum / float64(y.Len()); math.Abs(got) > 0.3 {
		t.Errorf("eval-mode mean %v, want ~0", got)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	d := NewDropout("drop", 0.5)
	d.Init(rng.New(4))
	x := tensor.New(1, 1000)
	x.Fill(1)
	yTrain := d.Forward(detDev(), x, true)
	zeros := 0
	for _, v := range yTrain.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // survivors scaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout rate off: %d/1000 zeroed", zeros)
	}
	yEval := d.Forward(detDev(), x, false)
	if !tensor.Equal(yEval, x) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	d := NewDropout("drop", 0.5)
	d.Init(rng.New(5))
	x := tensor.New(1, 100)
	x.Fill(1)
	y := d.Forward(detDev(), x, true)
	dy := tensor.New(1, 100)
	dy.Fill(1)
	dx := d.Backward(detDev(), dy)
	for i := range dx.Data() {
		if (y.At(0, i) == 0) != (dx.At(0, i) == 0) {
			t.Fatal("dropout backward mask inconsistent with forward")
		}
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits: loss = log(K), gradient rows sum to 0.
	logits := tensor.New(2, 4)
	loss, dl := SoftmaxCrossEntropy(detDev(), logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform loss %v, want log 4 = %v", loss, math.Log(4))
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 4; c++ {
			sum += float64(dl.At(r, c))
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("dlogits row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxCrossEntropyConfidentCorrect(t *testing.T) {
	logits := tensor.FromSlice([]float32{20, 0, 0}, 1, 3)
	loss, _ := SoftmaxCrossEntropy(detDev(), logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident-correct loss %v", loss)
	}
}

func TestSigmoidBCEKnownValues(t *testing.T) {
	logits := tensor.New(1, 2)
	targets := tensor.FromSlice([]float32{1, 0}, 1, 2)
	loss, dl := SigmoidBCE(detDev(), logits, targets)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("BCE at zero logits = %v, want log 2", loss)
	}
	// d/dz = (sigmoid(z) - t)/NK = (0.5-1)/2, (0.5-0)/2
	if math.Abs(float64(dl.At(0, 0))+0.25) > 1e-6 || math.Abs(float64(dl.At(0, 1))-0.25) > 1e-6 {
		t.Fatalf("BCE gradient %v", dl.Data())
	}
}

func TestSequentialInitDeterministic(t *testing.T) {
	build := func() *Sequential {
		n := NewSequential("net",
			NewConv2D("c1", 1, 4, 3, 1, 1),
			NewReLU("r1"),
			NewFlatten("f"),
			NewDense("fc", 4*4*4, 2),
		)
		n.Init(rng.New(77))
		return n
	}
	a, b := build(), build()
	wa, wb := a.WeightVector(), b.WeightVector()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same-seed init differs")
		}
	}
}

func TestSequentialInitDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate layer names did not panic")
		}
	}()
	n := NewSequential("net", NewReLU("x"), NewReLU("x"))
	n.Init(rng.New(1))
}

func TestWeightVectorAndNumParams(t *testing.T) {
	n := NewSequential("net", NewDense("fc", 3, 2))
	n.Init(rng.New(1))
	if n.NumParams() != 3*2+2 {
		t.Fatalf("NumParams = %d", n.NumParams())
	}
	if len(n.WeightVector()) != 8 {
		t.Fatalf("WeightVector length %d", len(n.WeightVector()))
	}
}

func TestFullForwardBackwardBitwiseDeterministic(t *testing.T) {
	// CONTROL-variant foundation: same seeds + deterministic device ⇒
	// bitwise-identical gradients.
	run := func() []float32 {
		net := NewSequential("net",
			NewConv2D("c1", 3, 8, 3, 1, 1),
			NewBatchNorm("bn1", 8),
			NewReLU("r1"),
			NewMaxPool2D("p1", 2),
			NewFlatten("f"),
			NewDense("fc", 8*4*4, 10),
		)
		net.Init(rng.New(42))
		dev := device.New(device.V100, device.Deterministic, nil)
		x := tensor.New(4, 3, 8, 8)
		rng.New(43).FillNorm(x.Data(), 0, 1)
		logits := net.Forward(dev, x, true)
		_, dl := SoftmaxCrossEntropy(dev, logits, []int{0, 1, 2, 3})
		net.Backward(dev, dl)
		var grads []float32
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Data()...)
		}
		return grads
	}
	a, b := run(), b2(run)
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("gradient %d differs between identical runs", i)
		}
	}
}

func b2(f func() []float32) []float32 { return f() }

func TestGradientsDifferUnderDeviceNoise(t *testing.T) {
	// The IMPL mechanism end to end: identical seeds, nondeterministic
	// device ⇒ gradients differ in low bits.
	run := func(entropySeed uint64) []float32 {
		net := NewSequential("net",
			NewConv2D("c1", 3, 8, 3, 1, 1),
			NewReLU("r1"),
			NewFlatten("f"),
			NewDense("fc", 8*8*8, 10),
		)
		net.Init(rng.New(42))
		dev := device.New(device.V100, device.Default, rng.New(entropySeed))
		x := tensor.New(8, 3, 8, 8)
		rng.New(43).FillNorm(x.Data(), 0, 1)
		logits := net.Forward(dev, x, true)
		_, dl := SoftmaxCrossEntropy(dev, logits, []int{0, 1, 2, 3, 4, 5, 6, 7})
		net.Backward(dev, dl)
		var grads []float32
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Data()...)
		}
		return grads
	}
	a, b := run(1), run(2)
	same := true
	var maxDiff float64
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if d := math.Abs(float64(a[i] - b[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if same {
		t.Fatal("device entropy produced identical gradients; IMPL noise not flowing")
	}
	if maxDiff > 1e-2 {
		t.Fatalf("gradient perturbation too large for rounding noise: %v", maxDiff)
	}
}

package nn

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MaxPool2D performs non-overlapping max pooling with a square window.
// Max is order-insensitive (ties resolve to the first index scanned), so
// pooling is deterministic on every device.
type MaxPool2D struct {
	name      string
	window    int
	lastShape []int
	argmax    []int // flat input index of each output element's max
}

// NewMaxPool2D builds a max-pooling layer with window size = stride = w.
func NewMaxPool2D(name string, w int) *MaxPool2D {
	if w < 1 {
		panic("nn: MaxPool2D window must be >= 1")
	}
	return &MaxPool2D{name: name, window: w}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Init implements Layer.
func (p *MaxPool2D) Init(*rng.Stream) {}

// Forward implements Layer.
func (p *MaxPool2D) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D %s input must be NCHW, got %v", p.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%p.window != 0 || w%p.window != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D %s input %dx%d not divisible by window %d", p.name, h, w, p.window))
	}
	oh, ow := h/p.window, w/p.window
	out := dev.Alloc(n, c, oh, ow)
	p.lastShape = append(p.lastShape[:0], x.Shape()...)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]

	xd, od := x.Data(), out.Data()
	for nc := 0; nc < n*c; nc++ {
		inBase := nc * h * w
		outBase := nc * oh * ow
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				bestIdx := inBase + (i*p.window)*w + j*p.window
				best := xd[bestIdx]
				for di := 0; di < p.window; di++ {
					rowBase := inBase + (i*p.window+di)*w + j*p.window
					for dj := 0; dj < p.window; dj++ {
						if v := xd[rowBase+dj]; v > best {
							best, bestIdx = v, rowBase+dj
						}
					}
				}
				od[outBase+i*ow+j] = best
				p.argmax[outBase+i*ow+j] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	// The scatter accumulates into dx, so it must start zeroed.
	dx := dev.AllocZero(p.lastShape...)
	dxd, dyd := dx.Data(), dy.Data()
	for i, src := range p.argmax {
		dxd[src] += dyd[i]
	}
	return dx
}

// GlobalAvgPool averages each channel over its spatial extent, producing
// (N, C). The spatial reduction runs through the device so accumulation
// order noise applies.
type GlobalAvgPool struct {
	name      string
	lastShape []int
	sumBuf    []float32     // spatial-sum reduction, reused across steps
	viewHdr   tensor.Tensor // reused header for the (N*C, H*W) input view
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Init implements Layer.
func (p *GlobalAvgPool) Init(*rng.Stream) {}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool %s input must be NCHW, got %v", p.name, x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.lastShape = append(p.lastShape[:0], x.Shape()...)
	// (N*C, H*W) view shares storage; SumRows reduces each channel map.
	p.sumBuf = dev.SumRowsInto(x.ReshapeInto(&p.viewHdr, n*c, h*w), p.sumBuf)
	sums := p.sumBuf
	out := dev.Alloc(n, c)
	od := out.Data()
	inv := 1 / float32(h*w)
	for i, s := range sums {
		od[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.lastShape[0], p.lastShape[1], p.lastShape[2], p.lastShape[3]
	dx := dev.Alloc(n, c, h, w)
	dxd, dyd := dx.Data(), dy.Data()
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		g := dyd[nc] * inv
		base := nc * h * w
		for i := 0; i < h*w; i++ {
			dxd[base+i] = g
		}
	}
	return dx
}

package nn

import (
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Residual implements a ResNet block: out = ReLU(body(x) + shortcut(x)).
// The shortcut is identity when nil, otherwise a projection (1×1 conv,
// optionally followed by BN) that matches the body's output shape.
//
// In-place constraint (DESIGN.md §15): the block reads x twice — once into
// the body and once for the shortcut — so the body's FIRST layer must not
// mutate x, and with an identity shortcut the body's backward must not
// mutate the masked gradient it receives. Both hold for every model in
// internal/models: residual bodies start with Conv2D and end with
// BatchNorm, neither of which touches its input. In in-place mode the
// gradient mask is applied directly to dy (the caller hands over
// ownership); reference mode clones first.
type Residual struct {
	name     string
	body     *Sequential
	shortcut *Sequential // nil means identity
	mask     bitmask
	inPlace  bool
}

// NewResidual builds a residual block. shortcut may be nil for identity.
func NewResidual(name string, body *Sequential, shortcut *Sequential) *Residual {
	return &Residual{name: name, body: body, shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.body.Params()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.Params()...)
	}
	return ps
}

// Init initializes the body and shortcut from label-derived sub-streams.
func (r *Residual) Init(stream *rng.Stream) {
	r.body.Init(stream.Split("body"))
	if r.shortcut != nil {
		r.shortcut.Init(stream.Split("shortcut"))
	}
}

func (r *Residual) markInPlace() {
	r.inPlace = true
	r.body.markInPlace()
	if r.shortcut != nil {
		r.shortcut.markInPlace()
	}
}

// Forward implements Layer.
func (r *Residual) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.body.Forward(dev, x, train)
	short := x
	if r.shortcut != nil {
		short = r.shortcut.Forward(dev, x, train)
	}
	main.Add(short)
	// Final ReLU with mask for backward.
	d := main.Data()
	r.mask.grow(len(d))
	for i, v := range d {
		if v > 0 {
			r.mask.set(i)
		} else {
			r.mask.clear(i)
			d[i] = 0
		}
	}
	return main
}

// Backward implements Layer.
func (r *Residual) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	dsum := dy
	if !r.inPlace {
		dsum = dy.Clone()
	}
	d := dsum.Data()
	for i := range d {
		if !r.mask.get(i) {
			d[i] = 0
		}
	}
	dxMain := r.body.Backward(dev, dsum)
	if r.shortcut != nil {
		dxShort := r.shortcut.Backward(dev, dsum)
		dxMain.Add(dxShort)
	} else {
		dxMain.Add(dsum)
	}
	return dxMain
}

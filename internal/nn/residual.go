package nn

import (
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Residual implements a ResNet block: out = ReLU(body(x) + shortcut(x)).
// The shortcut is identity when nil, otherwise a projection (1×1 conv,
// optionally followed by BN) that matches the body's output shape.
type Residual struct {
	name     string
	body     *Sequential
	shortcut *Sequential // nil means identity
	mask     []bool
}

// NewResidual builds a residual block. shortcut may be nil for identity.
func NewResidual(name string, body *Sequential, shortcut *Sequential) *Residual {
	return &Residual{name: name, body: body, shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.body.Params()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.Params()...)
	}
	return ps
}

// Init initializes the body and shortcut from label-derived sub-streams.
func (r *Residual) Init(stream *rng.Stream) {
	r.body.Init(stream.Split("body"))
	if r.shortcut != nil {
		r.shortcut.Init(stream.Split("shortcut"))
	}
}

// Forward implements Layer.
func (r *Residual) Forward(dev *device.Device, x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.body.Forward(dev, x, train)
	short := x
	if r.shortcut != nil {
		short = r.shortcut.Forward(dev, x, train)
	}
	main.Add(short)
	// Final ReLU with mask for backward.
	d := main.Data()
	if cap(r.mask) < len(d) {
		r.mask = make([]bool, len(d))
	}
	r.mask = r.mask[:len(d)]
	for i, v := range d {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return main
}

// Backward implements Layer.
func (r *Residual) Backward(dev *device.Device, dy *tensor.Tensor) *tensor.Tensor {
	dsum := dy.Clone()
	d := dsum.Data()
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	dxMain := r.body.Backward(dev, dsum)
	if r.shortcut != nil {
		dxShort := r.shortcut.Backward(dev, dsum)
		dxMain.Add(dxShort)
	} else {
		dxMain.Add(dsum)
	}
	return dxMain
}

package opt

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// refStep is the unfused four-pass SGD update the fused Step replaced:
// decay into grad, scale velocity, accumulate grad, apply update — each
// pass a full tensor traversal with its intermediate rounded at the
// statement boundary.
type refStep struct {
	momentum, weightDecay float64
	velocity              map[*nn.Param]*tensor.Tensor
}

func (s *refStep) step(params []*nn.Param, lr float64) {
	for _, p := range params {
		g := p.Grad
		if s.weightDecay != 0 {
			g.AddScaled(float32(s.weightDecay), p.Value)
		}
		if s.momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			v.Scale(float32(s.momentum))
			v.AddScaled(1, g)
			p.Value.AddScaled(float32(-lr), v)
		} else {
			p.Value.AddScaled(float32(-lr), g)
		}
	}
}

// TestSGDStepFusedMatchesReference pins that the fused single-pass Step is
// bit-identical to the unfused reference across every momentum/decay
// combination: same weights, same velocity, and the same decayed gradient
// written back. Values are awkward (irrational-ish) floats so any changed
// rounding sequence would show.
func TestSGDStepFusedMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name     string
		momentum float64
		decay    float64
	}{
		{"plain", 0, 0},
		{"momentum", 0.9, 0},
		{"decay", 0, 5e-4},
		{"momentum+decay", 0.9, 5e-4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mkNet := func() *nn.Sequential {
				net := nn.NewSequential("n",
					nn.NewDense("fc1", 13, 7),
					nn.NewReLU("r"),
					nn.NewDense("fc2", 7, 3),
				)
				net.Init(rng.New(42))
				return net
			}
			a, b := mkNet(), mkNet()
			fused := NewSGD(tc.momentum, tc.decay)
			ref := &refStep{momentum: tc.momentum, weightDecay: tc.decay, velocity: map[*nn.Param]*tensor.Tensor{}}

			gradStream := rng.New(7)
			for step := 0; step < 20; step++ {
				// Identical pseudo-gradients on both nets.
				for pi := range a.Params() {
					ga, gb := a.Params()[pi].Grad.Data(), b.Params()[pi].Grad.Data()
					for i := range ga {
						g := float32(gradStream.Float64()*2 - 1)
						ga[i], gb[i] = g, g
					}
				}
				lr := 0.05 / float64(step+1)
				fused.Step(a.Params(), lr)
				ref.step(b.Params(), lr)
			}
			for pi := range a.Params() {
				pa, pb := a.Params()[pi], b.Params()[pi]
				if !tensor.Equal(pa.Value, pb.Value) {
					t.Fatalf("param %s: fused weights diverge from reference", pa.Name)
				}
				if !tensor.Equal(pa.Grad, pb.Grad) {
					t.Fatalf("param %s: decayed gradient write-back diverges", pa.Name)
				}
				if tc.momentum != 0 {
					if !tensor.Equal(fused.velocity[pa], ref.velocity[pb]) {
						t.Fatalf("param %s: velocity diverges", pa.Name)
					}
				}
			}
		})
	}
}

// Package opt implements the optimizers and learning-rate schedules used by
// the paper's training recipes: SGD with optional momentum, step-decay
// schedules (CIFAR and CelebA recipes) and warmup-plus-cosine decay (the
// ImageNet ResNet-50 recipe). Parameter updates are pure elementwise
// operations, so they are order-insensitive and run identically on every
// simulated device; all nondeterminism enters through the gradients.
package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Schedule maps an epoch index (0-based) to a learning rate.
type Schedule interface {
	// LR returns the learning rate for the given epoch.
	LR(epoch int) float64
	// String describes the schedule.
	String() string
}

// Constant is a fixed learning rate.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// String implements Schedule.
func (c Constant) String() string { return fmt.Sprintf("constant(%g)", float64(c)) }

// StepDecay divides Base by Factor every Every epochs — the paper's CIFAR
// recipe is base 4e-4 decayed 10× every 50 epochs; CelebA is 1e-3 decayed
// 10× every 5 epochs.
type StepDecay struct {
	Base   float64
	Factor float64
	Every  int
}

// LR implements Schedule.
func (s StepDecay) LR(epoch int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base / math.Pow(s.Factor, float64(epoch/s.Every))
}

// String implements Schedule.
func (s StepDecay) String() string {
	return fmt.Sprintf("step(base=%g,÷%g every %d)", s.Base, s.Factor, s.Every)
}

// WarmupCosine ramps linearly from 0 to Base over Warmup epochs, then
// follows a cosine decay to zero at Total epochs — the paper's ImageNet
// ResNet-50 recipe.
type WarmupCosine struct {
	Base   float64
	Warmup int
	Total  int
}

// LR implements Schedule.
func (w WarmupCosine) LR(epoch int) float64 {
	if epoch < w.Warmup {
		return w.Base * float64(epoch+1) / float64(w.Warmup)
	}
	if epoch >= w.Total {
		return 0
	}
	progress := float64(epoch-w.Warmup) / float64(w.Total-w.Warmup)
	return w.Base * 0.5 * (1 + math.Cos(math.Pi*progress))
}

// String implements Schedule.
func (w WarmupCosine) String() string {
	return fmt.Sprintf("warmup-cosine(base=%g,warmup=%d,total=%d)", w.Base, w.Warmup, w.Total)
}

// SGD performs stochastic gradient descent with optional momentum and
// weight decay.
type SGD struct {
	Momentum    float64
	WeightDecay float64
	velocity    map[*nn.Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(momentum, weightDecay float64) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, velocity: map[*nn.Param]*tensor.Tensor{}}
}

// Step applies one update with the given learning rate and clears nothing;
// callers zero gradients themselves before the next accumulation.
//
// The update is a single fused pass per parameter: weight decay, momentum
// and the weight update execute in one loop instead of four tensor
// traversals. Elements are independent, so fusing the passes per element
// preserves the exact floating-point operation sequence of the unfused
// form (decay into grad, scale velocity, add grad, apply update — each
// intermediate rounded at a statement boundary, matching the old
// AddScaled/Scale calls bit for bit; TestSGDStepFusedMatchesReference pins
// this). Weight decay still writes the decayed gradient back, preserving
// the observable Grad contents.
func (s *SGD) Step(params []*nn.Param, lr float64) {
	wd := float32(s.WeightDecay)
	m := float32(s.Momentum)
	nlr := float32(-lr)
	for _, p := range params {
		pv, gd := p.Value.Data(), p.Grad.Data()
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.Value.Shape()...)
				s.velocity[p] = v
			}
			vd := v.Data()
			if s.WeightDecay != 0 {
				for i := range pv {
					gi := gd[i] + wd*pv[i]
					gd[i] = gi
					vi := vd[i] * m
					vi += gi
					vd[i] = vi
					pv[i] += nlr * vi
				}
			} else {
				for i := range pv {
					vi := vd[i] * m
					vi += gd[i]
					vd[i] = vi
					pv[i] += nlr * vi
				}
			}
		} else if s.WeightDecay != 0 {
			for i := range pv {
				gd[i] += wd * pv[i]
				pv[i] += nlr * gd[i]
			}
		} else {
			for i := range pv {
				pv[i] += nlr * gd[i]
			}
		}
	}
}

package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func oneParamNet(t *testing.T) (*nn.Sequential, *nn.Param) {
	t.Helper()
	net := nn.NewSequential("n", nn.NewDense("fc", 2, 1))
	net.Init(rng.New(1))
	return net, net.Params()[0]
}

func TestSGDPlainStep(t *testing.T) {
	_, p := oneParamNet(t)
	p.Value.Fill(1)
	p.Grad.Fill(0.5)
	NewSGD(0, 0).Step([]*nn.Param{p}, 0.1)
	for _, v := range p.Value.Data() {
		if math.Abs(float64(v)-0.95) > 1e-7 {
			t.Fatalf("plain SGD: %v, want 0.95", v)
		}
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	_, p := oneParamNet(t)
	p.Value.Fill(0)
	s := NewSGD(0.9, 0)
	// Constant gradient 1: velocity after k steps = sum of 0.9^i.
	var wantVel float64
	var wantPos float64
	for k := 0; k < 5; k++ {
		p.Grad.Fill(1)
		s.Step([]*nn.Param{p}, 0.1)
		wantVel = 0.9*wantVel + 1
		wantPos -= 0.1 * wantVel
		p.Grad.Fill(0) // caller zeroes between accumulations
	}
	if got := float64(p.Value.Data()[0]); math.Abs(got-wantPos) > 1e-5 {
		t.Fatalf("momentum position %v, want %v", got, wantPos)
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	_, p := oneParamNet(t)
	p.Value.Fill(2)
	p.Grad.Fill(0)
	NewSGD(0, 0.1).Step([]*nn.Param{p}, 1)
	// g = 0 + 0.1*2 = 0.2; new value = 2 - 0.2 = 1.8
	if got := p.Value.Data()[0]; math.Abs(float64(got)-1.8) > 1e-6 {
		t.Fatalf("weight decay: %v, want 1.8", got)
	}
}

func TestConstantSchedule(t *testing.T) {
	s := Constant(0.01)
	if s.LR(0) != 0.01 || s.LR(100) != 0.01 {
		t.Fatal("constant schedule not constant")
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Base: 4e-4, Factor: 10, Every: 50}
	if s.LR(0) != 4e-4 || s.LR(49) != 4e-4 {
		t.Fatal("step decay before first boundary")
	}
	if math.Abs(s.LR(50)-4e-5) > 1e-12 {
		t.Fatalf("step decay at 50: %v", s.LR(50))
	}
	if math.Abs(s.LR(150)-4e-7) > 1e-15 {
		t.Fatalf("step decay at 150: %v", s.LR(150))
	}
}

func TestStepDecayZeroEvery(t *testing.T) {
	s := StepDecay{Base: 1e-3, Factor: 10, Every: 0}
	if s.LR(7) != 1e-3 {
		t.Fatal("Every=0 must mean no decay")
	}
}

func TestWarmupCosineSchedule(t *testing.T) {
	s := WarmupCosine{Base: 0.1, Warmup: 5, Total: 90}
	if got := s.LR(0); math.Abs(got-0.02) > 1e-9 {
		t.Fatalf("warmup epoch 0: %v", got)
	}
	if got := s.LR(4); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("warmup end: %v", got)
	}
	if got := s.LR(5); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("cosine start: %v", got)
	}
	mid := s.LR(5 + (90-5)/2)
	if mid > 0.06 || mid < 0.04 {
		t.Fatalf("cosine midpoint: %v, want ~0.05", mid)
	}
	if got := s.LR(89); got > 0.001 {
		t.Fatalf("cosine end: %v, want ~0", got)
	}
	if s.LR(90) != 0 || s.LR(1000) != 0 {
		t.Fatal("past-total LR must be 0")
	}
	// Monotone decreasing after warmup.
	prev := s.LR(5)
	for e := 6; e < 90; e++ {
		cur := s.LR(e)
		if cur > prev {
			t.Fatalf("cosine not monotone at %d: %v > %v", e, cur, prev)
		}
		prev = cur
	}
}

func TestSGDDeterministic(t *testing.T) {
	run := func() float32 {
		_, p := oneParamNet(t)
		p.Value.Fill(1)
		s := NewSGD(0.9, 1e-4)
		for i := 0; i < 10; i++ {
			p.Grad.Fill(float32(i) * 0.1)
			s.Step([]*nn.Param{p}, 0.05)
			p.Grad.Zero()
		}
		return p.Value.Data()[0]
	}
	if run() != run() {
		t.Fatal("SGD updates are nondeterministic")
	}
}

package profile

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/models"
)

// layerKernels expands one layer into its per-step training kernels with
// modeled times (milliseconds for one step at the given batch size).
//
// Which kernels pay a deterministic penalty follows cuDNN/TF behaviour:
//
//   - Spatial convolutions (k ≥ 2): backward-data and backward-weights use
//     nondeterministic algorithms (Winograd/FFT variants, atomicAdd wgrad)
//     by default; deterministic mode pins them to implicit GEMM. Penalty
//     grows with filter size, steeply on older architectures.
//   - 1×1 convolutions, dense layers, depthwise convolutions: plain GEMM /
//     per-channel kernels, deterministic in both modes — why MobileNet
//     shows almost no overhead in Figure 8a.
//   - Max-pool backward: atomicAdd scatter by default; the deterministic
//     replacement is the arch-dependent service penalty (the dominant cost
//     for the 1×1 medium CNN column of Figure 8b).
//   - Batch norm, activations, forward convs: already deterministic, no
//     penalty.
func layerKernels(l models.LayerSpec, p archParams, mode device.Mode, batch int) []KernelTime {
	b := float64(batch)
	switch l.Kind {
	case models.OpConv:
		return convKernels(l, p, mode, b)
	case models.OpDepthwiseConv:
		// Depthwise kernels reduce only over their own channel's small
		// window: deterministic in both modes.
		ms := flopsMillis(3*b*float64(l.FwdFLOPs()), p.flops)
		return []KernelTime{{Name: "depthwise", Millis: ms}}
	case models.OpDense:
		ms := flopsMillis(3*b*float64(l.FwdFLOPs()), p.flops)
		return []KernelTime{{Name: "gemm", Millis: ms}}
	case models.OpBatchNorm:
		// cuDNN batch norm is deterministic already; both modes run the same
		// kernels.
		ms := memMillis(2*3*b*volume(l), p.bw)
		return []KernelTime{
			{Name: "batchnorm_fwd", Millis: ms / 2},
			{Name: "batchnorm_bwd", Millis: ms / 2},
		}
	case models.OpPool:
		fwd := memMillis(3*b*volume(l), p.bw)
		bwd := fwd
		bwdName := "pool_bwd_atomic"
		if mode == device.Deterministic {
			bwd *= p.poolPenalty
			bwdName = "pool_bwd_det"
		}
		return []KernelTime{
			{Name: "pool_fwd", Millis: fwd},
			{Name: bwdName, Millis: bwd},
		}
	case models.OpActivation:
		ms := memMillis(3*b*volume(l), p.bw)
		return []KernelTime{{Name: "activation", Millis: ms}}
	}
	return nil
}

// convKernels models the three convolution training kernels.
func convKernels(l models.LayerSpec, p archParams, mode device.Mode, b float64) []KernelTime {
	fwd := b * float64(l.FwdFLOPs())
	family := algoFamily(l)

	if family == "gemm" {
		// 1×1 convolution: one GEMM per pass, deterministic either way.
		return []KernelTime{{Name: "gemm", Millis: flopsMillis(3*fwd, p.flops)}}
	}

	penalty := 1.0
	if mode == device.Deterministic {
		penalty = p.convPenalty(l.EffKernel())
	}
	name := func(op string) string {
		if mode == device.Deterministic {
			return fmt.Sprintf("implicit_gemm_%s", op)
		}
		return fmt.Sprintf("%s_%s_%dx%d", family, op, l.Kernel, l.KernelW())
	}

	// Forward conv is deterministic in both modes; dgrad pays the penalty;
	// wgrad (the atomics-heavy kernel) pays 1.5× the excess.
	dgradPenalty := penalty
	wgradPenalty := 1 + (penalty-1)*1.5
	return []KernelTime{
		{Name: name("fprop"), Millis: flopsMillis(fwd, p.flops)},
		{Name: name("dgrad"), Millis: flopsMillis(fwd, p.flops) * dgradPenalty},
		{Name: name("wgrad"), Millis: flopsMillis(fwd, p.flops) * wgradPenalty},
	}
}

// algoFamily picks the default-mode algorithm family for a conv layer,
// mirroring cuDNN's heuristics: 1×1 is plain GEMM, 3×3 prefers Winograd,
// larger filters prefer FFT.
func algoFamily(l models.LayerSpec) string {
	k := l.EffKernel()
	switch {
	case k <= 1:
		return "gemm"
	case k <= 4:
		return "winograd"
	default:
		return "fft"
	}
}

// volume returns the layer's input activation bytes per example.
func volume(l models.LayerSpec) float64 {
	return 4 * float64(l.InC) * float64(l.H) * float64(l.W)
}

func flopsMillis(flops, tput float64) float64 { return flops / tput * 1e3 }

func memMillis(bytes, bw float64) float64 { return bytes / bw * 1e3 }

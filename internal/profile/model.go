// Package profile implements an nvprof-style kernel-time model that prices
// the cost of deterministic execution (Section 4 of the paper).
//
// The paper profiles real cuDNN kernels; this reproduction cannot run them,
// so it models the decision problem the framework faces instead. Every
// layer of a network graph expands into its training kernels (forward,
// backward-data, backward-weights, plus the normalization / bias / pooling
// service kernels). For each kernel the framework picks an algorithm:
//
//   - Default mode picks the fastest algorithm available, including
//     nondeterministic ones (Winograd/FFT variants with atomic reductions,
//     atomicAdd-based backward-weights).
//   - Deterministic mode is restricted to deterministic algorithms
//     (implicit GEMM), which are slower by an architecture- and
//     filter-size-dependent factor.
//
// The per-architecture penalty tables are calibrated to the envelope the
// paper measures on the medium CNN (Figure 8b): 284–746 % on P100,
// 129–241 % on V100 and 117–196 % on T4 across 1×1…7×7 kernels, with the
// penalty always growing in filter size and shrinking with newer
// architectures. 1×1 convolutions dispatch to plain (deterministic) GEMM in
// both modes, and the old Pascal part pays the largest service-kernel
// penalty — both properties the paper calls out.
package profile

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/models"
)

// archParams models one GPU generation's execution profile.
type archParams struct {
	// flops is the sustained compute throughput (FLOPs/s) for conv kernels.
	flops float64
	// bw is the effective memory bandwidth (bytes/s) for service kernels.
	bw float64
	// poolPenalty multiplies max-pool backward time in deterministic mode:
	// the default kernel scatters with atomicAdd; the deterministic
	// replacement is a gather that old architectures run very slowly.
	poolPenalty float64
	// convPenaltyMax is the deterministic slowdown of spatial-conv backward
	// kernels at 7×7; the penalty interpolates from 1 at 1×1 via
	// 1 + (max-1)·((k²−1)/48)^convExp. convExp controls how front-loaded
	// the penalty is: T4's deterministic kernels are uniformly ~2× across
	// filter sizes (flat, small exponent); Pascal's blow up with size.
	convPenaltyMax float64
	convExp        float64
}

// params holds per-architecture calibrations for the parts the paper
// profiles (Figure 8 uses P100, V100 and T4).
var params = map[device.Arch]archParams{
	device.ArchPascal: {flops: 9.5e12, bw: 7.2e11, poolPenalty: 10.5, convPenaltyMax: 8.75, convExp: 0.70},
	device.ArchVolta:  {flops: 14e12, bw: 9.0e11, poolPenalty: 2.45, convPenaltyMax: 2.69, convExp: 0.28},
	device.ArchTuring: {flops: 8.1e12, bw: 6.4e11, poolPenalty: 1.85, convPenaltyMax: 2.15, convExp: 0.03},
}

// convPenalty returns the deterministic slowdown for a spatial convolution
// backward kernel of effective size k on the architecture.
func (a archParams) convPenalty(k float64) float64 {
	if k <= 1 {
		return 1 // 1×1 convolutions are plain GEMM: deterministic either way
	}
	kk := k * k
	return 1 + (a.convPenaltyMax-1)*math.Pow((kk-1)/48, a.convExp)
}

// KernelTime is one aggregated kernel row of a profile.
type KernelTime struct {
	// Name identifies the algorithm actually dispatched, nvprof-style.
	Name string
	// Millis is cumulative GPU time across the profiled steps.
	Millis float64
}

// Profile is the result of profiling one network on one part in one mode.
type Profile struct {
	Model   string
	Arch    device.Arch
	Mode    device.Mode
	Batch   int
	Steps   int
	Kernels []KernelTime // sorted by descending time
	Total   float64      // total GPU milliseconds
}

// TopK returns the k most expensive kernels (fewer if the profile is small).
func (p *Profile) TopK(k int) []KernelTime {
	if k > len(p.Kernels) {
		k = len(p.Kernels)
	}
	return p.Kernels[:k]
}

// Options configures a profiling run. Zero values take the paper's setup
// (batch 64, 100 steps — Section 4).
type Options struct {
	Batch int
	Steps int
}

func (o Options) withDefaults() Options {
	if o.Batch == 0 {
		o.Batch = 64
	}
	if o.Steps == 0 {
		o.Steps = 100
	}
	return o
}

// Graph profiles one training step schedule of g on the given architecture
// and mode, returning aggregated kernel times.
func Graph(g *models.Graph, arch device.Arch, mode device.Mode, opts Options) (*Profile, error) {
	p, ok := params[arch]
	if !ok {
		return nil, fmt.Errorf("profile: no cost model for architecture %q", arch)
	}
	opts = opts.withDefaults()
	agg := map[string]float64{}
	for _, layer := range g.Layers {
		for _, k := range layerKernels(layer, p, mode, opts.Batch) {
			agg[k.Name] += k.Millis
		}
	}
	prof := &Profile{Model: g.Name, Arch: arch, Mode: mode, Batch: opts.Batch, Steps: opts.Steps}
	for name, ms := range agg {
		prof.Kernels = append(prof.Kernels, KernelTime{Name: name, Millis: ms * float64(opts.Steps)})
		prof.Total += ms * float64(opts.Steps)
	}
	sortKernels(prof.Kernels)
	return prof, nil
}

// Overhead returns deterministic-mode total GPU time as a fraction of
// default-mode time (1.0 = no overhead), matching the normalized axes of
// Figure 8.
func Overhead(g *models.Graph, arch device.Arch, opts Options) (float64, error) {
	def, err := Graph(g, arch, device.Default, opts)
	if err != nil {
		return 0, err
	}
	det, err := Graph(g, arch, device.Deterministic, opts)
	if err != nil {
		return 0, err
	}
	return det.Total / def.Total, nil
}

func sortKernels(ks []KernelTime) {
	// Insertion sort by descending time, then name for stable ordering; the
	// slices are tiny (tens of kernel families).
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && less(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func less(a, b KernelTime) bool {
	if a.Millis != b.Millis {
		return a.Millis > b.Millis
	}
	return a.Name < b.Name
}

package profile

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/models"
)

var figArchs = []device.Arch{device.ArchPascal, device.ArchVolta, device.ArchTuring}

func mustOverhead(t *testing.T, g *models.Graph, a device.Arch) float64 {
	t.Helper()
	ov, err := Overhead(g, a, Options{})
	if err != nil {
		t.Fatalf("Overhead(%s, %s): %v", g.Name, a, err)
	}
	return ov
}

func TestOverheadMonotoneInKernelSize(t *testing.T) {
	// Paper, Fig 8b: "larger kernel size always comes with larger overhead".
	for _, a := range figArchs {
		prev := 0.0
		for _, k := range []int{1, 3, 5, 7} {
			ov := mustOverhead(t, models.MediumCNNGraph(k), a)
			if ov <= prev {
				t.Errorf("%s: overhead not monotone at k=%d: %.3f <= %.3f", a, k, ov, prev)
			}
			prev = ov
		}
	}
}

func TestOverheadEnvelopeMatchesPaper(t *testing.T) {
	// Fig 8b envelopes: P100 284–746 %, V100 129–241 %, T4 117–196 %.
	// The model is calibrated to land within ~15 % of each endpoint.
	cases := []struct {
		arch     device.Arch
		min, max float64
	}{
		{device.ArchPascal, 2.84, 7.46},
		{device.ArchVolta, 1.29, 2.41},
		{device.ArchTuring, 1.17, 1.96},
	}
	for _, c := range cases {
		lo := mustOverhead(t, models.MediumCNNGraph(1), c.arch)
		hi := mustOverhead(t, models.MediumCNNGraph(7), c.arch)
		if lo < c.min*0.85 || lo > c.min*1.15 {
			t.Errorf("%s k=1 overhead %.2f outside ±15%% of paper %.2f", c.arch, lo, c.min)
		}
		if hi < c.max*0.85 || hi > c.max*1.15 {
			t.Errorf("%s k=7 overhead %.2f outside ±15%% of paper %.2f", c.arch, hi, c.max)
		}
	}
}

func TestOverheadArchitectureOrdering(t *testing.T) {
	// Pascal pays the most for determinism at every kernel size; the newer
	// generations are cheaper (paper Section 4).
	for _, k := range []int{3, 5, 7} {
		g := models.MediumCNNGraph(k)
		p := mustOverhead(t, g, device.ArchPascal)
		v := mustOverhead(t, g, device.ArchVolta)
		u := mustOverhead(t, g, device.ArchTuring)
		if !(p > v && p > u) {
			t.Errorf("k=%d: Pascal (%.2f) must exceed Volta (%.2f) and Turing (%.2f)", k, p, v, u)
		}
	}
}

func TestZooVGGHighestMobileNetLowest(t *testing.T) {
	// Fig 8a: VGG-19 has the largest overhead of the ten profiled networks;
	// MobileNet is essentially free (~101 %).
	for _, a := range figArchs {
		ovs := map[string]float64{}
		for _, g := range models.Zoo() {
			ovs[g.Name] = mustOverhead(t, g, a)
		}
		for name, ov := range ovs {
			if name != "VGG19" && name != "VGG16" && ov > ovs["VGG19"]+1e-9 {
				t.Errorf("%s: %s overhead %.3f exceeds VGG19 %.3f", a, name, ov, ovs["VGG19"])
			}
		}
		if ovs["MobileNet"] > 1.10 {
			t.Errorf("%s: MobileNet overhead %.3f, paper finds ~1.01", a, ovs["MobileNet"])
		}
		if ovs["MobileNet"] < 1.0 {
			t.Errorf("%s: MobileNet overhead %.3f below 1", a, ovs["MobileNet"])
		}
	}
}

func TestZooVoltaVGG19NearPaperValue(t *testing.T) {
	// Paper: VGG-19 at 185 % relative GPU time on V100.
	ov := mustOverhead(t, models.VGG19Graph(), device.ArchVolta)
	if ov < 1.65 || ov > 2.05 {
		t.Errorf("VGG19 on V100 overhead %.3f, paper 1.85", ov)
	}
}

func TestDeterministicNeverFaster(t *testing.T) {
	for _, g := range models.Zoo() {
		for _, a := range figArchs {
			if ov := mustOverhead(t, g, a); ov < 1 {
				t.Errorf("%s on %s: deterministic faster than default (%.3f)", g.Name, a, ov)
			}
		}
	}
}

func TestProfileKernelsSortedAndTotalConsistent(t *testing.T) {
	p, err := Graph(models.VGG19Graph(), device.ArchVolta, device.Default, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, k := range p.Kernels {
		sum += k.Millis
		if i > 0 && k.Millis > p.Kernels[i-1].Millis {
			t.Fatal("kernels not sorted by descending time")
		}
		if k.Millis <= 0 {
			t.Fatalf("kernel %s has non-positive time", k.Name)
		}
	}
	if diff := sum - p.Total; diff > 1e-6*p.Total || diff < -1e-6*p.Total {
		t.Fatalf("kernel sum %.3f != total %.3f", sum, p.Total)
	}
}

func TestDeterministicModeNarrowsKernelSet(t *testing.T) {
	// Fig 7: deterministic mode concentrates time in a narrower set of
	// kernels (everything funnels into implicit GEMM).
	for _, g := range []*models.Graph{models.VGG19Graph(), models.InceptionV3Graph()} {
		def, err := Graph(g, device.ArchVolta, device.Default, Options{})
		if err != nil {
			t.Fatal(err)
		}
		det, err := Graph(g, device.ArchVolta, device.Deterministic, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Time concentrates: the top kernel's share of total time must not
		// shrink under determinism (the "more skewed allocation" of Fig 7).
		defShare := def.Kernels[0].Millis / def.Total
		detShare := det.Kernels[0].Millis / det.Total
		if detShare < defShare {
			t.Errorf("%s: top-kernel share fell under determinism: %.3f -> %.3f", g.Name, defShare, detShare)
		}
		if len(det.Kernels) > len(def.Kernels) {
			t.Errorf("%s: deterministic mode has MORE kernel families (%d > %d)",
				g.Name, len(det.Kernels), len(def.Kernels))
		}
		found := false
		for _, k := range det.Kernels {
			if strings.HasPrefix(k.Name, "implicit_gemm") {
				found = true
			}
			if strings.HasPrefix(k.Name, "winograd") || strings.HasPrefix(k.Name, "fft") {
				t.Errorf("%s: nondeterministic kernel %s in deterministic profile", g.Name, k.Name)
			}
		}
		if !found {
			t.Errorf("%s: no implicit_gemm kernels in deterministic profile", g.Name)
		}
	}
}

func TestDefaultModeUsesFastAlgorithms(t *testing.T) {
	def, err := Graph(models.VGG19Graph(), device.ArchVolta, device.Default, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hasWinograd := false
	for _, k := range def.Kernels {
		if strings.HasPrefix(k.Name, "winograd") {
			hasWinograd = true
		}
	}
	if !hasWinograd {
		t.Fatal("VGG (all 3x3) default profile should dispatch Winograd kernels")
	}
}

func TestTopK(t *testing.T) {
	p, err := Graph(models.InceptionV3Graph(), device.ArchVolta, device.Default, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK(5) returned %d", len(top))
	}
	if big := p.TopK(10000); len(big) != len(p.Kernels) {
		t.Fatalf("TopK beyond length returned %d of %d", len(big), len(p.Kernels))
	}
}

func TestUnknownArchErrors(t *testing.T) {
	if _, err := Graph(models.VGG16Graph(), device.ArchTPU, device.Default, Options{}); err == nil {
		t.Fatal("profiling an unmodeled architecture did not error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Batch != 64 || o.Steps != 100 {
		t.Fatalf("defaults %+v, want batch 64 steps 100 (paper Section 4)", o)
	}
	o2 := Options{Batch: 8, Steps: 2}.withDefaults()
	if o2.Batch != 8 || o2.Steps != 2 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestBatchScalesLinearly(t *testing.T) {
	g := models.ResNet50Graph()
	a, _ := Graph(g, device.ArchVolta, device.Default, Options{Batch: 32})
	b, _ := Graph(g, device.ArchVolta, device.Default, Options{Batch: 64})
	ratio := b.Total / a.Total
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("doubling batch scaled time by %.3f, want 2.0", ratio)
	}
}

// Package quarantine preserves corrupt on-disk records instead of
// deleting them. A store that finds a file it cannot decode — a torn
// write published by a lying filesystem, external corruption, an
// unparseable name — moves it into a quarantine/ subdirectory beside a
// <name>.reason file explaining why, so the evidence survives for
// diagnosis while the store itself degrades to a cache miss and
// recomputes. Nothing in this package ever deletes data.
//
// Layout under a store directory:
//
//	store/
//	  good-record.json
//	  quarantine/
//	    bad-record.json          ← the corrupt file, moved verbatim
//	    bad-record.json.reason   ← one line: why it was quarantined
//
// Functions are safe for concurrent use on POSIX filesystems: moves are
// single renames, and a name quarantined twice keeps the latest copy.
package quarantine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Dir is the subdirectory name quarantined files move into. Directory
// scans in the stores skip subdirectories, so quarantined records are
// invisible to reindexing by construction.
const Dir = "quarantine"

// reasonExt marks the sidecar files carrying quarantine reasons.
const reasonExt = ".reason"

// Move relocates name (a file directly inside dir) into dir/quarantine/
// and records reason in a sidecar file. The sidecar write is
// best-effort: the move is the load-bearing part.
func Move(dir, name, reason string) error {
	qdir := filepath.Join(dir, Dir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("quarantine: %w", err)
	}
	dst := filepath.Join(qdir, name)
	if err := os.Rename(filepath.Join(dir, name), dst); err != nil {
		return fmt.Errorf("quarantine: %w", err)
	}
	_ = os.WriteFile(dst+reasonExt, []byte(reason+"\n"), 0o644)
	return nil
}

// List returns the quarantined file names under dir (reason sidecars
// excluded), or an empty slice when nothing has ever been quarantined.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(dir, Dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("quarantine: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), reasonExt) {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// Count reports how many files are quarantined under dir (0 on any
// scan error — counting is diagnostic, never load-bearing).
func Count(dir string) int {
	names, err := List(dir)
	if err != nil {
		return 0
	}
	return len(names)
}

// Reason returns the recorded reason for a quarantined name ("" when
// none was written).
func Reason(dir, name string) string {
	b, err := os.ReadFile(filepath.Join(dir, Dir, name+reasonExt))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

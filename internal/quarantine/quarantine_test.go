package quarantine

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMovePreservesFileAndReason(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Move(dir, "bad.json", "decode failure: unexpected EOF"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.json")); !os.IsNotExist(err) {
		t.Fatalf("original still present (err = %v)", err)
	}
	moved, err := os.ReadFile(filepath.Join(dir, Dir, "bad.json"))
	if err != nil || string(moved) != "{torn" {
		t.Fatalf("quarantined content = %q, %v", moved, err)
	}
	if got := Reason(dir, "bad.json"); got != "decode failure: unexpected EOF" {
		t.Fatalf("reason = %q", got)
	}
	if got := Count(dir); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	names, err := List(dir)
	if err != nil || len(names) != 1 || names[0] != "bad.json" {
		t.Fatalf("list = %v, %v", names, err)
	}
}

func TestMoveMissingFileErrors(t *testing.T) {
	if err := Move(t.TempDir(), "ghost", "x"); err == nil {
		t.Fatal("moving a missing file succeeded")
	}
}

func TestListEmptyWhenNeverQuarantined(t *testing.T) {
	dir := t.TempDir()
	names, err := List(dir)
	if err != nil || len(names) != 0 {
		t.Fatalf("list = %v, %v", names, err)
	}
	if Count(dir) != 0 {
		t.Fatal("count != 0")
	}
	if Reason(dir, "x") != "" {
		t.Fatal("reason for unknown name not empty")
	}
}

func TestRequarantineKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	for i, content := range []string{"first", "second"} {
		if err := os.WriteFile(filepath.Join(dir, "f"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Move(dir, "f", "round"); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	got, err := os.ReadFile(filepath.Join(dir, Dir, "f"))
	if err != nil || string(got) != "second" {
		t.Fatalf("kept %q, %v", got, err)
	}
	if Count(dir) != 1 {
		t.Fatalf("count = %d", Count(dir))
	}
}

// Package report models experiment results as typed tables inside a
// Result envelope and renders them as aligned plain text, tab-separated
// values or schema-stable JSON, mirroring the rows and series of the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a column-aligned table with a title and typed cells.
type Table struct {
	Title   string   `json:"title"`
	Headers []string `json:"headers"`
	Rows    [][]Cell `json:"rows"`
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row of automatically typed cells: float64 becomes a
// 3-digit float cell, int an integer cell, string a string cell, and a
// Cell passes through unchanged; anything else is formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case Cell:
			row[i] = v
		case float64:
			row[i] = Float(v, 3)
		case int:
			row[i] = Int(v)
		case string:
			row[i] = Str(v)
		default:
			row[i] = Str(fmt.Sprint(v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddStrings appends a row of pre-formatted string cells.
func (t *Table) AddStrings(cells ...string) {
	row := make([]Cell, len(cells))
	for i, c := range cells {
		row[i] = Str(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddCells appends a row of typed cells.
func (t *Table) AddCells(cells ...Cell) { t.Rows = append(t.Rows, cells) }

// TextRows renders every row to strings, the way the text views show them.
func (t *Table) TextRows() [][]string {
	out := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = make([]string, len(row))
		for c, cell := range row {
			out[r][c] = cell.Text()
		}
	}
	return out
}

// Render writes the table to w in aligned text form.
func (t *Table) Render(w io.Writer) error {
	rows := t.TextRows()
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderTSV writes the table as tab-separated values (machine-readable).
func (t *Table) RenderTSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, "\t"))
	b.WriteString("\n")
	for _, row := range t.TextRows() {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

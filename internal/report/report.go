// Package report renders experiment results as aligned plain-text tables
// and tab-separated values, mirroring the rows and series of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddStrings appends a pre-formatted row.
func (t *Table) AddStrings(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w in aligned text form.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderTSV writes the table as tab-separated values (machine-readable).
func (t *Table) RenderTSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, "\t"))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for tests and logs).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Add("short", 1.5)
	tb.Add("a-much-longer-name", 22.25)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line: %q", lines[1])
	}
	// Columns align: "value" header starts at the same offset as 1.500.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1.500") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Add(3.14159)
	if !strings.Contains(tb.String(), "3.142") {
		t.Fatalf("float not formatted to 3 places: %s", tb.String())
	}
}

func TestRenderTSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.Add("x", 1)
	var b strings.Builder
	if err := tb.RenderTSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a\tb\nx\t1\n"
	if b.String() != want {
		t.Fatalf("TSV = %q, want %q", b.String(), want)
	}
}

func TestAddStrings(t *testing.T) {
	tb := New("", "a")
	tb.AddStrings("pre-formatted")
	if len(tb.Rows) != 1 || tb.Rows[0][0].Text() != "pre-formatted" {
		t.Fatalf("rows: %v", tb.Rows)
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tb := New("", "h")
	tb.Add("v")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("empty title produced leading newline")
	}
}

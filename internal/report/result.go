package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ArtifactKind says which kind of paper artifact a result reproduces.
type ArtifactKind string

// Artifact kinds.
const (
	KindTable  ArtifactKind = "table"
	KindFigure ArtifactKind = "figure"
)

// CellKind tags the dynamic type of a table cell.
type CellKind int

// Cell kinds.
const (
	CellString CellKind = iota
	CellFloat
	CellInt
)

// Cell is one typed table entry. The text renderers show Text(); the JSON
// renderer preserves the type, the display precision and the unit so
// downstream consumers (dashboards, the serve API) never re-parse strings.
type Cell struct {
	Kind  CellKind
	Str   string
	Float float64
	Int   int64
	// Prec is the number of fractional digits a float renders with.
	Prec int
	// Unit annotates the value ("%", "X", "ms"); it is appended to the
	// rendered text and carried verbatim into JSON.
	Unit string
}

// Str makes a string cell.
func Str(s string) Cell { return Cell{Kind: CellString, Str: s} }

// Float makes a float cell rendered with prec fractional digits.
func Float(v float64, prec int) Cell { return Cell{Kind: CellFloat, Float: v, Prec: prec} }

// Int makes an integer cell.
func Int(v int) Cell { return Cell{Kind: CellInt, Int: int64(v)} }

// WithUnit returns a copy of the cell annotated with a unit.
func (c Cell) WithUnit(unit string) Cell { c.Unit = unit; return c }

// Text renders the cell the way the plain-text and TSV views show it.
func (c Cell) Text() string {
	switch c.Kind {
	case CellFloat:
		return strconv.FormatFloat(c.Float, 'f', c.Prec, 64) + c.Unit
	case CellInt:
		return strconv.FormatInt(c.Int, 10) + c.Unit
	default:
		return c.Str
	}
}

// MarshalJSON emits the schema-stable cell object:
//
//	{"type":"string","value":"..."}
//	{"type":"float","value":1.23,"unit":"%"}   (unit omitted when empty)
//	{"type":"int","value":5}
//
// Float values are rounded to the cell's display precision so the JSON
// number and the rendered text always agree digit for digit.
func (c Cell) MarshalJSON() ([]byte, error) {
	type obj struct {
		Type  string          `json:"type"`
		Value json.RawMessage `json:"value"`
		Unit  string          `json:"unit,omitempty"`
	}
	o := obj{Unit: c.Unit}
	switch c.Kind {
	case CellFloat:
		o.Type = "float"
		text := strconv.FormatFloat(c.Float, 'f', c.Prec, 64)
		if math.IsInf(c.Float, 0) || math.IsNaN(c.Float) {
			// JSON has no non-finite numbers; carry the text rendering
			// ("+Inf", "NaN") as a string so the document stays valid.
			v, err := json.Marshal(text)
			if err != nil {
				return nil, err
			}
			o.Value = v
		} else {
			o.Value = json.RawMessage(text)
		}
	case CellInt:
		o.Type = "int"
		o.Value = json.RawMessage(strconv.FormatInt(c.Int, 10))
	default:
		o.Type = "string"
		v, err := json.Marshal(c.Str)
		if err != nil {
			return nil, err
		}
		o.Value = v
	}
	return json.Marshal(o)
}

// UnmarshalJSON restores a cell from its schema-stable object form.
func (c *Cell) UnmarshalJSON(b []byte) error {
	var o struct {
		Type  string          `json:"type"`
		Value json.RawMessage `json:"value"`
		Unit  string          `json:"unit"`
	}
	if err := json.Unmarshal(b, &o); err != nil {
		return err
	}
	c.Unit = o.Unit
	switch o.Type {
	case "float":
		c.Kind = CellFloat
		if len(o.Value) > 0 && o.Value[0] == '"' {
			// Non-finite value carried as its text rendering.
			var text string
			if err := json.Unmarshal(o.Value, &text); err != nil {
				return err
			}
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return fmt.Errorf("report: non-numeric float cell %q", text)
			}
			c.Float = f
			return nil
		}
		if err := json.Unmarshal(o.Value, &c.Float); err != nil {
			return err
		}
		// Recover the display precision from the wire form so a decoded
		// cell re-renders identically.
		if dot := bytes.IndexByte(o.Value, '.'); dot >= 0 {
			c.Prec = len(o.Value) - dot - 1
		}
	case "int":
		c.Kind = CellInt
		return json.Unmarshal(o.Value, &c.Int)
	case "string":
		c.Kind = CellString
		return json.Unmarshal(o.Value, &c.Str)
	default:
		return fmt.Errorf("report: unknown cell type %q", o.Type)
	}
	return nil
}

// ConfigEcho is the experiment configuration echoed into every result so a
// stored result is self-describing.
type ConfigEcho struct {
	Scale    string `json:"scale"`
	Replicas int    `json:"replicas"`
	Seed     uint64 `json:"seed"`
}

// Result is the typed outcome of one experiment run: which paper artifact
// it reproduces, the configuration that produced it, how long it took, and
// the artifact's tables. The text, TSV and JSON renderers are all views
// over this one model.
type Result struct {
	// Experiment is the registry ID ("table2", "fig5", ...).
	Experiment string `json:"experiment"`
	// Title is the human headline from the experiment's metadata.
	Title string `json:"title"`
	// Kind says whether the artifact is a paper table or figure.
	Kind ArtifactKind `json:"kind"`
	// Config echoes the scale/replicas/seed that produced the result.
	Config ConfigEcho `json:"config"`
	// WallTimeSeconds is the end-to-end runtime of the experiment
	// (cache hits make it near zero).
	WallTimeSeconds float64 `json:"wall_time_seconds"`
	// Tables holds the artifact's rendered-data tables in paper order.
	Tables []*Table `json:"tables"`
}

// RenderJSON writes the result as indented JSON followed by a newline.
func (r *Result) RenderJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RenderText writes every table of the result in aligned text form.
func (r *Result) RenderText(w io.Writer) error {
	for _, tb := range r.Tables {
		if err := tb.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// RenderTSV writes every table of the result as tab-separated values.
func (r *Result) RenderTSV(w io.Writer) error {
	for _, tb := range r.Tables {
		if err := tb.RenderTSV(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSONResults writes several results as one indented JSON array —
// the document `nnrand -json` emits regardless of how many experiments ran,
// so consumers parse one stable shape.
func RenderJSONResults(w io.Writer, results []*Result) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCellText(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("ALGO"), "ALGO"},
		{Float(3.14159, 2), "3.14"},
		{Float(61.333333, 2).WithUnit("%"), "61.33%"},
		{Float(2.049, 1).WithUnit("X"), "2.0X"},
		{Int(128), "128"},
		{Int(746).WithUnit("%"), "746%"},
	}
	for _, c := range cases {
		if got := c.cell.Text(); got != c.want {
			t.Errorf("Text(%+v) = %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestCellJSONRoundTrip(t *testing.T) {
	cells := []Cell{Str("x"), Float(1.2345, 3).WithUnit("%"), Int(-7)}
	for _, c := range cells {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Cell
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		// The wire value is rounded to display precision, so comparing the
		// rendered text is the invariant that must hold.
		if back.Text() != c.Text() {
			t.Fatalf("round trip %s: text %q != %q", b, back.Text(), c.Text())
		}
		if back.Kind != c.Kind || back.Unit != c.Unit {
			t.Fatalf("round trip %s: kind/unit changed: %+v vs %+v", b, back, c)
		}
	}
}

func TestCellUnknownTypeRejected(t *testing.T) {
	var c Cell
	if err := json.Unmarshal([]byte(`{"type":"blob","value":1}`), &c); err == nil {
		t.Fatal("unknown cell type accepted")
	}
}

// TestResultJSONGolden pins the exact wire format of a rendered Result.
// Any change to this document is a breaking change for API consumers and
// must be deliberate.
func TestResultJSONGolden(t *testing.T) {
	tb := New("Figure X: demo", "task", "acc", "churn")
	tb.AddCells(Str("SmallCNN"), Float(61.5, 2).WithUnit("%"), Float(3.125, 3))
	tb.AddCells(Str("ResNet18"), Float(70, 2).WithUnit("%"), Int(0))
	res := &Result{
		Experiment:      "figX",
		Title:           "Figure X: demo",
		Kind:            KindFigure,
		Config:          ConfigEcho{Scale: "test", Replicas: 2, Seed: 42},
		WallTimeSeconds: 1.5,
		Tables:          []*Table{tb},
	}
	var b strings.Builder
	if err := res.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "experiment": "figX",
  "title": "Figure X: demo",
  "kind": "figure",
  "config": {
    "scale": "test",
    "replicas": 2,
    "seed": 42
  },
  "wall_time_seconds": 1.5,
  "tables": [
    {
      "title": "Figure X: demo",
      "headers": [
        "task",
        "acc",
        "churn"
      ],
      "rows": [
        [
          {
            "type": "string",
            "value": "SmallCNN"
          },
          {
            "type": "float",
            "value": 61.50,
            "unit": "%"
          },
          {
            "type": "float",
            "value": 3.125
          }
        ],
        [
          {
            "type": "string",
            "value": "ResNet18"
          },
          {
            "type": "float",
            "value": 70.00,
            "unit": "%"
          },
          {
            "type": "int",
            "value": 0
          }
        ]
      ]
    }
  ]
}
`
	if b.String() != golden {
		t.Fatalf("JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", b.String(), golden)
	}
}

// TestResultJSONMatchesText asserts the acceptance property: the JSON view
// carries the same values as the text table, digit for digit.
func TestResultJSONMatchesText(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddCells(Float(97.19999, 2), Float(0.1049, 3))
	var buf strings.Builder
	if err := (&Result{Tables: []*Table{tb}}).RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	got := back.Tables[0].TextRows()
	want := tb.TextRows()
	for r := range want {
		for c := range want[r] {
			if got[r][c] != want[r][c] {
				t.Fatalf("cell (%d,%d): JSON %q != text %q", r, c, got[r][c], want[r][c])
			}
		}
	}
}

func TestRenderJSONResultsIsArray(t *testing.T) {
	var b strings.Builder
	if err := RenderJSONResults(&b, []*Result{{Experiment: "a"}, {Experiment: "b"}}); err != nil {
		t.Fatal(err)
	}
	var arr []Result
	if err := json.Unmarshal([]byte(b.String()), &arr); err != nil {
		t.Fatal(err)
	}
	if len(arr) != 2 || arr[0].Experiment != "a" || arr[1].Experiment != "b" {
		t.Fatalf("array round trip: %+v", arr)
	}
}

// TestNonFiniteFloatCellJSON pins the wire form of non-finite float cells:
// JSON has no Inf/NaN literals, so they are carried as their text
// rendering and still round-trip (Figure 3's normalized scales can be
// +Inf at tiny replica counts when the overall stddev is zero).
func TestNonFiniteFloatCellJSON(t *testing.T) {
	tb := New("t", "v")
	tb.AddCells(Float(math.Inf(1), 2).WithUnit("X"))
	res := &Result{Experiment: "x", Title: "t", Kind: KindTable, Tables: []*Table{tb}}
	var buf bytes.Buffer
	if err := res.RenderJSON(&buf); err != nil {
		t.Fatalf("non-finite cell does not marshal: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"+Inf"`)) {
		t.Fatalf("wire form does not carry the text rendering: %s", buf.Bytes())
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	cell := back.Tables[0].Rows[0][0]
	if !math.IsInf(cell.Float, 1) || cell.Unit != "X" {
		t.Fatalf("round-tripped cell = %+v", cell)
	}
}

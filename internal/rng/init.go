package rng

import "math"

// FillUniform fills dst with uniform draws in [lo, hi).
func (s *Stream) FillUniform(dst []float32, lo, hi float64) {
	for i := range dst {
		dst[i] = float32(s.Uniform(lo, hi))
	}
}

// FillNorm fills dst with N(mean, std^2) draws.
func (s *Stream) FillNorm(dst []float32, mean, std float64) {
	for i := range dst {
		dst[i] = float32(mean + std*s.Norm())
	}
}

// GlorotUniform fills dst with Glorot/Xavier uniform initialization for a
// weight tensor with the given fan-in and fan-out (Glorot & Bengio 2010).
func (s *Stream) GlorotUniform(dst []float32, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	s.FillUniform(dst, -limit, limit)
}

// HeNormal fills dst with He initialization for ReLU networks (He et al.
// 2015): N(0, sqrt(2/fanIn)^2).
func (s *Stream) HeNormal(dst []float32, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	s.FillNorm(dst, 0, std)
}

// Package rng provides the deterministic random number substrate used by
// every stochastic component in the repository.
//
// The paper's methodology depends on being able to toggle algorithmic
// randomness (weight init, shuffling, augmentation, dropout) independently
// from implementation randomness (floating-point accumulation order on the
// simulated accelerator). To make that split airtight, all randomness flows
// through Stream values that are created explicitly from seeds: there is no
// package-level global state and no dependence on math/rand. A Stream can be
// split into independent named sub-streams so that, for example, the
// initializer of layer "conv2/W" draws from a stream that is stable no
// matter how many draws other layers made before it.
package rng

import (
	"math"
)

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 (Steele, Lea, Flood 2014) is used both as a seed expander and
// to hash sub-stream labels into seed material.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash64 hashes a byte string with FNV-1a then finalizes with SplitMix64 so
// that short labels ("conv1/W", "shuffle") produce well-mixed seeds.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return splitmix64(&h)
}

// Stream is a deterministic pseudo-random stream (PCG64-XSL-RR). It is NOT
// safe for concurrent use; split one sub-stream per goroutine instead.
type Stream struct {
	seed   uint64 // creation seed; Split derives children from this, not from state
	hi, lo uint64 // 128-bit LCG state
	incHi  uint64 // stream increment (must be odd in low word)
	incLo  uint64

	// Gaussian spare value (Box-Muller produces pairs).
	hasSpare bool
	spare    float64
}

// New returns a Stream seeded from seed. Two Streams built from the same
// seed produce identical outputs on every platform.
func New(seed uint64) *Stream {
	st := seed
	s := &Stream{seed: seed}
	s.lo = splitmix64(&st)
	s.hi = splitmix64(&st)
	s.incLo = splitmix64(&st) | 1 // increment must be odd
	s.incHi = splitmix64(&st)
	// Burn a few outputs so nearby seeds decorrelate immediately.
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// Split derives an independent sub-stream identified by label. Splitting is
// a pure function of (parent seed material, label): it does not consume or
// perturb the parent stream, so layer initialization order cannot leak into
// sibling streams.
func (s *Stream) Split(label string) *Stream {
	st := s.seed ^ hash64(label)
	return New(splitmix64(&st))
}

// SplitIndex derives an independent sub-stream identified by an integer,
// e.g. one stream per replica or per epoch.
func (s *Stream) SplitIndex(i int) *Stream {
	st := s.seed ^ rotl(0xabcd_ef01_2345_6789+uint64(i), 23)
	return New(splitmix64(&st))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 pseudo-random bits (PCG64 XSL-RR output).
func (s *Stream) Uint64() uint64 {
	// 128-bit LCG step: state = state*mul + inc.
	const mulHi, mulLo = 2549297995355413924, 4865540595714422341
	oldHi, oldLo := s.hi, s.lo
	hi, lo := mul128(oldHi, oldLo, mulHi, mulLo)
	lo, carry := add64(lo, s.incLo)
	hi = hi + s.incHi + carry
	s.hi, s.lo = hi, lo
	// XSL-RR output of the *old* state.
	xored := oldHi ^ oldLo
	rot := uint(oldHi >> 58)
	return rotr(xored, rot)
}

func rotr(x uint64, k uint) uint64 { return x>>k | x<<((64-k)%64) }

func add64(a, b uint64) (sum, carry uint64) {
	sum = a + b
	if sum < a {
		carry = 1
	}
	return sum, carry
}

// mul128 multiplies two 128-bit integers (hi,lo pairs) modulo 2^128.
func mul128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	hi, lo = mul64(aLo, bLo)
	hi += aHi*bLo + aLo*bHi
	return hi, lo
}

// mul64 returns the 128-bit product of two uint64 values.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	tLo := t & mask
	tHi := t >> 32
	t = aLo*bHi + tLo
	lo |= (t & mask) << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method with rejection for exactness.
	bound := uint64(n)
	hi, lo := mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			hi, lo = mul64(s.Uint64(), bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (s *Stream) Float32() float32 {
	return float32(s.Uint64()>>40) * (1.0 / (1 << 24))
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard normal draw using Box-Muller (deterministic,
// platform-independent given math.Sqrt/Log/Cos conformance).
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return r * math.Cos(theta)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool { return s.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n) via Fisher-Yates.
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PermInto fills dst[:n] with a pseudo-random permutation of [0, n),
// drawing exactly the stream values Perm(n) would — the allocation-free
// form for callers that reuse a buffer. dst must have length >= n; the
// filled prefix is returned.
func (s *Stream) PermInto(dst []int, n int) []int {
	p := dst[:n]
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle permutes n elements in place using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

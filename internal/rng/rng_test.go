package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminismSameSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: streams with same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical draws of 100", same)
	}
}

func TestNearbySeedsDecorrelate(t *testing.T) {
	// Adjacent seeds must not produce correlated early output (seed
	// expansion via SplitMix64 plus burn-in should handle this).
	a, b := New(0), New(1)
	matches := 0
	for i := 0; i < 64; i++ {
		if a.Uint64()>>32 == b.Uint64()>>32 {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("adjacent seeds look correlated: %d high-word matches", matches)
	}
}

func TestSplitIndependentOfParentPosition(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume the parent differently; children must be identical.
	for i := 0; i < 13; i++ {
		a.Uint64()
	}
	ca, cb := a.Split("child"), b.Split("child")
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split depends on parent draw position; must be pure in (seed, label)")
		}
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	p := New(9)
	a, b := p.Split("layer1/W"), p.Split("layer1/b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("distinct labels produced identical first draw")
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	p := New(3)
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		v := p.SplitIndex(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("SplitIndex(%d) and SplitIndex(%d) collide", i, j)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	s := New(12)
	for i := 0; i < 10000; i++ {
		f := s.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		counts := make([]int, n)
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) out of range: %d", n, v)
			}
			counts[v]++
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(14)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d count %d far from expected %.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(15)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(16)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyBased(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestGlorotUniformBounds(t *testing.T) {
	s := New(18)
	dst := make([]float32, 4096)
	s.Split("w").GlorotUniform(dst, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128.0))
	var minV, maxV float32 = 0, 0
	for _, v := range dst {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV < -limit || maxV > limit {
		t.Fatalf("Glorot values outside [-%v, %v]: min=%v max=%v", limit, limit, minV, maxV)
	}
	if maxV < limit*0.8 || minV > -limit*0.8 {
		t.Fatalf("Glorot values suspiciously narrow: min=%v max=%v limit=%v", minV, maxV, limit)
	}
}

func TestHeNormalStd(t *testing.T) {
	s := New(19)
	dst := make([]float32, 100000)
	s.HeNormal(dst, 50)
	var sum, sumSq float64
	for _, v := range dst {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(dst))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want)/want > 0.05 {
		t.Fatalf("He std = %v, want ~%v", std, want)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(20)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []int {
		v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		New(33).Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
		return v
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle with same seed differs between runs")
		}
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Each bit position should be set roughly half the time.
	s := New(21)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/2) > 4*math.Sqrt(n/4) {
			t.Errorf("bit %d set %d/%d times; biased", b, c, n)
		}
	}
}

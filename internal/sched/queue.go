package sched

import (
	"errors"
	"sync"
)

// Queue errors. Submitters distinguish a transient full queue (back off,
// retry, or surface 503) from a closed queue (the owner is shutting down).
var (
	ErrQueueFull   = errors.New("sched: queue full")
	ErrQueueClosed = errors.New("sched: queue closed")
)

// Queue is a bounded FIFO of arbitrary work drained by a fixed set of
// worker goroutines. It complements ForEach/Map: those fan a known index
// range out and wait; a Queue accepts work that arrives over time (job
// submissions, for example) and runs it in the background with bounded
// concurrency and bounded backlog.
//
// Submit never blocks — when the backlog is full it returns ErrQueueFull
// so callers can apply backpressure instead of queueing unboundedly.
// Tasks run in submission order (FIFO) across the worker set; tasks must
// recover their own panics, since there is no submitting goroutine to
// re-panic on (a panic in a task crashes the process, matching `go fn()`
// semantics).
type Queue struct {
	mu     sync.Mutex
	closed bool
	tasks  chan func()
	wg     sync.WaitGroup
}

// NewQueue starts workers goroutines (min 1) draining a backlog of at
// most depth queued tasks (min 1) beyond the ones currently running.
func NewQueue(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue{tasks: make(chan func(), depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for fn := range q.tasks {
				fn()
			}
		}()
	}
	return q
}

// Submit enqueues fn for execution. It returns ErrQueueFull when the
// backlog is at capacity and ErrQueueClosed after Close.
func (q *Queue) Submit(fn func()) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	select {
	case q.tasks <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// Backlog reports how many submitted tasks are waiting for a worker and
// the backlog capacity — the serve layer's readiness signal (a full
// backlog means the next Submit would return ErrQueueFull). Channel
// len/cap are safe without the lock; the numbers are a snapshot.
func (q *Queue) Backlog() (queued, capacity int) {
	return len(q.tasks), cap(q.tasks)
}

// Close stops accepting work, drains the backlog, and waits for every
// in-flight task to finish. Close is idempotent and safe to call
// concurrently with Submit.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}

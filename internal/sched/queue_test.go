package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueueRunsEverything: every accepted task runs exactly once.
func TestQueueRunsEverything(t *testing.T) {
	q := NewQueue(4, 64)
	var ran atomic.Int64
	const n = 100
	for i := 0; i < n; i++ {
		// Backpressure is part of the contract: retry until a slot frees.
		for {
			err := q.Submit(func() { ran.Add(1) })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	q.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
}

// TestQueueBoundedBacklog: with every worker busy and the backlog full,
// Submit reports ErrQueueFull instead of blocking or queueing.
func TestQueueBoundedBacklog(t *testing.T) {
	release := make(chan struct{})
	q := NewQueue(1, 1)
	started := make(chan struct{})
	if err := q.Submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds task 1; the buffer is free again
	if err := q.Submit(func() { <-release }); err != nil {
		t.Fatal(err) // fills the backlog
	}
	if err := q.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	close(release)
	q.Close()
}

// TestQueueCloseDrainsAndRefuses: Close waits for in-flight and queued
// tasks, further submits fail, and double Close is safe.
func TestQueueCloseDrainsAndRefuses(t *testing.T) {
	q := NewQueue(1, 8)
	var ran atomic.Int64
	slow := func() { time.Sleep(10 * time.Millisecond); ran.Add(1) }
	for i := 0; i < 3; i++ {
		if err := q.Submit(slow); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if got := ran.Load(); got != 3 {
		t.Fatalf("Close returned with %d/3 tasks done", got)
	}
	if err := q.Submit(func() {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("post-Close submit err = %v, want ErrQueueClosed", err)
	}
	q.Close() // idempotent
}

// TestQueueFIFO: a single worker executes tasks in submission order.
func TestQueueFIFO(t *testing.T) {
	q := NewQueue(1, 16)
	var order []int
	done := make(chan struct{})
	for i := 0; i < 5; i++ {
		i := i
		if err := q.Submit(func() {
			order = append(order, i) // single worker: no race
			if i == 4 {
				close(done)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	q.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order = %v, want FIFO", order)
		}
	}
}

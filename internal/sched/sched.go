// Package sched provides the bounded worker pool behind every parallel
// loop in the repository: replica training in internal/core, experiment
// grid fan-out in internal/experiments, and any future sweep that is
// embarrassingly parallel.
//
// Design notes. Parallelism here is purely a wall-clock optimization: every
// unit of work derives its randomness from explicit seeds (see
// core.SeedsFor), so results must be bit-identical no matter how many
// workers run or how the scheduler interleaves them. The pool therefore
// only distributes *indices*; all ordering-sensitive state (result slices)
// is written at the index owned by each unit of work.
//
// The pool is deadlock-free under nesting (a grid runner whose cells call
// RunVariant, which parallelizes replicas): the calling goroutine always
// participates in the work and never blocks waiting for a token, so even
// with zero spare workers every ForEach makes progress. Helper goroutines
// are bounded globally by the worker budget, not per call site.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

var (
	mu     sync.Mutex
	tokens chan struct{} // global helper budget; nil until first use
	want   int           // 0 means "GOMAXPROCS at first use"
)

// Workers returns the current worker budget (the maximum number of helper
// goroutines running across all concurrent Map/ForEach calls, plus the
// calling goroutines themselves).
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	if want > 0 {
		return want
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker budget. n <= 0 resets to GOMAXPROCS.
// Calls in flight keep the budget they started with.
func SetWorkers(n int) {
	mu.Lock()
	defer mu.Unlock()
	if n <= 0 {
		n = 0
	}
	want = n
	tokens = nil // rebuilt lazily at the new size
}

// acquireBudget returns the token channel, building it at the current
// budget if needed. Helpers release to the same channel they drew from,
// so resizing mid-flight cannot leak or double-count tokens.
func acquireBudget() chan struct{} {
	mu.Lock()
	defer mu.Unlock()
	if tokens == nil {
		n := want
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		// The caller participates for free; helpers need tokens. n-1 helper
		// tokens yield n-way parallelism for a single top-level call.
		tokens = make(chan struct{}, max(n-1, 0))
		for i := 0; i < cap(tokens); i++ {
			tokens <- struct{}{}
		}
	}
	return tokens
}

// PanicError wraps a panic captured from a pooled worker so the caller
// goroutine can re-panic with context instead of crashing the process from
// an anonymous goroutine.
type PanicError struct {
	Index int    // work item that panicked
	Value any    // original panic value
	Stack string // stack of the panicking goroutine
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("sched: work item %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over the
// worker budget. It returns the first error observed (remaining indices
// are skipped once an error is recorded, but in-flight items run to
// completion). When ctx is cancelled no new indices are claimed and
// ForEach returns ctx.Err() (unless fn already failed with a different
// error first); long-running fn bodies should check ctx themselves to
// abort mid-item. If fn panics, ForEach waits for all workers and then
// re-panics a *PanicError on the calling goroutine.
func ForEach(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		state struct {
			sync.Mutex
			next  int
			err   error
			panic *PanicError
		}
		wg sync.WaitGroup
	)
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 16<<10)
				buf = buf[:runtime.Stack(buf, false)]
				state.Lock()
				if state.panic == nil {
					state.panic = &PanicError{Index: i, Value: r, Stack: string(buf)}
				}
				state.Unlock()
			}
		}()
		if err := fn(i); err != nil {
			state.Lock()
			if state.err == nil {
				state.err = err
			}
			state.Unlock()
		}
	}
	// next claims the next index, or returns false when work is exhausted,
	// the context is cancelled, or an error/panic already ended the loop.
	// Exhaustion is checked before cancellation on purpose: a cancel that
	// lands after every index has been claimed must not discard work that
	// is completing anyway (in-flight fn bodies observe ctx themselves if
	// they care).
	next := func() (int, bool) {
		state.Lock()
		defer state.Unlock()
		if state.next >= n || state.err != nil || state.panic != nil {
			return 0, false
		}
		if err := ctx.Err(); err != nil {
			state.err = err
			return 0, false
		}
		i := state.next
		state.next++
		return i, true
	}

	budget := acquireBudget()
	// Spawn at most n-1 helpers, and only as many as the global budget has
	// tokens for right now; the caller drains whatever is left.
	for h := 1; h < n; h++ {
		select {
		case tok := <-budget:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { budget <- tok }()
				for {
					i, ok := next()
					if !ok {
						return
					}
					runOne(i)
				}
			}()
		default:
			h = n // budget exhausted; stop trying
		}
	}
	for {
		i, ok := next()
		if !ok {
			break
		}
		runOne(i)
	}
	wg.Wait()
	if state.panic != nil {
		panic(state.panic)
	}
	return state.err
}

// Map runs fn for every index in [0, n) under the worker budget and
// returns the results in index order. Error, cancellation and panic
// semantics match ForEach.
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

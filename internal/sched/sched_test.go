package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	got, err := Map(context.Background(), 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	var counts [1000]int32
	if err := ForEach(context.Background(), len(counts), func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Dispatch stops after the error is recorded; with a small index
	// triggering it, the vast majority of the 1000 items must be skipped.
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop dispatch")
	}
}

func TestForEachPanicCaptured(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Index != 7 || pe.Value != "kaboom" {
			t.Fatalf("PanicError = %+v", pe)
		}
	}()
	_ = ForEach(context.Background(), 8, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
	t.Fatal("unreachable")
}

// TestNestedForEachNoDeadlock exercises the grid-runner shape: an outer
// loop whose items each run an inner parallel loop. The caller-participates
// design must complete even when outer items outnumber the worker budget.
func TestNestedForEachNoDeadlock(t *testing.T) {
	old := Workers()
	SetWorkers(2)
	defer SetWorkers(old)
	var total atomic.Int32
	err := ForEach(context.Background(), 16, func(i int) error {
		return ForEach(context.Background(), 16, func(j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 256 {
		t.Fatalf("ran %d inner items, want 256", total.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

// TestForEachCancelledBeforeStart pins the fast path: a pre-cancelled
// context runs nothing and surfaces ctx.Err().
func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, func(int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a cancelled context", ran.Load())
	}
}

// TestForEachCancelMidFlight cancels while items are in flight: dispatch
// must stop claiming new indices and return ctx.Err().
func TestForEachCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	var once sync.Once
	err := ForEach(ctx, 1000, func(i int) error {
		ran.Add(1)
		once.Do(cancel) // first item cancels everyone else
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

// TestForEachCancelAfterExhaustionKeepsResults pins that a cancellation
// arriving after every index has been claimed does not turn finished work
// into an error: `nnrand all` interrupted as the last cell completes must
// still render, not discard hours of training.
func TestForEachCancelAfterExhaustionKeepsResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	out, err := Map(ctx, n, func(i int) (int, error) {
		if i == n-1 {
			cancel() // cancellation lands as the final item runs
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("completed work discarded: %v", err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
}

func TestMapZeroAndOne(t *testing.T) {
	if out, err := Map(context.Background(), 0, func(int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("Map(0): %v %v", out, err)
	}
	out, err := Map(context.Background(), 1, func(int) (string, error) { return "x", nil })
	if err != nil || len(out) != 1 || out[0] != "x" {
		t.Fatalf("Map(1): %v %v", out, err)
	}
}

package sched

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	var counts [1000]int32
	if err := ForEach(len(counts), func(i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(1000, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Dispatch stops after the error is recorded; with a small index
	// triggering it, the vast majority of the 1000 items must be skipped.
	if n := ran.Load(); n == 1000 {
		t.Error("error did not stop dispatch")
	}
}

func TestForEachPanicCaptured(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Index != 7 || pe.Value != "kaboom" {
			t.Fatalf("PanicError = %+v", pe)
		}
	}()
	_ = ForEach(8, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
	t.Fatal("unreachable")
}

// TestNestedForEachNoDeadlock exercises the grid-runner shape: an outer
// loop whose items each run an inner parallel loop. The caller-participates
// design must complete even when outer items outnumber the worker budget.
func TestNestedForEachNoDeadlock(t *testing.T) {
	old := Workers()
	SetWorkers(2)
	defer SetWorkers(old)
	var total atomic.Int32
	err := ForEach(16, func(i int) error {
		return ForEach(16, func(j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 256 {
		t.Fatalf("ran %d inner items, want 256", total.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
}

func TestMapZeroAndOne(t *testing.T) {
	if out, err := Map(0, func(int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("Map(0): %v %v", out, err)
	}
	out, err := Map(1, func(int) (string, error) { return "x", nil })
	if err != nil || len(out) != 1 || out[0] != "x" {
		t.Fatalf("Map(1): %v %v", out, err)
	}
}

package server

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
)

// This file is the admission-control layer: every request the server
// refuses for capacity reasons — rather than because it is malformed —
// flows through here, and every refusal carries a machine-readable
// reason plus a Retry-After so well-behaved clients back off instead of
// hot-looping.

// Machine-readable rejection reasons. Clients branch on these, not on
// the human-oriented error text.
const (
	// ReasonQueueFull: the job backlog is at capacity (503). Retry after
	// the queue drains.
	ReasonQueueFull = "queue_full"
	// ReasonBudgetExceeded: the submission's estimated train_epochs
	// exceeds the server's -max-train-epochs budget (429). The estimate
	// is echoed so the client can shrink the grid, drop replicas, or
	// wait for the ledger to warm.
	ReasonBudgetExceeded = "budget_exceeded"
	// ReasonRateLimited: this client exhausted its token bucket (429).
	ReasonRateLimited = "rate_limited"
	// ReasonDraining: the server is shutting down (503).
	ReasonDraining = "draining"
)

// budgetRetryAfterSeconds is the Retry-After hint on budget rejections.
// A budget reject is not transient in the rate-limit sense — the client
// must either shrink the request or wait for concurrent work to warm
// the ledger — so the hint is a polite coarse backoff, not a promise.
const budgetRetryAfterSeconds = 30

// admitBudget applies the -max-train-epochs admission price to an
// estimate. It returns true when the submission is admitted; otherwise
// it has already written the 429 (estimate echoed, Retry-After set) and
// counted the rejection.
func (s *Server) admitBudget(w http.ResponseWriter, est experiments.Estimate) bool {
	if s.maxTrainEpochs <= 0 || est.TrainEpochs <= s.maxTrainEpochs {
		return true
	}
	s.rejectedBudget.Add(1)
	writeError(w, http.StatusTooManyRequests, errorResponse{
		Error: fmt.Sprintf(
			"estimated cost %d train_epochs (%d of %d replicas uncached) exceeds the admission budget of %d train_epochs; shrink the grid or replica count, or resubmit once the ledger is warmer",
			est.TrainEpochs, est.TrainReplicas, est.TrainingRuns, s.maxTrainEpochs),
		Reason:            ReasonBudgetExceeded,
		RetryAfterSeconds: budgetRetryAfterSeconds,
		Estimate:          &est,
		MaxTrainEpochs:    s.maxTrainEpochs,
	})
	return false
}

// rateLimiter is a per-client token-bucket limiter keyed by remote
// host. Buckets refill at rate tokens/second up to burst; a request
// costs one token. Idle buckets are swept lazily so the map stays
// bounded under address churn.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	sweepAt time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiterSweepEvery bounds how often the client map is scanned for
// idle buckets; rateLimiterIdle is how long a client must be silent
// before its bucket (by then full anyway) is dropped.
const (
	rateLimiterSweepEvery = time.Minute
	rateLimiterIdle       = 10 * time.Minute
)

func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		// Default burst: two seconds of refill, at least one request —
		// enough to absorb a client's natural request pairs (submit then
		// poll) without admitting a flood.
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{rate: rate, burst: b, clients: map[string]*bucket{}}
}

// allow spends one token for the client, reporting whether the request
// is admitted and, when it is not, how long until a token accrues.
func (l *rateLimiter) allow(client string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.clients[client]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	l.sweepLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// sweepLocked drops buckets idle long enough to have refilled
// completely — forgetting them is behaviorally invisible.
func (l *rateLimiter) sweepLocked(now time.Time) {
	if now.Sub(l.sweepAt) < rateLimiterSweepEvery {
		return
	}
	l.sweepAt = now
	for client, b := range l.clients {
		if now.Sub(b.last) > rateLimiterIdle {
			delete(l.clients, client)
		}
	}
}

// clientKey reduces a request to its rate-limit identity: the remote
// host without the ephemeral port, so one client is one bucket no
// matter how many connections it opens.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// rateLimitExempt marks the paths that must answer even for a client
// being shed: liveness and readiness probes are how operators and load
// balancers see the shedding.
func rateLimitExempt(path string) bool {
	return path == "/v1/healthz" || path == "/v1/readyz"
}

// limit wraps next with the per-client token bucket. With no limiter
// configured (serve without -rate) next is returned untouched.
func (s *Server) limit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rateLimitExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if ok, wait := s.limiter.allow(clientKey(r), time.Now()); !ok {
			s.shedRate.Add(1)
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			writeError(w, http.StatusTooManyRequests, errorResponse{
				Error: fmt.Sprintf("rate limit exceeded (%.3g requests/s per client); retry in %ds",
					s.limiter.rate, secs),
				Reason:            ReasonRateLimited,
				RetryAfterSeconds: secs,
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// routeLabel collapses a request onto its mux pattern for telemetry:
// path parameters are folded back into their placeholders so metric
// cardinality is the route table's size, never the ID space's. Unknown
// paths collapse onto "other".
func routeLabel(r *http.Request) string {
	route := "other"
	p := strings.TrimSuffix(strings.TrimPrefix(r.URL.Path, "/v1/"), "/")
	segs := strings.Split(p, "/")
	switch segs[0] {
	case "experiments":
		switch {
		case len(segs) == 1:
			route = "/v1/experiments"
		case len(segs) == 3 && segs[2] == "run":
			route = "/v1/experiments/{id}/run"
		}
	case "jobs":
		switch len(segs) {
		case 1:
			route = "/v1/jobs"
		case 2:
			route = "/v1/jobs/{id}"
		}
	case "results":
		if len(segs) == 2 {
			route = "/v1/results/{key}"
		}
	case "work":
		switch {
		case len(segs) == 2 && segs[1] == "lease":
			route = "/v1/work/lease"
		case len(segs) == 3 && (segs[2] == "heartbeat" || segs[2] == "complete"):
			route = "/v1/work/{id}/" + segs[2]
		}
	case "devices", "workloads", "grid", "healthz", "readyz", "stats", "metrics":
		if len(segs) == 1 {
			route = "/v1/" + segs[0]
		}
	}
	return r.Method + " " + route
}

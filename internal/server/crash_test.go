package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/report"
)

func TestHealthzAlwaysOK(t *testing.T) {
	srv := newTestServer(t, Options{})
	var h HealthResponse
	getJSON(t, srv, "/v1/healthz", http.StatusOK, &h)
	if h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestReadyzHealthy(t *testing.T) {
	srv := newTestServer(t, Options{StoreDir: t.TempDir(), LedgerDir: t.TempDir(),
		Populations: experiments.NewPopulations(0)})
	var r ReadyResponse
	getJSON(t, srv, "/v1/readyz", http.StatusOK, &r)
	if !r.Ready {
		t.Fatalf("readyz = %+v", r)
	}
	for _, name := range []string{"store", "ledger", "queue"} {
		if _, ok := r.Checks[name]; !ok {
			t.Fatalf("readyz missing check %q: %+v", name, r)
		}
	}
}

// TestReadyzDegradesPerDependency: each failing dependency flips
// readiness to 503 and names itself in the checks, while liveness stays
// 200 — the degradation is visible, not fatal.
func TestReadyzDegradesPerDependency(t *testing.T) {
	defer faults.Reset()
	srv := newTestServer(t, Options{StoreDir: t.TempDir(), LedgerDir: t.TempDir(),
		Populations: experiments.NewPopulations(0)})

	for _, tc := range []struct{ point, check string }{
		{"store.probe", "store"},
		{"ledger.probe", "ledger"},
	} {
		faults.Arm(tc.point, faults.Injection{})
		var r ReadyResponse
		getJSON(t, srv, "/v1/readyz", http.StatusServiceUnavailable, &r)
		if r.Ready || r.Checks[tc.check] == "ok" {
			t.Fatalf("%s armed: readyz = %+v", tc.point, r)
		}
		var h HealthResponse
		getJSON(t, srv, "/v1/healthz", http.StatusOK, &h)
		faults.Reset()
	}
	var r ReadyResponse
	getJSON(t, srv, "/v1/readyz", http.StatusOK, &r)
	if !r.Ready {
		t.Fatalf("readyz after disarm = %+v", r)
	}
}

// TestReadyzDuringDrain: a draining server reports not-ready so load
// balancers stop routing new work to it.
func TestReadyzDuringDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, err := New(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		select {
		case <-release:
			return stubResult(id), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test"}`, http.StatusAccepted, nil)
	<-started
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := srv.Client().Get(srv.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 during drain")
		}
		time.Sleep(time.Millisecond)
	}
	// New submissions are shed while draining: 503 with the
	// machine-readable reason, so clients fail over instead of retrying
	// a server on its way down.
	var e errorResponse
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test","seed":99}`, http.StatusServiceUnavailable, &e)
	if e.Reason != ReasonDraining {
		t.Errorf("drain refusal reason = %q, want %q", e.Reason, ReasonDraining)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestJobListEndpoint: GET /v1/jobs returns every retained job in
// submission order with results stripped.
func TestJobListEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return stubResult(id), nil
	}})
	var first, second jobs.Snapshot
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test"}`, http.StatusAccepted, &first)
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test","seed":99}`, http.StatusAccepted, &second)

	// Wait until both are done so Result-stripping is observable.
	for _, id := range []string{first.ID, second.ID} {
		deadline := time.Now().Add(10 * time.Second)
		for {
			var snap jobs.Snapshot
			getJSON(t, srv, "/v1/jobs/"+id, http.StatusOK, &snap)
			if snap.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never terminal", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	var list JobsResponse
	getJSON(t, srv, "/v1/jobs", http.StatusOK, &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2: %+v", len(list.Jobs), list)
	}
	if list.Jobs[0].ID != first.ID || list.Jobs[1].ID != second.ID {
		t.Fatalf("listing order = %s, %s; want %s, %s", list.Jobs[0].ID, list.Jobs[1].ID, first.ID, second.ID)
	}
	for _, j := range list.Jobs {
		if j.Result != nil {
			t.Fatalf("job %s listing carries a result", j.ID)
		}
		if j.State != jobs.StateDone {
			t.Fatalf("job %s state = %s", j.ID, j.State)
		}
	}
}

// TestCrashRecoveryResumesGridJob is the PR's headline acceptance test:
// a server dies hard mid-grid (the job never reaches a terminal state —
// its goroutine is simply abandoned, as a SIGKILL would), a successor
// starts over the same store/ledger with Resume, and
//
//  1. the journaled grid job is resubmitted and runs to done,
//  2. replicas the ledger already held are NOT retrained (zero
//     duplicates), and
//  3. the recovered result is byte-identical to an uninterrupted run.
func TestCrashRecoveryResumesGridJob(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	storeDir, ledgerDir := t.TempDir(), t.TempDir()
	gridBody := `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["V100","TPUv2"],"variants":["IMPL"],"recipes":[{"epochs":2}]},"scale":"test","replicas":2,"seed":11}`
	const totalReplicas = 4 // 2 cells x 2 replicas

	// Process A: train until at least one replica is in the ledger, then
	// hang forever — the process-local equivalent of SIGKILL: no cleanup,
	// no terminal state, the journal entry left exactly as it was.
	pops1 := experiments.NewPopulations(0)
	s1, err := New(Options{StoreDir: storeDir, LedgerDir: ledgerDir, Populations: pops1,
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			ictx, icancel := context.WithCancel(ctx)
			go func() {
				for pops1.Ledger().Len() < 2 {
					time.Sleep(time.Millisecond)
				}
				icancel()
			}()
			_, _ = pops1.RunPlan(ictx, plan, cfg) // interrupted mid-grid
			select {}                             // the "crash": never return
		}})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1.Handler())
	// Deliberately NO s1.Close(): Close waits for workers, and a killed
	// process performs no shutdown. The hung worker goroutine leaks for
	// the remainder of the test binary, like the real process would until
	// the kernel reaps it.
	defer srv1.Close()

	var submitted GridResponse
	postJSON(t, srv1, "/v1/grid", gridBody, http.StatusAccepted, &submitted)
	// Wait until the ledger holds partial progress, then "kill" A.
	deadline := time.Now().Add(120 * time.Second)
	for pops1.Ledger().Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ledger never accumulated partial progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recordsAtKill := pops1.Ledger().Len()
	srv1.Close()
	if recordsAtKill >= totalReplicas {
		t.Fatalf("%d replicas already ledgered at kill; the grid finished before the crash", recordsAtKill)
	}

	// Process B: fresh caches, same directories, -resume.
	pops2 := experiments.NewPopulations(0)
	s2, err := New(Options{StoreDir: storeDir, LedgerDir: ledgerDir, Populations: pops2, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		srv2.Close()
		s2.Close()
	})
	if s2.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1 (err = %v)", s2.Recovered(), s2.RecoveryError())
	}
	if err := s2.RecoveryError(); err != nil {
		t.Fatalf("recovery error: %v", err)
	}

	// The resubmitted job is discoverable through the listing and reaches
	// done.
	var list JobsResponse
	getJSON(t, srv2, "/v1/jobs", http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].Experiment != submitted.GridID || list.Jobs[0].Key != submitted.Key {
		t.Fatalf("recovered listing = %+v, want the journaled grid job %s/%s", list.Jobs, submitted.GridID, submitted.Key)
	}
	recoveredID := list.Jobs[0].ID
	var snap jobs.Snapshot
	deadline = time.Now().Add(120 * time.Second)
	for {
		getJSON(t, srv2, "/v1/jobs/"+recoveredID, http.StatusOK, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never terminal: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if snap.State != jobs.StateDone {
		t.Fatalf("recovered job = %+v", snap)
	}

	// Zero duplicate training: the successor trained exactly the replicas
	// the ledger did not already hold.
	if got, want := int(pops2.Trains()), totalReplicas-recordsAtKill; got != want {
		t.Fatalf("successor trained %d replicas, want %d (%d were ledgered at kill)", got, want, recordsAtKill)
	}
	// The journal entry is settled.
	if n := s2.engine.Journal().Len(); n != 0 {
		t.Fatalf("%d journal entries left after recovery completed", n)
	}

	// Byte-identical to an uninterrupted run: a pristine server computes
	// the same grid from scratch; only wall time may differ.
	pops3 := experiments.NewPopulations(0)
	srv3 := newTestServer(t, Options{StoreDir: t.TempDir(), LedgerDir: t.TempDir(), Populations: pops3})
	var fresh GridResponse
	postJSON(t, srv3, "/v1/grid", gridBody, http.StatusAccepted, &fresh)
	var freshSnap jobs.Snapshot
	deadline = time.Now().Add(120 * time.Second)
	for {
		getJSON(t, srv3, "/v1/jobs/"+fresh.ID, http.StatusOK, &freshSnap)
		if freshSnap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pristine job never terminal: %+v", freshSnap)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if freshSnap.State != jobs.StateDone {
		t.Fatalf("pristine job = %+v", freshSnap)
	}
	canon := func(r *report.Result) string {
		c := *r
		c.WallTimeSeconds = 0
		b, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := canon(snap.Result), canon(freshSnap.Result); got != want {
		t.Fatalf("recovered result differs from uninterrupted run:\nrecovered: %s\npristine:  %s", got, want)
	}

	// And the recovery journal directory lives where the docs say it does.
	if dir := s2.engine.Journal().Dir(); dir != filepath.Join(storeDir, "journal") {
		t.Fatalf("journal dir = %s", dir)
	}
}

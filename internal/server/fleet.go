package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// This file is the HTTP face of fleet mode plus the stats endpoint: the
// three work endpoints translate the wire protocol onto the
// coordinator's lease state machine, and /v1/stats aggregates the
// counters every layer already keeps (queue, jobs, ledger, populations,
// fleet) into one operator snapshot.

// maxUploadBytes bounds a complete-upload body. A full-scale replica
// record (weights + predictions + loss curve) is single-digit MBs;
// 64 MiB refuses runaway uploads with room to spare.
const maxUploadBytes = 64 << 20

// StatsResponse is the GET /v1/stats reply.
type StatsResponse struct {
	// Requests is the serving-layer rollup (totals across every route);
	// the per-route breakdown with latency histograms lives on
	// GET /v1/metrics.
	Requests telemetry.Totals `json:"requests"`
	// Admission counts capacity refusals by mechanism.
	Admission AdmissionStats `json:"admission"`
	// Queue is the submission backlog against its capacity.
	Queue QueueStats `json:"queue"`
	// Jobs counts retained jobs by state (all states present, zeros
	// included, so dashboards get a stable shape).
	Jobs map[string]int `json:"jobs"`
	// Ledger reports the replica ledger's size and traffic counters.
	Ledger LedgerStats `json:"ledger"`
	// Store is the completed-result store.
	Store StoreStats `json:"store"`
	// Populations reports replicas actually trained by this process's
	// population cache since start (ledger hits excluded).
	Populations PopulationStats `json:"populations"`
	// Fleet is the coordinator's lease/worker state; absent unless the
	// server runs in fleet mode.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

// QueueStats is the job-queue slice of StatsResponse.
type QueueStats struct {
	Backlog  int `json:"backlog"`
	Capacity int `json:"capacity"`
}

// LedgerStats is the replica-ledger slice of StatsResponse.
type LedgerStats struct {
	Replicas    int   `json:"replicas"`
	Trains      int64 `json:"replica_trains"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Quarantined int64 `json:"quarantined"`
}

// StoreStats is the result-store slice of StatsResponse. Hits/misses
// count store probes: every submission probes the store before running,
// so hits/(hits+misses) is the result-cache hit rate the load benchmark
// reports.
type StoreStats struct {
	Results int   `json:"results"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// PopulationStats is the population-cache slice of StatsResponse.
type PopulationStats struct {
	ReplicaTrains int64 `json:"replica_trains"`
}

// handleStats is GET /v1/stats: one cheap snapshot of every layer's
// counters (ROADMAP item 5's first slice). All values are monotone
// counters or instantaneous gauges; nothing here blocks on training.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Counters describe this instant; a cached copy is misinformation.
	w.Header().Set("Cache-Control", "no-store")
	queued, capacity := s.engine.QueueBacklog()
	byState := map[string]int{
		string(jobs.StateQueued):    0,
		string(jobs.StateRunning):   0,
		string(jobs.StateDone):      0,
		string(jobs.StateFailed):    0,
		string(jobs.StateCancelled): 0,
	}
	for _, j := range s.engine.Jobs() {
		byState[string(j.Snapshot().State)]++
	}
	led := s.pops.Ledger()
	store := s.engine.Store()
	resp := StatsResponse{
		Requests:  s.tel.Totals(),
		Admission: s.admissionStats(),
		Queue:     QueueStats{Backlog: queued, Capacity: capacity},
		Jobs:      byState,
		Ledger: LedgerStats{
			Replicas:    led.Len(),
			Trains:      led.Trains(),
			Hits:        led.Hits(),
			Misses:      led.Misses(),
			Quarantined: led.Quarantined(),
		},
		Store:       StoreStats{Results: store.Len(), Hits: store.Hits(), Misses: store.Misses()},
		Populations: PopulationStats{ReplicaTrains: s.pops.Trains()},
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		resp.Fleet = &fs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkLease is POST /v1/work/lease: hand the calling worker a
// batch of pending units under a TTL lease, long-polling an empty queue
// up to the requested (server-capped) wait.
func (s *Server) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	var req fleet.LeaseRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing required field \"worker\""})
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	units, ttl := s.fleet.Lease(r.Context(), req.Worker, req.Max, wait, req.Trains)
	writeJSON(w, http.StatusOK, fleet.LeaseResponse{Units: units, TTLMS: ttl.Milliseconds()})
}

// handleWorkHeartbeat is POST /v1/work/{id}/heartbeat: extend the
// caller's lease and report the unit's fate ("ok", "gone", "done").
func (s *Server) handleWorkHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req fleet.HeartbeatRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing required field \"worker\""})
		return
	}
	status := s.fleet.Heartbeat(req.Worker, id, req.Trains)
	writeJSON(w, http.StatusOK, fleet.HeartbeatResponse{Status: status})
}

// handleWorkComplete is POST /v1/work/{id}/complete. The normal form is
// a checkpoint-codec record (Content-Type: application/octet-stream,
// ?worker= names the uploader): it is CRC-verified and checked against
// the unit's (cell, replica) before the result is delivered to the
// population flight that owns it — a body failing either check is
// preserved in quarantine and refused with 400, leaving the lease
// standing so the worker retries. The JSON form ({"worker", "error"})
// reports a permanent worker-side failure instead. Duplicate and stale
// completions are acknowledged with 200 and dropped.
func (s *Server) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Header.Get("Content-Type") == "application/json" {
		var req fleet.FailRequest
		if err := decodeBody(r.Body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		if req.Worker == "" || req.Error == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "failure report needs \"worker\" and \"error\""})
			return
		}
		status := s.fleet.FailUnit(req.Worker, id, req.Error)
		writeJSON(w, http.StatusOK, fleet.CompleteResponse{Status: status})
		return
	}
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing ?worker= query parameter"})
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("reading upload: %v", err)})
		return
	}
	if len(raw) > maxUploadBytes {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("upload exceeds %d bytes", maxUploadBytes)})
		return
	}
	cell, res, decErr := checkpoint.DecodeResult(bytes.NewReader(raw))
	status, err := s.fleet.CompleteUpload(worker, id, cell, res, decErr, raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, fleet.CompleteResponse{Status: status})
}

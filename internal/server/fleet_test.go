package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/quarantine"
	"repro/internal/report"
)

// TestStatsEndpoint pins the /v1/stats shape: every job state present
// (zeros included), queue gauge against capacity, and the store/ledger
// counters moving as work completes.
func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return stubResult(id), nil
	}})

	var before StatsResponse
	getJSON(t, srv, "/v1/stats", 200, &before)
	for _, state := range []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled} {
		if _, ok := before.Jobs[string(state)]; !ok {
			t.Fatalf("stats jobs map missing state %q: %v", state, before.Jobs)
		}
	}
	if before.Queue.Capacity <= 0 {
		t.Fatalf("queue capacity = %d, want > 0", before.Queue.Capacity)
	}
	if before.Fleet != nil {
		t.Fatal("non-fleet server reported fleet stats")
	}

	var run RunResponse
	postJSON(t, srv, "/v1/experiments/fig1/run", `{"scale":"test"}`, 200, &run)

	var after StatsResponse
	getJSON(t, srv, "/v1/stats", 200, &after)
	if after.Jobs[string(jobs.StateDone)] != before.Jobs[string(jobs.StateDone)]+1 {
		t.Fatalf("done jobs did not advance: before %v, after %v", before.Jobs, after.Jobs)
	}
	if after.Store.Results != before.Store.Results+1 {
		t.Fatalf("store results = %d, want %d", after.Store.Results, before.Store.Results+1)
	}
	if after.Queue.Backlog != 0 {
		t.Fatalf("idle backlog = %d, want 0", after.Queue.Backlog)
	}
}

// TestReadyzJournalProbe is the readiness satellite: a journal that can
// no longer record (forced through the "journal.probe" fault point, the
// root-runs-tests substitute for a read-only directory) flips readyz to
// 503 with the journal check carrying the cause, and recovery flips it
// back — the silent-durability-downgrade failure mode becomes visible.
func TestReadyzJournalProbe(t *testing.T) {
	faults.Reset()
	srv := newTestServer(t, Options{StoreDir: t.TempDir()})

	var ready ReadyResponse
	getJSON(t, srv, "/v1/readyz", 200, &ready)
	if ready.Checks["journal"] != "ok" {
		t.Fatalf("healthy journal check = %q, want ok (checks = %v)", ready.Checks["journal"], ready.Checks)
	}

	disarm := faults.Arm("journal.probe", faults.Injection{Err: errors.New("journal dir gone read-only")})
	defer disarm()
	var sick ReadyResponse
	getJSON(t, srv, "/v1/readyz", 503, &sick)
	if sick.Ready {
		t.Fatal("readyz reported ready with an unwritable journal")
	}
	if !strings.Contains(sick.Checks["journal"], "read-only") {
		t.Fatalf("journal check = %q, want the probe failure surfaced", sick.Checks["journal"])
	}

	disarm()
	getJSON(t, srv, "/v1/readyz", 200, &ready)
	if ready.Checks["journal"] != "ok" {
		t.Fatalf("recovered journal check = %q, want ok", ready.Checks["journal"])
	}
}

// fleetHarness is one fleet-mode server plus its HTTP front.
type fleetHarness struct {
	s   *Server
	srv *httptest.Server
}

func newFleetHarness(t *testing.T, opts Options) *fleetHarness {
	t.Helper()
	opts.Fleet = true
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return &fleetHarness{s: s, srv: srv}
}

// pollDone polls one job to a terminal state and requires done.
func pollDone(t *testing.T, srv *httptest.Server, id string, within time.Duration) jobs.Snapshot {
	t.Helper()
	var snap jobs.Snapshot
	deadline := time.Now().Add(within)
	for {
		getJSON(t, srv, "/v1/jobs/"+id, 200, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never terminal: %+v", id, snap)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if snap.State != jobs.StateDone {
		t.Fatalf("job %s = %+v", id, snap)
	}
	return snap
}

// TestFleetGridBitIdentical is the tentpole acceptance test at the HTTP
// layer: a grid trained by two worker processes' loops (in-process here;
// the CI smoke runs real processes) over the full lease/heartbeat/upload
// protocol is byte-identical to the same grid trained single-node — and
// a torn first upload (armed through the "fleet.complete" fault point)
// is quarantined and retried without corrupting anything or duplicating
// work.
func TestFleetGridBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	faults.Reset()
	ledgerDir := t.TempDir()
	h := newFleetHarness(t, Options{
		Populations: experiments.NewPopulations(0),
		LedgerDir:   ledgerDir,
		LeaseTTL:    2 * time.Second,
	})

	// Tear the very first upload 10 bytes in: the coordinator must
	// quarantine it and the worker's retry (re-encoded intact) must land.
	disarm := faults.Arm("fleet.complete", faults.Injection{Truncate: true, TruncateAt: 10, Count: 1})
	defer disarm()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := []*fleet.Worker{
		{Base: h.srv.URL, Name: "w1", Trainers: 2, Backoff: 20 * time.Millisecond, Wait: 500 * time.Millisecond},
		{Base: h.srv.URL, Name: "w2", Trainers: 2, Backoff: 20 * time.Millisecond, Wait: 500 * time.Millisecond},
	}
	for _, w := range workers {
		go func(w *fleet.Worker) { _ = w.Run(ctx) }(w)
	}

	// One cell, three replicas, two epochs: tiny but real training.
	body := `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["V100"],"variants":["IMPL"],"recipes":[{"epochs":2}]},"scale":"test","replicas":3,"seed":13}`
	var resp GridResponse
	postJSON(t, h.srv, "/v1/grid", body, 202, &resp)
	snap := pollDone(t, h.srv, resp.ID, 180*time.Second)

	// Single-node reference: the identical grid on an isolated,
	// fleet-free server.
	ref := newTestServer(t, Options{Populations: experiments.NewPopulations(0)})
	var refResp GridResponse
	postJSON(t, ref, "/v1/grid", body, 202, &refResp)
	refSnap := pollDone(t, ref, refResp.ID, 180*time.Second)

	got, _ := json.Marshal(snap.Result.Tables)
	want, _ := json.Marshal(refSnap.Result.Tables)
	if string(got) != string(want) {
		t.Fatalf("fleet-trained grid differs from single-node:\n%s\nvs\n%s", got, want)
	}

	// Exactly one train per replica across the whole fleet, the torn
	// upload rejected and preserved, nothing duplicated.
	var trained int64
	for _, w := range workers {
		trained += w.Trains()
	}
	if trained != 3 {
		t.Fatalf("fleet trained %d replicas, want exactly 3", trained)
	}
	if n := h.s.pops.Trains(); n != 3 {
		t.Fatalf("coordinator dispatched %d replica misses, want 3 (each exactly once)", n)
	}
	var stats StatsResponse
	getJSON(t, h.srv, "/v1/stats", 200, &stats)
	if stats.Fleet == nil {
		t.Fatal("fleet server reported no fleet stats")
	}
	if stats.Fleet.CompletedUnits != 3 || stats.Fleet.DuplicateUploads != 0 {
		t.Fatalf("fleet stats = %+v, want 3 completed / 0 duplicates", stats.Fleet)
	}
	if stats.Fleet.RejectedUploads != 1 {
		t.Fatalf("rejected uploads = %d, want 1 (the torn attempt)", stats.Fleet.RejectedUploads)
	}
	if n := quarantine.Count(filepath.Join(ledgerDir, "fleet")); n != 1 {
		t.Fatalf("quarantined payloads = %d, want 1", n)
	}
	if stats.Ledger.Replicas != 3 || stats.Ledger.Misses < 3 {
		t.Fatalf("ledger stats = %+v, want 3 replicas from >=3 misses", stats.Ledger)
	}
}

// TestFleetDeadWorkerStolen is the fault-tolerance acceptance test at
// the HTTP layer: a worker that leases a unit and then vanishes without
// ever heartbeating (the in-process stand-in for SIGKILL; the CI smoke
// kills a real process) loses the lease at TTL expiry, and a surviving
// worker steals and completes the grid.
func TestFleetDeadWorkerStolen(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	faults.Reset()
	h := newFleetHarness(t, Options{
		Populations: experiments.NewPopulations(0),
		LeaseTTL:    300 * time.Millisecond,
	})

	body := `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["V100"],"variants":["IMPL"],"recipes":[{"epochs":2}]},"scale":"test","replicas":2,"seed":29}`
	var resp GridResponse
	postJSON(t, h.srv, "/v1/grid", body, 202, &resp)

	// The zombie: lease one unit over the wire, then never heartbeat,
	// never complete, never return.
	var leased fleet.LeaseResponse
	deadline := time.Now().Add(30 * time.Second)
	for len(leased.Units) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grid never enqueued a leasable unit")
		}
		postJSON(t, h.srv, "/v1/work/lease", `{"worker":"zombie","max":1,"wait_ms":2000}`, 200, &leased)
	}

	// The survivor arrives after the zombie holds its lease.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	survivor := &fleet.Worker{Base: h.srv.URL, Name: "survivor", Trainers: 2,
		Backoff: 20 * time.Millisecond, Wait: 100 * time.Millisecond}
	go func() { _ = survivor.Run(ctx) }()

	pollDone(t, h.srv, resp.ID, 180*time.Second)

	stats := h.s.Fleet().Stats()
	if stats.ExpiredLeases < 1 {
		t.Fatalf("expired leases = %d, want >= 1 (the zombie's)", stats.ExpiredLeases)
	}
	if stats.CompletedUnits != 2 {
		t.Fatalf("completed units = %d, want 2", stats.CompletedUnits)
	}
	if n := survivor.Trains(); n != 2 {
		t.Fatalf("survivor trained %d replicas, want 2 (including the stolen one)", n)
	}
	// The zombie's unit is long gone: a late heartbeat cannot revive it.
	var hb fleet.HeartbeatResponse
	postJSON(t, h.srv, "/v1/work/"+leased.Units[0].ID+"/heartbeat", `{"worker":"zombie"}`, 200, &hb)
	if hb.Status == fleet.HeartbeatOK {
		t.Fatalf("zombie heartbeat = %q, want the unit reported done or gone", hb.Status)
	}
}

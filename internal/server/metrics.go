package server

import (
	"net/http"

	"repro/internal/telemetry"
)

// MetricsResponse is the GET /v1/metrics reply: the full telemetry
// snapshot — per-route request counters, status classes, in-flight
// gauges and latency histograms with derived p50/p90/p99 — plus the
// admission layer's rejection counters. Everything here is an atomic
// counter or gauge; the handler never blocks on training.
type MetricsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests rolls every route up: totals, in-flight, 429s, 5xx.
	Requests telemetry.Totals `json:"requests"`
	// Admission counts capacity refusals by mechanism, matching the
	// machine-readable reasons on the 429/503 bodies.
	Admission AdmissionStats `json:"admission"`
	// Routes is the per-route breakdown, sorted by route label.
	Routes []telemetry.RouteSnapshot `json:"routes"`
}

// AdmissionStats counts requests refused for capacity reasons since
// start, by mechanism.
type AdmissionStats struct {
	// BudgetRejected: grid/job submissions whose estimated train_epochs
	// exceeded -max-train-epochs (reason "budget_exceeded").
	BudgetRejected int64 `json:"budget_rejected"`
	// RateShed: requests dropped by the per-client token bucket (reason
	// "rate_limited").
	RateShed int64 `json:"rate_shed"`
	// QueueFull: submissions refused because the job backlog was at
	// capacity (reason "queue_full").
	QueueFull int64 `json:"queue_full"`
	// MaxTrainEpochs echoes the configured budget (0 = unlimited).
	MaxTrainEpochs int `json:"max_train_epochs,omitempty"`
	// RatePerClient echoes the configured token-bucket rate (0 = off).
	RatePerClient float64 `json:"rate_per_client,omitempty"`
}

// admissionStats snapshots the refusal counters.
func (s *Server) admissionStats() AdmissionStats {
	st := AdmissionStats{
		BudgetRejected: s.rejectedBudget.Load(),
		RateShed:       s.shedRate.Load(),
		QueueFull:      s.shedQueue.Load(),
		MaxTrainEpochs: s.maxTrainEpochs,
	}
	if s.limiter != nil {
		st.RatePerClient = s.limiter.rate
	}
	return st
}

// handleMetrics is GET /v1/metrics: the serving-observability snapshot.
// Cache-Control: no-store — a cached metrics reply is a lie about the
// present.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSeconds: s.tel.Uptime().Seconds(),
		Requests:      s.tel.Totals(),
		Admission:     s.admissionStats(),
		Routes:        s.tel.Snapshot(true),
	})
}

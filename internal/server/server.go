// Package server exposes the experiment registry as an embeddable
// HTTP/JSON service — the API boundary that lets dashboards, benchmark
// harnesses and batch clients consume paper artifacts programmatically
// instead of scraping CLI text.
//
// Endpoints:
//
//	GET  /v1/experiments          registry metadata for every experiment
//	POST /v1/experiments/{id}/run run one experiment (scale/replicas/seed
//	                              in the JSON body), returning its Result
//	GET  /v1/results/{key}        re-fetch a completed result from the LRU
//
// Concurrent identical run requests collapse into one flight: the first
// request executes the experiment, later arrivals subscribe to the same
// flight, and the underlying population cache guarantees each replica
// population trains exactly once. A flight is cancelled only when every
// subscribed client has disconnected, so one impatient caller can never
// abort work that others are still waiting for. Completed results land in
// a bounded LRU keyed by the canonical (experiment, scale, replicas, seed)
// tuple.
package server

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/report"
)

// DefaultCacheSize bounds the completed-result LRU when Options.CacheSize
// is zero.
const DefaultCacheSize = 64

// RunFunc executes one experiment. Tests substitute stubs; production
// servers use experiments.Run.
type RunFunc func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error)

// Options configures a Server.
type Options struct {
	// CacheSize is the completed-result LRU capacity (0 = DefaultCacheSize).
	CacheSize int
	// Run overrides the experiment executor (nil = experiments.Run).
	Run RunFunc
}

// Server is the embeddable HTTP/JSON service over the experiment registry.
type Server struct {
	run RunFunc
	mux *http.ServeMux

	mu      sync.Mutex
	flights map[string]*flight
	results *lruCache
}

// flight is one in-progress experiment run shared by every concurrent
// identical request. waiters counts subscribed clients; when it drops to
// zero before completion the flight's context is cancelled and training
// aborts at the next batch boundary.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	res     *report.Result
	err     error
}

// New returns a Server ready to serve via Handler().
func New(opts Options) *Server {
	s := &Server{
		run:     opts.Run,
		flights: map[string]*flight{},
		results: newLRU(opts.CacheSize),
	}
	if s.run == nil {
		s.run = func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			return experiments.Run(ctx, id, cfg)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("POST /v1/experiments/{id}/run", s.handleRun)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler for embedding under any
// listener, router prefix or test server.
func (s *Server) Handler() http.Handler { return s.mux }

// RunRequest is the POST /v1/experiments/{id}/run body. Every field is
// optional; zero values pick the CLI defaults (quick scale, scale-default
// replicas, the paper seed).
type RunRequest struct {
	Scale    string `json:"scale,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
}

// RunResponse is the POST /v1/experiments/{id}/run reply.
type RunResponse struct {
	// Key addresses the result in GET /v1/results/{key}.
	Key string `json:"key"`
	// Cached reports whether the result was served from the completed-result
	// LRU without running anything.
	Cached bool           `json:"cached"`
	Result *report.Result `json:"result"`
}

// ListResponse is the GET /v1/experiments reply.
type ListResponse struct {
	Experiments []experiments.Meta `json:"experiments"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ResultKey is the canonical, URL-safe identity of a run:
// {id}-{scale}-r{replicas}-s{seed} with the scale-default replica count
// resolved, so equivalent configurations collide.
func ResultKey(id string, cfg experiments.Config) string {
	return fmt.Sprintf("%s-%s-r%d-s%d", id, cfg.Scale, cfg.EffectiveReplicas(), cfg.Seed)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Experiments: experiments.All()})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	s.mu.Lock()
	res, ok := s.results.get(key)
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no completed result for key %q", key)})
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Key: key, Cached: true, Result: res})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := experiments.Describe(id); err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	cfg, err := parseRunRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := ResultKey(id, cfg)

	s.mu.Lock()
	if res, ok := s.results.get(key); ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, RunResponse{Key: key, Cached: true, Result: res})
		return
	}
	f, ok := s.flights[key]
	if ok {
		f.waiters++
	} else {
		ctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		s.flights[key] = f
		go s.execute(ctx, f, key, id, cfg)
	}
	s.mu.Unlock()

	select {
	case <-f.done:
	case <-r.Context().Done():
		// This client is gone. Unsubscribe; the last one out cancels the
		// flight so abandoned work stops burning the pool, and retires it
		// from the flight table immediately — a client arriving while the
		// doomed flight is still winding down must start a fresh one, not
		// inherit its cancellation error.
		s.mu.Lock()
		f.waiters--
		if f.waiters == 0 && s.flights[key] == f {
			f.cancel()
			delete(s.flights, key)
		}
		s.mu.Unlock()
		return
	}
	if f.err != nil {
		status := http.StatusInternalServerError
		if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
			// Only possible when every client (including this one, racing
			// its own disconnect) abandoned the flight.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorResponse{Error: f.err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Key: key, Result: f.res})
}

// execute runs the flight and publishes its outcome: the flight entry is
// retired, a successful result enters the LRU, and done wakes every
// subscribed request.
func (s *Server) execute(ctx context.Context, f *flight, key, id string, cfg experiments.Config) {
	defer f.cancel()
	res, err := s.run(ctx, id, cfg)
	s.mu.Lock()
	f.res, f.err = res, err
	if s.flights[key] == f {
		delete(s.flights, key)
	}
	if err == nil {
		s.results.add(key, res)
	}
	s.mu.Unlock()
	close(f.done)
}

func parseRunRequest(body io.Reader) (experiments.Config, error) {
	cfg := experiments.DefaultConfig()
	raw, err := io.ReadAll(io.LimitReader(body, 1<<16))
	if err != nil {
		return cfg, fmt.Errorf("reading request body: %w", err)
	}
	var req RunRequest
	if len(raw) > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return cfg, fmt.Errorf("decoding request body: %w", err)
		}
	}
	if req.Scale != "" {
		scale, err := data.ParseScale(req.Scale)
		if err != nil {
			return cfg, err
		}
		cfg.Scale = scale
	}
	if req.Replicas < 0 {
		return cfg, fmt.Errorf("replicas must be >= 0, got %d", req.Replicas)
	}
	cfg.Replicas = req.Replicas
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	return cfg, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// lruCache is a minimal most-recently-used cache of completed results.
// Callers hold s.mu around every method.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *report.Result
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &lruCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (*report.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) add(key string, res *report.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached results (tests).
func (c *lruCache) len() int { return len(c.items) }

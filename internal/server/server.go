// Package server exposes the experiment registry as an embeddable
// HTTP/JSON service — the API boundary that lets dashboards, benchmark
// harnesses and batch clients consume paper artifacts programmatically
// instead of scraping CLI text.
//
// Endpoints (full request/response examples in docs/api.md):
//
//	GET    /v1/experiments          registry metadata for every experiment
//	GET    /v1/devices              the simulated accelerator catalog
//	GET    /v1/workloads            the training-recipe catalog
//	POST   /v1/experiments/{id}/run run one experiment synchronously
//	GET    /v1/results/{key}        fetch a completed result from the store
//	POST   /v1/jobs                 submit an asynchronous run; returns a job ID
//	POST   /v1/grid                 validate, cost-estimate and submit a custom grid spec
//	GET    /v1/jobs                 list retained jobs (results stripped)
//	GET    /v1/jobs/{id}            job status, progress, and result when done
//	DELETE /v1/jobs/{id}            cancel a queued or running job
//	GET    /v1/healthz              liveness: the process is serving
//	GET    /v1/readyz               readiness: store/ledger/journal writable, queue has headroom
//	GET    /v1/stats                queue, job, ledger, population and fleet counters
//	POST   /v1/work/lease           (fleet mode) worker pulls work units under a TTL lease
//	POST   /v1/work/{id}/heartbeat  (fleet mode) worker extends its lease
//	POST   /v1/work/{id}/complete   (fleet mode) worker uploads a trained replica
//
// With Options.Fleet the server becomes a distributed-training
// coordinator (internal/fleet): replica misses are no longer trained in
// process but queued as work units that `nnrand worker -join` processes
// lease, train and upload. Results remain bit-identical to single-node
// runs — the workers execute the same deterministic training on the
// same resolved units, and every result merges through the same keyed
// ledger write.
//
// /v1/grid is the composition endpoint: the JSON body declares a grid
// (tasks × devices × variants, optional recipe overrides and metric
// selection — see internal/grid); the server validates it against the
// catalogs, prices it, and submits it through the job engine keyed by the
// canonical spec hash, so identical grids dedup live, persist like any
// paper artifact, and are served from the store across restarts. Custom
// grids and registered artifacts share one population cache: a custom
// cell whose resolved recipe matches a paper cell trains nothing new.
//
// Every run — synchronous or submitted — flows through the job engine
// (internal/jobs): identical live requests collapse onto one job, the
// bounded queue applies backpressure (503 when full), and completed
// results land in the engine's content-addressed store. With a store
// directory configured, results persist across restarts, so resubmitting
// a configuration the server has ever completed trains nothing and is
// served from disk. With a ledger directory configured the population
// layer additionally persists every trained replica (internal/ledger),
// which covers the cases the result store cannot: a *new* grid that
// merely overlaps previously trained cells, or a larger replica count
// over them, trains only the replicas the ledger has never seen — the
// grid estimate reports that split as cached_replicas/train_replicas. The synchronous run endpoint is submit+wait over the
// same engine: its jobs are owned by their HTTP clients, and when every
// client for a run has disconnected the job is cancelled so abandoned
// work stops burning the pool — unless an asynchronous submission has
// also claimed the job, in which case it survives its waiters.
//
// Failure model (DESIGN.md §11): with a store directory configured the
// server also keeps a durable job journal under <store>/journal — one
// JSON file per non-terminal job, removed when the job settles. Starting
// with Options.Resume (the `serve -resume` flag) resubmits the journaled
// work: results that landed before the crash serve as cached, and
// interrupted grids retrain only the replicas the ledger is missing.
// Corrupt store/ledger records are quarantined (moved aside with a
// reason file), never deleted, and reads degrade to a recompute.
//
// Concurrency and determinism contract: handlers are safe for arbitrary
// concurrency; every run derives its randomness from explicit seeds, so
// a result served from cache or disk is bit-identical to rerunning it.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/grid"
	"repro/internal/jobs"
	"repro/internal/ledger"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// DefaultCacheSize bounds the completed-result store when
// Options.CacheSize is zero.
const DefaultCacheSize = jobs.DefaultStoreCapacity

// RunFunc executes one experiment. Tests substitute stubs; production
// servers use experiments.Run.
type RunFunc = jobs.RunFunc

// Options configures a Server.
type Options struct {
	// CacheSize is the completed-result store capacity (0 = DefaultCacheSize).
	CacheSize int
	// StoreDir, when non-empty, persists completed results as JSON files
	// there so they survive restarts. Empty keeps results in memory only.
	StoreDir string
	// LedgerDir, when non-empty, persists every trained replica there
	// (internal/ledger) and attaches the ledger to the population cache,
	// so a restarted server warm-starts: any grid overlapping previously
	// trained cells — even at a larger replica count — trains only the
	// replicas the ledger has never seen. With Populations nil this
	// attaches to the process-wide default cache — deliberately, because
	// registered paper artifacts train through it too — so a process
	// should configure at most one ledger-backed Server this way;
	// embedders running several Servers must inject distinct Populations.
	LedgerDir string
	// LedgerCapacity bounds retained replicas (0 = the ledger default).
	LedgerCapacity int
	// Populations overrides the population cache behind custom-grid
	// execution and warm estimates (nil = experiments.DefaultPopulations,
	// which the registered artifacts also train through). Tests inject
	// isolated caches here to simulate process restarts.
	Populations *experiments.Populations
	// Workers bounds how many jobs execute concurrently (0 = the jobs
	// package default).
	Workers int
	// QueueDepth bounds the submitted-job backlog; beyond it, submissions
	// fail with 503 (0 = the jobs package default).
	QueueDepth int
	// Run overrides the experiment executor (nil = experiments.Run).
	Run RunFunc
	// RunGrid overrides the custom-grid executor (nil = the configured
	// population cache's RunPlan, which shares populations with the
	// registered artifacts).
	RunGrid GridRunFunc
	// Resume resubmits the journaled (non-terminal at last shutdown) jobs
	// on startup. It needs StoreDir: the journal lives beside the result
	// store. Entries that cannot be resolved stay journaled and are
	// reported by RecoveryError.
	Resume bool
	// Retries bounds transient-failure retries per job (0 = the jobs
	// package default; negative = never retry).
	Retries int
	// JobTimeout, when positive, fails any job attempt still running
	// after this long with a typed "timeout" error.
	JobTimeout time.Duration
	// Fleet turns the server into a distributed-training coordinator:
	// replica misses queue as fleet work units served over the
	// /v1/work/* endpoints instead of training in process, so capacity
	// scales with joined `nnrand worker` processes. Grids submitted to a
	// fleet server with no workers joined wait until one joins.
	Fleet bool
	// LeaseTTL is the fleet lease time-to-live (0 picks the fleet
	// default). Shorter TTLs steal abandoned units faster at the cost of
	// more heartbeat traffic.
	LeaseTTL time.Duration
	// MaxTrainEpochs is the admission budget: grid and experiment
	// submissions whose ledger-priced estimate would train more than
	// this many epochs are refused with 429 (reason "budget_exceeded",
	// the estimate echoed). 0 admits everything.
	MaxTrainEpochs int
	// Rate, when positive, enables the per-client token-bucket rate
	// limiter: each remote host is admitted Rate requests/second
	// (bursting to Burst) on every endpoint except /v1/healthz and
	// /v1/readyz; beyond that, requests are shed with 429 (reason
	// "rate_limited") and a Retry-After.
	Rate float64
	// Burst caps a client's token bucket (0 picks max(1, 2*Rate)).
	Burst int
	// RequestLog, when non-nil, receives one structured JSON line per
	// completed request (method, route, status, bytes, duration, remote,
	// job/result key). The stream is observability, never control flow:
	// write errors are dropped.
	RequestLog io.Writer
}

// GridRunFunc executes one compiled grid plan. Tests substitute stubs;
// production servers run on the experiments engine.
type GridRunFunc func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error)

// Server is the embeddable HTTP/JSON service over the experiment registry.
type Server struct {
	engine  *jobs.Engine
	pops    *experiments.Populations
	led     *ledger.Ledger     // nil when no ledger directory is configured
	fleet   *fleet.Coordinator // nil when Options.Fleet is off
	runGrid GridRunFunc
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in rate-limit + telemetry middleware

	// Serving observability and admission control (DESIGN.md §13).
	tel            *telemetry.Registry
	limiter        *rateLimiter // nil when Options.Rate is zero
	maxTrainEpochs int
	rejectedBudget atomic.Int64
	shedRate       atomic.Int64
	shedQueue      atomic.Int64

	recovered  int
	recoverErr error
}

// New returns a Server ready to serve via Handler(). It fails only when
// a configured store, ledger or journal directory cannot be created or
// scanned — never because of what the directories contain (corrupt
// records are quarantined, unresolvable journal entries reported via
// RecoveryError).
func New(opts Options) (*Server, error) {
	store, err := jobs.Open(opts.StoreDir, opts.CacheSize)
	if err != nil {
		return nil, err
	}
	pops := opts.Populations
	if pops == nil {
		pops = experiments.DefaultPopulations()
	}
	var led *ledger.Ledger
	if opts.LedgerDir != "" {
		led, err = ledger.Open(opts.LedgerDir, opts.LedgerCapacity)
		if err != nil {
			return nil, err
		}
		pops.SetLedger(led)
	}
	// The journal rides along with the result store: both exist to make a
	// restart indistinguishable from a pause. A memory-only server has
	// nothing to resume into, so it gets no journal.
	var journal *jobs.Journal
	if opts.StoreDir != "" {
		journal, err = jobs.OpenJournal(filepath.Join(opts.StoreDir, "journal"))
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		engine: jobs.NewEngine(jobs.Options{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
			Store:      store,
			Run:        opts.Run,
			Journal:    journal,
			Retries:    opts.Retries,
			JobTimeout: opts.JobTimeout,
		}),
		pops:           pops,
		led:            led,
		runGrid:        opts.RunGrid,
		tel:            telemetry.New(),
		maxTrainEpochs: opts.MaxTrainEpochs,
	}
	if opts.Rate > 0 {
		s.limiter = newRateLimiter(opts.Rate, opts.Burst)
	}
	if s.runGrid == nil {
		s.runGrid = func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			return pops.RunPlan(ctx, plan, cfg)
		}
	}
	if opts.Fleet {
		// Rejected uploads are preserved beside the ledger when one is
		// configured, so a torn record survives for diagnosis like any
		// other quarantined evidence.
		var fdir string
		if opts.LedgerDir != "" {
			fdir = filepath.Join(opts.LedgerDir, "fleet")
		}
		s.fleet = fleet.New(fleet.Options{TTL: opts.LeaseTTL, Dir: fdir})
		pops.SetExecutor(s.fleet)
	}
	if opts.Resume && journal != nil {
		s.recovered, s.recoverErr = s.engine.Recover(s.resolveTask)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/devices", s.handleDevices)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("POST /v1/experiments/{id}/run", s.handleRun)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/grid", s.handleGrid)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	if s.fleet != nil {
		mux.HandleFunc("POST /v1/work/lease", s.handleWorkLease)
		mux.HandleFunc("POST /v1/work/{id}/heartbeat", s.handleWorkHeartbeat)
		mux.HandleFunc("POST /v1/work/{id}/complete", s.handleWorkComplete)
	}
	s.mux = mux
	// Request flow: telemetry observes everything — including what the
	// rate limiter sheds, so the 429s are visible in the very metrics
	// that explain them — then the token bucket, then the mux.
	s.handler = telemetry.Middleware(s.tel, routeLabel, telemetry.NewLogger(opts.RequestLog), s.limit(mux))
	return s, nil
}

// Fleet exposes the coordinator when fleet mode is on (nil otherwise) —
// diagnostics and tests.
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// Handler returns the service's HTTP handler for embedding under any
// listener, router prefix or test server. The handler is the full
// serving stack: telemetry middleware, then the rate limiter (when
// configured), then the route mux.
func (s *Server) Handler() http.Handler { return s.handler }

// Telemetry exposes the server's request-metrics registry — tests and
// embedders read counters without an HTTP round trip through
// /v1/metrics.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Close cancels live jobs and waits for the engine's workers to drain.
// Shutdown cancellations keep their journal entries, so a later
// `serve -resume` picks the interrupted work back up.
func (s *Server) Close() { s.engine.Close() }

// Drain begins graceful shutdown: readiness flips to 503, new
// submissions are refused, and the call blocks until in-flight jobs
// finish or ctx expires (whatever is still running then is cancelled
// with its journal entry preserved). Follow with Close.
func (s *Server) Drain(ctx context.Context) error { return s.engine.Drain(ctx) }

// Recovered reports how many journaled jobs the Resume option
// resubmitted at startup.
func (s *Server) Recovered() int { return s.recovered }

// RecoveryError reports the journal entries Resume could not resubmit
// (nil when recovery was clean or not requested). Those entries stay
// journaled.
func (s *Server) RecoveryError() error { return s.recoverErr }

// resolveTask is the engine's recovery resolver: a journaled task entry
// carries the canonical grid spec as its payload, which recompiles into
// the same plan — and therefore the same result key — it had before the
// crash.
func (s *Server) resolveTask(entry jobs.JournalEntry) (func(context.Context) (*report.Result, error), error) {
	if len(entry.Payload) == 0 {
		return nil, fmt.Errorf("no grid spec payload")
	}
	var spec grid.Spec
	if err := json.Unmarshal(entry.Payload, &spec); err != nil {
		return nil, fmt.Errorf("decoding grid spec payload: %w", err)
	}
	plan, err := experiments.CompileSpec(spec)
	if err != nil {
		return nil, err
	}
	cfg, err := entry.Config()
	if err != nil {
		return nil, err
	}
	cfg = plan.Config(cfg)
	return func(ctx context.Context) (*report.Result, error) {
		return s.runGrid(ctx, plan, cfg)
	}, nil
}

// RunRequest is the POST /v1/experiments/{id}/run body. Every field is
// optional; zero values pick the CLI defaults (quick scale, scale-default
// replicas, the paper seed).
type RunRequest struct {
	Scale    string `json:"scale,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
}

// SubmitRequest is the POST /v1/jobs body: a RunRequest plus the
// experiment to run. Embedding keeps the two endpoints' configuration
// schema one definition.
type SubmitRequest struct {
	Experiment string `json:"experiment"`
	RunRequest
}

// RunResponse is the POST /v1/experiments/{id}/run reply.
type RunResponse struct {
	// Key addresses the result in GET /v1/results/{key}.
	Key string `json:"key"`
	// Cached reports whether the result was served from the completed-result
	// store without running anything.
	Cached bool           `json:"cached"`
	Result *report.Result `json:"result"`
}

// ListResponse is the GET /v1/experiments reply.
type ListResponse struct {
	Experiments []experiments.Meta `json:"experiments"`
}

// DevicesResponse is the GET /v1/devices reply: the simulated accelerator
// catalog, with the aliases grid specs may use.
type DevicesResponse struct {
	Devices []device.Info `json:"devices"`
}

// WorkloadsResponse is the GET /v1/workloads reply: every training recipe
// a grid spec may name.
type WorkloadsResponse struct {
	Workloads []experiments.Workload `json:"workloads"`
}

// GridRequest is the POST /v1/grid body: a declarative grid spec plus the
// usual run configuration.
type GridRequest struct {
	Grid grid.Spec `json:"grid"`
	RunRequest
}

// GridResponse is the POST /v1/grid reply: the submitted job's snapshot
// (202 while queued/running, 200 when served from the store) plus the
// compiled grid's identity and declared cost. The estimate is priced
// against the live replica ledger: cached_replicas counts the replicas
// already held (warm restarts, overlapping grids, smaller prior runs of
// the same cells) and train_replicas/train_epochs what this submission
// would actually pay.
type GridResponse struct {
	jobs.Snapshot
	// GridID is the canonical "grid-<hash>" identity of the compiled spec.
	GridID string `json:"grid_id"`
	// Estimate prices the grid before any training starts.
	Estimate experiments.Estimate `json:"estimate"`
}

// errorResponse is every non-2xx body. Capacity refusals (429/503)
// additionally carry a machine-readable Reason, a Retry-After echo, and
// — for budget rejections — the estimate that priced the refusal, so
// clients can shrink the request instead of guessing.
type errorResponse struct {
	Error string `json:"error"`
	// Reason is the machine-readable refusal class ("queue_full",
	// "budget_exceeded", "rate_limited", "draining"); empty on plain
	// validation errors.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header for clients that
	// only parse bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Estimate echoes the admission price on budget rejections.
	Estimate *experiments.Estimate `json:"estimate,omitempty"`
	// MaxTrainEpochs echoes the budget the estimate was judged against.
	MaxTrainEpochs int `json:"max_train_epochs,omitempty"`
}

// writeError writes a JSON error reply, surfacing RetryAfterSeconds as
// a real Retry-After header so generic HTTP clients back off too.
func writeError(w http.ResponseWriter, status int, resp errorResponse) {
	if resp.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", resp.RetryAfterSeconds))
	}
	writeJSON(w, status, resp)
}

// ResultKey is the canonical, URL-safe identity of a run:
// {id}-{scale}-r{replicas}-s{seed} with the scale-default replica count
// resolved, so equivalent configurations collide. (It is also the
// store's on-disk filename stem; see internal/jobs.)
func ResultKey(id string, cfg experiments.Config) string {
	return jobs.ResultKey(id, cfg)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Experiments: experiments.All()})
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DevicesResponse{Devices: device.Describe()})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, WorkloadsResponse{Workloads: experiments.Workloads()})
}

// handleGrid is POST /v1/grid: compile the declared spec against the
// catalogs (400 on any unresolved name), price it, and submit it through
// the job engine keyed by the canonical spec hash — so identical grids
// join live jobs, completed ones persist in the store, and a restarted
// server answers a repeat submission with zero retraining.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	plan, err := experiments.CompileSpec(req.Grid)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cfg, err := buildConfig(req.Scale, req.Replicas, req.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cfg = plan.Config(cfg)
	key := jobs.ResultKey(plan.ID(), cfg)
	// Price the grid before submitting: the estimate must describe what
	// this submission pays, and a fast job could start landing replicas in
	// the ledger before the response is assembled. The same estimate is
	// the admission price: over-budget grids are refused here, before any
	// queue slot or training epoch is spent on them.
	est := s.pops.Estimate(plan, cfg)
	if !s.admitBudget(w, est) {
		return
	}
	// The canonical spec is the job's durable payload: if the process dies
	// mid-grid, `serve -resume` recompiles it (resolveTask) and resubmits
	// under the same key.
	payload, _ := json.Marshal(plan.Spec)
	job, err := s.engine.SubmitTask(plan.ID(), key, cfg, payload, func(ctx context.Context) (*report.Result, error) {
		return s.runGrid(ctx, plan, cfg)
	})
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	snap := job.Snapshot()
	telemetry.Annotate(r.Context(), snap.Key)
	status := http.StatusAccepted
	if snap.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, GridResponse{Snapshot: snap, GridID: plan.ID(), Estimate: est})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	telemetry.Annotate(r.Context(), key)
	res, ok := s.engine.Store().Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no completed result for key %q", key)})
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Key: key, Cached: true, Result: res})
}

// handleRun is the synchronous endpoint, reimplemented as submit+wait
// over the job engine: the HTTP client owns (a share of) the job and
// blocks until it is terminal.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := experiments.Describe(id); err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	var req RunRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	cfg, err := buildConfig(req.Scale, req.Replicas, req.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Synchronous runs pay for training like any submission, so the
	// admission budget prices them too (bespoke non-grid artifacts have
	// no estimate and are admitted — they train nothing the estimator
	// can see).
	if est, ok := s.pops.EstimateExperiment(id, cfg); ok && !s.admitBudget(w, est) {
		return
	}
	job, err := s.engine.SubmitAttached(id, cfg)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	telemetry.Annotate(r.Context(), jobs.ResultKey(id, cfg))
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// This client is gone. The last waiter out cancels the job (unless
		// an asynchronous submission detached it) so abandoned work stops
		// burning the pool; an identical request arriving while the doomed
		// job is winding down starts a fresh one.
		job.Release()
		return
	}
	snap := job.Snapshot()
	if snap.Error != nil {
		status := http.StatusInternalServerError
		if snap.Error.Kind == jobs.ErrKindCancelled {
			// Only possible when every client (including this one, racing
			// its own disconnect) abandoned or DELETEd the job.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, errorResponse{Error: snap.Error.Message})
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Key: snap.Key, Cached: snap.Cached, Result: snap.Result})
}

// handleSubmit is POST /v1/jobs: enqueue a detached run and return its
// job snapshot immediately — 200 when the result was already stored (the
// job is born done), 202 otherwise.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Experiment == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing required field \"experiment\""})
		return
	}
	if _, err := experiments.Describe(req.Experiment); err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	cfg, err := buildConfig(req.Scale, req.Replicas, req.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if est, ok := s.pops.EstimateExperiment(req.Experiment, cfg); ok && !s.admitBudget(w, est) {
		return
	}
	job, err := s.engine.Submit(req.Experiment, cfg)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	snap := job.Snapshot()
	telemetry.Annotate(r.Context(), snap.Key)
	status := http.StatusAccepted
	if snap.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, snap)
}

// JobsResponse is the GET /v1/jobs reply: every retained job's snapshot
// in submission order, results stripped (fetch one job or its result
// key for the payload — the listing stays cheap no matter how large the
// retained results are).
type JobsResponse struct {
	Jobs []jobs.Snapshot `json:"jobs"`
}

// handleJobList is GET /v1/jobs: the retained jobs, live first-class —
// recovery tooling uses it to find resubmitted jobs after a restart.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.engine.Jobs()
	out := make([]jobs.Snapshot, 0, len(list))
	for _, j := range list {
		snap := j.Snapshot()
		snap.Result = nil
		out = append(out, snap)
	}
	writeJSON(w, http.StatusOK, JobsResponse{Jobs: out})
}

// HealthResponse is the GET /v1/healthz reply.
type HealthResponse struct {
	Status string `json:"status"`
}

// handleHealthz is GET /v1/healthz: pure liveness. If this handler runs
// at all, the process is up — degradation belongs to readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// ReadyResponse is the GET /v1/readyz reply: overall readiness plus the
// per-check verdicts ("ok" or the failure), so an operator reading a 503
// sees which dependency degraded.
type ReadyResponse struct {
	Ready  bool              `json:"ready"`
	Checks map[string]string `json:"checks"`
}

// handleReadyz is GET /v1/readyz: ready means this server can accept and
// durably complete new work — the result store and replica ledger accept
// writes, the job queue has headroom, and the server is not draining.
// Any failed check turns the reply into a 503 while the process keeps
// serving reads (that is the graceful part of the degradation).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{}
	ok := func(name string, err error) {
		if err != nil {
			checks[name] = err.Error()
		} else {
			checks[name] = "ok"
		}
	}
	ok("store", s.engine.Store().Writable())
	if s.led != nil {
		ok("ledger", s.led.Writable())
	}
	if j := s.engine.Journal(); j != nil {
		// A journal that cannot record silently downgrades every
		// submission from crash-safe to best-effort — readiness must
		// surface it, not let the next crash discover it.
		ok("journal", j.Writable())
	}
	queued, capacity := s.engine.QueueBacklog()
	if queued >= capacity {
		checks["queue"] = fmt.Sprintf("backlog full (%d/%d)", queued, capacity)
	} else {
		checks["queue"] = fmt.Sprintf("ok (%d/%d)", queued, capacity)
	}
	if s.engine.Draining() {
		checks["draining"] = "server is draining"
	}
	resp := ReadyResponse{Ready: true, Checks: checks}
	for _, v := range checks {
		if v != "ok" && !strings.HasPrefix(v, "ok ") {
			resp.Ready = false
		}
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleJobStatus is GET /v1/jobs/{id}: the job's snapshot, including
// progress while running and the full result once done.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no such job %q", id)})
		return
	}
	snap := job.Snapshot()
	telemetry.Annotate(r.Context(), snap.Key)
	writeJSON(w, http.StatusOK, snap)
}

// handleJobCancel is DELETE /v1/jobs/{id}: stop a queued job immediately
// or a running one at its next training-batch boundary. Cancelling a
// terminal job is a no-op; either way the current snapshot is returned.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Cancel(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no such job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// queueFullRetryAfterSeconds is the Retry-After hint when the backlog
// is at capacity: queues drain at training speed, so a quick retry
// would only meet the same wall.
const queueFullRetryAfterSeconds = 5

// writeSubmitError maps engine submission failures onto HTTP replies: a
// full queue is backpressure (503, reason "queue_full", Retry-After), a
// draining server is shutdown (503, reason "draining"), anything else
// is internal.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.shedQueue.Add(1)
		writeError(w, http.StatusServiceUnavailable, errorResponse{
			Error:             err.Error(),
			Reason:            ReasonQueueFull,
			RetryAfterSeconds: queueFullRetryAfterSeconds,
		})
	case errors.Is(err, jobs.ErrQueueClosed):
		writeError(w, http.StatusServiceUnavailable, errorResponse{
			Error:             err.Error(),
			Reason:            ReasonDraining,
			RetryAfterSeconds: queueFullRetryAfterSeconds,
		})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// maxBodyBytes bounds request bodies. Sized for the largest legitimate
// payload — a grid spec near the MaxCells bound with a long recipe sweep
// is well under 1 MiB — while still refusing unbounded uploads.
const maxBodyBytes = 1 << 20

// decodeBody parses a JSON request body into dst, tolerating an empty
// body (all defaults) and rejecting unknown fields and oversized bodies
// (with an explicit error, not a confusing mid-document EOF).
func decodeBody(body io.Reader, dst any) error {
	raw, err := io.ReadAll(io.LimitReader(body, maxBodyBytes+1))
	if err != nil {
		return fmt.Errorf("reading request body: %w", err)
	}
	if len(raw) > maxBodyBytes {
		return fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
	}
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// buildConfig resolves wire-level scale/replicas/seed onto the CLI
// defaults and validates them.
func buildConfig(scale string, replicas int, seed uint64) (experiments.Config, error) {
	cfg := experiments.DefaultConfig()
	if scale != "" {
		s, err := data.ParseScale(scale)
		if err != nil {
			return cfg, err
		}
		cfg.Scale = s
	}
	if replicas < 0 {
		return cfg, fmt.Errorf("replicas must be >= 0, got %d", replicas)
	}
	if replicas > grid.MaxReplicas {
		return cfg, fmt.Errorf("replicas = %d, max %d", replicas, grid.MaxReplicas)
	}
	cfg.Replicas = replicas
	if seed != 0 {
		cfg.Seed = seed
	}
	return cfg, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/report"
)

func stubResult(id string) *report.Result {
	tb := report.New("stub", "k", "v")
	tb.AddCells(report.Str(id), report.Int(1))
	return &report.Result{Experiment: id, Title: "stub", Kind: report.KindTable, Tables: []*report.Table{tb}}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, status int, into any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, status, body)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
		}
	}
}

func postJSON(t *testing.T, srv *httptest.Server, path, body string, status int, into any) []byte {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, status, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("POST %s: invalid JSON: %v\n%s", path, err, raw)
		}
	}
	return raw
}

// TestListExperiments asserts the metadata endpoint surfaces the full
// registry with complete metadata.
func TestListExperiments(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()
	var list ListResponse
	getJSON(t, srv, "/v1/experiments", http.StatusOK, &list)
	if len(list.Experiments) != len(experiments.IDs()) {
		t.Fatalf("listed %d experiments, registry has %d", len(list.Experiments), len(experiments.IDs()))
	}
	for _, m := range list.Experiments {
		if m.ID == "" || m.Title == "" || m.Artifact == "" || m.Cost == "" {
			t.Errorf("incomplete metadata over the wire: %+v", m)
		}
	}
}

// TestRunRoundTrip runs a cheap (no-training) experiment through the full
// HTTP path and re-fetches it by key.
func TestRunRoundTrip(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()

	var run RunResponse
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"test"}`, http.StatusOK, &run)
	if run.Cached {
		t.Error("first run reported cached")
	}
	if run.Key != "table4-test-r3-s20220622" {
		t.Errorf("key = %q", run.Key)
	}
	if run.Result == nil || run.Result.Experiment != "table4" || len(run.Result.Tables) == 0 {
		t.Fatalf("result = %+v", run.Result)
	}
	if run.Result.Config.Scale != "test" || run.Result.Config.Replicas != 3 {
		t.Errorf("config echo = %+v", run.Result.Config)
	}

	// Identical run again: served from the LRU.
	var again RunResponse
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"test"}`, http.StatusOK, &again)
	if !again.Cached {
		t.Error("second identical run was not served from cache")
	}

	// And the result endpoint addresses it by key.
	var fetched RunResponse
	getJSON(t, srv, "/v1/results/"+run.Key, http.StatusOK, &fetched)
	if fetched.Result == nil || fetched.Result.Experiment != "table4" {
		t.Fatalf("fetched result = %+v", fetched.Result)
	}
}

func TestRunValidation(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()
	postJSON(t, srv, "/v1/experiments/nope/run", `{}`, http.StatusNotFound, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"gigantic"}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"replicas":-1}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"bogus":1}`, http.StatusBadRequest, nil)
	getJSON(t, srv, "/v1/results/no-such-key", http.StatusNotFound, nil)
}

// TestConcurrentIdenticalRequestsSingleflight proves the server-level
// singleflight: N concurrent identical POSTs execute the runner once and
// every client receives the same completed result.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	s := New(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		calls.Add(1)
		<-release // hold every request in the same flight window
		return stubResult(id), nil
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const clients = 8
	responses := make([]RunResponse, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/experiments/fig1/run", "application/json", strings.NewReader(`{"scale":"test"}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &responses[i]); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	// Wait until the flight owner is inside the runner, then release it.
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests executed the runner %d times, want exactly 1", clients, got)
	}
	// Every client sees the same key and result, whether it subscribed to
	// the flight or arrived just after completion and hit the LRU.
	want, _ := json.Marshal(responses[0].Result)
	for i := 1; i < clients; i++ {
		got, _ := json.Marshal(responses[i].Result)
		if responses[i].Key != responses[0].Key || string(got) != string(want) {
			t.Fatalf("client %d saw a different result:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestConcurrentTable2RunsTrainOnce is the acceptance-criteria test: two
// concurrent identical POST /v1/experiments/table2/run requests must train
// each replica population exactly once. The experiments package counts
// actual trainings (cache hits excluded); table2's grid is 10 task/device
// pairs x 3 variants = 30 populations, so the delta across both requests
// together must be exactly 30. One replica per population keeps the test
// well inside the go test per-package timeout on a 1-core machine while
// still training the full table2 grid.
func TestConcurrentTable2RunsTrainOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	experiments.ResetCache()
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()

	before := experiments.PopulationTrains()
	const clients = 2
	var wg sync.WaitGroup
	wg.Add(clients)
	responses := make([]RunResponse, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/experiments/table2/run", "application/json",
				strings.NewReader(`{"scale":"test","replicas":1}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &responses[i]); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	trained := experiments.PopulationTrains() - before
	if trained != 30 {
		t.Fatalf("two concurrent table2 requests trained %d populations, want exactly 30 (each population once)", trained)
	}
	a, _ := json.Marshal(responses[0].Result.Tables)
	b, _ := json.Marshal(responses[1].Result.Tables)
	if string(a) != string(b) {
		t.Fatal("concurrent identical requests returned different tables")
	}
	if responses[0].Key != responses[1].Key {
		t.Fatalf("keys differ: %q vs %q", responses[0].Key, responses[1].Key)
	}
}

// TestAbandonedFlightCancelled proves the refcounted cancellation: when
// every subscribed client disconnects, the flight's context is cancelled so
// training stops burning the pool.
func TestAbandonedFlightCancelled(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	s := New(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done() // simulate training that aborts at the next batch
		cancelled <- ctx.Err()
		return nil, ctx.Err()
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost,
		srv.URL+"/v1/experiments/fig1/run", strings.NewReader(`{}`))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Client().Do(req)
		errCh <- err
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("flight never started")
	}
	cancelReq() // the only client walks away

	select {
	case err := <-cancelled:
		if err != context.Canceled {
			t.Fatalf("flight ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned flight was never cancelled")
	}
	if err := <-errCh; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
}

// TestLateClientAfterAbandonedFlightGetsFreshRun pins the doomed-flight
// window: once the last subscriber cancels a flight, a new identical
// request must start a fresh run — even while the cancelled flight is
// still winding down — rather than inherit its cancellation error.
func TestLateClientAfterAbandonedFlightGetsFreshRun(t *testing.T) {
	var calls atomic.Int64
	firstStarted := make(chan struct{})
	firstCancelled := make(chan struct{})
	s := New(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		if calls.Add(1) == 1 {
			close(firstStarted)
			<-ctx.Done()
			close(firstCancelled)
			time.Sleep(300 * time.Millisecond) // slow wind-down window
			return nil, ctx.Err()
		}
		return stubResult(id), nil
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost,
		srv.URL+"/v1/experiments/fig1/run", strings.NewReader(`{}`))
	go func() { _, _ = srv.Client().Do(req) }()

	<-firstStarted
	cancelReq() // the only subscriber walks away
	select {
	case <-firstCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned flight was never cancelled")
	}

	// The doomed flight is still inside its wind-down sleep; an identical
	// request now must run fresh and succeed.
	var fresh RunResponse
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusOK, &fresh)
	if fresh.Result == nil || fresh.Result.Experiment != "fig1" {
		t.Fatalf("fresh run result = %+v", fresh.Result)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2 (doomed flight + fresh run)", got)
	}
}

// TestResultKeyResolvesDefaults pins the canonical key format, including
// scale-default replica resolution.
func TestResultKeyResolvesDefaults(t *testing.T) {
	cfg := experiments.Config{Scale: data.ScaleTest, Seed: 7}
	if key := ResultKey("fig5", cfg); key != "fig5-test-r3-s7" {
		t.Fatalf("key = %q", key)
	}
	cfg.Replicas = 9
	if key := ResultKey("fig5", cfg); key != "fig5-test-r9-s7" {
		t.Fatalf("key = %q", key)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.add("a", stubResult("a"))
	c.add("b", stubResult("b"))
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", stubResult("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
}

// TestServerRunErrorSurfaced maps runner failures onto HTTP 500 with a
// JSON error body.
func TestServerRunErrorSurfaced(t *testing.T) {
	s := New(Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return nil, fmt.Errorf("boom")
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var e errorResponse
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusInternalServerError, &e)
	if !strings.Contains(e.Error, "boom") {
		t.Fatalf("error body = %+v", e)
	}
	// A failed flight must not be cached: the next request re-executes.
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusInternalServerError, &e)
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/report"
)

func stubResult(id string) *report.Result {
	tb := report.New("stub", "k", "v")
	tb.AddCells(report.Str(id), report.Int(1))
	return &report.Result{Experiment: id, Title: "stub", Kind: report.KindTable, Tables: []*report.Table{tb}}
}

// newTestServer builds the service and its HTTP test harness, closing
// both at test end.
func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv
}

func getJSON(t *testing.T, srv *httptest.Server, path string, status int, into any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, status, body)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v\n%s", path, err, body)
		}
	}
}

func postJSON(t *testing.T, srv *httptest.Server, path, body string, status int, into any) []byte {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, status, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("POST %s: invalid JSON: %v\n%s", path, err, raw)
		}
	}
	return raw
}

func deleteJSON(t *testing.T, srv *httptest.Server, path string, status int, into any) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != status {
		t.Fatalf("DELETE %s = %d, want %d: %s", path, resp.StatusCode, status, raw)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("DELETE %s: invalid JSON: %v\n%s", path, err, raw)
		}
	}
}

// TestListExperiments asserts the metadata endpoint surfaces the full
// registry with complete metadata.
func TestListExperiments(t *testing.T) {
	srv := newTestServer(t, Options{})
	var list ListResponse
	getJSON(t, srv, "/v1/experiments", http.StatusOK, &list)
	if len(list.Experiments) != len(experiments.IDs()) {
		t.Fatalf("listed %d experiments, registry has %d", len(list.Experiments), len(experiments.IDs()))
	}
	for _, m := range list.Experiments {
		if m.ID == "" || m.Title == "" || m.Artifact == "" || m.Cost == "" {
			t.Errorf("incomplete metadata over the wire: %+v", m)
		}
	}
}

// TestRunRoundTrip runs a cheap (no-training) experiment through the full
// HTTP path and re-fetches it by key.
func TestRunRoundTrip(t *testing.T) {
	srv := newTestServer(t, Options{})

	var run RunResponse
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"test"}`, http.StatusOK, &run)
	if run.Cached {
		t.Error("first run reported cached")
	}
	if run.Key != "table4-test-r3-s20220622" {
		t.Errorf("key = %q", run.Key)
	}
	if run.Result == nil || run.Result.Experiment != "table4" || len(run.Result.Tables) == 0 {
		t.Fatalf("result = %+v", run.Result)
	}
	if run.Result.Config.Scale != "test" || run.Result.Config.Replicas != 3 {
		t.Errorf("config echo = %+v", run.Result.Config)
	}

	// Identical run again: served from the completed-result store.
	var again RunResponse
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"test"}`, http.StatusOK, &again)
	if !again.Cached {
		t.Error("second identical run was not served from cache")
	}

	// And the result endpoint addresses it by key.
	var fetched RunResponse
	getJSON(t, srv, "/v1/results/"+run.Key, http.StatusOK, &fetched)
	if fetched.Result == nil || fetched.Result.Experiment != "table4" {
		t.Fatalf("fetched result = %+v", fetched.Result)
	}
}

func TestRunValidation(t *testing.T) {
	srv := newTestServer(t, Options{})
	postJSON(t, srv, "/v1/experiments/nope/run", `{}`, http.StatusNotFound, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"scale":"gigantic"}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"replicas":-1}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/experiments/table4/run", `{"bogus":1}`, http.StatusBadRequest, nil)
	getJSON(t, srv, "/v1/results/no-such-key", http.StatusNotFound, nil)
}

func TestSubmitValidation(t *testing.T) {
	srv := newTestServer(t, Options{})
	postJSON(t, srv, "/v1/jobs", `{}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/jobs", `{"experiment":"nope"}`, http.StatusNotFound, nil)
	postJSON(t, srv, "/v1/jobs", `{"experiment":"table4","scale":"gigantic"}`, http.StatusBadRequest, nil)
	postJSON(t, srv, "/v1/jobs", `{"experiment":"table4","bogus":1}`, http.StatusBadRequest, nil)
	getJSON(t, srv, "/v1/jobs/no-such-job", http.StatusNotFound, nil)
	deleteJSON(t, srv, "/v1/jobs/no-such-job", http.StatusNotFound, nil)
}

// TestJobSubmitPollFetch drives the asynchronous workflow end to end:
// submit returns immediately with a queued/running job, polling exposes
// live progress, and the completed job carries the result that the
// results endpoint then serves by key.
func TestJobSubmitPollFetch(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		progress := experiments.ProgressFrom(ctx)
		progress(0, 5)
		progress(2, 5)
		close(started)
		<-release
		progress(5, 5)
		return stubResult(id), nil
	}})

	var snap jobs.Snapshot
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test","replicas":1}`, http.StatusAccepted, &snap)
	if snap.ID == "" || snap.State.Terminal() {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	if snap.Key != "fig1-test-r1-s20220622" {
		t.Fatalf("key = %q", snap.Key)
	}
	<-started

	var mid jobs.Snapshot
	getJSON(t, srv, "/v1/jobs/"+snap.ID, http.StatusOK, &mid)
	if mid.State != jobs.StateRunning {
		t.Fatalf("mid-run state = %s", mid.State)
	}
	if mid.Progress.Done != 2 || mid.Progress.Total != 5 {
		t.Fatalf("mid-run progress = %+v, want 2/5", mid.Progress)
	}
	if mid.Result != nil {
		t.Fatal("running job exposed a result")
	}

	close(release)
	deadline := time.Now().Add(10 * time.Second)
	var done jobs.Snapshot
	for {
		getJSON(t, srv, "/v1/jobs/"+snap.ID, http.StatusOK, &done)
		if done.State.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done.State != jobs.StateDone || done.Result == nil || done.Result.Experiment != "fig1" {
		t.Fatalf("final snapshot = %+v", done)
	}
	if done.Progress.Done != 5 || done.Progress.Total != 5 {
		t.Fatalf("final progress = %+v, want 5/5", done.Progress)
	}

	var fetched RunResponse
	getJSON(t, srv, "/v1/results/"+snap.Key, http.StatusOK, &fetched)
	if fetched.Result == nil || fetched.Result.Experiment != "fig1" {
		t.Fatalf("fetched result = %+v", fetched.Result)
	}

	// Submitting the identical config again is served instantly: 200 (not
	// 202), born done, cached.
	var cached jobs.Snapshot
	postJSON(t, srv, "/v1/jobs", `{"experiment":"fig1","scale":"test","replicas":1}`, http.StatusOK, &cached)
	if cached.State != jobs.StateDone || !cached.Cached || cached.Result == nil {
		t.Fatalf("resubmission snapshot = %+v", cached)
	}
}

// TestJobCancellation is the satellite acceptance test: DELETE on a
// running job reaches the training loop's context promptly, and the job
// reports cancelled with a typed error.
func TestJobCancellation(t *testing.T) {
	started := make(chan struct{})
	observed := make(chan struct{})
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done() // training checks ctx at every batch boundary
		close(observed)
		return nil, ctx.Err()
	}})

	var snap jobs.Snapshot
	postJSON(t, srv, "/v1/jobs", `{"experiment":"table2"}`, http.StatusAccepted, &snap)
	<-started

	var cancelled jobs.Snapshot
	deleteJSON(t, srv, "/v1/jobs/"+snap.ID, http.StatusOK, &cancelled)
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("DELETE did not cancel the training context promptly")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, srv, "/v1/jobs/"+snap.ID, http.StatusOK, &cancelled)
		if cancelled.State.Terminal() || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cancelled.State != jobs.StateCancelled {
		t.Fatalf("state = %s, want cancelled", cancelled.State)
	}
	if cancelled.Error == nil || cancelled.Error.Kind != jobs.ErrKindCancelled {
		t.Fatalf("error = %+v", cancelled.Error)
	}
	// Cancelling a terminal job is an idempotent no-op.
	deleteJSON(t, srv, "/v1/jobs/"+snap.ID, http.StatusOK, &cancelled)
	if cancelled.State != jobs.StateCancelled {
		t.Fatalf("second DELETE changed state to %s", cancelled.State)
	}
}

// TestQueueFullReturns503: when the bounded job queue is at capacity,
// further submissions get backpressure, not unbounded queueing.
func TestQueueFullReturns503(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return stubResult(id), nil
	}})
	saw503 := false
	for i := 0; i < 8 && !saw503; i++ {
		body := fmt.Sprintf(`{"experiment":"fig1","seed":%d}`, 100+i)
		resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			saw503 = true
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !saw503 {
		t.Fatal("bounded queue never pushed back with 503")
	}
}

// TestConcurrentIdenticalRequestsSingleflight proves the engine-level
// dedup: N concurrent identical POSTs execute the runner once and every
// client receives the same completed result.
func TestConcurrentIdenticalRequestsSingleflight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		calls.Add(1)
		<-release // hold every request in the same job window
		return stubResult(id), nil
	}})

	const clients = 8
	responses := make([]RunResponse, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/experiments/fig1/run", "application/json", strings.NewReader(`{"scale":"test"}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &responses[i]); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	// Wait until the job owner is inside the runner, then release it.
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests executed the runner %d times, want exactly 1", clients, got)
	}
	// Every client sees the same key and result, whether it joined the
	// live job or arrived just after completion and hit the store.
	want, _ := json.Marshal(responses[0].Result)
	for i := 1; i < clients; i++ {
		got, _ := json.Marshal(responses[i].Result)
		if responses[i].Key != responses[0].Key || string(got) != string(want) {
			t.Fatalf("client %d saw a different result:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// TestConcurrentTable2RunsTrainOnce is an acceptance-criteria test: two
// concurrent identical POST /v1/experiments/table2/run requests must train
// each replica exactly once. The experiments package counts actual replica
// trainings (ledger hits excluded); table2's grid is 10 task/device pairs
// x 3 variants = 30 cells at one replica each, so the delta across both
// requests together must be exactly 30. One replica per population keeps
// the test well inside the go test per-package timeout on a 1-core machine
// while still training the full table2 grid.
func TestConcurrentTable2RunsTrainOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	experiments.ResetCache()
	srv := newTestServer(t, Options{})

	before := experiments.ReplicaTrains()
	const clients = 2
	var wg sync.WaitGroup
	wg.Add(clients)
	responses := make([]RunResponse, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := srv.Client().Post(srv.URL+"/v1/experiments/table2/run", "application/json",
				strings.NewReader(`{"scale":"test","replicas":1}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &responses[i]); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	trained := experiments.ReplicaTrains() - before
	if trained != 30 {
		t.Fatalf("two concurrent table2 requests trained %d replicas, want exactly 30 (each replica once)", trained)
	}
	a, _ := json.Marshal(responses[0].Result.Tables)
	b, _ := json.Marshal(responses[1].Result.Tables)
	if string(a) != string(b) {
		t.Fatal("concurrent identical requests returned different tables")
	}
	if responses[0].Key != responses[1].Key {
		t.Fatalf("keys differ: %q vs %q", responses[0].Key, responses[1].Key)
	}
}

// TestRestartServesFromDisk is the PR's acceptance-criteria test: a
// result computed before a server restart is served from the on-disk
// store by the restarted server with zero additional populations
// trained.
func TestRestartServesFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	dir := t.TempDir()
	experiments.ResetCache()

	s1, err := New(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(s1.Handler())
	var first RunResponse
	{
		resp, err := srv1.Client().Post(srv1.URL+"/v1/experiments/fig2/run", "application/json",
			strings.NewReader(`{"scale":"test","replicas":1}`))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("first run: status %d: %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &first); err != nil {
			t.Fatal(err)
		}
	}
	if first.Cached || first.Result == nil {
		t.Fatalf("first run = %+v", first)
	}
	srv1.Close()
	s1.Close()

	// "Restart": a fresh server process knows nothing in memory — wipe the
	// process-global population cache so only the on-disk store can dedup.
	experiments.ResetCache()
	before := experiments.ReplicaTrains()

	s2, err := New(Options{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s2.Handler())
	defer func() {
		srv2.Close()
		s2.Close()
	}()

	var snap jobs.Snapshot
	postJSON2 := func(path, body string, status int, into any) {
		t.Helper()
		resp, err := srv2.Client().Post(srv2.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, status, raw)
		}
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatal(err)
		}
	}
	// 200 (not 202): the job is born done from the persisted result.
	postJSON2("/v1/jobs", `{"experiment":"fig2","scale":"test","replicas":1}`, http.StatusOK, &snap)
	if snap.State != jobs.StateDone || !snap.Cached || snap.Result == nil {
		t.Fatalf("post-restart snapshot = %+v", snap)
	}
	if trained := experiments.ReplicaTrains() - before; trained != 0 {
		t.Fatalf("post-restart submission trained %d populations, want 0 (served from disk)", trained)
	}
	// The served result is the stored one, bit-for-bit at the JSON layer.
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(snap.Result)
	if string(a) != string(b) {
		t.Fatalf("restarted server served a different result:\n%s\nvs\n%s", b, a)
	}
}

// TestLedgerRestartTrainsOnlyDelta is the PR's acceptance-criteria test:
// a server restarted with the same -ledger directory, given a previously
// UNSEEN grid (larger replica count, so a different result key — the
// result store cannot help) that overlaps prior cells, trains only the
// missing replicas. Isolated Populations caches simulate the two cold
// processes; the replica-train counter on each pins the delta exactly.
func TestLedgerRestartTrainsOnlyDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	ledgerDir := t.TempDir()
	// Two cells, two epochs: real training kept tiny.
	grid := `"grid":{"tasks":["smallcnn-cifar10"],"devices":["V100","TPUv2"],"variants":["IMPL"],"recipes":[{"epochs":2}]}`
	runGrid := func(srv *httptest.Server, replicas int, wantCached int) jobs.Snapshot {
		t.Helper()
		body := fmt.Sprintf(`{%s,"scale":"test","replicas":%d,"seed":11}`, grid, replicas)
		var resp GridResponse
		postJSON(t, srv, "/v1/grid", body, http.StatusAccepted, &resp)
		if resp.Estimate.CachedReplicas != wantCached {
			t.Fatalf("estimate credits %d cached replicas, want %d (estimate = %+v)",
				resp.Estimate.CachedReplicas, wantCached, resp.Estimate)
		}
		var snap jobs.Snapshot
		deadline := time.Now().Add(120 * time.Second)
		for {
			getJSON(t, srv, "/v1/jobs/"+resp.ID, http.StatusOK, &snap)
			if snap.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("grid job never terminal: %+v", snap)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if snap.State != jobs.StateDone {
			t.Fatalf("grid job = %+v", snap)
		}
		return snap
	}

	// Process 1: a 1-replica run over a cold ledger trains 2 replicas
	// (one per cell).
	pops1 := experiments.NewPopulations(0)
	srv1 := newTestServer(t, Options{LedgerDir: ledgerDir, Populations: pops1})
	first := runGrid(srv1, 1, 0)
	if pops1.Trains() != 2 {
		t.Fatalf("cold run trained %d replicas, want 2", pops1.Trains())
	}
	if first.Progress.Total != 2 || first.Progress.Done != 2 {
		t.Fatalf("cold run progress = %+v, want 2/2 replicas", first.Progress)
	}

	// Process 2 ("restart"): a fresh cache over the same ledger directory,
	// asked for 3 replicas per cell. The result key is new (r3, never
	// stored), but the estimate credits the 2 replicas on disk and the run
	// trains only the 4 missing ones.
	pops2 := experiments.NewPopulations(0)
	srv2 := newTestServer(t, Options{LedgerDir: ledgerDir, Populations: pops2})
	grown := runGrid(srv2, 3, 2)
	if pops2.Trains() != 4 {
		t.Fatalf("restarted server trained %d replicas, want 4 (only the delta)", pops2.Trains())
	}
	if grown.Progress.Total != 6 || grown.Progress.Done != 6 {
		t.Fatalf("grown run progress = %+v, want 6/6 replicas", grown.Progress)
	}
}

// TestAbandonedFlightCancelled proves the attached-job contract on the
// synchronous endpoint: when every subscribed client disconnects, the
// job's context is cancelled so training stops burning the pool.
func TestAbandonedFlightCancelled(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		close(started)
		<-ctx.Done() // simulate training that aborts at the next batch
		cancelled <- ctx.Err()
		return nil, ctx.Err()
	}})

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost,
		srv.URL+"/v1/experiments/fig1/run", strings.NewReader(`{}`))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Client().Do(req)
		errCh <- err
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	cancelReq() // the only client walks away

	select {
	case err := <-cancelled:
		if err != context.Canceled {
			t.Fatalf("job ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned job was never cancelled")
	}
	if err := <-errCh; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
}

// TestLateClientAfterAbandonedFlightGetsFreshRun pins the doomed-job
// window: once the last waiter cancels a job, a new identical request
// must start a fresh run — even while the cancelled job is still winding
// down — rather than inherit its cancellation error.
func TestLateClientAfterAbandonedFlightGetsFreshRun(t *testing.T) {
	var calls atomic.Int64
	firstStarted := make(chan struct{})
	firstCancelled := make(chan struct{})
	srv := newTestServer(t, Options{Workers: 2, Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		if calls.Add(1) == 1 {
			close(firstStarted)
			<-ctx.Done()
			close(firstCancelled)
			time.Sleep(300 * time.Millisecond) // slow wind-down window
			return nil, ctx.Err()
		}
		return stubResult(id), nil
	}})

	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost,
		srv.URL+"/v1/experiments/fig1/run", strings.NewReader(`{}`))
	go func() { _, _ = srv.Client().Do(req) }()

	<-firstStarted
	cancelReq() // the only subscriber walks away
	select {
	case <-firstCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned job was never cancelled")
	}

	// The doomed job is still inside its wind-down sleep; an identical
	// request now must run fresh and succeed.
	var fresh RunResponse
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusOK, &fresh)
	if fresh.Result == nil || fresh.Result.Experiment != "fig1" {
		t.Fatalf("fresh run result = %+v", fresh.Result)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner called %d times, want 2 (doomed job + fresh run)", got)
	}
}

// TestResultKeyResolvesDefaults pins the canonical key format, including
// scale-default replica resolution.
func TestResultKeyResolvesDefaults(t *testing.T) {
	cfg := experiments.Config{Scale: data.ScaleTest, Seed: 7}
	if key := ResultKey("fig5", cfg); key != "fig5-test-r3-s7" {
		t.Fatalf("key = %q", key)
	}
	cfg.Replicas = 9
	if key := ResultKey("fig5", cfg); key != "fig5-test-r9-s7" {
		t.Fatalf("key = %q", key)
	}
}

// TestServerRunErrorSurfaced maps runner failures onto HTTP 500 with a
// JSON error body.
func TestServerRunErrorSurfaced(t *testing.T) {
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return nil, fmt.Errorf("boom")
	}})
	var e errorResponse
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusInternalServerError, &e)
	if !strings.Contains(e.Error, "boom") {
		t.Fatalf("error body = %+v", e)
	}
	// A failed job must not be cached: the next request re-executes.
	postJSON(t, srv, "/v1/experiments/fig1/run", `{}`, http.StatusInternalServerError, &e)
}

// TestCatalogEndpoints: the device and workload catalogs grid specs
// compose against.
func TestCatalogEndpoints(t *testing.T) {
	srv := newTestServer(t, Options{Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
		return stubResult(id), nil
	}})
	var dev DevicesResponse
	getJSON(t, srv, "/v1/devices", http.StatusOK, &dev)
	if len(dev.Devices) != 7 {
		t.Fatalf("devices = %d, want 7 catalog entries", len(dev.Devices))
	}
	byAlias := map[string]bool{}
	for _, d := range dev.Devices {
		byAlias[d.Alias] = true
	}
	if !byAlias["v100"] || !byAlias["rtx5000tc"] {
		t.Fatalf("aliases missing: %v", byAlias)
	}
	var wl WorkloadsResponse
	getJSON(t, srv, "/v1/workloads", http.StatusOK, &wl)
	if len(wl.Workloads) != 6 {
		t.Fatalf("workloads = %d, want 6 recipes", len(wl.Workloads))
	}
	for _, w := range wl.Workloads {
		if w.Name == "" || w.Alias == "" || w.Batch == 0 || w.LR == 0 {
			t.Errorf("incomplete workload %+v", w)
		}
	}
}

// TestGridSubmit drives POST /v1/grid against a stub executor: 202 with
// estimate on first submission, job pollable to done, 200 cached on
// resubmission, 400 on specs that do not compile.
func TestGridSubmit(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, Options{
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			calls.Add(1)
			return stubResult(plan.ID()), nil
		},
	})
	body := `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["v100","tpuv2"],"variants":["IMPL"]},"scale":"test","replicas":1,"seed":7}`
	var resp GridResponse
	raw := postJSON(t, srv, "/v1/grid", body, http.StatusAccepted, &resp)
	if resp.GridID == "" || !strings.HasPrefix(resp.GridID, "grid-") {
		t.Fatalf("grid id = %q: %s", resp.GridID, raw)
	}
	if resp.Estimate.Cells != 2 || resp.Estimate.ReplicasPerCell != 1 {
		t.Fatalf("estimate = %+v, want 2 cells x 1 replica", resp.Estimate)
	}
	if resp.Experiment != resp.GridID {
		t.Fatalf("job labeled %q, want %q", resp.Experiment, resp.GridID)
	}
	if resp.Key != resp.GridID+"-test-r1-s7" {
		t.Fatalf("key = %q", resp.Key)
	}

	var snap jobs.Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, srv, "/v1/jobs/"+resp.ID, http.StatusOK, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid job never terminal: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.State != jobs.StateDone || snap.Result == nil {
		t.Fatalf("final snapshot = %+v", snap)
	}

	// Resubmitting the identical grid (even spelled differently) is served
	// from the store: 200, cached, no new execution.
	body2 := `{"grid":{"tasks":["SmallCNN CIFAR-10"],"devices":["V100","TPUv2"],"variants":["impl"]},"scale":"test","replicas":1,"seed":7}`
	var resp2 GridResponse
	postJSON(t, srv, "/v1/grid", body2, http.StatusOK, &resp2)
	if !resp2.Cached || resp2.State != jobs.StateDone || resp2.Result == nil {
		t.Fatalf("resubmission = %+v", resp2.Snapshot)
	}
	if calls.Load() != 1 {
		t.Fatalf("grid executed %d times, want 1", calls.Load())
	}

	// The result is also addressable via GET /v1/results/{key}.
	var fetched RunResponse
	getJSON(t, srv, "/v1/results/"+resp.Key, http.StatusOK, &fetched)
	if fetched.Result == nil {
		t.Fatal("stored grid result not served by key")
	}

	for _, bad := range []string{
		`{"grid":{"tasks":["nope"],"devices":["V100"]}}`,
		`{"grid":{"tasks":["SmallCNN CIFAR-10"],"devices":["H100"]}}`,
		`{"grid":{"tasks":["SmallCNN CIFAR-10"]}}`,
		`{"grid":{"tasks":["SmallCNN CIFAR-10"],"devices":["V100"]},"scale":"galactic"}`,
		`{"grid":{"tasks":["SmallCNN CIFAR-10"],"devices":["V100"],"recipies":[{}]}}`,
	} {
		postJSON(t, srv, "/v1/grid", bad, http.StatusBadRequest, nil)
	}
}

// TestGridEndToEndRestart is the acceptance path with real training: a
// tiny custom grid runs through the engine, persists, and after a server
// restart the identical submission is served from disk with zero
// retrains.
func TestGridEndToEndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("training-backed experiment")
	}
	experiments.ResetCache()
	dir := t.TempDir()
	// Two cells, one replica, two epochs: real training kept tiny.
	body := `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["V100","TPUv2"],"variants":["IMPL"],"recipes":[{"epochs":2}]},"scale":"test","replicas":1,"seed":11}`

	srv := newTestServer(t, Options{StoreDir: dir})
	var resp GridResponse
	postJSON(t, srv, "/v1/grid", body, http.StatusAccepted, &resp)
	var snap jobs.Snapshot
	deadline := time.Now().Add(120 * time.Second)
	for {
		getJSON(t, srv, "/v1/jobs/"+resp.ID, http.StatusOK, &snap)
		if snap.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("grid job never terminal: %+v", snap)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if snap.State != jobs.StateDone {
		t.Fatalf("grid job = %+v", snap)
	}
	if snap.Progress.Total != 2 || snap.Progress.Done != 2 {
		t.Fatalf("grid progress = %+v, want 2/2 cells", snap.Progress)
	}
	rows := snap.Result.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("grid result rows = %d, want 2", len(rows))
	}

	// Restart: fresh server over the same store directory.
	srv2 := newTestServer(t, Options{StoreDir: dir})
	before := experiments.ReplicaTrains()
	var resp2 GridResponse
	postJSON(t, srv2, "/v1/grid", body, http.StatusOK, &resp2)
	if !resp2.Cached || resp2.State != jobs.StateDone || resp2.Result == nil {
		t.Fatalf("post-restart submission = %+v", resp2.Snapshot)
	}
	if trained := experiments.ReplicaTrains() - before; trained != 0 {
		t.Fatalf("post-restart submission trained %d populations, want 0", trained)
	}
}

package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// newTestService is newTestServer for tests that also need the Server
// itself (telemetry registry, admission counters).
func newTestService(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

// cannedGrid is the 2-cell test workload the admission tests price:
// 2 cells x 1 replica x 2 epochs = 4 fresh train epochs on a cold
// ledger.
const cannedGrid = `{"grid":{"tasks":["smallcnn-cifar10"],"devices":["v100","tpuv2"],"variants":["IMPL"],"recipes":[{"epochs":2}]},"scale":"test","replicas":1,"seed":7}`

// postRaw issues one POST and returns the raw reply without asserting
// on the status (the admission tests branch on it).
func postRaw(t *testing.T, srv *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestAdmissionBudgetGrid pins the tentpole contract on POST /v1/grid:
// an over-budget grid is refused with 429, a Retry-After header, the
// machine-readable reason, and the estimate echoed so the client can
// shrink the request; the same grid under a sufficient budget is
// admitted.
func TestAdmissionBudgetGrid(t *testing.T) {
	s, srv := newTestService(t, Options{
		MaxTrainEpochs: 3, // the canned grid prices at 4
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			t.Error("over-budget grid must never execute")
			return stubResult(plan.ID()), nil
		},
	})
	resp, raw := postRaw(t, srv, "/v1/grid", cannedGrid)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget grid = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("unparseable 429 body: %v\n%s", err, raw)
	}
	if e.Reason != ReasonBudgetExceeded {
		t.Errorf("reason = %q, want %q", e.Reason, ReasonBudgetExceeded)
	}
	if e.RetryAfterSeconds <= 0 {
		t.Errorf("retry_after_seconds = %d, want > 0", e.RetryAfterSeconds)
	}
	if e.MaxTrainEpochs != 3 {
		t.Errorf("max_train_epochs = %d, want 3", e.MaxTrainEpochs)
	}
	if e.Estimate == nil {
		t.Fatalf("429 body did not echo the estimate: %s", raw)
	}
	if e.Estimate.TrainEpochs != 4 || e.Estimate.Cells != 2 {
		t.Errorf("echoed estimate = %+v, want 2 cells / 4 train epochs", e.Estimate)
	}
	if got := s.admissionStats(); got.BudgetRejected != 1 {
		t.Errorf("budget_rejected = %d, want 1", got.BudgetRejected)
	}

	// The same grid fits a budget of exactly its price.
	_, srv2 := newTestService(t, Options{
		MaxTrainEpochs: 4,
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			return stubResult(plan.ID()), nil
		},
	})
	resp2, raw2 := postRaw(t, srv2, "/v1/grid", cannedGrid)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("at-budget grid = %d, want 202: %s", resp2.StatusCode, raw2)
	}
}

// TestAdmissionBudgetExperiments pins experiment-submission pricing:
// registered grid artifacts (table2) are priced through the same
// estimator and refused over budget, while artifacts without a grid
// shape (table4) are admitted free — there is nothing to price.
func TestAdmissionBudgetExperiments(t *testing.T) {
	_, srv := newTestService(t, Options{
		MaxTrainEpochs: 1,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			return stubResult(id), nil
		},
	})
	resp, raw := postRaw(t, srv, "/v1/jobs", `{"experiment":"table2","scale":"test","replicas":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("table2 under budget 1 = %d, want 429: %s", resp.StatusCode, raw)
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Reason != ReasonBudgetExceeded || e.Estimate == nil {
		t.Fatalf("429 body = %s (err %v)", raw, err)
	}

	resp2, raw2 := postRaw(t, srv, "/v1/jobs", `{"experiment":"table4","scale":"test","replicas":1}`)
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		t.Fatalf("unpriceable table4 = %d, want admitted: %s", resp2.StatusCode, raw2)
	}
}

// TestRateLimiterSheds pins the token bucket: a burst beyond the bucket
// is shed with 429/"rate_limited"/Retry-After, while the health probes
// stay exempt so operators can still see the shedding.
func TestRateLimiterSheds(t *testing.T) {
	s, srv := newTestService(t, Options{Rate: 0.001, Burst: 2})
	// Both tokens spent...
	for i := 0; i < 2; i++ {
		resp, err := srv.Client().Get(srv.URL + "/v1/experiments")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst = %d, want 200", i+1, resp.StatusCode)
		}
	}
	// ...the third request is shed (refill at 0.001/s is negligible).
	resp, err := srv.Client().Get(srv.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst overflow = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed reply missing Retry-After header")
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Reason != ReasonRateLimited {
		t.Fatalf("shed body = %s (err %v)", raw, err)
	}
	if got := s.admissionStats(); got.RateShed < 1 {
		t.Errorf("rate_shed = %d, want >= 1", got.RateShed)
	}
	// Probes answer 200 no matter how empty the bucket is.
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		for i := 0; i < 3; i++ {
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s during shedding = %d, want 200", path, resp.StatusCode)
			}
		}
	}
}

// TestQueueFullReason pins backpressure as distinct from admission: a
// full backlog is 503/"queue_full" with its own Retry-After, not a 429.
func TestQueueFullReason(t *testing.T) {
	release := make(chan struct{})
	s, srv := newTestService(t, Options{
		Workers:    1,
		QueueDepth: 1,
		Run: func(ctx context.Context, id string, cfg experiments.Config) (*report.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return stubResult(id), nil
		},
	})
	defer close(release)
	// First job occupies the worker, second fills the queue. Distinct
	// experiments so submissions do not coalesce onto one job.
	for i, id := range []string{"fig1", "fig2"} {
		resp, raw := postRaw(t, srv, "/v1/jobs", `{"experiment":"`+id+`","scale":"test"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d = %d, want 202: %s", i+1, resp.StatusCode, raw)
		}
	}
	// The third finds the backlog at capacity.
	var resp *http.Response
	var raw []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, raw = postRaw(t, srv, "/v1/jobs", `{"experiment":"fig5","scale":"test"}`)
		if resp.StatusCode == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		// The first job may not have been picked up yet, leaving queue
		// room; retry until the backlog is really full.
		time.Sleep(5 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission = %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}
	var e errorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("unparseable 503 body: %v\n%s", err, raw)
	}
	if e.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q (distinct from %q)", e.Reason, ReasonQueueFull, ReasonBudgetExceeded)
	}
	if got := s.admissionStats(); got.QueueFull < 1 {
		t.Errorf("queue_full = %d, want >= 1", got.QueueFull)
	}
}

// TestTelemetrySweep is the race-focused satellite: hammer /v1/metrics
// and /v1/stats from many goroutines while grid submissions run, then
// verify the books balance exactly — every route's histogram count
// equals its request counter equals what the clients issued.
func TestTelemetrySweep(t *testing.T) {
	s, srv := newTestService(t, Options{
		RunGrid: func(ctx context.Context, plan *experiments.Plan, cfg experiments.Config) (*report.Result, error) {
			return stubResult(plan.ID()), nil
		},
	})

	const goroutines = 8
	const iters = 24 // divisible by the 4-way operation rotation
	var issued atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0:
					resp, err = srv.Client().Post(srv.URL+"/v1/grid", "application/json", strings.NewReader(cannedGrid))
				case 1:
					resp, err = srv.Client().Get(srv.URL + "/v1/metrics")
				case 2:
					resp, err = srv.Client().Get(srv.URL + "/v1/stats")
				case 3:
					resp, err = srv.Client().Get(srv.URL + "/v1/jobs")
				}
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				issued.Add(1)
			}
		}(g)
	}
	wg.Wait()

	// Quiesced: the weakly consistent counters are now exact.
	tot := s.Telemetry().Totals()
	if tot.Requests != issued.Load() {
		t.Fatalf("telemetry requests = %d, clients issued %d", tot.Requests, issued.Load())
	}
	if tot.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiescence", tot.InFlight)
	}
	wantRoutes := map[string]int64{
		"POST /v1/grid":   goroutines * iters / 4,
		"GET /v1/metrics": goroutines * iters / 4,
		"GET /v1/stats":   goroutines * iters / 4,
		"GET /v1/jobs":    goroutines * iters / 4,
	}
	for _, rs := range s.Telemetry().Snapshot(true) {
		if rs.Requests != rs.Latency.Count {
			t.Errorf("route %s: requests %d != histogram count %d", rs.Route, rs.Requests, rs.Latency.Count)
		}
		if want, ok := wantRoutes[rs.Route]; ok && rs.Requests != want {
			t.Errorf("route %s: requests %d, clients issued %d", rs.Route, rs.Requests, want)
		}
	}

	// The observability endpoints declare themselves uncacheable and
	// parse into their typed responses.
	for _, path := range []string{"/v1/metrics", "/v1/stats"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
		if path == "/v1/metrics" {
			var m MetricsResponse
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("%s: invalid JSON: %v", path, err)
			}
			if m.Requests.Requests == 0 || len(m.Routes) == 0 {
				t.Errorf("%s: empty after %d requests: %s", path, issued.Load(), raw)
			}
		} else {
			var st StatsResponse
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatalf("%s: invalid JSON: %v", path, err)
			}
			if st.Requests.Requests == 0 {
				t.Errorf("%s: request totals missing: %s", path, raw)
			}
		}
	}
}

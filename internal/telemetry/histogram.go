package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultBuckets are the latency histogram's upper bounds: 18 edges from
// 100µs to 60s, roughly 2.5x apart. Fixed buckets make every quantile
// derivable from counters alone — no sampling, no reservoir, no lock —
// at the cost of quantiles quantized to bucket resolution, which is
// exactly the trade a serving dashboard wants. Durations beyond the last
// edge land in an overflow bucket whose "upper bound" is reported as the
// last edge (a request slower than a minute is an outage, not a datum).
var DefaultBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
	60 * time.Second,
}

// Histogram is a fixed-bucket latency histogram safe for arbitrary
// concurrent Observe calls: every mutation is one atomic add, so the
// serving hot path never takes a lock for telemetry. Snapshots are
// weakly consistent (buckets are read one atomic at a time), which is
// fine for monotone counters: a snapshot taken during traffic is some
// valid recent past, and after traffic quiesces it is exact.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; the extra slot is overflow
	sum    atomic.Int64   // nanoseconds, for mean latency
}

// NewHistogram returns a histogram over DefaultBuckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: DefaultBuckets,
		counts: make([]atomic.Int64, len(DefaultBuckets)+1),
	}
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// Count reports the total number of observations (the sum of every
// bucket, read bucket by bucket — exact once observers quiesce).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Bucket is one histogram bucket on the wire: the cumulative upper bound
// in milliseconds and the (non-cumulative) count of observations at or
// under it but over the previous bound.
type Bucket struct {
	LEMillis float64 `json:"le_ms"`
	Count    int64   `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram plus the derived
// quantiles every dashboard actually wants.
type HistogramSnapshot struct {
	Count      int64    `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	P50Millis  float64  `json:"p50_ms"`
	P90Millis  float64  `json:"p90_ms"`
	P99Millis  float64  `json:"p99_ms"`
	Buckets    []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current counts and derives
// p50/p90/p99. withBuckets includes the per-bucket breakdown (the
// /v1/metrics endpoint does; compact summaries skip it).
func (h *Histogram) Snapshot(withBuckets bool) HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:      total,
		SumSeconds: time.Duration(h.sum.Load()).Seconds(),
		P50Millis:  quantile(h.bounds, counts, total, 0.50),
		P90Millis:  quantile(h.bounds, counts, total, 0.90),
		P99Millis:  quantile(h.bounds, counts, total, 0.99),
	}
	if withBuckets {
		s.Buckets = make([]Bucket, 0, len(counts))
		for i, c := range counts {
			if c == 0 {
				continue // keep the wire form dense; bounds are fixed anyway
			}
			s.Buckets = append(s.Buckets, Bucket{LEMillis: boundMillis(h.bounds, i), Count: c})
		}
	}
	return s
}

// quantile returns the p-quantile in milliseconds, linearly interpolated
// within the bucket the rank lands in (the lower edge of the first
// bucket is treated as 0). Zero observations yield 0.
func quantile(bounds []time.Duration, counts []int64, total int64, p float64) float64 {
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1]) / float64(time.Millisecond)
		}
		hi := boundMillis(bounds, i)
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return boundMillis(bounds, len(counts)-1)
}

// boundMillis is bucket i's upper bound in milliseconds; the overflow
// bucket reports the last finite edge.
func boundMillis(bounds []time.Duration, i int) float64 {
	if i >= len(bounds) {
		i = len(bounds) - 1
	}
	return float64(bounds[i]) / float64(time.Millisecond)
}

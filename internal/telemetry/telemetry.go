// Package telemetry is the serving-observability layer: lock-free
// per-route request counters, fixed-bucket latency histograms
// (p50/p90/p99 derivable from counters alone — no sampling), in-flight
// gauges, and a structured JSON request logger, packaged as an
// http.Handler middleware.
//
// The design constraint is that the hot path must never take a lock:
// every per-request mutation is a handful of atomic adds on values
// looked up through a sync.Map that is read-mostly after the first
// request to each route. Snapshots are weakly consistent while traffic
// is in flight (each counter is read individually) and exact once
// observers quiesce — which is the property tests pin: after N requests
// complete, every route's histogram count equals its request counter.
//
// Route labels are supplied by the embedding server (it knows its own
// mux patterns); the middleware only requires that the label function
// keeps cardinality bounded — unknown paths should collapse onto one
// label rather than minting a route per URL.
package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// RouteMetrics holds one route's counters. All fields are atomics;
// there is no lock to take on the request path.
type RouteMetrics struct {
	route    string
	inFlight atomic.Int64
	requests atomic.Int64
	bytes    atomic.Int64
	// status counts responses by class: index s/100-1 for 1xx..5xx.
	status [5]atomic.Int64
	// rejected counts 429s specifically — the admission-control signal,
	// kept separate from the 4xx class a client typo also lands in.
	rejected atomic.Int64
	latency  *Histogram
}

// RouteSnapshot is one route's JSON form.
type RouteSnapshot struct {
	Route    string `json:"route"`
	Requests int64  `json:"requests"`
	InFlight int64  `json:"in_flight"`
	// Status maps "1xx".."5xx" to response counts; only nonzero classes
	// appear.
	Status   map[string]int64  `json:"status,omitempty"`
	Rejected int64             `json:"rejected,omitempty"`
	Bytes    int64             `json:"bytes"`
	Latency  HistogramSnapshot `json:"latency"`
}

// Registry is a set of RouteMetrics keyed by route label. The zero
// value is not usable; construct with New.
type Registry struct {
	start  time.Time
	routes sync.Map // route label -> *RouteMetrics
}

// New returns an empty registry; Uptime is measured from this call.
func New() *Registry { return &Registry{start: time.Now()} }

// Uptime reports how long this registry (in practice: the server that
// owns it) has been alive.
func (g *Registry) Uptime() time.Duration { return time.Since(g.start) }

// Route returns the metrics for a label, creating them on first use.
// The fast path is one lock-free sync.Map load.
func (g *Registry) Route(label string) *RouteMetrics {
	if m, ok := g.routes.Load(label); ok {
		return m.(*RouteMetrics)
	}
	m, _ := g.routes.LoadOrStore(label, &RouteMetrics{route: label, latency: NewHistogram()})
	return m.(*RouteMetrics)
}

// begin marks a request in flight.
func (m *RouteMetrics) begin() { m.inFlight.Add(1) }

// done records one finished request: status class, bytes written, and
// latency. The request counter increments here — "requests" means
// completed requests, so it always equals the histogram count.
func (m *RouteMetrics) done(status int, bytes int64, d time.Duration) {
	m.inFlight.Add(-1)
	if c := status/100 - 1; c >= 0 && c < len(m.status) {
		m.status[c].Add(1)
	}
	if status == http.StatusTooManyRequests {
		m.rejected.Add(1)
	}
	m.bytes.Add(bytes)
	m.latency.Observe(d)
	m.requests.Add(1)
}

// Snapshot captures one route's counters.
func (m *RouteMetrics) Snapshot(withBuckets bool) RouteSnapshot {
	s := RouteSnapshot{
		Route:    m.route,
		Requests: m.requests.Load(),
		InFlight: m.inFlight.Load(),
		Rejected: m.rejected.Load(),
		Bytes:    m.bytes.Load(),
		Latency:  m.latency.Snapshot(withBuckets),
	}
	classes := [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, name := range classes {
		if n := m.status[i].Load(); n > 0 {
			if s.Status == nil {
				s.Status = map[string]int64{}
			}
			s.Status[name] = n
		}
	}
	return s
}

// Totals is the registry-wide rollup surfaced by /v1/stats.
type Totals struct {
	Requests  int64 `json:"requests"`
	InFlight  int64 `json:"in_flight"`
	Rejected  int64 `json:"rejected"`
	Errors5xx int64 `json:"errors_5xx"`
}

// Totals sums every route's counters.
func (g *Registry) Totals() Totals {
	var t Totals
	g.routes.Range(func(_, v any) bool {
		m := v.(*RouteMetrics)
		t.Requests += m.requests.Load()
		t.InFlight += m.inFlight.Load()
		t.Rejected += m.rejected.Load()
		t.Errors5xx += m.status[4].Load()
		return true
	})
	return t
}

// Snapshot captures every route, sorted by label for a stable wire
// shape.
func (g *Registry) Snapshot(withBuckets bool) []RouteSnapshot {
	var out []RouteSnapshot
	g.routes.Range(func(_, v any) bool {
		out = append(out, v.(*RouteMetrics).Snapshot(withBuckets))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// LogEntry is one structured request-log line.
type LogEntry struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Route      string  `json:"route"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	DurationMS float64 `json:"duration_ms"`
	Remote     string  `json:"remote,omitempty"`
	// Key is the job or result key the handler annotated onto the
	// request (Annotate), tying log lines to the work they touched.
	Key string `json:"key,omitempty"`
}

// Logger serializes request-log lines as JSON, one object per line. A
// nil *Logger is valid and logs nothing, so callers never branch.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger returns a Logger writing to w (nil w yields a nil Logger).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Log writes one entry. Write errors are dropped: the request log is an
// observability stream, never a reason to fail a request.
func (l *Logger) Log(e LogEntry) {
	if l == nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(raw)
	l.mu.Unlock()
}

// annotation is the per-request mutable slot handlers write keys into;
// the middleware installs one on every request's context.
type annotation struct {
	mu  sync.Mutex
	key string
}

type annotationCtxKey struct{}

// Annotate attaches a job/result key to the current request's log line.
// A no-op outside a telemetry middleware (tests calling handlers
// directly, embedders without the middleware).
func Annotate(ctx context.Context, key string) {
	a, ok := ctx.Value(annotationCtxKey{}).(*annotation)
	if !ok {
		return
	}
	a.mu.Lock()
	a.key = key
	a.mu.Unlock()
}

// responseRecorder captures status and bytes on the way through. It
// deliberately does not implement Hijacker: this API is plain
// request/response JSON.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *responseRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
	r.ResponseWriter.WriteHeader(status)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams — the fleet
// long-poll endpoints hold connections open and must not buffer behind
// the recorder.
func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with request accounting: per-route counters and
// latency via reg (routed by label), plus one structured log line per
// request through log (nil = no logging). label must return a
// bounded-cardinality route name for any request.
func Middleware(reg *Registry, label func(*http.Request) string, log *Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := label(r)
		m := reg.Route(route)
		a := &annotation{}
		r = r.WithContext(context.WithValue(r.Context(), annotationCtxKey{}, a))
		rec := &responseRecorder{ResponseWriter: w}
		start := time.Now()
		m.begin()
		defer func() {
			d := time.Since(start)
			status := rec.status
			if status == 0 {
				// The handler wrote nothing (e.g. a sync run whose client
				// disconnected): account it as the 499 convention so it is
				// visible without inventing a success.
				status = 499
			}
			m.done(status, rec.bytes, d)
			a.mu.Lock()
			key := a.key
			a.mu.Unlock()
			log.Log(LogEntry{
				Time:       start.UTC().Format(time.RFC3339Nano),
				Method:     r.Method,
				Route:      route,
				Path:       r.URL.Path,
				Status:     status,
				Bytes:      rec.bytes,
				DurationMS: float64(d) / float64(time.Millisecond),
				Remote:     r.RemoteAddr,
				Key:        key,
			})
		}()
		next.ServeHTTP(rec, r)
	})
}
